//! Cross-crate pipeline: CQL parsing → containment/merging → shared
//! execution → Pub/Sub delivery, on the sensor scenario. Verifies the §2.1
//! correctness contract end to end: sharing changes *costs*, never
//! *results*.

use cosmos::engine::exec::StreamEngine;
use cosmos::engine::SharedEngine;
use cosmos::net::NodeId;
use cosmos::pubsub::broker::BrokerNetwork;
use cosmos::pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos::query::{covers, merge_queries, parse_query, QueryId, Scalar};
use cosmos::workload::sensors::SensorScenario;
use std::collections::BTreeSet;

#[test]
fn merged_query_covers_all_sensor_queries_it_absorbs() {
    let scenario = SensorScenario::build(10, 2, 6, 3);
    // Force a mergeable family: same two sensors, varying windows/filters.
    let base = |w: u32, th: i64| {
        parse_query(&format!(
            "SELECT X.*, Y.* FROM Sensor0 [Range {w} Seconds] X, Sensor1 [Now] Y \
             WHERE X.timestamp >= Y.timestamp AND X.snowHeight > {th}"
        ))
        .unwrap()
    };
    let queries = vec![base(10, 40), base(30, 20), base(60, 10)];
    let inputs: Vec<(QueryId, &cosmos::query::Query)> =
        queries.iter().enumerate().map(|(i, q)| (QueryId(i as u64), q)).collect();
    let merged = merge_queries(&inputs).expect("family is mergeable");
    for q in &queries {
        assert!(covers(&merged.query, q), "{} should cover {q}", merged.query);
    }
    let _ = scenario;
}

#[test]
fn shared_execution_equals_independent_on_sensor_readings() {
    let scenario = SensorScenario::build(6, 2, 6, 5);
    let mk = |w: u32, th: i64| {
        parse_query(&format!(
            "SELECT X.snowHeight, Y.snowHeight FROM Sensor0 [Range {w} Seconds] X, \
             Sensor1 [Now] Y WHERE X.snowHeight > Y.snowHeight AND X.snowHeight > {th}"
        ))
        .unwrap()
    };
    let queries = vec![(QueryId(1), mk(20, 30)), (QueryId(2), mk(45, 10))];

    // Interleaved, timestamp-ordered readings.
    let mut tuples = scenario.readings(0, 80, 0, 1_000, 9);
    tuples.extend(scenario.readings(1, 80, 500, 1_000, 10));
    tuples.sort_by_key(|t| t.timestamp);

    let mut shared = SharedEngine::build(queries.clone());
    assert_eq!(shared.group_count(), 1, "the two queries must merge");
    let mut shared_results: BTreeSet<String> = BTreeSet::new();
    for t in &tuples {
        for (id, r) in shared.push(t.clone()) {
            let mut vals: Vec<String> = r.iter().map(|(k, v)| format!("{k}={v}")).collect();
            vals.sort();
            shared_results.insert(format!("{id}|{}", vals.join(",")));
        }
    }

    let mut indep = StreamEngine::new();
    for (id, q) in &queries {
        indep.add_query(*id, q.clone());
    }
    let mut indep_results: BTreeSet<String> = BTreeSet::new();
    for t in &tuples {
        for r in indep.push(t.clone()) {
            let projection = &queries.iter().find(|(i, _)| *i == r.query).unwrap().1.projection;
            let p = r.project(projection, "x");
            let mut vals: Vec<String> = p.iter().map(|(k, v)| format!("{k}={v}")).collect();
            vals.sort();
            indep_results.insert(format!("{}|{}", r.query, vals.join(",")));
        }
    }
    assert_eq!(shared_results, indep_results);
    assert!(!shared_results.is_empty(), "workload must produce results");
}

#[test]
fn broker_delivery_respects_covering_merges_end_to_end() {
    // Two subscribers behind a shared path; the weaker filter's
    // subscription covers the stronger one after merging — deliveries must
    // be exactly what per-subscriber matching dictates.
    let scenario = SensorScenario::build(4, 2, 6, 7);
    let topo = scenario.dep.topology().clone();
    let mut net = BrokerNetwork::new(topo);
    let source = scenario.stream_source["Sensor0"];
    net.advertise("Sensor0", source);
    let procs = scenario.dep.processors();
    let weak = Subscription::builder(procs[0])
        .id(SubId(1))
        .stream(
            "Sensor0",
            StreamProjection::All,
            vec![cosmos::query::Predicate::Cmp {
                attr: cosmos::query::AttrRef::new("Sensor0", "snowHeight"),
                op: cosmos::query::CmpOp::Gt,
                value: Scalar::Int(10),
            }],
        )
        .build();
    let strong = Subscription::builder(procs[1])
        .id(SubId(2))
        .stream(
            "Sensor0",
            StreamProjection::All,
            vec![cosmos::query::Predicate::Cmp {
                attr: cosmos::query::AttrRef::new("Sensor0", "snowHeight"),
                op: cosmos::query::CmpOp::Gt,
                value: Scalar::Int(50),
            }],
        )
        .build();
    net.subscribe(weak);
    net.subscribe(strong);
    for (height, expect) in [(5, 0), (30, 1), (80, 2)] {
        let n =
            net.publish(Message::new("Sensor0", height).with("snowHeight", Scalar::Int(height)));
        assert_eq!(n, expect, "snowHeight {height} must reach {expect} subscribers");
    }
}

#[test]
fn generated_sensor_queries_always_compile_into_the_engine() {
    let scenario = SensorScenario::build(30, 5, 10, 11);
    let cql = scenario.generate_cql(60, 13);
    let mut engine = StreamEngine::new();
    for (id, q, _) in &cql {
        engine.add_query(*id, q.clone());
    }
    assert_eq!(engine.query_count(), 60);
    // Push a few readings through; no panics, selections enforced.
    let mut tuples = Vec::new();
    for s in 0..30 {
        tuples.extend(scenario.readings(s, 10, 0, 2_000, 17));
    }
    tuples.sort_by_key(|t| t.timestamp);
    let mut delivered = 0usize;
    for t in tuples {
        delivered += engine.push(t).len();
    }
    // Some queries should fire on 300 readings.
    assert!(delivered > 0, "no results from 300 readings across 60 queries");
}

#[test]
fn unsubscribe_then_resubscribe_round_trip() {
    let scenario = SensorScenario::build(4, 2, 6, 19);
    let mut net = BrokerNetwork::new(scenario.dep.topology().clone());
    let source = scenario.stream_source["Sensor1"];
    net.advertise("Sensor1", source);
    let proxy = scenario.dep.processors()[2];
    let sub = Subscription::builder(proxy)
        .id(SubId(9))
        .stream("Sensor1", StreamProjection::All, vec![])
        .build();
    net.subscribe(sub.clone());
    assert_eq!(net.publish(Message::new("Sensor1", 0)), 1);
    net.unsubscribe(SubId(9));
    assert_eq!(net.publish(Message::new("Sensor1", 1)), 0);
    net.subscribe(sub);
    assert_eq!(net.publish(Message::new("Sensor1", 2)), 1);
    let _ = NodeId(0);
}
