//! Failure-injection and edge-case integration tests: heterogeneous /
//! degraded capabilities, stale statistics, query churn storms, and
//! degenerate deployments.

use cosmos::core::adaptive::{adapt_wholesale, AdaptConfig};
use cosmos::core::distribute::Distributor;
use cosmos::core::hierarchy::CoordinatorTree;
use cosmos::core::spec::Assignment;
use cosmos::net::{Deployment, TransitStubConfig};
use cosmos::pubsub::SubstreamTable;
use cosmos::workload::{PaperParams, Simulation};

#[test]
fn degraded_processor_capability_shifts_load_away() {
    let topo = TransitStubConfig::small().generate(21);
    let dep = Deployment::assign(topo, 4, 8, 21);
    let table = SubstreamTable::random(200, 4, 1.0, 10.0, 21);
    // Processor 0 has 1/10th the capability of the others.
    let mut caps = vec![1.0; 8];
    caps[0] = 0.1;
    let tree = CoordinatorTree::build_with_capabilities(&dep, 2, &caps);
    let d = Distributor::new(&dep, &tree, &table);
    let mut sim = Simulation::build(PaperParams::tiny(), 21);
    let specs = sim.arrivals(160, 22);
    let out = d.distribute(&specs, 23);
    let loads = out.assignment.loads(&specs, dep.processors());
    let weak = loads[0];
    let strongest = loads.iter().skip(1).cloned().fold(0.0, f64::max);
    assert!(weak < strongest / 2.0, "degraded processor got load {weak} vs strongest {strongest}");
}

#[test]
fn stale_statistics_hurt_and_refresh_heals() {
    let mut sim = Simulation::build(PaperParams::tiny(), 31);
    let batch = sim.arrivals(120, 32);
    let d = sim.distributor();
    let out = d.distribute(&batch, 33);
    drop(d);
    sim.apply(out.assignment);

    // Rates shift drastically; the optimizer keeps believing old loads
    // until refresh_statistics() (§3.8 statistics reports).
    let stale_loads: Vec<f64> = sim.specs.iter().map(|q| q.load).collect();
    for s in 0..sim.table.len() / 4 {
        sim.table.scale_rate(s, 6.0);
    }
    let believed: Vec<f64> = sim.specs.iter().map(|q| q.load).collect();
    assert_eq!(stale_loads, believed, "loads must be stale before refresh");
    sim.refresh_statistics();
    let refreshed: f64 = sim.specs.iter().map(|q| q.load).sum();
    assert!(
        refreshed > stale_loads.iter().sum::<f64>(),
        "refresh must pick up the increased rates"
    );
    // Adaptation after refresh keeps the system within its load band.
    for round in 0..3 {
        sim.adapt_round(600 + round);
    }
    let loads = sim.loads();
    let total: f64 = loads.iter().sum();
    let limit = (1.0 + sim.params.alpha) * total / loads.len() as f64;
    for l in &loads {
        assert!(*l <= limit * 1.05 + 1e-9, "post-refresh load {l} exceeds {limit}");
    }
}

#[test]
fn churn_storm_insert_remove_insert() {
    let mut sim = Simulation::build(PaperParams::tiny(), 41);
    let initial = sim.arrivals(100, 42);
    let d = sim.distributor();
    let out = d.distribute(&initial, 43);
    drop(d);
    sim.apply(out.assignment);

    // Remove half the queries (terminations), then storm-insert new ones.
    let victims: Vec<_> = sim.specs.iter().map(|q| q.id).step_by(2).collect();
    for id in &victims {
        sim.assignment.remove(*id);
    }
    sim.specs.retain(|q| sim.assignment.processor_of(q.id).is_some());
    assert_eq!(sim.specs.len(), 50);

    for wave in 0..10 {
        let batch = sim.arrivals(30, 100 + wave);
        sim.insert_online(&batch);
    }
    assert_eq!(sim.specs.len(), 350);
    assert_eq!(sim.assignment.len(), 350);
    // The system remains adaptable after the storm.
    let out = sim.adapt_round(777);
    assert_eq!(out.assignment.len(), 350);
}

#[test]
fn single_processor_deployment_degenerates_gracefully() {
    let topo = TransitStubConfig::small().generate(51);
    let dep = Deployment::assign(topo, 2, 1, 51);
    let table = SubstreamTable::random(50, 2, 1.0, 10.0, 51);
    let tree = CoordinatorTree::build(&dep, 2);
    let d = Distributor::new(&dep, &tree, &table);
    let mut sim = Simulation::build(PaperParams::tiny(), 51);
    let specs = sim.arrivals(20, 52);
    let out = d.distribute(&specs, 53);
    let only = dep.processors()[0];
    for q in &specs {
        assert_eq!(out.assignment.processor_of(q.id), Some(only));
    }
    // Adaptation on a single processor is a no-op.
    let adapted = adapt_wholesale(&d, &specs, &out.assignment, &AdaptConfig::default(), 54);
    assert_eq!(adapted.migrations, 0);
}

#[test]
fn adaptation_tolerates_partially_missing_placements() {
    // Queries that were never placed (e.g. lost during a coordinator
    // crash) are treated as new arrivals by the online router, and the
    // adaptive round only requires placed queries.
    let mut sim = Simulation::build(PaperParams::tiny(), 61);
    let batch = sim.arrivals(60, 62);
    let d = sim.distributor();
    let out = d.distribute(&batch, 63);
    drop(d);
    sim.apply(out.assignment);
    // Drop 10 placements and re-insert those queries online.
    let lost: Vec<_> = sim.specs.iter().map(|q| q.id).take(10).collect();
    let mut partial = Assignment::new();
    for (q, p) in sim.assignment.iter() {
        if !lost.contains(&q) {
            partial.place(q, p);
        }
    }
    sim.apply(partial);
    let lost_specs: Vec<_> = sim.specs.iter().filter(|q| lost.contains(&q.id)).cloned().collect();
    sim.insert_online(&lost_specs);
    assert_eq!(sim.assignment.len(), 60);
}

#[test]
fn broker_survives_link_failures_with_alternate_paths() {
    use cosmos::pubsub::broker::BrokerNetwork;
    use cosmos::pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
    let topo = TransitStubConfig::small().generate(81);
    let dep = Deployment::assign(topo.clone(), 2, 4, 81);
    let mut net = BrokerNetwork::new(topo);
    let src = dep.sources()[0];
    net.advertise("S", src);
    for (i, &p) in dep.processors().iter().enumerate() {
        net.subscribe(
            Subscription::builder(p)
                .id(SubId(i as u64))
                .stream("S", StreamProjection::All, vec![])
                .build(),
        );
    }
    let before = net.publish(Message::new("S", 0));
    assert_eq!(before, 4);
    // Fail a handful of links on the source's delivery paths; the richly
    // connected transit-stub core should keep most subscribers reachable,
    // and the broker must never panic or mis-deliver.
    let tree = dep.source_tree(src);
    let mut failed = 0;
    for &p in dep.processors() {
        if let Some(path) = tree.path_to(p) {
            if path.len() >= 3 && net.fail_link(path[1], path[2]) {
                failed += 1;
            }
        }
        if failed >= 2 {
            break;
        }
    }
    let after = net.publish(Message::new("S", 1));
    assert!(after <= 4, "no duplicate deliveries after reroute");
    let _ = after; // partition may or may not cut subscribers; no panic is the contract
}

#[test]
fn engine_with_reorder_buffer_handles_cross_stream_skew() {
    use cosmos::engine::exec::StreamEngine;
    use cosmos::engine::reorder::{Arrival, ReorderBuffer};
    use cosmos::engine::tuple::Tuple;
    use cosmos::query::{parse_query, QueryId, Scalar};

    let mut engine = StreamEngine::new();
    engine.add_query(
        QueryId(1),
        parse_query("SELECT * FROM A [Range 10 Seconds], B [Now] WHERE A.k = B.k").unwrap(),
    );
    let mut buf = ReorderBuffer::new(2_000);
    // Stream B's tuples arrive 1.5 s later than simultaneous A tuples.
    let mut results = 0usize;
    let mut feed = |engine: &mut StreamEngine, buf: &mut ReorderBuffer, t: Tuple| {
        if let Arrival::Released(ready) = buf.push(t) {
            for r in ready {
                results += engine.push(r).len();
            }
        }
    };
    // A's tuple must be processed before its simultaneous B partner for
    // the [Now] join to fire exactly once; B physically arrives 1.5 s late
    // but the buffer's FIFO tie order restores A-before-B.
    for i in 0..20i64 {
        let ts = i * 1_000;
        // Unique key per pair: each B joins exactly its simultaneous A.
        feed(&mut engine, &mut buf, Tuple::new("A", ts).with("k", Scalar::Int(i)));
        feed(&mut engine, &mut buf, Tuple::new("B", ts).with("k", Scalar::Int(i)));
    }
    for r in buf.flush() {
        results += engine.push(r).len();
    }
    // Every B joins its simultaneous A ([Now] window): 20 results despite
    // the skewed arrival order.
    assert_eq!(results, 20);
}

#[test]
fn zero_rate_substreams_are_harmless() {
    let mut sim = Simulation::build(PaperParams::tiny(), 71);
    let batch = sim.arrivals(60, 72);
    // Crash half the substreams to zero rate.
    for s in 0..sim.table.len() / 2 {
        sim.table.set_rate(s, 0.0);
    }
    sim.refresh_statistics();
    let d = sim.distributor();
    let out = d.distribute(&sim.specs.clone(), 73);
    drop(d);
    sim.apply(out.assignment);
    assert_eq!(sim.assignment.len(), batch.len());
    assert!(sim.comm_cost().is_finite());
}
