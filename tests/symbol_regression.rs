//! Regression tests for the symbol-interning / schema-indexing refactor of
//! the tuple data plane: results must be indistinguishable from the
//! original string-keyed implementation — same attribute names, same
//! values, same ordering, same predicate semantics.

use cosmos::engine::exec::StreamEngine;
use cosmos::engine::tuple::{JoinedTuple, Tuple};
use cosmos::query::compiled::CompiledPredicate;
use cosmos::query::predicate::eval_predicate;
use cosmos::query::{parse_query, AttrRef, CmpOp, Predicate, QueryId, Scalar};
use cosmos::util::{Schema, Symbol};
use std::sync::Arc;

fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
    let mut tup = Tuple::new(stream, ts);
    for (k, v) in kv {
        tup = tup.with(*k, Scalar::Int(*v));
    }
    tup
}

/// `flatten` must emit exactly the names and order the string-based
/// implementation produced: per part, `alias.timestamp` then `alias.attr`
/// in attribute order, parts in join order.
#[test]
fn flatten_output_matches_legacy_naming() {
    let joined = JoinedTuple::new(vec![
        ("S1".into(), Arc::new(t("Station1", 1_000, &[("snowHeight", 30), ("temp", -3)]))),
        ("S2".into(), Arc::new(t("Station2", 2_000, &[("snowHeight", 10)]))),
    ]);
    let flat = joined.flatten("result");
    let entries: Vec<(String, Scalar)> =
        flat.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
    assert_eq!(
        entries,
        vec![
            ("S1.timestamp".to_string(), Scalar::Int(1_000)),
            ("S1.snowHeight".to_string(), Scalar::Int(30)),
            ("S1.temp".to_string(), Scalar::Int(-3)),
            ("S2.timestamp".to_string(), Scalar::Int(2_000)),
            ("S2.snowHeight".to_string(), Scalar::Int(10)),
        ]
    );
    assert_eq!(flat.stream, "result");
    assert_eq!(flat.timestamp, 2_000);
}

/// Compiled predicate evaluation must agree with the string-based
/// reference evaluator on every operator/value/attribute combination,
/// including missing attributes and the `timestamp` pseudo-attribute.
#[test]
fn compiled_predicates_match_string_evaluation() {
    let joined = JoinedTuple::new(vec![
        ("A".into(), Arc::new(t("R", 500, &[("v", 7), ("k", 1)]))),
        ("B".into(), Arc::new(t("S", 900, &[("v", 9), ("k", 1)]))),
    ]);
    let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
    let attrs = ["v", "k", "timestamp", "missing"];
    let mut checked = 0;
    for alias in ["A", "B", "C"] {
        for attr in attrs {
            for op in ops {
                for c in [-1i64, 0, 1, 7, 9, 500, 900] {
                    let p = Predicate::Cmp {
                        attr: AttrRef::new(alias, attr),
                        op,
                        value: Scalar::Int(c),
                    };
                    assert_eq!(
                        CompiledPredicate::compile(&p).eval(&joined),
                        eval_predicate(&p, &joined),
                        "diverged on {p}"
                    );
                    checked += 1;
                }
            }
        }
    }
    for (la, lat) in [("A", "v"), ("A", "timestamp"), ("B", "k")] {
        for (ra, rat) in [("B", "v"), ("B", "timestamp"), ("A", "missing")] {
            for op in ops {
                let p = Predicate::JoinCmp {
                    left: AttrRef::new(la, lat),
                    op,
                    right: AttrRef::new(ra, rat),
                };
                assert_eq!(
                    CompiledPredicate::compile(&p).eval(&joined),
                    eval_predicate(&p, &joined),
                    "diverged on {p}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 500);
}

/// End-to-end engine results (projected, rendered to strings) must be
/// byte-identical to what the legacy representation produced for the
/// paper's running example.
#[test]
fn projected_results_render_identically() {
    let src = "SELECT S1.snowHeight, S2.snowHeight \
               FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
               WHERE S1.snowHeight > S2.snowHeight";
    let q = parse_query(src).unwrap();
    let mut engine = StreamEngine::new();
    engine.add_query(QueryId(1), q.clone());
    engine.push(t("Station1", 0, &[("snowHeight", 30), ("windSpeed", 5)]));
    let out = engine.push(t("Station2", 60_000, &[("snowHeight", 10)]));
    assert_eq!(out.len(), 1);
    let projected = out[0].project(&q.projection, "res");
    let rendered: Vec<String> = projected.iter().map(|(k, v)| format!("{k}={v}")).collect();
    assert_eq!(
        rendered,
        vec!["S1.timestamp=0", "S1.snowHeight=30", "S2.timestamp=60000", "S2.snowHeight=10",]
    );
    // The non-projected attribute is gone; display text matches the legacy
    // `stream@ts{k=v, ...}` format.
    assert_eq!(projected.get("S1.windSpeed"), None);
    assert_eq!(
        projected.to_string(),
        "res@60000{S1.timestamp=0, S1.snowHeight=30, S2.timestamp=60000, S2.snowHeight=10}"
    );
}

/// A stored attribute literally named `timestamp` collides with the
/// synthetic `alias.timestamp` column; flatten and projection must shadow
/// it (first occurrence wins, like the legacy string-keyed layout), never
/// panic.
#[test]
fn stored_timestamp_attribute_is_shadowed_not_fatal() {
    let joined = JoinedTuple::new(vec![(
        "A".into(),
        Arc::new(Tuple::new("R", 5).with("timestamp", Scalar::Int(99)).with("v", Scalar::Int(1))),
    )]);
    let flat = joined.flatten("res");
    // The synthetic event-time column wins; the stored attr is shadowed.
    assert_eq!(flat.get("A.timestamp"), Some(&Scalar::Int(5)));
    assert_eq!(flat.get("A.v"), Some(&Scalar::Int(1)));
    assert_eq!(flat.len(), 2);

    let q = parse_query("SELECT * FROM R [Now] A").unwrap();
    let mut engine = StreamEngine::new();
    engine.add_query(QueryId(1), q.clone());
    let out = engine
        .push(Tuple::new("R", 5).with("timestamp", Scalar::Int(99)).with("v", Scalar::Int(1)));
    assert_eq!(out.len(), 1);
    let projected = out[0].project(&q.projection, "res");
    assert_eq!(projected.get("A.timestamp"), Some(&Scalar::Int(5)));
    assert_eq!(projected.get("A.v"), Some(&Scalar::Int(1)));
}

/// On Pub/Sub messages, the `timestamp` pseudo-attribute resolves to the
/// header for both the compiled and the string-based evaluator — they
/// must agree (and agree with the engine's tuple views).
#[test]
fn message_timestamp_filters_agree_between_evaluators() {
    use cosmos::pubsub::Message;
    let msg = Message::new("R", 200).with("v", Scalar::Int(7));
    for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
        for c in [100i64, 200, 300] {
            let p =
                Predicate::Cmp { attr: AttrRef::new("R", "timestamp"), op, value: Scalar::Int(c) };
            let compiled = CompiledPredicate::compile(&p).eval(&msg);
            let reference = eval_predicate(&p, &msg);
            assert_eq!(compiled, reference, "diverged on {p}");
            assert_eq!(compiled, Some(op.eval_f64(200.0, c as f64)));
        }
    }
}

/// The schema layer itself: same shape ⇒ same interned schema; symbol
/// round-trips hold across the facade crate boundary.
#[test]
fn schema_identity_across_crate_boundary() {
    let a = t("R", 0, &[("k", 1), ("v", 2)]);
    let b = t("R", 9, &[("k", 5), ("v", 6)]);
    assert!(Arc::ptr_eq(a.schema(), b.schema()));
    assert_eq!(a.schema().id(), b.schema().id());
    let k = Symbol::intern("k");
    assert_eq!(a.schema().index_of(k), Some(0));
    assert_eq!(Schema::intern(&[k]).attrs(), &[k]);
}
