//! End-to-end integration: environment construction → workload generation
//! → hierarchical distribution → online insertion → adaptation, with the
//! measured Pub/Sub communication cost and the load constraint checked at
//! every stage.

use cosmos::baselines::{naive_assignment, random_assignment};
use cosmos::workload::{PaperParams, Simulation};

fn distributed_sim(n: usize, seed: u64) -> Simulation {
    let mut sim = Simulation::build(PaperParams::tiny(), seed);
    let batch = sim.arrivals(n, seed + 1);
    let d = sim.distributor();
    let out = d.distribute(&batch, seed + 2);
    drop(d);
    sim.apply(out.assignment);
    sim
}

#[test]
fn every_query_lands_on_a_real_processor() {
    let sim = distributed_sim(120, 1);
    assert_eq!(sim.assignment.len(), 120);
    for q in &sim.specs {
        let p = sim.assignment.processor_of(q.id).expect("assigned");
        assert!(sim.dep.processors().contains(&p));
    }
}

#[test]
fn distribution_is_deterministic_across_runs() {
    let a = distributed_sim(100, 7);
    let b = distributed_sim(100, 7);
    for q in &a.specs {
        assert_eq!(
            a.assignment.processor_of(q.id),
            b.assignment.processor_of(q.id),
            "placement of {} differs between identical runs",
            q.id
        );
    }
}

#[test]
fn optimizer_beats_random_placement() {
    let sim = distributed_sim(150, 3);
    let random = random_assignment(&sim.specs, &sim.dep, 99);
    assert!(
        sim.comm_cost() < sim.comm_cost_of(&random),
        "hierarchical ({}) must beat random ({})",
        sim.comm_cost(),
        sim.comm_cost_of(&random)
    );
}

#[test]
fn load_constraint_holds_globally() {
    let sim = distributed_sim(200, 4);
    let loads = sim.loads();
    let total: f64 = loads.iter().sum();
    let limit = (1.0 + sim.params.alpha) * total / loads.len() as f64;
    for (i, l) in loads.iter().enumerate() {
        assert!(
            *l <= limit * 1.05 + 1e-9,
            "processor {i} exceeds the global load limit: {l} > {limit}"
        );
    }
}

#[test]
fn online_insertions_preserve_consistency() {
    let mut sim = distributed_sim(80, 5);
    for wave in 0..5 {
        let batch = sim.arrivals(20, 50 + wave);
        sim.insert_online(&batch);
    }
    assert_eq!(sim.assignment.len(), 180);
    assert_eq!(sim.specs.len(), 180);
    // All placements remain valid processors.
    for q in &sim.specs {
        assert!(sim.dep.processors().contains(&sim.assignment.processor_of(q.id).unwrap()));
    }
}

#[test]
fn adaptation_converges_to_a_quiet_fixpoint() {
    let mut sim = distributed_sim(100, 6);
    // Let the system settle.
    for round in 0..4 {
        sim.adapt_round(80 + round);
    }
    // A settled system should migrate (almost) nothing.
    let out = sim.adapt_round(99);
    assert!(
        out.migrations <= sim.specs.len() / 20,
        "settled system migrated {} of {} queries",
        out.migrations,
        sim.specs.len()
    );
}

#[test]
fn adaptation_recovers_from_random_start() {
    let mut sim = distributed_sim(150, 8);
    let good_cost = sim.comm_cost();
    let random = random_assignment(&sim.specs, &sim.dep, 77);
    sim.apply(random);
    let bad_cost = sim.comm_cost();
    let bad_stddev = sim.load_stddev();
    assert!(bad_cost > good_cost);
    for round in 0..6 {
        sim.adapt_round(300 + round);
    }
    // The paper's objective is communication cost *subject to load
    // balance* (eqn 3.1): adaptation must restore balance without
    // materially worsening cost. A strict cost decrease is not guaranteed
    // from an arbitrary start — rebalancing trades a sliver of WEC for
    // large deviation reductions.
    let recovered = sim.comm_cost();
    assert!(
        recovered < bad_cost * 1.02,
        "adaptation must not materially worsen cost: {bad_cost} -> {recovered}"
    );
    assert!(
        sim.load_stddev() < bad_stddev * 0.5,
        "adaptation should rebalance load: stddev {bad_stddev} -> {}",
        sim.load_stddev()
    );
}

#[test]
fn naive_pays_more_for_source_delivery() {
    let sim = distributed_sim(150, 9);
    let naive = naive_assignment(&sim.specs);
    let model = cosmos::pubsub::TrafficModel::new(&sim.dep, &sim.table);
    let ours = model.source_delivery_cost(&sim.assignment.interests(
        &sim.specs,
        sim.dep.processors(),
        sim.table.len(),
    ));
    let theirs = model.source_delivery_cost(&naive.interests(
        &sim.specs,
        sim.dep.processors(),
        sim.table.len(),
    ));
    assert!(ours < theirs, "sharing-aware placement must reduce source traffic");
}
