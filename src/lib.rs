//! COSMOS — a middleware for massive query optimization in large-scale
//! distributed stream systems.
//!
//! This is the façade crate of the reproduction of Zhou, Aberer, and Tan,
//! *"Toward Massive Query Optimization in Large-Scale Distributed Stream
//! Systems"* (Middleware 2008). It re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`util`] | `cosmos-util` | interest bit vectors, Zipf, statistics, diffusion solver |
//! | [`net`] | `cosmos-net` | transit-stub topologies, shortest paths, deployments |
//! | [`query`] | `cosmos-query` | CQL subset, predicates, containment & merging |
//! | [`pubsub`] | `cosmos-pubsub` | content-based Pub/Sub, covering, traffic model |
//! | [`engine`] | `cosmos-engine` | continuous-query engine, shared execution |
//! | [`core`] | `cosmos-core` | graphs, coarsening, mapping, hierarchy, online, adaptive |
//! | [`baselines`] | `cosmos-baselines` | Naive/Random and operator placement |
//! | [`workload`] | `cosmos-workload` | paper workloads, sensors, simulation driver |
//!
//! # Quickstart
//!
//! ```
//! use cosmos::workload::{PaperParams, Simulation};
//!
//! // Build the paper's environment at 5% scale and distribute 200 queries.
//! let mut sim = Simulation::build(PaperParams::scaled(0.05), 42);
//! let batch = sim.arrivals(200, 1);
//! let distributor = sim.distributor();
//! let outcome = distributor.distribute(&batch, 2);
//! drop(distributor);
//! sim.apply(outcome.assignment);
//! assert!(sim.comm_cost() > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench/`
//! for the binaries regenerating every table and figure of the paper.

pub use cosmos_baselines as baselines;
pub use cosmos_core as core;
pub use cosmos_engine as engine;
pub use cosmos_net as net;
pub use cosmos_pubsub as pubsub;
pub use cosmos_query as query;
pub use cosmos_util as util;
pub use cosmos_workload as workload;
