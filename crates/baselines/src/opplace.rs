//! The operator-placement baseline of the prototype study (§4.2).
//!
//! Two phases, mirroring the classical architecture the paper argues
//! against:
//!
//! 1. **Global operator graph** ("an algorithm similar to \[12\]" —
//!    NiagaraCQ): per-stream scans, selection operators shared between
//!    queries with identical predicate signatures, join operators shared
//!    between queries with identical inputs and join predicates, one output
//!    operator per query pinned at its proxy.
//! 2. **Network-aware placement** ("the algorithm proposed in \[3\]"):
//!    scans pinned at their sources, outputs at their proxies; free
//!    operators placed greedily at the candidate node minimizing
//!    `Σ rate × latency` to their placed neighbors, then improved by local
//!    relocation sweeps until fixpoint (or the sweep budget runs out).
//!
//! Inter-operator traffic is *unicast per edge* — the tightly-coupled
//! client-server transfer model whose lack of sharing motivates COSMOS.

use cosmos_net::{Deployment, NodeId};
use cosmos_query::predicate::selectivity_uniform;
use cosmos_query::{CmpOp, Predicate, Query, QueryId, Scalar};
use std::collections::HashMap;

/// An operator in the shared global plan.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Reads a source stream; pinned at the stream's source node.
    Scan {
        /// Stream name.
        stream: String,
    },
    /// A shared selection with a normalized predicate signature.
    Select {
        /// Stream the selection filters.
        stream: String,
        /// Normalized predicate signature (sorted rendering).
        signature: String,
    },
    /// A shared (binary) join.
    Join {
        /// Normalized join signature including both input signatures.
        signature: String,
    },
    /// Delivers one query's results; pinned at the query's proxy.
    Output {
        /// The consuming query.
        query: QueryId,
    },
}

/// One operator with its output rate estimate.
#[derive(Debug, Clone)]
pub struct Operator {
    /// What the operator does.
    pub kind: OpKind,
    /// Node the operator must run on, if constrained.
    pub pinned: Option<NodeId>,
    /// Estimated output rate (bytes/s).
    pub out_rate: f64,
}

/// The shared global operator graph.
#[derive(Debug, Clone, Default)]
pub struct OperatorGraph {
    /// Operators, topologically ordered (inputs precede consumers).
    pub ops: Vec<Operator>,
    /// Data-flow edges `(producer, consumer, rate)`.
    pub edges: Vec<(usize, usize, f64)>,
}

/// Configuration for rate estimation.
#[derive(Debug, Clone, Copy)]
pub struct RateModel {
    /// Assumed uniform attribute range for selectivity estimation.
    pub attr_lo: f64,
    /// Upper end of the attribute range.
    pub attr_hi: f64,
    /// Join selectivity coefficient: `out = coeff × min(in_l, in_r)`.
    pub join_coeff: f64,
}

impl Default for RateModel {
    fn default() -> Self {
        Self { attr_lo: 0.0, attr_hi: 100.0, join_coeff: 0.5 }
    }
}

fn predicate_signature(preds: &[&Predicate]) -> String {
    let mut parts: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
    parts.sort();
    parts.join(" AND ")
}

fn selection_selectivity(preds: &[&Predicate], model: &RateModel) -> f64 {
    preds
        .iter()
        .map(|p| match p {
            Predicate::Cmp { op, value, .. } => {
                let c = value.as_f64().unwrap_or(model.attr_lo);
                selectivity_uniform(*op, c, model.attr_lo, model.attr_hi)
            }
            _ => 1.0,
        })
        .product()
}

impl OperatorGraph {
    /// Builds the shared plan for a set of parsed queries.
    ///
    /// `stream_rate` gives the input rate per stream name; `stream_source`
    /// its origin node. Queries may have 1..n relations; joins compose
    /// left-deep in `FROM` order.
    ///
    /// # Panics
    ///
    /// Panics if a query references a stream missing from either map.
    pub fn build(
        queries: &[(QueryId, Query, NodeId)],
        stream_rate: &HashMap<String, f64>,
        stream_source: &HashMap<String, NodeId>,
        model: &RateModel,
    ) -> Self {
        let mut graph = OperatorGraph::default();
        let mut scan_of: HashMap<String, usize> = HashMap::new();
        let mut select_of: HashMap<(String, String), usize> = HashMap::new();
        let mut join_of: HashMap<String, usize> = HashMap::new();

        for (qid, query, proxy) in queries {
            // Per-relation chain: scan → (shared) select.
            let mut rel_tops: Vec<usize> = Vec::new();
            for rel in &query.relations {
                let rate = *stream_rate
                    .get(&rel.stream)
                    .unwrap_or_else(|| panic!("unknown stream {}", rel.stream));
                let source = *stream_source
                    .get(&rel.stream)
                    .unwrap_or_else(|| panic!("unknown stream {}", rel.stream));
                let scan = *scan_of.entry(rel.stream.clone()).or_insert_with(|| {
                    graph.ops.push(Operator {
                        kind: OpKind::Scan { stream: rel.stream.clone() },
                        pinned: Some(source),
                        out_rate: rate,
                    });
                    graph.ops.len() - 1
                });
                let preds = query.selection_predicates_for(&rel.alias);
                let top = if preds.is_empty() {
                    scan
                } else {
                    let sig = predicate_signature(&preds);
                    let key = (rel.stream.clone(), sig.clone());
                    *select_of.entry(key).or_insert_with(|| {
                        let sel = selection_selectivity(&preds, model);
                        let out_rate = rate * sel;
                        graph.ops.push(Operator {
                            kind: OpKind::Select { stream: rel.stream.clone(), signature: sig },
                            pinned: None,
                            out_rate,
                        });
                        let idx = graph.ops.len() - 1;
                        graph.edges.push((scan, idx, rate));
                        idx
                    })
                };
                rel_tops.push(top);
            }

            // Left-deep join chain, shared by signature.
            let join_sig = predicate_signature(&query.join_predicates().collect::<Vec<_>>());
            let mut top = rel_tops[0];
            for &right in &rel_tops[1..] {
                let (a, b) = if top <= right { (top, right) } else { (right, top) };
                let signature = format!("{a}|{b}|{join_sig}");
                top = *join_of.entry(signature.clone()).or_insert_with(|| {
                    let rl = graph.ops[a].out_rate;
                    let rr = graph.ops[b].out_rate;
                    let out_rate = model.join_coeff * rl.min(rr);
                    graph.ops.push(Operator {
                        kind: OpKind::Join { signature },
                        pinned: None,
                        out_rate,
                    });
                    let idx = graph.ops.len() - 1;
                    graph.edges.push((a, idx, rl));
                    graph.edges.push((b, idx, rr));
                    idx
                });
            }

            // Per-query output pinned at the proxy.
            graph.ops.push(Operator {
                kind: OpKind::Output { query: *qid },
                pinned: Some(*proxy),
                out_rate: graph.ops[top].out_rate,
            });
            let out = graph.ops.len() - 1;
            let rate = graph.ops[top].out_rate;
            graph.edges.push((top, out, rate));
        }
        graph
    }

    /// Number of operators of each kind: `(scans, selects, joins, outputs)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op.kind {
                OpKind::Scan { .. } => c.0 += 1,
                OpKind::Select { .. } => c.1 += 1,
                OpKind::Join { .. } => c.2 += 1,
                OpKind::Output { .. } => c.3 += 1,
            }
        }
        c
    }
}

/// The network-aware placement algorithm.
#[derive(Debug, Clone, Copy)]
pub struct OperatorPlacement {
    /// Local-improvement sweeps after the greedy pass.
    pub sweeps: usize,
}

impl Default for OperatorPlacement {
    fn default() -> Self {
        Self { sweeps: 4 }
    }
}

/// A placed operator graph with its communication cost.
#[derive(Debug, Clone)]
pub struct PlacedGraph {
    /// Node hosting each operator.
    pub location: Vec<NodeId>,
    /// `Σ rate × latency` over data-flow edges (unicast per edge).
    pub cost: f64,
}

impl OperatorPlacement {
    /// Places `graph` onto `candidates` (the processors), respecting pins.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty while free operators exist.
    pub fn place(
        &self,
        graph: &OperatorGraph,
        dep: &Deployment,
        candidates: &[NodeId],
    ) -> PlacedGraph {
        let n = graph.ops.len();
        let mut location: Vec<Option<NodeId>> = graph.ops.iter().map(|o| o.pinned).collect();
        // Adjacency for cost evaluation.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b, r) in &graph.edges {
            adj[a].push((b, r));
            adj[b].push((a, r));
        }
        let cost_of = |location: &[Option<NodeId>], op: usize, at: NodeId| -> f64 {
            adj[op]
                .iter()
                .filter_map(|&(o, r)| location[o].map(|loc| r * dep.distance(at, loc)))
                .sum()
        };
        // Greedy pass in topological (construction) order.
        for op in 0..n {
            if location[op].is_some() {
                continue;
            }
            assert!(!candidates.is_empty(), "no candidate nodes for free operators");
            let best = candidates
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    cost_of(&location, op, a)
                        .partial_cmp(&cost_of(&location, op, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("candidates nonempty");
            location[op] = Some(best);
        }
        // Local improvement sweeps.
        for _ in 0..self.sweeps {
            let mut moved = false;
            for op in 0..n {
                if graph.ops[op].pinned.is_some() {
                    continue;
                }
                let cur = location[op].expect("placed in greedy pass");
                let cur_cost = cost_of(&location, op, cur);
                let best = candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        cost_of(&location, op, a)
                            .partial_cmp(&cost_of(&location, op, b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("candidates nonempty");
                if cost_of(&location, op, best) < cur_cost - 1e-9 {
                    location[op] = Some(best);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        let location: Vec<NodeId> =
            location.into_iter().map(|l| l.expect("all operators placed")).collect();
        let cost =
            graph.edges.iter().map(|&(a, b, r)| r * dep.distance(location[a], location[b])).sum();
        PlacedGraph { location, cost }
    }
}

/// Convenience: a selection predicate for tests and generators.
pub fn sel_pred(alias: &str, attr: &str, op: CmpOp, v: i64) -> Predicate {
    Predicate::Cmp { attr: cosmos_query::AttrRef::new(alias, attr), op, value: Scalar::Int(v) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::{Topology, TransitStubConfig};
    use cosmos_query::parse_query;

    fn line_deployment() -> Deployment {
        // src0 -1- p1 -1- p2 -1- p3 (proxy side)
        let mut t = Topology::new(4);
        for i in 0..3u32 {
            t.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        Deployment::with_roles(t, vec![NodeId(0)], vec![NodeId(1), NodeId(2), NodeId(3)])
    }

    fn maps() -> (HashMap<String, f64>, HashMap<String, NodeId>) {
        let rates = HashMap::from([("R".to_string(), 100.0), ("S".to_string(), 100.0)]);
        let sources = HashMap::from([("R".to_string(), NodeId(0)), ("S".to_string(), NodeId(0))]);
        (rates, sources)
    }

    #[test]
    fn identical_selections_are_shared() {
        let (rates, sources) = maps();
        let q = |i: u64| {
            (QueryId(i), parse_query("SELECT * FROM R [Now] WHERE R.a > 50").unwrap(), NodeId(3))
        };
        let graph =
            OperatorGraph::build(&[q(1), q(2), q(3)], &rates, &sources, &RateModel::default());
        let (scans, selects, joins, outputs) = graph.kind_counts();
        assert_eq!(scans, 1);
        assert_eq!(selects, 1, "equal predicates must share one selection");
        assert_eq!(joins, 0);
        assert_eq!(outputs, 3);
    }

    #[test]
    fn different_selections_are_not_shared() {
        let (rates, sources) = maps();
        let queries = vec![
            (QueryId(1), parse_query("SELECT * FROM R [Now] WHERE R.a > 50").unwrap(), NodeId(3)),
            (QueryId(2), parse_query("SELECT * FROM R [Now] WHERE R.a > 60").unwrap(), NodeId(3)),
        ];
        let graph = OperatorGraph::build(&queries, &rates, &sources, &RateModel::default());
        assert_eq!(graph.kind_counts().1, 2);
    }

    #[test]
    fn identical_joins_are_shared() {
        let (rates, sources) = maps();
        let q = |i: u64| {
            (
                QueryId(i),
                parse_query("SELECT * FROM R [Now], S [Now] WHERE R.k = S.k").unwrap(),
                NodeId(3),
            )
        };
        let graph = OperatorGraph::build(&[q(1), q(2)], &rates, &sources, &RateModel::default());
        assert_eq!(graph.kind_counts().2, 1, "identical joins must be shared");
    }

    #[test]
    fn selective_filter_reduces_downstream_rate() {
        let (rates, sources) = maps();
        let queries = vec![(
            QueryId(1),
            parse_query("SELECT * FROM R [Now] WHERE R.a > 90").unwrap(),
            NodeId(3),
        )];
        let graph = OperatorGraph::build(&queries, &rates, &sources, &RateModel::default());
        let select = graph.ops.iter().find(|o| matches!(o.kind, OpKind::Select { .. })).unwrap();
        assert!((select.out_rate - 10.0).abs() < 1e-9, "90% selectivity filter");
    }

    #[test]
    fn placement_respects_pins_and_pushes_filters_to_source() {
        let dep = line_deployment();
        let (rates, sources) = maps();
        let queries = vec![(
            QueryId(1),
            parse_query("SELECT * FROM R [Now] WHERE R.a > 90").unwrap(),
            NodeId(3),
        )];
        let graph = OperatorGraph::build(&queries, &rates, &sources, &RateModel::default());
        let placed = OperatorPlacement::default().place(&graph, &dep, dep.processors());
        for (i, op) in graph.ops.iter().enumerate() {
            if let Some(pin) = op.pinned {
                assert_eq!(placed.location[i], pin);
            }
        }
        // The selective filter should sit next to the source (node 1), not
        // at the proxy: scan→select edge carries 100 B/s, select→output 10.
        let select_idx =
            graph.ops.iter().position(|o| matches!(o.kind, OpKind::Select { .. })).unwrap();
        assert_eq!(placed.location[select_idx], NodeId(1), "early filtering expected");
        // Cost: scan(0)→select(1): 100×1; select(1)→output(3): 10×2.
        assert!((placed.cost - 120.0).abs() < 1e-9, "cost {}", placed.cost);
    }

    #[test]
    fn sweeps_never_increase_cost() {
        let topo = TransitStubConfig::small().generate(3);
        let dep = Deployment::assign(topo, 4, 8, 3);
        let mut rates = HashMap::new();
        let mut sources = HashMap::new();
        for (i, &s) in dep.sources().iter().enumerate() {
            rates.insert(format!("S{i}"), 50.0 + i as f64);
            sources.insert(format!("S{i}"), s);
        }
        let queries: Vec<(QueryId, Query, NodeId)> = (0..12)
            .map(|i| {
                let a = i % 4;
                let b = (i + 1) % 4;
                let q = parse_query(&format!(
                    "SELECT * FROM S{a} [Now] X, S{b} [Now] Y WHERE X.ts = Y.ts AND X.v > {}",
                    (i * 7) % 100
                ))
                .unwrap();
                (QueryId(i as u64), q, dep.processors()[i as usize % 8])
            })
            .collect();
        let graph = OperatorGraph::build(&queries, &rates, &sources, &RateModel::default());
        let no_sweeps = OperatorPlacement { sweeps: 0 }.place(&graph, &dep, dep.processors());
        let swept = OperatorPlacement { sweeps: 6 }.place(&graph, &dep, dep.processors());
        assert!(swept.cost <= no_sweeps.cost + 1e-9);
    }
}
