//! Baseline algorithms COSMOS is evaluated against.
//!
//! The simulation study (§4.1) compares against:
//!
//! - **Naive** — "allocate the queries to their local processors" (their
//!   proxies);
//! - **Random** — "randomly allocate the new queries without considering
//!   their interest";
//! - **Greedy** / **Centralized** — provided by
//!   [`cosmos_core::distribute::Distributor`] (they share Algorithm 2's
//!   machinery).
//!
//! The prototype study (§4.2) compares against the classical **operator
//! placement** architecture: a NiagaraCQ-style globally *shared operator
//! graph* (ref.\[12\]) placed with a network-aware algorithm in the spirit of
//! Ahmad et al. (ref.\[3\]). [`opplace`] implements both steps from scratch.

pub mod opplace;
pub mod simple;

pub use opplace::{OperatorGraph, OperatorPlacement, PlacedGraph};
pub use simple::{naive_assignment, random_assignment};
