//! Trivial distribution baselines: Naive (proxy-local) and Random.

use cosmos_core::spec::{Assignment, QuerySpec};
use cosmos_net::Deployment;
use cosmos_util::rng::rng_for;
use rand::Rng;

/// The paper's **Naive** baseline: every query runs at its proxy. "Naive
/// performs the worst because it cannot identify the data interest of the
/// queries and optimize their locations."
pub fn naive_assignment(specs: &[QuerySpec]) -> Assignment {
    specs.iter().map(|q| (q.id, q.proxy)).collect()
}

/// The paper's **Random** baseline (Figure 8): uniformly random processor
/// per query, interest-oblivious.
pub fn random_assignment(specs: &[QuerySpec], dep: &Deployment, seed: u64) -> Assignment {
    let mut rng = rng_for(seed, "random-assignment");
    let procs = dep.processors();
    specs.iter().map(|q| (q.id, procs[rng.gen_range(0..procs.len())])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::TransitStubConfig;
    use cosmos_query::QueryId;
    use cosmos_util::InterestSet;

    fn fixture() -> (Deployment, Vec<QuerySpec>) {
        let topo = TransitStubConfig::small().generate(1);
        let dep = Deployment::assign(topo, 3, 6, 1);
        let specs: Vec<QuerySpec> = (0..20)
            .map(|i| QuerySpec {
                id: QueryId(i),
                interest: InterestSet::from_indices(50, [i as usize % 50]),
                load: 1.0,
                proxy: dep.processors()[i as usize % 6],
                result_rate: 1.0,
                state_size: 1.0,
            })
            .collect();
        (dep, specs)
    }

    #[test]
    fn naive_places_at_proxy() {
        let (_, specs) = fixture();
        let a = naive_assignment(&specs);
        for q in &specs {
            assert_eq!(a.processor_of(q.id), Some(q.proxy));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_valid() {
        let (dep, specs) = fixture();
        let a = random_assignment(&specs, &dep, 7);
        let b = random_assignment(&specs, &dep, 7);
        let c = random_assignment(&specs, &dep, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for q in &specs {
            assert!(dep.processors().contains(&a.processor_of(q.id).unwrap()));
        }
    }
}
