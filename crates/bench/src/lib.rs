//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (`table2`, `fig6` … `fig11`) that prints the same rows or
//! series the paper plots and appends a machine-readable JSON record under
//! `results/`. Common command-line handling lives here:
//!
//! ```text
//! cargo run --release -p cosmos-bench --bin fig6 -- [--scale 0.1] [--seed 42] [--quick]
//! ```
//!
//! `--scale` scales the paper's dimensions (default 0.1; `1.0` = the full
//! 4096-node / 20 000-substream / 60 000-query setup — hours of CPU);
//! `--quick` is shorthand for `--scale 0.04` for smoke runs.

use std::fs;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Scale factor in (0, 1].
    pub scale: f64,
    /// Root seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `--scale`, `--seed`, `--quick` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Self {
        let mut scale = 0.1;
        let mut seed = 42;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a number in (0, 1]"));
                }
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--quick" => scale = 0.04,
                "--help" | "-h" => {
                    eprintln!("usage: [--scale F] [--seed N] [--quick]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
            i += 1;
        }
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Self { scale, seed }
    }
}

/// Writes a JSON result record to `results/<name>.json` (relative to the
/// workspace root when run via cargo).
pub fn write_result(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints a header banner for a figure binary.
pub fn banner(figure: &str, what: &str, args: &BenchArgs) {
    println!("=== {figure}: {what}");
    println!("    scale {} seed {}  (paper scale = 1.0)", args.scale, args.seed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        // Can't touch process args in a test; just exercise the validators.
        let a = BenchArgs { scale: 0.5, seed: 1 };
        assert!(a.scale > 0.0);
    }

    #[test]
    fn write_result_smoke() {
        write_result("selftest", &serde_json::json!({"ok": true}));
    }
}
