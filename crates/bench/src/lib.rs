//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (`table2`, `fig6` … `fig11`) that prints the same rows or
//! series the paper plots and appends a machine-readable JSON record under
//! `results/`. Common command-line handling lives here:
//!
//! ```text
//! cargo run --release -p cosmos-bench --bin fig6 -- [--scale 0.1] [--seed 42] [--quick]
//! ```
//!
//! `--scale` scales the paper's dimensions (default 0.1; `1.0` = the full
//! 4096-node / 20 000-substream / 60 000-query setup — hours of CPU);
//! `--quick` is shorthand for `--scale 0.04` for smoke runs.

use cosmos_net::{NodeId, TransitStubConfig};
use cosmos_pubsub::broker::BrokerNetwork;
use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_query::{parse_query, Query, QueryId, Scalar};
use std::fs;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Scale factor in (0, 1].
    pub scale: f64,
    /// Root seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `--scale`, `--seed`, `--quick` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Self {
        let mut scale = 0.1;
        let mut seed = 42;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a number in (0, 1]"));
                }
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--quick" => scale = 0.04,
                "--help" | "-h" => {
                    eprintln!("usage: [--scale F] [--seed N] [--quick]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
            i += 1;
        }
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Self { scale, seed }
    }
}

/// Writes a JSON result record to `results/<name>.json` (relative to the
/// workspace root when run via cargo).
pub fn write_result(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints a header banner for a figure binary.
pub fn banner(figure: &str, what: &str, args: &BenchArgs) {
    println!("=== {figure}: {what}");
    println!("    scale {} seed {}  (paper scale = 1.0)", args.scale, args.seed);
}

/// Shared micro-benchmark fixtures, used by **both** the criterion bench
/// (`benches/micro.rs`) and the snapshot runner (`src/bin/bench_json.rs`)
/// so the two always measure the identical workload — a population tweak
/// applied to one cannot silently desynchronize the other.
pub mod fixtures {
    use super::*;

    /// The `i`-th subscription of [`broker_with_subs`]' population —
    /// exposed so the churn benchmarks can re-subscribe exactly the shape
    /// they remove, keeping the population in steady state.
    pub fn scaling_sub(i: u64) -> Subscription {
        Subscription::builder(NodeId(30 + (i % 30) as u32))
            .id(SubId(i))
            .stream(
                "R",
                StreamProjection::All,
                vec![cosmos_query::Predicate::Cmp {
                    attr: cosmos_query::AttrRef::new("R", "a"),
                    op: cosmos_query::CmpOp::Gt,
                    value: Scalar::Int((i % 40) as i64),
                }],
            )
            .build()
    }

    /// A 66-node transit-stub broker network with `n_subs` subscriptions
    /// spread over 30 subscriber nodes, thresholds cycling over 40
    /// distinct values — the scaling workload behind the
    /// sublinear-matching claim (~62% of subscriptions match
    /// [`scaling_message`]).
    pub fn broker_with_subs(n_subs: u64) -> BrokerNetwork {
        let topo = TransitStubConfig::small().generate(3);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        for i in 0..n_subs {
            net.subscribe(scaling_sub(i));
        }
        net
    }

    /// A link of the scaling topology suitable for fail/restore churn:
    /// the dissemination-tree edge directly above subscriber node 45,
    /// with its latency. Failing it re-routes (or partitions) only that
    /// subtree's subscribers — the typical single-link incident the
    /// incremental path should handle without touching the rest of the
    /// population.
    pub fn churn_link(net: &BrokerNetwork) -> (NodeId, NodeId, f64) {
        let tree = cosmos_net::ShortestPathTree::compute(net.topology(), NodeId(0));
        let leaf = NodeId(45);
        let parent = tree.parent(leaf).expect("subscriber node must be reachable");
        let lat = net.topology().edge_latency(leaf, parent).expect("tree edge exists");
        (leaf, parent, lat)
    }

    /// The probe message for [`broker_with_subs`].
    pub fn scaling_message() -> Message {
        Message::new("R", 0).with("a", Scalar::Int(25))
    }

    /// A broker of the scaling topology suitable for whole-node
    /// fail/restore churn: the non-subscriber node whose dissemination
    /// subtree contains the fewest (but at least one) subscriber nodes —
    /// the typical single-broker incident, re-homing one neighbourhood of
    /// subscribers while the rest of the population stands. Subscriber
    /// nodes are excluded because `fail_node` forgets a crashed broker's
    /// *local* subscriptions permanently, which would drain the population
    /// and break the benchmark's steady state; the stream source is
    /// excluded because crashing it silences the stream entirely.
    pub fn churn_node(net: &BrokerNetwork) -> NodeId {
        let topo = net.topology();
        let tree = cosmos_net::ShortestPathTree::compute(topo, NodeId(0));
        let mut best: Option<(usize, NodeId)> = None;
        for n in topo.nodes() {
            if n == NodeId(0) || (30..60).contains(&n.0) || topo.degree(n) == 0 {
                continue;
            }
            let Some(p) = tree.parent(n) else { continue };
            let Some(below) = tree.nodes_via_edge(p, n) else { continue };
            let subs = below.iter().filter(|m| (30..60).contains(&m.0)).count();
            if subs > 0 && best.is_none_or(|(s, _)| subs < s) {
                best = Some((subs, n));
            }
        }
        best.expect("a transit node with a subscriber subtree must exist").1
    }

    /// [`broker_with_subs`] wrapped in the reliable-delivery plane over a
    /// seeded pure-drop fault schedule (duplicates and reorders off) —
    /// the workload behind `broker/publish-lossy-*`. `drop = 0.0` is the
    /// clean twin: same machinery, no retransmissions.
    pub fn lossy_broker(n_subs: u64, drop: f64) -> cosmos_pubsub::LossyNetwork {
        let cfg =
            cosmos_pubsub::FaultConfig { drop, duplicate: 0.0, reorder: 0.0, max_extra_ticks: 0 };
        cosmos_pubsub::LossyNetwork::new(
            broker_with_subs(n_subs),
            cosmos_pubsub::FaultPlan::new(7, cfg),
        )
    }

    /// The `i`-th subscription of [`broker_with_distinct_subs`]'
    /// population: a point constraint `a = i`, so no pair covers another
    /// and covering merges never collapse the tables — the
    /// covering-sparse population shape that makes subscription *arrival*
    /// expensive (every install probes tables and forwarded-up sets that
    /// grow with the population).
    pub fn arrival_sub(i: u64) -> Subscription {
        Subscription::builder(NodeId(30 + (i % 30) as u32))
            .id(SubId(i))
            .stream(
                "R",
                StreamProjection::All,
                vec![cosmos_query::Predicate::Cmp {
                    attr: cosmos_query::AttrRef::new("R", "a"),
                    op: cosmos_query::CmpOp::Eq,
                    value: Scalar::Int(i as i64),
                }],
            )
            .build()
    }

    /// A 66-node transit-stub broker network holding `n_subs` pairwise
    /// non-covering subscriptions ([`arrival_sub`]) — the standing
    /// population behind the `broker/subscribe-*` arrival benchmarks.
    /// Both the covering-indexed path and its `-linear` twin measure
    /// against this same state (the two installation modes produce
    /// identical routing state, so the twin flips the mode after
    /// building; rebuilding 5000 subscriptions through the linear scans
    /// would cost minutes for no fidelity gain).
    pub fn broker_with_distinct_subs(n_subs: u64) -> BrokerNetwork {
        let topo = TransitStubConfig::small().generate(3);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        for i in 0..n_subs {
            net.subscribe(arrival_sub(i));
        }
        net
    }

    /// [`broker_with_distinct_subs`] at populations where one-at-a-time
    /// installation dominates fixture build time: the same pairwise
    /// non-covering population, bulk-loaded through
    /// [`BrokerNetwork::subscribe_batch`] (serial-equivalent standing
    /// state — the batch path shares one skeleton per subscription and
    /// bulk-builds backfilled covering buckets, but installs in the same
    /// order with the same outcomes).
    pub fn broker_with_distinct_subs_bulk(n_subs: u64) -> BrokerNetwork {
        let topo = TransitStubConfig::small().generate(3);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe_batch((0..n_subs).map(arrival_sub).collect());
        net
    }

    /// The `len`-message same-stream round behind
    /// `broker/publish-batch-64`: telemetry-shaped records (one routed
    /// attribute `a` plus fifteen payload attributes) whose point probes
    /// cycle through the distinct population of size `pop`, so each
    /// message matches ~1 subscription and fixed per-hop overheads
    /// dominate — the regime batched ingestion amortizes (one routing
    /// descent, one schema resolution, one counter epoch, and one
    /// match-scratch reuse per batch instead of one per message).
    pub fn batch_round(len: u64, pop: u64) -> Vec<Message> {
        let payload = ["b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p"];
        (0..len)
            .map(|k| {
                let mut m =
                    Message::new("R", k as i64).with("a", Scalar::Int((k * 79 % pop) as i64));
                for name in payload {
                    m = m.with(name, Scalar::Int(k as i64));
                }
                m
            })
            .collect()
    }

    /// A *broad* population: ≥90% of subscriptions match
    /// [`broad_message`] (thresholds cycle over 0..10 against `a = 9`),
    /// and the projections cycle over 8 distinct shapes — the
    /// delivery-volume-bound workload the projection-class dedup targets.
    /// The linear twin pays per-match clone + projection; the indexed
    /// path pays one projection per class plus a refcount bump per
    /// delivery.
    pub fn broker_with_broad_subs(n_subs: u64) -> BrokerNetwork {
        let topo = TransitStubConfig::small().generate(3);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        let projections: [StreamProjection; 8] = [
            StreamProjection::All,
            StreamProjection::attrs(["a"]),
            StreamProjection::attrs(["a", "b"]),
            StreamProjection::attrs(["a", "b", "c"]),
            StreamProjection::attrs(["b", "d"]),
            StreamProjection::attrs(["c", "d"]),
            StreamProjection::attrs(["a", "d"]),
            StreamProjection::attrs(["b", "c", "d"]),
        ];
        for i in 0..n_subs {
            net.subscribe(
                Subscription::builder(NodeId(30 + (i % 30) as u32))
                    .id(SubId(i))
                    .stream(
                        "R",
                        projections[(i % 8) as usize].clone(),
                        vec![cosmos_query::Predicate::Cmp {
                            attr: cosmos_query::AttrRef::new("R", "a"),
                            op: cosmos_query::CmpOp::Gt,
                            value: Scalar::Int((i % 10) as i64 - 1),
                        }],
                    )
                    .build(),
            );
        }
        net
    }

    /// The probe message for [`broker_with_broad_subs`]: every broad
    /// filter resolves and passes.
    pub fn broad_message() -> Message {
        Message::new("R", 0)
            .with("a", Scalar::Int(9))
            .with("b", Scalar::Int(1))
            .with("c", Scalar::Int(2))
            .with("d", Scalar::Int(3))
    }

    /// A [`StreamEngine`](cosmos_engine::exec::StreamEngine) running one
    /// long-window join with `n_tuples` buffered across its windows —
    /// the standing state behind `engine/checkpoint-*`. Keys pair off
    /// (`k = i / 2`), so windows fill linearly without a quadratic join
    /// blow-up; checkpoint extract/restore cost then scales with the
    /// buffered population. `checkpointed_engine(0)` is the empty twin
    /// with the identical query set, the only restore target
    /// [`StreamEngine::restore`](cosmos_engine::exec::StreamEngine::restore)
    /// accepts.
    pub fn checkpointed_engine(n_tuples: u64) -> cosmos_engine::exec::StreamEngine {
        use cosmos_engine::tuple::Tuple;
        let mut engine = cosmos_engine::exec::StreamEngine::new();
        engine.add_query(
            QueryId(1),
            parse_query(
                "SELECT * FROM R [Range 3600 Seconds], S [Range 3600 Seconds] WHERE R.k = S.k",
            )
            .unwrap(),
        );
        for i in 0..n_tuples {
            let stream = if i % 2 == 0 { "R" } else { "S" };
            engine.push(
                Tuple::new(stream, i as i64)
                    .with("k", Scalar::Int((i / 2) as i64))
                    .with("v", Scalar::Int(1)),
            );
        }
        engine
    }

    /// [`lossy_broker`]'s clean twin hosting a checkpointed engine at the
    /// churn node: `window` records checkpointed into the engine plus a
    /// `suffix` of unacked records retained upstream — the standing state
    /// behind `broker/recover-engine-*`. Each crash/restore cycle then
    /// tears the host out of the `n_subs`-subscription overlay, re-homes
    /// the routing, restores the checkpoint into a rebuilt engine, and
    /// replays (verify-mode) the retained suffix. The checkpoint interval
    /// is effectively infinite so the simulated-time schedule never
    /// fires: every cycle measures exactly one explicit-checkpoint
    /// recovery, nothing more.
    pub fn recovery_host(
        n_subs: u64,
        window: u64,
        suffix: u64,
    ) -> (cosmos_pubsub::RecoveryNetwork, NodeId) {
        let lossy = lossy_broker(n_subs, 0.0);
        let host = churn_node(lossy.network());
        let mut r = cosmos_pubsub::RecoveryNetwork::new(lossy, u64::MAX / 2);
        r.host_engine(
            host,
            vec![(
                QueryId(1),
                parse_query("SELECT R.a FROM R [Range 3600 Seconds] WHERE R.a > 0").unwrap(),
            )],
        );
        let mut ts = 0i64;
        let feed = |r: &mut cosmos_pubsub::RecoveryNetwork, n: u64, ts: &mut i64| {
            for _ in 0..n {
                *ts += 1;
                assert!(r.publish(Message::new("R", *ts).with("a", Scalar::Int(25))));
            }
            r.settle();
        };
        feed(&mut r, window, &mut ts);
        r.checkpoint_now(host);
        feed(&mut r, suffix, &mut ts);
        assert_eq!(r.retained(host) as u64, suffix, "exactly the suffix stays retained");
        (r, host)
    }

    /// The standing optimizer world behind `core/adapt-round-10k`:
    /// `n_queries` random queries over a 32-processor coordinator tree
    /// (k = 2, so clean subtrees abound), homed round-robin, plus the
    /// *dirty set* — the first `n_queries / 100` queries living on one
    /// single processor. Toggling only their loads between rounds leaves
    /// every other level-1 coordinator's inputs fingerprint-identical, so
    /// the incremental round re-coarsens one leaf and re-places one
    /// root-to-leaf path while the `-wholesale` twin redoes the world.
    pub struct AdaptWorld {
        /// Deployment backing the distributor.
        pub dep: cosmos_net::Deployment,
        /// Coordinator tree over the deployment's processors.
        pub tree: cosmos_core::hierarchy::CoordinatorTree,
        /// Substream rates.
        pub table: cosmos_pubsub::SubstreamTable,
        /// The query population.
        pub specs: Vec<cosmos_core::spec::QuerySpec>,
        /// The standing assignment each round adapts from.
        pub current: cosmos_core::spec::Assignment,
        /// Indices (into `specs`) of the ~1% of queries whose loads the
        /// benchmark toggles — all homed on a single processor.
        pub dirty: Vec<usize>,
    }

    /// Applies one load toggle to [`AdaptWorld`]'s dirty set: `step`
    /// alternates between ×1.05 and its exact inverse, so the population
    /// cycles through two statistics states instead of drifting. A free
    /// function (not a method) so callers can toggle `specs` while a
    /// `Distributor` borrows the world's deployment, tree, and table.
    pub fn toggle_dirty(specs: &mut [cosmos_core::spec::QuerySpec], dirty: &[usize], step: u64) {
        let f = if step.is_multiple_of(2) { 1.05 } else { 1.0 / 1.05 };
        for &i in dirty {
            specs[i].load *= f;
        }
    }

    /// The fixed optimizer seed shared by [`adapt_world`]'s settle rounds
    /// and the `core/adapt-round-*` benchmarks: the standing assignment is
    /// a fixpoint only under the seed that produced it.
    pub const ADAPT_SEED: u64 = 11;

    /// Builds the [`AdaptWorld`] — see its docs for the shape.
    pub fn adapt_world(n_queries: u64) -> AdaptWorld {
        use cosmos_core::spec::{Assignment, QuerySpec};
        use cosmos_util::rng::rng_for;
        use cosmos_util::InterestSet;
        use rand::Rng;

        const UNIVERSE: usize = 500;
        let seed = 5;
        let topo = TransitStubConfig::small().generate(seed);
        let dep = cosmos_net::Deployment::assign(topo, 4, 32, seed);
        let tree = cosmos_core::hierarchy::CoordinatorTree::build(&dep, 2);
        let table = cosmos_pubsub::SubstreamTable::random(UNIVERSE, 4, 1.0, 10.0, seed);
        let mut rng = rng_for(seed, "adapt-world");
        let procs = dep.processors();
        let specs: Vec<QuerySpec> = (0..n_queries)
            .map(|i| {
                let k = rng.gen_range(2..6);
                QuerySpec {
                    id: QueryId(i),
                    interest: InterestSet::from_indices(
                        UNIVERSE,
                        (0..k).map(|_| rng.gen_range(0..UNIVERSE)),
                    ),
                    load: rng.gen_range(0.5..2.0),
                    proxy: procs[rng.gen_range(0..procs.len())],
                    result_rate: rng.gen_range(0.1..1.0),
                    state_size: rng.gen_range(0.5..4.0),
                }
            })
            .collect();
        // Round-robin homes, then a few settle rounds with the benchmark's
        // seed: the standing assignment must be near the optimizer's
        // fixpoint, or every measured round would redo wholesale-scale
        // rebalancing and measure convergence, not churn handling.
        let mut current = Assignment::new();
        for (i, q) in specs.iter().enumerate() {
            current.place(q.id, procs[i % procs.len()]);
        }
        let d = cosmos_core::distribute::Distributor::new(&dep, &tree, &table);
        let config = cosmos_core::adaptive::AdaptConfig::default();
        for _ in 0..3 {
            current =
                cosmos_core::adaptive::adapt_wholesale(&d, &specs, &current, &config, ADAPT_SEED)
                    .assignment;
        }
        drop(d);
        // The dirty 1%: the settled queries of one processor (re-homed
        // there if the settle rounds left it short), so their churn lands
        // in exactly one level-1 leaf.
        let dirty_n = (n_queries / 100).max(1) as usize;
        let mut dirty: Vec<usize> = specs
            .iter()
            .enumerate()
            .filter(|(_, q)| current.processor_of(q.id) == Some(procs[0]))
            .map(|(i, _)| i)
            .take(dirty_n)
            .collect();
        for (i, q) in specs.iter().enumerate() {
            if dirty.len() >= dirty_n {
                break;
            }
            if current.processor_of(q.id) != Some(procs[0]) {
                current.place(q.id, procs[0]);
                dirty.push(i);
            }
        }
        AdaptWorld { dep, tree, table, specs, current, dirty }
    }

    /// `members` mergeable queries with exactly two distinct residual
    /// conjunctions (alternating thresholds) — the duplicated-residual
    /// workload behind `engine/shared-split-*`.
    pub fn shared_split_queries(members: u64) -> Vec<(QueryId, Query)> {
        (0..members)
            .map(|i| {
                let th = if i % 2 == 0 { 10 } else { 20 };
                (
                    QueryId(i),
                    parse_query(&format!(
                        "SELECT R.v FROM R [Range 5 Seconds], S [Now] \
                         WHERE R.k = S.k AND R.v > {th}"
                    ))
                    .unwrap(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        // Can't touch process args in a test; just exercise the validators.
        let a = BenchArgs { scale: 0.5, seed: 1 };
        assert!(a.scale > 0.0);
    }

    #[test]
    fn write_result_smoke() {
        write_result("selftest", &serde_json::json!({"ok": true}));
    }
}
