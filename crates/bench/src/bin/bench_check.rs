//! Bench-regression guard for CI.
//!
//! Compares a freshly generated `BENCH_micro.json` against the committed
//! baseline and fails (exit 1) when any benchmark present in **both**
//! files regressed by more than the tolerance (default 25% on the
//! median). New entries are reported but tolerated — adding benchmarks
//! must not break CI. Entries present in the baseline but **missing**
//! from the current run are a hard failure (listed by name): a silently
//! disappearing benchmark is exactly how coverage regresses unnoticed.
//! Intentional renames land with a regenerated baseline, so they never
//! trip this.
//!
//! The committed baseline comes from whatever machine last regenerated
//! it, which is rarely the CI runner: absolute nanoseconds are not
//! comparable across hosts. The guard therefore normalizes by machine
//! speed first — each benchmark's current/baseline ratio is divided by
//! the **median ratio** across all shared benchmarks (clamped to
//! [0.25, 4.0] so a pathological baseline cannot hide everything). A
//! uniformly slower runner shifts every ratio equally and normalizes
//! away; a genuine regression stands out against the others.
//!
//! ```text
//! cargo run --release -p cosmos-bench --bin bench_check -- \
//!     baseline.json BENCH_micro.json [tolerance-percent]
//! ```
//!
//! Thread-count variants (names containing `-par-`) are a special case:
//! their absolute numbers depend on the host's core count, not just its
//! single-thread speed, so speed normalization cannot make them
//! comparable across hosts. The snapshot records `meta.cores`; when the
//! baseline and current core counts differ (or either is absent), the
//! `-par-` rows are excluded from the speed-factor median and reported as
//! `skip` instead of pass/fail. Equal core counts guard them normally.
//!
//! The vendored `serde_json` stub has no parser, so this binary scans the
//! snapshot's fixed shape directly: objects with a `"name"` string and a
//! `"median_ns"` number, plus an optional `"cores"` count.

use std::process::ExitCode;

/// Extracts `(name, median_ns)` pairs from a `BENCH_micro.json` body.
fn parse(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let Some(open) = rest.find('"') else { break };
        let value = &rest[open + 1..];
        let Some(close) = value.find('"') else { break };
        let name = value[..close].to_string();
        rest = &value[close + 1..];
        let Some(med) = rest.find("\"median_ns\"") else { break };
        let after = &rest[med + "\"median_ns\"".len()..];
        let Some(colon) = after.find(':') else { break };
        let num = after[colon + 1..].trim_start();
        let end = num
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
            })
            .unwrap_or(num.len());
        if let Ok(v) = num[..end].parse::<f64>() {
            out.push((name, v));
        }
        rest = &num[end..];
    }
    out
}

/// Extracts the `"cores"` count from a snapshot's `meta` block, if any.
/// Older baselines predate the field; they compare as "unknown host".
fn parse_cores(text: &str) -> Option<u64> {
    let at = text.find("\"cores\"")?;
    let after = &text[at + "\"cores\"".len()..];
    let colon = after.find(':')?;
    let num = after[colon + 1..].trim_start();
    let end = num.find(|c: char| !c.is_ascii_digit()).unwrap_or(num.len());
    num[..end].parse().ok()
}

/// Whether a benchmark's result scales with the host's core count (a
/// thread-count variant) rather than just its single-thread speed.
fn core_bound(name: &str) -> bool {
    name.contains("-par-")
}

fn load(path: &str) -> (Vec<(String, f64)>, Option<u64>) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let rows = parse(&body);
    assert!(!rows.is_empty(), "no benchmark entries found in {path}");
    (rows, parse_cores(&body))
}

/// One compared benchmark: name, baseline ns, current ns, and the
/// speed-adjusted delta percentage (the single place that formula lives).
struct Row {
    name: String,
    base: f64,
    cur: f64,
    delta: f64,
}

impl Row {
    fn new(name: &str, base: f64, cur: f64, speed: f64) -> Self {
        let adjusted = base * speed;
        let delta = (cur - adjusted) / adjusted * 100.0;
        Self { name: name.to_string(), base, cur, delta }
    }
}

/// The benchmarks that got *faster*, best first — the rows whose adjusted
/// delta is negative. Reported alongside regressions so wins — e.g. a
/// churn optimization landing a 10× drop — are visible in CI output, not
/// just silently "ok".
fn top_improvements(rows: &[Row]) -> Vec<&Row> {
    let mut wins: Vec<&Row> = rows.iter().filter(|r| r.delta < 0.0).collect();
    wins.sort_by(|a, b| a.delta.total_cmp(&b.delta));
    wins
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <baseline.json> <current.json> [tolerance-percent]");
        return ExitCode::FAILURE;
    }
    let tolerance: f64 = args.get(3).map_or(25.0, |t| t.parse().expect("numeric tolerance"));
    let (baseline, base_cores) = load(&args[1]);
    let (current, cur_cores) = load(&args[2]);
    // Thread-count variants only compare when both snapshots know their
    // host's core count and the counts match.
    let cores_match = matches!((base_cores, cur_cores), (Some(b), Some(c)) if b == c);
    // Machine-speed factor: the median current/baseline ratio over shared
    // benchmarks, clamped so the guard stays meaningful. Core-bound rows
    // are excluded unless the hosts have equal parallelism — a baseline
    // from a wider machine would otherwise drag the median.
    let mut ratios: Vec<f64> = baseline
        .iter()
        .filter(|(name, _)| cores_match || !core_bound(name))
        .filter_map(|(name, base)| {
            current.iter().find(|(n, _)| n == name).map(|(_, cur)| cur / base)
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speed = if ratios.is_empty() { 1.0 } else { ratios[ratios.len() / 2] }.clamp(0.25, 4.0);
    println!("machine-speed factor (median ratio): {speed:.3}");
    let mut failed = false;
    let mut missing: Vec<&str> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for (name, base) in &baseline {
        match current.iter().find(|(n, _)| n == name) {
            None => missing.push(name),
            Some((_, cur)) if !cores_match && core_bound(name) => {
                let (b, c) = (
                    base_cores.map_or("?".into(), |n| n.to_string()),
                    cur_cores.map_or("?".into(), |n| n.to_string()),
                );
                println!("skip {name}: {base:.0} -> {cur:.0} ns (core count {b} vs {c})");
            }
            Some((_, cur)) => rows.push(Row::new(name, *base, *cur, speed)),
        }
    }
    for row in &rows {
        let Row { name, base, cur, delta } = row;
        let verdict = if *delta > tolerance {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!("{verdict}{name}: {base:.0} -> {cur:.0} ns ({delta:+.1}% vs speed-adjusted)");
    }
    for (name, cur) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("new   {name}: {cur:.0} ns (no baseline; tolerated)");
        }
    }
    let wins = top_improvements(&rows);
    if !wins.is_empty() {
        println!("top improvements (speed-adjusted):");
        for Row { name, base, cur, delta } in wins.iter().take(3) {
            println!("  {name}: {base:.0} -> {cur:.0} ns ({delta:+.1}%)");
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "bench_check: {} baseline benchmark(s) missing from the current run:",
            missing.len()
        );
        for name in &missing {
            eprintln!("  MISSING {name}");
        }
        eprintln!("(removed or renamed? regenerate and commit the baseline alongside)");
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!("bench_check: regression beyond {tolerance:.0}% tolerance");
        return ExitCode::FAILURE;
    }
    println!("bench_check: within {tolerance:.0}% tolerance");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn parses_snapshot_shape() {
        let body = r#"{
  "benchmarks": [
    { "name": "a/b", "median_ns": 123.5 },
    { "name": "c", "median_ns": 7 }
  ]
}"#;
        assert_eq!(parse(body), vec![("a/b".to_string(), 123.5), ("c".to_string(), 7.0)]);
    }

    #[test]
    fn tolerates_noise_text() {
        assert!(parse("no benchmarks here").is_empty());
    }

    #[test]
    fn cores_meta_parsed_when_present() {
        let body = r#"{
  "meta": { "cores": 8 },
  "benchmarks": [ { "name": "a", "median_ns": 1 } ]
}"#;
        assert_eq!(super::parse_cores(body), Some(8));
        assert_eq!(super::parse_cores(r#"{"benchmarks": []}"#), None);
    }

    #[test]
    fn thread_variants_are_core_bound() {
        assert!(super::core_bound("broker/publish-par-4-threads"));
        assert!(!super::core_bound("broker/publish-5000-subs"));
        assert!(!super::core_bound("broker/subscribe-5000-pop"));
    }

    #[test]
    fn improvements_ranked_best_first() {
        let rows = |speed: f64| {
            vec![
                super::Row::new("steady", 100.0, 100.0, speed),
                super::Row::new("small-win", 100.0, 80.0, speed),
                super::Row::new("big-win", 1000.0, 100.0, speed),
                super::Row::new("regressed", 100.0, 150.0, speed),
            ]
        };
        let rows_even = rows(1.0);
        let wins = super::top_improvements(&rows_even);
        let names: Vec<&str> = wins.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["big-win", "small-win"], "best first; non-wins excluded");
        assert!((wins[0].delta - -90.0).abs() < 1e-9);
        // A speed factor below 1 (baseline machine was slower) turns the
        // small win into a wash; only the big one survives adjustment.
        let rows_adjusted = rows(0.5);
        let wins = super::top_improvements(&rows_adjusted);
        let names: Vec<&str> = wins.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["big-win"]);
    }
}
