//! Ablation study for the design choices DESIGN.md calls out:
//!
//! 1. **Overlap edges** (§3.1.2): the Pub/Sub-aware query-query term is
//!    the paper's modelling novelty — removing it should cost
//!    communication efficiency.
//! 2. **Coarsening budget `vmax`** (§3.4): smaller graphs map faster but
//!    lose placement precision.
//! 3. **Per-level α split**: applying the full eqn 3.1 tolerance at every
//!    tree level compounds to ~(1+α)^height and overloads processors.
//!
//! ```text
//! cargo run --release -p cosmos-bench --bin ablation -- [--scale 0.1]
//! ```

use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_core::distribute::{DistConfig, Distributor};
use cosmos_workload::{PaperParams, Simulation};

fn main() {
    let args = BenchArgs::parse();
    banner("Ablation", "design-choice ablations", &args);
    let params = PaperParams::scaled(args.scale);
    let n_queries = ((20_000.0 * args.scale) as usize).max(200);
    let mut sim = Simulation::build(params.clone(), args.seed);
    let batch = sim.arrivals(n_queries, args.seed + 1);
    let mut records = Vec::new();

    // --- 1. Overlap edges on/off.
    println!("\n[1] Pub/Sub-aware overlap edges ({n_queries} queries)");
    println!("{:>14} {:>14} {:>10}", "variant", "comm cost", "Δ vs on");
    let mut base_cost = 0.0;
    for on in [true, false] {
        let mut config = DistConfig::default();
        config.map.alpha = params.alpha;
        config.overlap_edges = on;
        let d = Distributor::with_config(&sim.dep, &sim.tree, &sim.table, config);
        let out = d.distribute(&batch, args.seed + 2);
        drop(d);
        let cost = sim.comm_cost_of(&out.assignment);
        if on {
            base_cost = cost;
        }
        let delta = if on { 0.0 } else { 100.0 * (cost / base_cost - 1.0) };
        println!("{:>14} {cost:>14.0} {delta:>+9.1}%", if on { "on" } else { "off" });
        records.push(serde_json::json!({
            "ablation": "overlap_edges", "variant": on, "comm_cost": cost
        }));
    }

    // --- 2. Coarsening budget.
    println!("\n[2] coarsening budget vmax");
    println!("{:>8} {:>14} {:>12}", "vmax", "comm cost", "total time");
    for vmax in [16usize, 64, 256] {
        let mut config = DistConfig::default();
        config.map.alpha = params.alpha;
        config.vmax = vmax;
        let d = Distributor::with_config(&sim.dep, &sim.tree, &sim.table, config);
        let out = d.distribute(&batch, args.seed + 2);
        drop(d);
        let cost = sim.comm_cost_of(&out.assignment);
        println!("{vmax:>8} {cost:>14.0} {:>11.2}s", out.timing.total.as_secs_f64());
        records.push(serde_json::json!({
            "ablation": "vmax", "variant": vmax, "comm_cost": cost,
            "total_time_s": out.timing.total.as_secs_f64()
        }));
    }

    // --- 3. Per-level α split on/off: compare worst processor overload.
    println!("\n[3] per-level alpha split");
    println!("{:>14} {:>16} {:>12}", "variant", "max load/limit", "comm cost");
    for split in [true, false] {
        let mut config = DistConfig::default();
        config.map.alpha = params.alpha;
        config.per_level_alpha = split;
        let d = Distributor::with_config(&sim.dep, &sim.tree, &sim.table, config);
        let out = d.distribute(&batch, args.seed + 2);
        drop(d);
        let loads = out.assignment.loads(&batch, sim.dep.processors());
        let total: f64 = loads.iter().sum();
        let limit = (1.0 + params.alpha) * total / loads.len() as f64;
        let worst = loads.iter().cloned().fold(0.0, f64::max) / limit;
        let cost = sim.comm_cost_of(&out.assignment);
        println!("{:>14} {worst:>16.3} {cost:>12.0}", if split { "split" } else { "flat" });
        records.push(serde_json::json!({
            "ablation": "per_level_alpha", "variant": split,
            "worst_load_over_limit": worst, "comm_cost": cost
        }));
    }
    println!("\n(max load/limit > 1 means the global eqn 3.1 bound is violated)");
    write_result("ablation", &serde_json::json!({"scale": args.scale, "rows": records}));
}
