//! Figure 8: new query arrival.
//!
//! Paper setup: 30 000 initial queries; every 200-second interval, 1 500
//! new queries arrive (20 intervals). Schemes:
//!
//! - Random: new queries placed randomly — cost grows fastest, load stays
//!   flat-balanced;
//! - Online: the §3.6 online insertion — low cost, but load imbalance
//!   creeps up;
//! - Online-Adaptive: online insertion + periodic adaptive redistribution —
//!   best on both metrics.

use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_util::rng::rng_for;
use cosmos_workload::{PaperParams, Simulation};
use rand::Rng;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 8", "new query arrival", &args);
    let params = PaperParams::scaled(args.scale);
    let n_initial = ((30_000.0 * args.scale) as usize).max(100);
    let n_arrive = ((1_500.0 * args.scale) as usize).max(10);
    let intervals = 20;

    let build = |seed: u64| {
        let mut s = Simulation::build(params.clone(), seed);
        let batch = s.arrivals(n_initial, seed + 1);
        let d = s.distributor();
        let initial = d.distribute(&batch, seed + 2);
        drop(d);
        s.apply(initial.assignment);
        s
    };
    let mut random = build(args.seed);
    let mut online = build(args.seed);
    let mut online_adaptive = build(args.seed);

    println!(
        "\n{:>8} {:>13} {:>13} {:>13}   {:>9} {:>9} {:>9}",
        "t(x200s)", "Random", "Online", "Online-Adapt", "R stddev", "O stddev", "OA stddev"
    );
    let mut rows = Vec::new();
    for t in 0..=intervals {
        println!(
            "{t:>8} {:>13.0} {:>13.0} {:>13.0}   {:>9.3} {:>9.3} {:>9.3}",
            random.comm_cost(),
            online.comm_cost(),
            online_adaptive.comm_cost(),
            random.load_stddev(),
            online.load_stddev(),
            online_adaptive.load_stddev(),
        );
        rows.push(serde_json::json!({
            "interval": t,
            "random": random.comm_cost(),
            "online": online.comm_cost(),
            "online_adaptive": online_adaptive.comm_cost(),
            "random_stddev": random.load_stddev(),
            "online_stddev": online.load_stddev(),
            "online_adaptive_stddev": online_adaptive.load_stddev(),
        }));
        if t == intervals {
            break;
        }
        let seed = args.seed + 1000 + t as u64;
        // Random: new queries placed uniformly at random.
        let batch = random.arrivals(n_arrive, seed);
        let mut rng = rng_for(seed, "fig8-random");
        for q in &batch {
            let procs = random.dep.processors();
            let p = procs[rng.gen_range(0..procs.len())];
            random.assignment.place(q.id, p);
        }
        // Online: §3.6 insertion.
        let batch = online.arrivals(n_arrive, seed);
        online.insert_online(&batch);
        // Online-Adaptive: insertion + one adaptation round per interval.
        let batch = online_adaptive.arrivals(n_arrive, seed);
        online_adaptive.insert_online(&batch);
        online_adaptive.adapt_round(seed + 5);
    }
    let last = rows.last().expect("rows nonempty");
    println!("\nShape checks (paper Figure 8):");
    println!(
        "  Random ends worst on cost: {}",
        last["random"].as_f64() > last["online"].as_f64()
            && last["random"].as_f64() > last["online_adaptive"].as_f64()
    );
    println!(
        "  Online-Adaptive beats Online on load deviation: {}",
        last["online_adaptive_stddev"].as_f64() <= last["online_stddev"].as_f64()
    );
    write_result("fig8", &serde_json::json!({"scale": args.scale, "rows": rows}));
}
