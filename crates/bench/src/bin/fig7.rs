//! Figure 7: adapting to inaccurate a-priori statistics.
//!
//! The paper models inaccurate statistics with a *random* initial query
//! allocation, then lets the adaptive redistribution run for 12 rounds:
//!
//! - NA-Inaccurate: no adaptation — cost and load deviation stay high;
//! - A-Inaccurate: adaptive — both decrease over the rounds;
//! - A-Accurate: adaptive starting from the hierarchical initial
//!   distribution — starts (and stays) at the good level.

use cosmos_baselines::random_assignment;
use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_workload::{PaperParams, Simulation};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 7", "adapting to inaccurate statistics", &args);
    let params = PaperParams::scaled(args.scale);
    let n_queries = ((30_000.0 * args.scale) as usize).max(100);
    let rounds = 12;

    // Three simulations sharing the same workload.
    let build = |seed: u64| {
        let mut s = Simulation::build(params.clone(), seed);
        s.arrivals(n_queries, seed + 1);
        s
    };
    let mut na = build(args.seed);
    let mut ai = build(args.seed);
    let mut aa = build(args.seed);
    let random = random_assignment(&na.specs, &na.dep, args.seed + 7);
    na.apply(random.clone());
    ai.apply(random);
    let d = aa.distributor();
    let initial = d.distribute(&aa.specs.clone(), args.seed + 8);
    drop(d);
    aa.apply(initial.assignment);

    println!(
        "\n{:>6} {:>14} {:>14} {:>14}   {:>9} {:>9} {:>9}",
        "round",
        "NA-Inacc cost",
        "A-Inacc cost",
        "A-Acc cost",
        "NA stddev",
        "A-I stddev",
        "A-A stddev"
    );
    let mut rows = Vec::new();
    for round in 0..=rounds {
        println!(
            "{round:>6} {:>14.0} {:>14.0} {:>14.0}   {:>9.3} {:>9.3} {:>9.3}",
            na.comm_cost(),
            ai.comm_cost(),
            aa.comm_cost(),
            na.load_stddev(),
            ai.load_stddev(),
            aa.load_stddev(),
        );
        rows.push(serde_json::json!({
            "round": round,
            "na_cost": na.comm_cost(), "ai_cost": ai.comm_cost(), "aa_cost": aa.comm_cost(),
            "na_stddev": na.load_stddev(), "ai_stddev": ai.load_stddev(),
            "aa_stddev": aa.load_stddev(),
        }));
        if round < rounds {
            ai.adapt_round(args.seed + 100 + round as u64);
            aa.adapt_round(args.seed + 100 + round as u64);
        }
    }
    let first = &rows[0];
    let last = rows.last().expect("rows nonempty");
    println!("\nShape checks (paper Figure 7):");
    println!(
        "  A-Inaccurate cost decreases: {}",
        last["ai_cost"].as_f64() < first["ai_cost"].as_f64()
    );
    println!(
        "  A-Inaccurate load stddev decreases: {}",
        last["ai_stddev"].as_f64() < first["ai_stddev"].as_f64()
    );
    println!(
        "  NA-Inaccurate stays put: {}",
        (last["na_cost"].as_f64().unwrap() - first["na_cost"].as_f64().unwrap()).abs() < 1e-6
    );
    write_result("fig7", &serde_json::json!({"scale": args.scale, "rows": rows}));
}
