//! Table 2: WEC of three mapping schemes on the Figure 5 example.
//!
//! The paper's toy instance: two sources, two processors, four queries
//! where Q3's data interest is contained in Q1's (an overlap edge). Three
//! schemes are compared — queries at their proxies (scheme 1), the optimum
//! when sharing is ignored (scheme 2), and the sharing-aware mapping that
//! co-locates Q1 and Q3 (scheme 3). The paper reports WEC 165 / 115 / 110;
//! the figure's exact edge weights are not recoverable from the published
//! text, so our absolute numbers differ — the *ordering* (and the fact that
//! Algorithm 2 finds the sharing-aware scheme) is the reproduced result.

use cosmos_core::graph::{edge_weight, NetVertex, NetworkGraph, QgVertex, QueryGraph};
use cosmos_core::mapping::{map_graph, MapConfig};
use cosmos_net::NodeId;
use cosmos_query::QueryId;
use cosmos_util::InterestSet;

const U: usize = 16;

fn build() -> (QueryGraph, NetworkGraph, Vec<f64>) {
    let rates = vec![1.0; U];
    // Substreams 0..8 originate at s1 (node 0), 8..16 at s2 (node 1).
    let mk = |id: u64, lo: usize, hi: usize, proxy: u32| {
        QgVertex::for_query(
            QueryId(id),
            InterestSet::from_indices(U, lo..hi),
            0.1,
            NodeId(proxy),
            1.0,
            1.0,
        )
    };
    let vertices = vec![
        mk(1, 0, 8, 2),   // Q1: reads s1 heavily, result to n1
        mk(2, 8, 16, 2),  // Q2: reads s2, result to n1
        mk(3, 0, 4, 3),   // Q3: interest contained in Q1's, result to n2
        mk(4, 12, 16, 3), // Q4: reads s2, result to n2
        QgVertex::for_net(NodeId(0), InterestSet::from_indices(U, 0..8)), // s1
        QgVertex::for_net(NodeId(1), InterestSet::from_indices(U, 8..16)), // s2
        QgVertex::for_net(NodeId(2), InterestSet::new(U)), // n1
        QgVertex::for_net(NodeId(3), InterestSet::new(U)), // n2
    ];
    let mut qg = QueryGraph::new(vertices);
    for i in 0..qg.len() {
        for j in (i + 1)..qg.len() {
            let w = edge_weight(&qg.vertices[i], &qg.vertices[j], &rates);
            qg.set_edge(i, j, w);
        }
    }
    let pos = |n: NodeId| -> f64 {
        match n.0 {
            0 => 0.0, // s1
            2 => 1.0, // n1
            3 => 6.0, // n2
            1 => 7.0, // s2
            _ => unreachable!("figure 5 has four network nodes"),
        }
    };
    let ng = NetworkGraph::build(
        vec![
            NetVertex { node: NodeId(2), capability: 1.0 },
            NetVertex { node: NodeId(3), capability: 1.0 },
        ],
        vec![
            NetVertex { node: NodeId(0), capability: 0.0 },
            NetVertex { node: NodeId(1), capability: 0.0 },
        ],
        move |a, b| (pos(a) - pos(b)).abs(),
    );
    (qg, ng, rates)
}

fn pin(v: &QgVertex) -> Option<usize> {
    match v.net_node()?.0 {
        2 => Some(0),
        3 => Some(1),
        0 => Some(2),
        1 => Some(3),
        _ => None,
    }
}

fn scheme_wec(qg: &QueryGraph, ng: &NetworkGraph, scheme: [usize; 4]) -> (f64, [f64; 2]) {
    let mut mapping = vec![0usize; qg.len()];
    mapping[..4].copy_from_slice(&scheme);
    #[allow(clippy::needless_range_loop)]
    for i in 4..qg.len() {
        mapping[i] = pin(&qg.vertices[i]).expect("net vertices pin");
    }
    let wec = cosmos_core::graph::wec(qg, ng, &mapping);
    let loads = cosmos_core::graph::target_loads(qg, ng, &mapping);
    (wec, [loads[0], loads[1]])
}

fn main() {
    let (qg, ng, _) = build();
    println!("=== Table 2: mapping schemes on the Figure 5 example");
    println!("{:<44} {:>12} {:>12}", "Scheme", "Load n1/n2", "WEC");
    let rows = [
        ("1: queries at their proxies (Q1,Q2->n1; Q3,Q4->n2)", [0, 0, 1, 1]),
        ("2: optimal ignoring sharing (Q1,Q4->n1; Q2,Q3->n2)", [0, 1, 1, 0]),
        ("3: sharing-aware (Q1,Q3->n1; Q2,Q4->n2)", [0, 1, 0, 1]),
    ];
    let mut results = Vec::new();
    for (name, scheme) in rows {
        let (wec, loads) = scheme_wec(&qg, &ng, scheme);
        println!("{name:<44} {:>6.1}/{:<5.1} {wec:>12.1}", loads[0], loads[1]);
        results.push(serde_json::json!({"scheme": name, "wec": wec, "loads": loads}));
    }
    // And what Algorithm 2 actually finds.
    let found = map_graph(&qg, &ng, &pin, &MapConfig::default());
    println!(
        "{:<44} {:>6.1}/{:<5.1} {:>12.1}",
        "Algorithm 2 (greedy + refinement)", found.loads[0], found.loads[1], found.wec
    );
    results
        .push(serde_json::json!({"scheme": "algorithm2", "wec": found.wec, "loads": found.loads}));
    let (w1, _) = scheme_wec(&qg, &ng, [0, 0, 1, 1]);
    let (w2, _) = scheme_wec(&qg, &ng, [0, 1, 1, 0]);
    let (w3, _) = scheme_wec(&qg, &ng, [0, 1, 0, 1]);
    assert!(w1 > w3, "scheme 1 must be worst");
    assert!(w2 >= w3, "sharing-aware must be at least as good");
    assert!(found.wec <= w3 + 1e-9, "Algorithm 2 must find the best scheme");
    println!("\nPaper: 165 / 115 / 110 (exact edge weights not recoverable; ordering reproduced)");
    cosmos_bench::write_result("table2", &serde_json::json!({"rows": results}));
}
