//! Figure 9: varying the cluster-size parameter k.
//!
//! Paper: with smaller k the distribution quality worsens (taller tree,
//! more coarsening) while the root coordinator's query-insertion
//! *throughput* improves (it routes to fewer children). k ∈ {2, 4, 8, 16}.

use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_core::hierarchy::CoordinatorTree;
use cosmos_core::online::OnlineRouter;
use cosmos_workload::{generator::QueryGenerator, PaperParams, Simulation, WorkloadConfig};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 9", "varied cluster size parameter k", &args);
    let n_queries = ((30_000.0 * args.scale) as usize).max(200);

    println!("\n{:>4} {:>8} {:>14} {:>22}", "k", "height", "comm cost", "root throughput (q/s)");
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16] {
        let mut params = PaperParams::scaled(args.scale);
        params.k = k;
        let mut sim = Simulation::build(params.clone(), args.seed);
        let batch = sim.arrivals(n_queries, args.seed + 1);
        let d = sim.distributor();
        let out = d.distribute(&batch, args.seed + 2);
        drop(d);
        sim.apply(out.assignment);
        let cost = sim.comm_cost();
        let tree = CoordinatorTree::build(&sim.dep, k);

        // Root-coordinator throughput: time route_at(root) on a fresh
        // stream of queries against the seeded router state.
        let mut router = OnlineRouter::new(&sim.dep, &tree, &sim.table, params.alpha);
        router.seed_from(&sim.specs, &sim.assignment);
        let mut generator =
            QueryGenerator::new(WorkloadConfig::from_params(&params), args.seed + 9);
        let probes = generator.generate(2_000, &sim.dep, &sim.table, args.seed + 10);
        let root = tree.root();
        let t0 = Instant::now();
        let mut sink = 0usize;
        for q in &probes {
            sink = sink.wrapping_add(router.route_at(root, q));
        }
        let elapsed = t0.elapsed();
        std::hint::black_box(sink);
        let throughput = probes.len() as f64 / elapsed.as_secs_f64();

        println!("{k:>4} {:>8} {cost:>14.0} {throughput:>22.0}", tree.height());
        rows.push(serde_json::json!({
            "k": k,
            "tree_height": tree.height(),
            "comm_cost": cost,
            "root_throughput_qps": throughput,
        }));
    }
    println!("\nShape checks (paper Figure 9):");
    let first = &rows[0];
    let last = rows.last().expect("rows nonempty");
    println!(
        "  quality: cost(k=2) >= cost(k=16): {}",
        first["comm_cost"].as_f64() >= last["comm_cost"].as_f64()
    );
    println!(
        "  throughput: k=2 > k=16: {}",
        first["root_throughput_qps"].as_f64() > last["root_throughput_qps"].as_f64()
    );
    write_result("fig9", &serde_json::json!({"scale": args.scale, "rows": rows}));
}
