//! Figure 10: perturbation of stream rates.
//!
//! At each of 10 events the rates of 800 random substreams are increased
//! ("I") or decreased ("D") so load imbalance appears. Schemes:
//!
//! - No-Adaptive: the initial distribution is left alone;
//! - Adaptive: the hierarchical adaptive redistribution (Algorithm 3);
//! - Remapping: centralized re-mapping from scratch — slightly better
//!   quality, but (paper) "it incurred about 7 times more query migrations
//!   than the adaptive algorithm did".

use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_workload::{PaperParams, Simulation};

const PATTERN: [char; 10] = ['I', 'D', 'I', 'I', 'I', 'I', 'I', 'D', 'D', 'I'];

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 10", "perturbation of stream rates", &args);
    let params = PaperParams::scaled(args.scale);
    let n_queries = ((30_000.0 * args.scale) as usize).max(100);
    let n_perturb = ((800.0 * args.scale) as usize).max(20);

    let build = |seed: u64| {
        let mut s = Simulation::build(params.clone(), seed);
        let batch = s.arrivals(n_queries, seed + 1);
        let d = s.distributor();
        let initial = d.distribute(&batch, seed + 2);
        drop(d);
        s.apply(initial.assignment);
        s
    };
    let mut noad = build(args.seed);
    let mut adaptive = build(args.seed);
    let mut remap = build(args.seed);
    let mut adaptive_migrations = 0usize;
    let mut remap_migrations = 0usize;

    println!(
        "\n{:>6} {:>4} {:>13} {:>13} {:>13}   {:>8} {:>8} {:>8}",
        "event", "I/D", "No-Adaptive", "Adaptive", "Remapping", "NA sd", "A sd", "R sd"
    );
    let mut rows = Vec::new();
    for (e, &kind) in PATTERN.iter().enumerate() {
        let seed = args.seed + 300 + e as u64;
        let factor = if kind == 'I' { 2.0 } else { 0.5 };
        noad.perturb_rates(n_perturb, factor, seed);
        adaptive.perturb_rates(n_perturb, factor, seed);
        remap.perturb_rates(n_perturb, factor, seed);

        // Adaptive: one round per event (the paper's 200 s interval).
        let out = adaptive.adapt_round(seed + 1);
        adaptive_migrations += out.migrations;

        // Remapping: centralized from-scratch remap; migrations = placement
        // changes versus the pre-event assignment.
        let before = remap.assignment.clone();
        let d = remap.distributor();
        let new = d.distribute_centralized(&remap.specs.clone(), seed + 2);
        drop(d);
        remap_migrations += new.assignment.migrations_from(&before);
        remap.apply(new.assignment);

        println!(
            "{e:>6} {kind:>4} {:>13.0} {:>13.0} {:>13.0}   {:>8.3} {:>8.3} {:>8.3}",
            noad.comm_cost(),
            adaptive.comm_cost(),
            remap.comm_cost(),
            noad.load_stddev(),
            adaptive.load_stddev(),
            remap.load_stddev(),
        );
        rows.push(serde_json::json!({
            "event": e, "kind": kind.to_string(),
            "no_adaptive": noad.comm_cost(),
            "adaptive": adaptive.comm_cost(),
            "remapping": remap.comm_cost(),
            "no_adaptive_stddev": noad.load_stddev(),
            "adaptive_stddev": adaptive.load_stddev(),
            "remapping_stddev": remap.load_stddev(),
        }));
    }
    let ratio = remap_migrations as f64 / adaptive_migrations.max(1) as f64;
    println!("\nTotal migrations: adaptive {adaptive_migrations}, remapping {remap_migrations}");
    println!("Migration ratio remapping/adaptive: {ratio:.1}x (paper: ~7x)");
    let last = rows.last().expect("rows nonempty");
    println!("Shape checks (paper Figure 10):");
    println!(
        "  adaptive load stddev < no-adaptive at the end: {}",
        last["adaptive_stddev"].as_f64() < last["no_adaptive_stddev"].as_f64()
    );
    println!("  remapping migrates far more than adaptive: {}", ratio > 2.0);
    write_result(
        "fig10",
        &serde_json::json!({
            "scale": args.scale,
            "rows": rows,
            "adaptive_migrations": adaptive_migrations,
            "remapping_migrations": remap_migrations,
            "migration_ratio": ratio,
        }),
    );
}
