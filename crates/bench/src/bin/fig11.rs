//! Figure 11: prototype study — COSMOS vs operator placement.
//!
//! Paper: 30 PlanetLab nodes across countries/continents, GSN as the
//! engine, 100 SensorScope sensors on 5 source nodes, 250–4000 random
//! queries (1–3 selections + 1–3 timestamp joins). Compared against a
//! NiagaraCQ-style global operator graph placed with a network-aware
//! algorithm:
//!
//! (a) communication cost (normalized to COSMOS): the two are comparable —
//!     operator placement may be slightly cheaper since it ignores load
//!     balancing;
//! (b) optimizer running time (normalized to the largest value): COSMOS
//!     scales far better with the number of queries.
//!
//! Our substitution: synthetic SensorScope-like streams + our own engine
//! and Pub/Sub (see DESIGN.md).

use cosmos_baselines::opplace::{OperatorGraph, OperatorPlacement, RateModel};
use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_core::distribute::Distributor;
use cosmos_core::hierarchy::CoordinatorTree;
use cosmos_core::spec::QuerySpec;
use cosmos_pubsub::TrafficModel;
use cosmos_workload::sensors::SensorScenario;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 11", "prototype study: COSMOS vs operator placement", &args);
    // The prototype is small; scale only affects nothing here — the paper's
    // own sizes are laptop-friendly.
    let scenario = SensorScenario::build(100, 5, 30, args.seed);
    // COSMOS coordinator tree: "each cluster has 2-3 members" (paper §4.2).
    let tree = CoordinatorTree::build(&scenario.dep, 2);

    println!(
        "\n{:>8} {:>14} {:>14} {:>10} {:>12} {:>12}",
        "#queries", "opplace cost", "COSMOS cost", "ratio", "opplace time", "COSMOS time"
    );
    let mut rows = Vec::new();
    for n in [250usize, 1000, 4000] {
        let cql = scenario.generate_cql(n, args.seed + n as u64);

        // --- Operator placement baseline.
        let t0 = Instant::now();
        let graph = OperatorGraph::build(
            &cql,
            &scenario.stream_rate,
            &scenario.stream_source,
            &RateModel::default(),
        );
        let placed =
            OperatorPlacement::default().place(&graph, &scenario.dep, scenario.dep.processors());
        let opplace_time = t0.elapsed();

        // --- COSMOS: distribute the same queries, measure Pub/Sub cost.
        let specs: Vec<QuerySpec> =
            cql.iter().map(|(id, q, proxy)| scenario.to_spec(*id, q, *proxy)).collect();
        let t1 = Instant::now();
        let d = Distributor::new(&scenario.dep, &tree, &scenario.table);
        let out = d.distribute(&specs, args.seed + 3);
        let cosmos_time = t1.elapsed();
        let model = TrafficModel::new(&scenario.dep, &scenario.table);
        let interests =
            out.assignment.interests(&specs, scenario.dep.processors(), scenario.table.len());
        let flows = specs
            .iter()
            .filter_map(|q| out.assignment.processor_of(q.id).map(|p| (p, q.proxy, q.result_rate)));
        let cosmos_cost = model.source_delivery_cost(&interests) + model.result_unicast_cost(flows);

        let ratio = placed.cost / cosmos_cost;
        println!(
            "{n:>8} {:>14.0} {:>14.0} {ratio:>10.2} {:>11.3}s {:>11.3}s",
            placed.cost,
            cosmos_cost,
            opplace_time.as_secs_f64(),
            cosmos_time.as_secs_f64(),
        );
        rows.push(serde_json::json!({
            "queries": n,
            "opplace_cost": placed.cost,
            "cosmos_cost": cosmos_cost,
            "cost_ratio": ratio,
            "opplace_time_s": opplace_time.as_secs_f64(),
            "cosmos_time_s": cosmos_time.as_secs_f64(),
        }));
    }
    println!("\nShape checks (paper Figure 11):");
    let first = &rows[0];
    let last = rows.last().expect("rows nonempty");
    let comparable =
        last["cost_ratio"].as_f64().unwrap() > 0.4 && last["cost_ratio"].as_f64().unwrap() < 2.5;
    println!("  communication costs comparable (ratio within 0.4-2.5): {comparable}");
    let op_growth = last["opplace_time_s"].as_f64().unwrap()
        / first["opplace_time_s"].as_f64().unwrap().max(1e-9);
    let cosmos_growth = last["cosmos_time_s"].as_f64().unwrap()
        / first["cosmos_time_s"].as_f64().unwrap().max(1e-9);
    println!(
        "  COSMOS optimizer scales better (time growth {cosmos_growth:.1}x vs opplace {op_growth:.1}x): {}",
        cosmos_growth < op_growth
    );
    write_result("fig11", &serde_json::json!({"scale": args.scale, "rows": rows}));
}
