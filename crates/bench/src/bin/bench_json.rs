//! Machine-readable micro-benchmark runner for the per-tuple hot paths.
//!
//! Unlike the criterion bench (`benches/micro.rs`, human-oriented), this
//! binary measures the groups the tuple data plane dominates — engine
//! push, broker publish, join flatten/projection, predicate evaluation —
//! and writes `BENCH_micro.json` at the workspace root: one record per
//! group with the median ns per operation. The file seeds the repository's
//! performance trajectory; CI and PRs quote it before/after hot-path work.
//!
//! ```text
//! cargo run --release -p cosmos-bench --bin bench_json [name-filter]
//! ```
//!
//! With a filter argument only the groups whose name contains it run,
//! and the snapshot file is left untouched — a partial run must never
//! masquerade as a full baseline.

use cosmos_bench::fixtures::{
    adapt_world, arrival_sub, batch_round, broad_message, broker_with_broad_subs,
    broker_with_distinct_subs, broker_with_distinct_subs_bulk, broker_with_subs,
    checkpointed_engine, churn_link, churn_node, lossy_broker, recovery_host, scaling_message,
    scaling_sub, shared_split_queries, toggle_dirty, ADAPT_SEED,
};
use cosmos_core::adaptive::{adapt_wholesale, AdaptConfig};
use cosmos_core::distribute::Distributor;
use cosmos_core::IncrementalOptimizer;
use cosmos_engine::exec::{CompiledProjection, StreamEngine};
use cosmos_engine::tuple::{FlattenCache, JoinedTuple, Tuple};
use cosmos_engine::{ProjPlanCache, SharedEngine};
use cosmos_pubsub::subscription::SubId;
use cosmos_query::{parse_query, QueryId, Scalar};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 21;
const TARGET_SAMPLE_NS: u128 = 8_000_000;

/// Median ns per call of `routine`, batched so timer noise amortizes.
fn measure<O>(mut routine: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    black_box(routine());
    let once = t0.elapsed().as_nanos().max(1);
    let batch = (TARGET_SAMPLE_NS / once).clamp(1, 2_000_000) as usize;
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// [`measure`] with an untimed per-sample reset, for routines that
/// accumulate state (e.g. a broker's delivery log): memory stays bounded
/// without charging cleanup to the measurement.
fn measure_with_reset<T, O>(
    state: &mut T,
    mut routine: impl FnMut(&mut T) -> O,
    mut reset: impl FnMut(&mut T),
) -> f64 {
    let t0 = Instant::now();
    black_box(routine(state));
    let once = t0.elapsed().as_nanos().max(1);
    let batch = (TARGET_SAMPLE_NS / once).clamp(1, 2_000_000) as usize;
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        reset(state);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine(state));
        }
        samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_engine_push() -> f64 {
    let mut engine = StreamEngine::new();
    for i in 0..20u64 {
        engine.add_query(
            QueryId(i),
            parse_query(&format!(
                "SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k AND R.v > {}",
                i * 5
            ))
            .unwrap(),
        );
    }
    let mut ts = 0i64;
    measure(|| {
        ts += 100;
        let r = Tuple::new("R", ts).with("k", Scalar::Int(ts % 5)).with("v", Scalar::Int(ts % 100));
        let s = Tuple::new("S", ts + 50).with("k", Scalar::Int(ts % 5)).with("v", Scalar::Int(1));
        engine.push(r);
        engine.push(s).len()
    })
}

fn bench_broker_publish(n_subs: u64) -> f64 {
    let mut net = broker_with_subs(n_subs);
    measure_with_reset(&mut net, |net| net.publish(scaling_message()), |net| net.reset_stats())
}

/// The linear-scan reference on the same workload: the baseline the
/// indexed path's scaling is measured against.
fn bench_broker_publish_linear(n_subs: u64) -> f64 {
    let mut net = broker_with_subs(n_subs);
    measure_with_reset(
        &mut net,
        |net| net.publish_linear(scaling_message()),
        |net| net.reset_stats(),
    )
}

/// Subscription churn against a standing population: one departure plus
/// one (identical) re-arrival per op, victims cycling through the
/// most-recent fifth of the population. The incremental path tears down
/// only the victim's ledgered footprint and re-propagates only its
/// covering dependents; the `-wholesale` twin re-installs the world.
fn bench_broker_unsubscribe(n_subs: u64, wholesale: bool) -> f64 {
    let mut net = broker_with_subs(n_subs);
    let window = (n_subs / 5).max(1);
    let mut step = 0u64;
    measure(|| {
        let id = n_subs - window + (step % window);
        step += 1;
        if wholesale {
            net.unsubscribe_wholesale(SubId(id));
        } else {
            net.unsubscribe(SubId(id));
        }
        net.subscribe(scaling_sub(id));
    })
}

/// Subscription *arrival* against a covering-sparse standing population:
/// one fresh distinct subscription installed and incrementally removed
/// per op. Install cost is the covering resolution at every path hop —
/// the covering buckets answer it from binary-searched threshold
/// skeletons; the `-linear` twin runs the reference scans over the
/// node's entries and the forwarded-up population, which grow with the
/// population. The departure half is identical in both twins, so the
/// gap isolates the install.
fn bench_broker_subscribe(n_subs: u64, linear: bool) -> f64 {
    let mut net = broker_with_distinct_subs(n_subs);
    net.set_linear_install(linear);
    measure(|| {
        net.subscribe(arrival_sub(n_subs));
        net.unsubscribe(SubId(n_subs));
    })
}

/// [`bench_broker_subscribe`] at a 100 000-subscription standing
/// population (bulk-loaded — building it one arrival at a time would
/// dominate the fixture): the tiered threshold lists bound every install
/// probe by run size plus a directory descent, so the per-arrival cost
/// stays near the 5000-pop point instead of scaling with the population.
fn bench_broker_subscribe_100k() -> f64 {
    let pop = 100_000u64;
    let mut net = broker_with_distinct_subs_bulk(pop);
    measure(|| {
        net.subscribe(arrival_sub(pop));
        net.unsubscribe(SubId(pop));
    })
}

/// A 64-message same-stream batch against the 5000-subscription distinct
/// population, one `publish_batch` call per op: one routing descent, one
/// counter epoch, and one match-scratch reuse for the whole batch. The
/// `-serial` twin publishes the identical 64 messages one at a time; the
/// gap is the amortization win. Reported time is per *batch*, so the
/// twins compare directly.
fn bench_broker_publish_batch(n_subs: u64, serial: bool) -> f64 {
    let mut net = broker_with_distinct_subs(n_subs);
    let msgs = batch_round(64, n_subs);
    measure_with_reset(
        &mut net,
        |net| {
            if serial {
                msgs.iter().map(|m| net.publish(m.clone())).sum::<usize>()
            } else {
                net.publish_batch(&msgs)
            }
        },
        |net| net.reset_stats(),
    )
}

/// Link churn against a standing population: one failure plus one
/// recovery of a dissemination-tree stub link per op. The incremental
/// path recomputes one source tree and re-routes only the subtree's
/// subscribers; the `-wholesale` twin recomputes everything and
/// re-installs the world — twice per op.
fn bench_broker_fail_link(n_subs: u64, wholesale: bool) -> f64 {
    let mut net = broker_with_subs(n_subs);
    let (a, b, lat) = churn_link(&net);
    measure(|| {
        if wholesale {
            assert!(net.fail_link_wholesale(a, b));
            assert!(net.restore_link_wholesale(a, b, lat));
        } else {
            assert!(net.fail_link(a, b));
            assert!(net.restore_link(a, b, lat));
        }
    })
}

/// Whole-node churn against a standing population: one broker crash plus
/// one recovery per op (a non-subscriber transit node, so the population
/// stays in steady state). The incremental path tears down only the
/// ledgered footprint routed through the crashed broker and re-homes the
/// moved subtrees; the `-wholesale` twin recomputes every source tree and
/// re-installs the world — twice per op.
fn bench_broker_fail_node(n_subs: u64, wholesale: bool) -> f64 {
    let mut net = broker_with_subs(n_subs);
    let n = churn_node(&net);
    measure(|| {
        if wholesale {
            let edges = net.fail_node_wholesale(n).expect("churn node is attached");
            assert!(net.restore_node_wholesale(n, &edges));
        } else {
            let edges = net.fail_node(n).expect("churn node is attached");
            assert!(net.restore_node(n, &edges));
        }
    })
}

/// One publish driven through the reliable-delivery plane to quiescence.
/// At `drop = 0.05` every twentieth frame is retransmitted after an RTO;
/// the `-clean` twin runs the identical window/ack machinery with no
/// faults, so the gap prices retransmit overhead alone.
fn bench_broker_publish_lossy(n_subs: u64, drop: f64) -> f64 {
    let mut lossy = lossy_broker(n_subs, drop);
    measure_with_reset(
        &mut lossy,
        |net| {
            assert!(net.publish_lossy(scaling_message()));
            net.run_to_quiescence();
        },
        |net| net.reset_stats(),
    )
}

/// Parallel publish over a frozen routing snapshot: `threads` persistent
/// readers each publish a strided share of a fixed round, and the round's
/// wall-clock divided by its message count is the per-message cost. The
/// `par-1` point prices the snapshot path itself against the serial
/// `publish-5000-subs` twin (same workload); higher thread counts show
/// the lock-free read-side scaling — meaningful only when the host has
/// that many cores, which is why the snapshot records `meta.cores`.
fn bench_broker_publish_par(n_subs: u64, threads: usize) -> f64 {
    const ROUND: usize = 64;
    let net = broker_with_subs(n_subs);
    let snap = net.snapshot();
    let mut readers: Vec<_> = (0..threads).map(|_| snap.reader()).collect();
    // Accumulated reader output is drained in the untimed reset, mirroring
    // how the serial publish benches keep log cleanup off the clock.
    let per_round = measure_with_reset(
        &mut readers,
        |readers| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = readers
                    .iter_mut()
                    .enumerate()
                    .map(|(t, reader)| {
                        scope.spawn(move || {
                            let mut delivered = 0usize;
                            for k in (t..ROUND).step_by(threads) {
                                delivered += reader.publish_at(k as u64, scaling_message());
                            }
                            delivered
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
            })
        },
        |readers| {
            for reader in readers.iter_mut() {
                drop(reader.take_output());
            }
        },
    );
    per_round / ROUND as f64
}

fn bench_broker_publish_broad(n_subs: u64) -> f64 {
    let mut net = broker_with_broad_subs(n_subs);
    measure_with_reset(&mut net, |net| net.publish(broad_message()), |net| net.reset_stats())
}

fn bench_broker_publish_broad_linear(n_subs: u64) -> f64 {
    let mut net = broker_with_broad_subs(n_subs);
    measure_with_reset(&mut net, |net| net.publish_linear(broad_message()), |net| net.reset_stats())
}

/// Shared execution with heavily duplicated residuals: 50 members merge
/// into one covering query with only two distinct residual conjunctions,
/// so residual-group splitting evaluates 2 filter sets per shared result
/// instead of 50.
fn bench_shared_split(members: u64) -> f64 {
    let mut shared = SharedEngine::build(shared_split_queries(members));
    assert_eq!(shared.group_count(), 1, "bench members must merge into one group");
    assert!(shared.residual_set_count() <= 3, "residuals must deduplicate");
    let mut ts = 0i64;
    measure(|| {
        ts += 100;
        let r = Tuple::new("R", ts).with("k", Scalar::Int(ts % 10)).with("v", Scalar::Int(ts % 40));
        let s = Tuple::new("S", ts + 50).with("k", Scalar::Int(ts % 10)).with("v", Scalar::Int(1));
        shared.push(r);
        shared.push(s).len()
    })
}

/// One checkpoint extract + restore of an engine with `n_tuples`
/// buffered across a long-window join: the per-cycle cost an operator
/// pays for crash durability, dominated by cloning the window
/// population into (and back out of) the snapshot.
fn bench_engine_checkpoint(n_tuples: u64) -> f64 {
    let engine = checkpointed_engine(n_tuples);
    let mut target = checkpointed_engine(0);
    measure(|| {
        let cp = engine.checkpoint();
        target.restore(&cp);
        cp.watermark
    })
}

/// One full crash/restore cycle of an engine host against a standing
/// 5000-subscription population: fail the broker node (incremental
/// teardown + subtree re-homing), restore it, re-install the engine's
/// subscription, restore the checkpoint, and replay the retained
/// 32-record suffix in verify mode. The broker-churn half is priced
/// alone by `broker/fail-node-5000-pop`; the gap is the recovery layer.
fn bench_broker_recover_engine(n_subs: u64) -> f64 {
    let (mut r, host) = recovery_host(n_subs, 512, 32);
    measure(|| {
        r.crash_host(host);
        r.restore_host(host);
        r.output_log(host).len()
    })
}

/// One adaptation round over a 10 000-query world whose statistics churn
/// touches 1% of the queries, all homed on one processor — one dirty
/// level-1 leaf per round. The incremental optimizer re-coarsens that
/// leaf (lazy-deletion heap patching), re-scores the root-to-leaf path,
/// and fingerprint-reuses every other subtree's coarsening and placement;
/// the `-wholesale` twin recomputes the whole pipeline with the same
/// seed, producing the identical assignment. The gap is the delta-driven
/// optimizer's claim.
fn bench_adapt_round(n_queries: u64, wholesale: bool) -> f64 {
    let cosmos_bench::fixtures::AdaptWorld { dep, tree, table, mut specs, current, dirty } =
        adapt_world(n_queries);
    let config = AdaptConfig::default();
    let seed = ADAPT_SEED;
    let mut opt = IncrementalOptimizer::new(seed, config).expect("default config is valid");
    let d = Distributor::new(&dep, &tree, &table);
    if !wholesale {
        // Warm the caches: the benchmark prices the steady churn state,
        // not the cold first round.
        let _ = opt.round(&d, &specs, &current);
    }
    let mut step = 0u64;
    measure(|| {
        toggle_dirty(&mut specs, &dirty, step);
        step += 1;
        let out = if wholesale {
            adapt_wholesale(&d, &specs, &current, &config, seed)
        } else {
            opt.round(&d, &specs, &current)
        };
        out.migrations
    })
}

/// The incremental round with *no* churn at all: every coordinator's
/// inputs fingerprint-match, so this prices the memoization layer's fixed
/// overhead (fingerprint recomputation, cache lookups, assignment splice)
/// — the floor under `core/adapt-round-10k`.
fn bench_adapt_round_quiet() -> f64 {
    let cosmos_bench::fixtures::AdaptWorld { dep, tree, table, specs, current, .. } =
        adapt_world(10_000);
    let config = AdaptConfig::default();
    let mut opt = IncrementalOptimizer::new(ADAPT_SEED, config).expect("default config is valid");
    let d = Distributor::new(&dep, &tree, &table);
    let _ = opt.round(&d, &specs, &current);
    measure(|| opt.round(&d, &specs, &current).migrations)
}

fn bench_flatten_project() -> f64 {
    let projection = parse_query(
        "SELECT A.v, B.v FROM R [Now] A, R [Now] B, R [Now] C \
         WHERE A.k = B.k AND B.k = C.k",
    )
    .unwrap()
    .projection;
    let part = |name: &str, ts: i64| {
        (
            name.into(),
            Arc::new(
                Tuple::new("R", ts)
                    .with("k", Scalar::Int(1))
                    .with("v", Scalar::Int(ts))
                    .with("w", Scalar::Int(2 * ts)),
            ),
        )
    };
    let joined = JoinedTuple::new(vec![part("A", 1), part("B", 2), part("C", 3)]);
    let result = cosmos_engine::exec::ResultTuple { query: QueryId(1), joined };
    // The steady-state emit path: projection compiled once, flatten and
    // projection plans hung off owner-attached caches (allocation-free
    // apart from the output payloads).
    let compiled = CompiledProjection::compile(&projection);
    let mut flatten_cache = FlattenCache::new();
    let mut plan_cache = ProjPlanCache::new();
    measure(|| {
        let flat = result.joined.flatten_cached(&mut flatten_cache, "res");
        let projected = result.project_cached(&compiled, &mut plan_cache, "res");
        (flat.timestamp, projected.timestamp)
    })
}

fn bench_predicate_eval() -> f64 {
    // Selection-heavy single-relation workload: predicate evaluation and
    // pushed-down filtering dominate.
    let mut engine = StreamEngine::new();
    for i in 0..50u64 {
        engine.add_query(
            QueryId(i),
            parse_query(&format!("SELECT * FROM R [Now] WHERE R.v > {} AND R.k = 1", i * 2))
                .unwrap(),
        );
    }
    let mut ts = 0i64;
    measure(|| {
        ts += 10;
        engine
            .push(Tuple::new("R", ts).with("k", Scalar::Int(1)).with("v", Scalar::Int(ts % 100)))
            .len()
    })
}

fn main() {
    type BenchFn = fn() -> f64;
    let groups: Vec<(&str, BenchFn)> = vec![
        ("engine/push-20-queries", bench_engine_push),
        ("engine/flatten-project", bench_flatten_project),
        ("engine/predicate-eval-50-queries", bench_predicate_eval),
        ("broker/publish-50-subs", || bench_broker_publish(50)),
        ("broker/publish-500-subs", || bench_broker_publish(500)),
        ("broker/publish-5000-subs", || bench_broker_publish(5000)),
        ("broker/publish-500-subs-linear", || bench_broker_publish_linear(500)),
        ("broker/publish-5000-subs-linear", || bench_broker_publish_linear(5000)),
        ("broker/publish-par-1-threads", || bench_broker_publish_par(5000, 1)),
        ("broker/publish-par-2-threads", || bench_broker_publish_par(5000, 2)),
        ("broker/publish-par-4-threads", || bench_broker_publish_par(5000, 4)),
        ("broker/publish-par-8-threads", || bench_broker_publish_par(5000, 8)),
        ("broker/publish-500-subs-broad", || bench_broker_publish_broad(500)),
        ("broker/publish-500-subs-broad-linear", || bench_broker_publish_broad_linear(500)),
        ("broker/subscribe-5000-pop", || bench_broker_subscribe(5000, false)),
        ("broker/subscribe-5000-pop-linear", || bench_broker_subscribe(5000, true)),
        ("broker/subscribe-100k-pop", bench_broker_subscribe_100k),
        ("broker/publish-batch-64", || bench_broker_publish_batch(5000, false)),
        ("broker/publish-batch-64-serial", || bench_broker_publish_batch(5000, true)),
        ("broker/unsubscribe-5000-pop", || bench_broker_unsubscribe(5000, false)),
        ("broker/unsubscribe-5000-pop-wholesale", || bench_broker_unsubscribe(5000, true)),
        ("broker/fail-link-5000-pop", || bench_broker_fail_link(5000, false)),
        ("broker/fail-link-5000-pop-wholesale", || bench_broker_fail_link(5000, true)),
        ("broker/fail-node-5000-pop", || bench_broker_fail_node(5000, false)),
        ("broker/fail-node-5000-pop-wholesale", || bench_broker_fail_node(5000, true)),
        ("broker/publish-lossy-5pct", || bench_broker_publish_lossy(5000, 0.05)),
        ("broker/publish-lossy-clean", || bench_broker_publish_lossy(5000, 0.0)),
        ("core/adapt-round-10k", || bench_adapt_round(10_000, false)),
        ("core/adapt-round-10k-quiet", bench_adapt_round_quiet),
        ("core/adapt-round-10k-wholesale", || bench_adapt_round(10_000, true)),
        ("engine/shared-split-50-members", || bench_shared_split(50)),
        ("engine/checkpoint-5000-window", || bench_engine_checkpoint(5000)),
        ("broker/recover-engine-5000-pop", || bench_broker_recover_engine(5000)),
    ];
    let filter = std::env::args().nth(1);
    let mut rows = Vec::new();
    for (name, f) in groups {
        if filter.as_deref().is_some_and(|pat| !name.contains(pat)) {
            continue;
        }
        let median = f();
        println!("{name:<36} median {median:>12.1} ns/op");
        rows.push(serde_json::json!({"name": name, "median_ns": median}));
    }
    if filter.is_some() {
        println!("(filtered run; not writing the snapshot)");
        return;
    }
    // Core count travels with the numbers: thread-count variants are only
    // comparable between snapshots taken on hosts with the same
    // parallelism, and `bench_check` skips them otherwise.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out = serde_json::json!({"meta": {"cores": cores}, "benchmarks": rows});
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    match serde_json::to_string_pretty(&out) {
        Ok(body) => {
            std::fs::write(path, body + "\n").expect("write BENCH_micro.json");
            println!("(wrote {path})");
        }
        Err(e) => eprintln!("could not serialize results: {e}"),
    }
}
