//! Figure 6: initial query distribution.
//!
//! (a) Weighted communication cost vs number of queries for Naive, Greedy,
//!     Hierarchical, and Centralized (paper: Naive worst; Greedy clearly
//!     better; the two graph-mapping algorithms best and close together).
//! (b) Response time and total time of the centralized vs hierarchical
//!     mapping (paper: hierarchical far lower on both; gap grows with the
//!     query count).
//!
//! Paper sweep: 5k–60k queries at 4096 nodes. The default `--scale 0.1`
//! sweeps 500–6000 queries at ≈500 nodes; `--scale 1.0` reproduces the full
//! setup.

use cosmos_baselines::naive_assignment;
use cosmos_bench::{banner, write_result, BenchArgs};
use cosmos_workload::{PaperParams, Simulation};

fn main() {
    let args = BenchArgs::parse();
    banner("Figure 6", "initial query distribution", &args);
    let params = PaperParams::scaled(args.scale);
    let sizes: Vec<usize> = [5_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000]
        .iter()
        .map(|&n| ((n as f64 * args.scale).round() as usize).max(50))
        .collect();

    println!(
        "\n{:>8} {:>14} {:>14} {:>14} {:>14}   {:>10} {:>10} {:>10}",
        "#queries",
        "Naive",
        "Greedy",
        "Hierarchical",
        "Centralized",
        "hier-resp",
        "hier-total",
        "cent-time"
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut sim = Simulation::build(params.clone(), args.seed);
        let batch = sim.arrivals(n, args.seed + 1);
        let d = sim.distributor();
        let naive = naive_assignment(&batch);
        let greedy = d.distribute_greedy(&batch, args.seed + 2);
        let hier = d.distribute(&batch, args.seed + 2);
        let cent = d.distribute_centralized(&batch, args.seed + 2);
        drop(d);
        let c_naive = sim.comm_cost_of(&naive);
        let c_greedy = sim.comm_cost_of(&greedy.assignment);
        let c_hier = sim.comm_cost_of(&hier.assignment);
        let c_cent = sim.comm_cost_of(&cent.assignment);
        println!(
            "{n:>8} {c_naive:>14.0} {c_greedy:>14.0} {c_hier:>14.0} {c_cent:>14.0}   {:>9.2}s {:>9.2}s {:>9.2}s",
            hier.timing.response.as_secs_f64(),
            hier.timing.total.as_secs_f64(),
            cent.timing.total.as_secs_f64(),
        );
        rows.push(serde_json::json!({
            "queries": n,
            "naive": c_naive,
            "greedy": c_greedy,
            "hierarchical": c_hier,
            "centralized": c_cent,
            "hier_response_s": hier.timing.response.as_secs_f64(),
            "hier_total_s": hier.timing.total.as_secs_f64(),
            "centralized_s": cent.timing.total.as_secs_f64(),
        }));
    }
    println!("\nShape checks (paper Figure 6):");
    let last = rows.last().expect("nonempty sweep");
    let ok1 = last["naive"].as_f64() > last["hierarchical"].as_f64();
    let ok2 = last["centralized_s"].as_f64() > last["hier_response_s"].as_f64();
    println!("  naive > hierarchical comm cost at max size: {ok1}");
    println!("  centralized time > hierarchical response time at max size: {ok2}");
    write_result("fig6", &serde_json::json!({"scale": args.scale, "rows": rows}));
}
