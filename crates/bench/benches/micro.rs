//! Criterion micro-benchmarks for the hot paths of the COSMOS middleware:
//! interest-vector math (§3.2), coarsening (Algorithm 1), graph mapping
//! (Algorithm 2), online routing (§3.6), load diffusion (§3.7), the
//! Pub/Sub broker, and the stream engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cosmos_bench::fixtures::{
    arrival_sub, batch_round, broad_message, broker_with_broad_subs, broker_with_distinct_subs,
    broker_with_distinct_subs_bulk, broker_with_subs, checkpointed_engine, churn_link, churn_node,
    lossy_broker, recovery_host, scaling_message, scaling_sub, shared_split_queries,
};
use cosmos_core::coarsen::coarsen_wholesale;
use cosmos_core::distribute::Distributor;
use cosmos_core::graph::{edge_weight, QgVertex, QueryGraph};
use cosmos_core::hierarchy::CoordinatorTree;
use cosmos_core::online::OnlineRouter;
use cosmos_core::spec::QuerySpec;
use cosmos_engine::exec::StreamEngine;
use cosmos_engine::tuple::Tuple;
use cosmos_net::Deployment;
use cosmos_pubsub::subscription::SubId;
use cosmos_pubsub::SubstreamTable;
use cosmos_query::{parse_query, QueryId, Scalar};
use cosmos_util::rng::rng_for;
use cosmos_util::solver::diffusion_solution;
use cosmos_util::InterestSet;
use cosmos_workload::generator::QueryGenerator;
use cosmos_workload::{PaperParams, WorkloadConfig};
use rand::Rng;

fn bench_interest_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("interest-set");
    for universe in [2_000usize, 20_000] {
        let mut rng = rng_for(1, "bench-bitset");
        let a = InterestSet::from_indices(universe, (0..150).map(|_| rng.gen_range(0..universe)));
        let b = InterestSet::from_indices(universe, (0..150).map(|_| rng.gen_range(0..universe)));
        let rates: Vec<f64> = (0..universe).map(|i| 1.0 + (i % 10) as f64).collect();
        group.bench_with_input(
            BenchmarkId::new("weighted_overlap", universe),
            &universe,
            |bench, _| bench.iter(|| black_box(a.weighted_overlap(&b, &rates))),
        );
        group.bench_with_input(BenchmarkId::new("overlaps", universe), &universe, |bench, _| {
            bench.iter(|| black_box(a.overlaps(&b)))
        });
    }
    group.finish();
}

fn workload_fixture() -> (Deployment, SubstreamTable, Vec<QuerySpec>) {
    let params = PaperParams::scaled(0.05);
    let topo = params.topology.generate(7);
    let dep = Deployment::assign(topo, params.n_sources, params.n_processors, 7);
    let table = SubstreamTable::random(
        params.n_substreams,
        params.n_sources,
        params.rate_min,
        params.rate_max,
        7,
    );
    let mut generator = QueryGenerator::new(WorkloadConfig::from_params(&params), 7);
    let specs = generator.generate(500, &dep, &table, 8);
    (dep, table, specs)
}

fn bench_coarsen(c: &mut Criterion) {
    let (dep, table, specs) = workload_fixture();
    let tree = CoordinatorTree::build(&dep, 4);
    let d = Distributor::new(&dep, &tree, &table);
    // Build a 500-query graph once.
    let rates = table.rates();
    let vertices: Vec<QgVertex> = specs
        .iter()
        .map(|s| QgVertex::for_query(s.id, s.interest.clone(), s.load, s.proxy, s.result_rate, 1.0))
        .collect();
    let mut graph = QueryGraph::new(vertices);
    for i in 0..graph.len() {
        for j in (i + 1)..graph.len().min(i + 40) {
            let w = edge_weight(&graph.vertices[i], &graph.vertices[j], rates);
            if w > 0.0 {
                graph.set_edge(i, j, w);
            }
        }
    }
    let _ = d;
    c.bench_function("coarsen/500-to-64", |bench| {
        bench.iter(|| black_box(coarsen_wholesale(&graph, 64, rates, &|_| None, 3)))
    });
}

fn bench_distribution(c: &mut Criterion) {
    let (dep, table, specs) = workload_fixture();
    let tree = CoordinatorTree::build(&dep, 4);
    let d = Distributor::new(&dep, &tree, &table);
    let mut group = c.benchmark_group("distribute");
    group.sample_size(10);
    group.bench_function("hierarchical/500q", |bench| {
        bench.iter(|| black_box(d.distribute(&specs, 5)))
    });
    group.bench_function("centralized/500q", |bench| {
        bench.iter(|| black_box(d.distribute_centralized(&specs, 5)))
    });
    group.finish();
}

/// The `core/adapt-round-*` twins of the snapshot runner, at a smaller
/// population so the criterion run stays interactive: one stat-delta
/// round touching 1% of the queries through the incremental optimizer,
/// against the wholesale recompute producing the identical assignment.
fn bench_adapt_round(c: &mut Criterion) {
    use cosmos_bench::fixtures::{adapt_world, toggle_dirty, AdaptWorld, ADAPT_SEED};
    use cosmos_core::adaptive::{adapt_wholesale, AdaptConfig};
    use cosmos_core::IncrementalOptimizer;

    let AdaptWorld { dep, tree, table, mut specs, current, dirty } = adapt_world(2_000);
    let config = AdaptConfig::default();
    let d = Distributor::new(&dep, &tree, &table);
    let mut group = c.benchmark_group("adapt-round");
    group.sample_size(10);
    let mut opt = IncrementalOptimizer::new(ADAPT_SEED, config).expect("default config is valid");
    let _ = opt.round(&d, &specs, &current);
    let mut step = 0u64;
    group.bench_function("incremental/2000q", |bench| {
        bench.iter(|| {
            toggle_dirty(&mut specs, &dirty, step);
            step += 1;
            black_box(opt.round(&d, &specs, &current).migrations)
        })
    });
    group.bench_function("wholesale/2000q", |bench| {
        bench.iter(|| {
            toggle_dirty(&mut specs, &dirty, step);
            step += 1;
            black_box(adapt_wholesale(&d, &specs, &current, &config, ADAPT_SEED).migrations)
        })
    });
    group.finish();
}

fn bench_online_routing(c: &mut Criterion) {
    let (dep, table, specs) = workload_fixture();
    let tree = CoordinatorTree::build(&dep, 4);
    let d = Distributor::new(&dep, &tree, &table);
    let assignment = d.distribute(&specs, 5).assignment;
    drop(d);
    let mut router = OnlineRouter::new(&dep, &tree, &table, 0.1);
    router.seed_from(&specs, &assignment);
    let probe = &specs[0];
    c.bench_function("online/route_at_root", |bench| {
        bench.iter(|| black_box(router.route_at(tree.root(), probe)))
    });
}

fn bench_diffusion(c: &mut Criterion) {
    let loads: Vec<f64> = (0..64).map(|i| (i % 7) as f64 * 3.0).collect();
    let edges: Vec<(usize, usize)> =
        (0..64).flat_map(|i| ((i + 1)..64).map(move |j| (i, j))).collect();
    c.bench_function("diffusion/64-children", |bench| {
        bench.iter(|| black_box(diffusion_solution(&loads, &edges)))
    });
}

fn bench_broker(c: &mut Criterion) {
    // Scaling points for the sublinear-matching claim (the delivery log is
    // drained periodically so long runs stay memory-bounded; the amortized
    // cost is negligible).
    for n_subs in [50u64, 500, 5000] {
        let mut net = broker_with_subs(n_subs);
        c.bench_function(&format!("pubsub/publish-{n_subs}-subs"), |bench| {
            bench.iter(|| {
                let n = net.publish(scaling_message());
                if net.log().len() > 250_000 {
                    net.reset_stats();
                }
                black_box(n)
            })
        });
    }
    // The linear-scan reference points: the gap to the indexed
    // `publish-*-subs` twins is the index's win.
    for n_subs in [500u64, 5000] {
        let mut net = broker_with_subs(n_subs);
        c.bench_function(&format!("pubsub/publish-{n_subs}-subs-linear"), |bench| {
            bench.iter(|| {
                let n = net.publish_linear(scaling_message());
                if net.log().len() > 250_000 {
                    net.reset_stats();
                }
                black_box(n)
            })
        });
    }
    // High-match-rate points: delivery volume dominates, so the gap
    // between the indexed path and its linear twin is the projection-class
    // dedup plus zero-copy delivery.
    let mut net = broker_with_broad_subs(500);
    c.bench_function("pubsub/publish-500-subs-broad", |bench| {
        bench.iter(|| {
            let n = net.publish(broad_message());
            if net.log().len() > 250_000 {
                net.reset_stats();
            }
            black_box(n)
        })
    });
    let mut net = broker_with_broad_subs(500);
    c.bench_function("pubsub/publish-500-subs-broad-linear", |bench| {
        bench.iter(|| {
            let n = net.publish_linear(broad_message());
            if net.log().len() > 250_000 {
                net.reset_stats();
            }
            black_box(n)
        })
    });
}

/// Parallel publish over a frozen routing snapshot: N persistent readers
/// each publish a strided share of a 64-message round through the same
/// immutable snapshot; the reported time is the round divided by its
/// message count, comparable to `pubsub/publish-5000-subs`. Thread counts
/// beyond the host's cores only measure scheduling overhead.
fn bench_broker_parallel(c: &mut Criterion) {
    const ROUND: usize = 64;
    for threads in [1usize, 2, 4, 8] {
        let net = broker_with_subs(5000);
        let snap = net.snapshot();
        let mut readers: Vec<_> = (0..threads).map(|_| snap.reader()).collect();
        c.bench_function(&format!("pubsub/publish-par-{threads}-threads"), |bench| {
            bench.iter(|| {
                let delivered: usize = std::thread::scope(|scope| {
                    let handles: Vec<_> = readers
                        .iter_mut()
                        .enumerate()
                        .map(|(t, reader)| {
                            scope.spawn(move || {
                                for k in (t..ROUND).step_by(threads) {
                                    reader.publish_at(k as u64, scaling_message());
                                }
                                reader.take_output().delivered()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });
                black_box(delivered)
            })
        });
    }
}

/// Batched ingestion and the large-population arrival point — the
/// criterion twins of `bench_json`'s `broker/publish-batch-64{,-serial}`
/// and `broker/subscribe-100k-pop`. The batch pair runs a 64-message
/// same-stream round against the distinct (≈1 match per message)
/// population, where fixed per-hop overheads dominate and batching
/// amortizes them; the 100k arrival point checks that the tiered
/// threshold lists keep install cost near the 5000-pop point.
fn bench_broker_batch(c: &mut Criterion) {
    let msgs = batch_round(64, 5000);
    let mut net = broker_with_distinct_subs(5000);
    c.bench_function("broker/publish-batch-64", |bench| {
        bench.iter(|| {
            let n = net.publish_batch(&msgs);
            if net.log().len() > 250_000 {
                net.reset_stats();
            }
            black_box(n)
        })
    });
    let mut net = broker_with_distinct_subs(5000);
    c.bench_function("broker/publish-batch-64-serial", |bench| {
        bench.iter(|| {
            let n: usize = msgs.iter().map(|m| net.publish(m.clone())).sum();
            if net.log().len() > 250_000 {
                net.reset_stats();
            }
            black_box(n)
        })
    });
    let pop = 100_000u64;
    let mut net = broker_with_distinct_subs_bulk(pop);
    let mut group = c.benchmark_group("broker-subscribe-100k");
    group.sample_size(10);
    group.bench_function("subscribe-100k-pop", |bench| {
        bench.iter(|| {
            net.subscribe(arrival_sub(pop));
            net.unsubscribe(SubId(pop));
        })
    });
    group.finish();
}

/// Control-plane churn against a 5000-subscription standing population:
/// departure + identical re-arrival, and stub-link failure + recovery.
/// The incremental ledger touches only the victim's footprint (plus its
/// covering dependents); the `-wholesale` twins rebuild the world and are
/// the baseline the sublinear-churn claim is measured against.
fn bench_broker_churn(c: &mut Criterion) {
    let n_subs = 5000u64;
    // Subscription arrival against a covering-sparse standing population
    // (one fresh distinct subscription installed and incrementally
    // removed per op): the covering buckets resolve every path hop's
    // covering queries from binary-searched threshold skeletons; the
    // -linear twin runs the reference scans over the same (identical)
    // routing state.
    let mut net = broker_with_distinct_subs(n_subs);
    c.bench_function("pubsub/subscribe-5000-pop", |bench| {
        bench.iter(|| {
            net.subscribe(arrival_sub(n_subs));
            net.unsubscribe(SubId(n_subs));
        })
    });
    let mut net = broker_with_distinct_subs(n_subs);
    net.set_linear_install(true);
    let mut group = c.benchmark_group("pubsub-subscribe-linear");
    group.sample_size(10);
    group.bench_function("subscribe-5000-pop-linear", |bench| {
        bench.iter(|| {
            net.subscribe(arrival_sub(n_subs));
            net.unsubscribe(SubId(n_subs));
        })
    });
    group.finish();
    let window = n_subs / 5;
    let mut net = broker_with_subs(n_subs);
    let mut step = 0u64;
    c.bench_function("pubsub/unsubscribe-5000-pop", |bench| {
        bench.iter(|| {
            let id = n_subs - window + (step % window);
            step += 1;
            net.unsubscribe(SubId(id));
            net.subscribe(scaling_sub(id));
        })
    });
    let mut net = broker_with_subs(n_subs);
    let mut step = 0u64;
    let mut group = c.benchmark_group("pubsub-churn-wholesale");
    group.sample_size(10);
    group.bench_function("unsubscribe-5000-pop-wholesale", |bench| {
        bench.iter(|| {
            let id = n_subs - window + (step % window);
            step += 1;
            net.unsubscribe_wholesale(SubId(id));
            net.subscribe(scaling_sub(id));
        })
    });
    group.finish();
    let mut net = broker_with_subs(n_subs);
    let (a, b, lat) = churn_link(&net);
    c.bench_function("pubsub/fail-link-5000-pop", |bench| {
        bench.iter(|| {
            assert!(net.fail_link(a, b));
            assert!(net.restore_link(a, b, lat));
        })
    });
    let mut net = broker_with_subs(n_subs);
    let mut group = c.benchmark_group("pubsub-churn-wholesale");
    group.sample_size(10);
    group.bench_function("fail-link-5000-pop-wholesale", |bench| {
        bench.iter(|| {
            assert!(net.fail_link_wholesale(a, b));
            assert!(net.restore_link_wholesale(a, b, lat));
        })
    });
    group.finish();
    // Whole-node crash + recovery of a non-subscriber transit broker: the
    // incremental path re-homes only the subtrees routed through it.
    let mut net = broker_with_subs(n_subs);
    let n = churn_node(&net);
    c.bench_function("pubsub/fail-node-5000-pop", |bench| {
        bench.iter(|| {
            let edges = net.fail_node(n).expect("churn node is attached");
            assert!(net.restore_node(n, &edges));
        })
    });
    let mut net = broker_with_subs(n_subs);
    let mut group = c.benchmark_group("pubsub-churn-wholesale");
    group.sample_size(10);
    group.bench_function("fail-node-5000-pop-wholesale", |bench| {
        bench.iter(|| {
            let edges = net.fail_node_wholesale(n).expect("churn node is attached");
            assert!(net.restore_node_wholesale(n, &edges));
        })
    });
    group.finish();
}

/// One publish driven through the reliable-delivery plane to quiescence,
/// at 5% drop (every twentieth frame retransmitted after an RTO) vs the
/// identical window/ack machinery over a clean schedule — the gap prices
/// retransmit overhead alone.
fn bench_broker_lossy(c: &mut Criterion) {
    for (name, drop) in [("pubsub/publish-lossy-5pct", 0.05), ("pubsub/publish-lossy-clean", 0.0)] {
        let mut lossy = lossy_broker(5000, drop);
        c.bench_function(name, |bench| {
            bench.iter(|| {
                assert!(lossy.publish_lossy(scaling_message()));
                lossy.run_to_quiescence();
                // Drained periodically so long runs stay memory-bounded.
                if lossy.delivered() > 250_000 {
                    lossy.reset_stats();
                }
            })
        });
    }
}

/// Shared execution with heavily duplicated residuals: 50 members, one
/// merged group, two distinct residual conjunctions.
fn bench_shared_split(c: &mut Criterion) {
    let mut shared = cosmos_engine::SharedEngine::build(shared_split_queries(50));
    assert_eq!(shared.group_count(), 1);
    let mut ts = 0i64;
    c.bench_function("engine/shared-split-50-members", |bench| {
        bench.iter(|| {
            ts += 100;
            let r =
                Tuple::new("R", ts).with("k", Scalar::Int(ts % 10)).with("v", Scalar::Int(ts % 40));
            let s =
                Tuple::new("S", ts + 50).with("k", Scalar::Int(ts % 10)).with("v", Scalar::Int(1));
            shared.push(r);
            black_box(shared.push(s).len())
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut engine = StreamEngine::new();
    for i in 0..20u64 {
        engine.add_query(
            QueryId(i),
            parse_query(&format!(
                "SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k AND R.v > {}",
                i * 5
            ))
            .unwrap(),
        );
    }
    let mut ts = 0i64;
    c.bench_function("engine/push-20-queries", |bench| {
        bench.iter(|| {
            ts += 100;
            let r =
                Tuple::new("R", ts).with("k", Scalar::Int(ts % 5)).with("v", Scalar::Int(ts % 100));
            let s =
                Tuple::new("S", ts + 50).with("k", Scalar::Int(ts % 5)).with("v", Scalar::Int(1));
            engine.push(r);
            black_box(engine.push(s).len())
        })
    });
}

/// Checkpoint extract + restore of a 5000-tuple window population, and
/// a full crash/restore cycle of an engine host against the standing
/// 5000-subscription broker population — the recovery-plane twins of
/// `bench_json`'s `engine/checkpoint-5000-window` and
/// `broker/recover-engine-5000-pop`.
fn bench_recovery(c: &mut Criterion) {
    let engine = checkpointed_engine(5000);
    let mut target = checkpointed_engine(0);
    c.bench_function("engine/checkpoint-5000-window", |bench| {
        bench.iter(|| {
            let cp = engine.checkpoint();
            target.restore(&cp);
            black_box(cp.watermark)
        })
    });
    let (mut r, host) = recovery_host(5000, 512, 32);
    c.bench_function("broker/recover-engine-5000-pop", |bench| {
        bench.iter(|| {
            r.crash_host(host);
            r.restore_host(host);
            black_box(r.output_log(host).len())
        })
    });
}

fn bench_containment(c: &mut Criterion) {
    let q3 = parse_query(
        "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
         WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
    )
    .unwrap();
    let q4 = parse_query(
        "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
         FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
         WHERE S1.snowHeight > S2.snowHeight",
    )
    .unwrap();
    c.bench_function("containment/merge-pair", |bench| {
        bench.iter(|| {
            black_box(cosmos_query::merge_queries(&[(QueryId(3), &q3), (QueryId(4), &q4)]))
        })
    });
}

criterion_group!(
    benches,
    bench_interest_sets,
    bench_coarsen,
    bench_distribution,
    bench_adapt_round,
    bench_online_routing,
    bench_diffusion,
    bench_broker,
    bench_broker_parallel,
    bench_broker_batch,
    bench_broker_churn,
    bench_broker_lossy,
    bench_engine,
    bench_shared_split,
    bench_recovery,
    bench_containment,
);
criterion_main!(benches);
