//! The SensorScope substitute for the prototype study (§4.2).
//!
//! The paper deploys on PlanetLab with "real readings from 100 sensors
//! deployed in our SensorScope project" and GSN as the engine; "5 nodes act
//! as the data sources, each with equal number of sensors. A number
//! (250–4000) of random queries are generated. Each query contains one to
//! three random selection predicates on the sensor readings and sensor
//! types together with one to three join predicates on the timestamp. A
//! random node is chosen as the proxy for each query."
//!
//! We cannot ship SensorScope data, so [`SensorScenario`] synthesizes it:
//! one stream per sensor with random-walk `snowHeight` / `temperature`
//! readings (realistic alpine ranges), CQL queries drawn exactly per the
//! quoted recipe, and the mapping from a CQL query to the abstract
//! [`QuerySpec`] the optimizer consumes (interest = the sensors read).

use cosmos_core::spec::QuerySpec;
use cosmos_engine::tuple::Tuple;
use cosmos_net::{Deployment, NodeId, TransitStubConfig};
use cosmos_pubsub::SubstreamTable;
use cosmos_query::{parse_query, Query, QueryId, Scalar};
use cosmos_util::rng::{rng_for, rng_for_indexed};
use cosmos_util::InterestSet;
use rand::Rng;
use std::collections::HashMap;

/// A synthetic sensor-network deployment.
#[derive(Debug)]
pub struct SensorScenario {
    /// Wide-area deployment (PlanetLab-like latencies).
    pub dep: Deployment,
    /// One substream per sensor.
    pub table: SubstreamTable,
    /// Sensor stream names, indexed by sensor id.
    pub streams: Vec<String>,
    /// Stream name → rate (bytes/s).
    pub stream_rate: HashMap<String, f64>,
    /// Stream name → source node.
    pub stream_source: HashMap<String, NodeId>,
}

impl SensorScenario {
    /// Builds the §4.2 environment: `n_sensors` spread evenly over
    /// `n_sources` source nodes, `n_processors` PlanetLab-like nodes.
    pub fn build(n_sensors: usize, n_sources: usize, n_processors: usize, seed: u64) -> Self {
        let mut cfg = TransitStubConfig::planetlab_scale();
        // Make sure the topology is large enough for the requested roles.
        while cfg.node_count() < n_sources + n_processors + 4 {
            cfg.stub_nodes_per_domain += 2;
        }
        let topo = cfg.generate(seed);
        let dep = Deployment::assign(topo, n_sources, n_processors, seed);
        let table = SubstreamTable::from_parts((0..n_sensors).map(|s| s % n_sources).collect(), {
            let mut rng = rng_for(seed, "sensor-rates");
            (0..n_sensors).map(|_| rng.gen_range(4.0..=16.0)).collect()
        });
        let streams: Vec<String> = (0..n_sensors).map(|i| format!("Sensor{i}")).collect();
        let mut stream_rate = HashMap::new();
        let mut stream_source = HashMap::new();
        for (i, name) in streams.iter().enumerate() {
            stream_rate.insert(name.clone(), table.rate(i));
            stream_source.insert(name.clone(), dep.sources()[table.source_index(i)]);
        }
        Self { dep, table, streams, stream_rate, stream_source }
    }

    /// Generates `n` random CQL queries per the paper's recipe, returning
    /// `(id, query, proxy)` triples.
    pub fn generate_cql(&self, n: usize, seed: u64) -> Vec<(QueryId, Query, NodeId)> {
        let mut rng = rng_for(seed, "sensor-queries");
        let procs = self.dep.processors();
        (0..n)
            .map(|i| {
                let a = rng.gen_range(0..self.streams.len());
                let mut b = rng.gen_range(0..self.streams.len());
                if b == a {
                    b = (b + 1) % self.streams.len();
                }
                let w1 = rng.gen_range(10..=60);
                let n_sel = rng.gen_range(1..=3);
                let mut preds: Vec<String> = Vec::new();
                for _ in 0..n_sel {
                    let (alias, attr) =
                        if rng.gen_bool(0.5) { ("X", "snowHeight") } else { ("Y", "temperature") };
                    let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
                    let c: i64 = if attr == "snowHeight" {
                        rng.gen_range(0..120)
                    } else {
                        rng.gen_range(-30..25)
                    };
                    preds.push(format!("{alias}.{attr} {op} {c}"));
                }
                // 1–3 join predicates on the timestamp.
                let n_join = rng.gen_range(1..=3);
                let join_ops = ["=", ">=", "<="];
                for j in 0..n_join {
                    preds.push(format!("X.timestamp {} Y.timestamp", join_ops[j % 3]));
                }
                let text = format!(
                    "SELECT X.*, Y.* FROM {} [Range {w1} Seconds] X, {} [Now] Y WHERE {}",
                    self.streams[a],
                    self.streams[b],
                    preds.join(" AND "),
                );
                let query = parse_query(&text).expect("generated CQL must parse");
                let proxy = procs[rng.gen_range(0..procs.len())];
                (QueryId(i as u64), query, proxy)
            })
            .collect()
    }

    /// Maps a CQL query onto the abstract spec the distribution layer uses:
    /// interest = the sensor substreams the query reads.
    pub fn to_spec(&self, id: QueryId, query: &Query, proxy: NodeId) -> QuerySpec {
        let interest = InterestSet::from_indices(
            self.streams.len(),
            query.streams().filter_map(|s| self.streams.iter().position(|n| n == s)),
        );
        let input_rate = interest.weighted_len(self.table.rates());
        QuerySpec {
            id,
            interest,
            load: input_rate * 0.001,
            proxy,
            result_rate: input_rate * 0.1,
            state_size: 1.0,
        }
    }

    /// Synthesizes `n` random-walk readings for `sensor`, one per
    /// `period_ms`, starting at `t0_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn readings(
        &self,
        sensor: usize,
        n: usize,
        t0_ms: i64,
        period_ms: i64,
        seed: u64,
    ) -> Vec<Tuple> {
        assert!(sensor < self.streams.len(), "unknown sensor {sensor}");
        let mut rng = rng_for_indexed(seed, "readings", sensor as u64);
        let mut snow: f64 = rng.gen_range(0.0..80.0);
        let mut temp: f64 = rng.gen_range(-15.0..10.0);
        (0..n)
            .map(|i| {
                snow = (snow + rng.gen_range(-3.0f64..3.0)).clamp(0.0, 150.0);
                temp = (temp + rng.gen_range(-1.0f64..1.0)).clamp(-40.0, 35.0);
                Tuple::new(self.streams[sensor].clone(), t0_ms + i as i64 * period_ms)
                    .with("snowHeight", Scalar::Int(snow.round() as i64))
                    .with("temperature", Scalar::Int(temp.round() as i64))
                    .with("sensorType", Scalar::Int((sensor % 3) as i64))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> SensorScenario {
        SensorScenario::build(20, 5, 10, 1)
    }

    #[test]
    fn build_assigns_roles() {
        let s = scenario();
        assert_eq!(s.dep.sources().len(), 5);
        assert_eq!(s.dep.processors().len(), 10);
        assert_eq!(s.streams.len(), 20);
        // Sensors spread evenly: 4 per source.
        for src in 0..5 {
            let count = (0..20).filter(|&i| s.table.source_index(i) == src).count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn generated_queries_parse_and_follow_recipe() {
        let s = scenario();
        let qs = s.generate_cql(25, 2);
        assert_eq!(qs.len(), 25);
        for (_, q, proxy) in &qs {
            assert_eq!(q.relations.len(), 2);
            let sels = q.selection_predicates().count();
            assert!((1..=3).contains(&sels), "{sels} selections");
            let joins = q.join_predicates().count();
            assert!((1..=3).contains(&joins), "{joins} joins");
            assert!(s.dep.processors().contains(proxy));
        }
    }

    #[test]
    fn to_spec_reads_the_right_sensors() {
        let s = scenario();
        let (id, q, proxy) = s.generate_cql(1, 3).remove(0);
        let spec = s.to_spec(id, &q, proxy);
        assert_eq!(spec.interest.len(), 2);
        for stream in q.streams() {
            let idx = s.streams.iter().position(|n| n == stream).unwrap();
            assert!(spec.interest.contains(idx), "interest must include {stream}");
        }
    }

    #[test]
    fn readings_are_ordered_and_in_range() {
        let s = scenario();
        let r = s.readings(3, 50, 1_000, 500, 4);
        assert_eq!(r.len(), 50);
        for (i, t) in r.iter().enumerate() {
            assert_eq!(t.timestamp, 1_000 + i as i64 * 500);
            let snow = t.get("snowHeight").unwrap().as_f64().unwrap();
            assert!((0.0..=150.0).contains(&snow));
        }
    }

    #[test]
    fn readings_are_deterministic() {
        let s = scenario();
        let a = s.readings(0, 10, 0, 1000, 9);
        let b = s.readings(0, 10, 0, 1000, 9);
        assert_eq!(a, b);
    }
}
