//! The simulation driver shared by every figure bench and the integration
//! tests.
//!
//! Owns the deployment, the (mutable) substream table, the coordinator
//! tree, the query population, and the current assignment. Exposes the two
//! measured quantities of §4.1 — the weighted communication cost (computed
//! under Pub/Sub multicast-sharing semantics) and the standard deviation of
//! processor loads — plus the workload events the experiments replay:
//! query arrivals (Figure 8), rate perturbations (Figure 10), and
//! adaptation rounds (Figures 7/8/10).

use crate::generator::{QueryGenerator, WorkloadConfig};
use crate::params::{PaperParams, RecoveryParams};
use cosmos_core::adaptive::{adapt_wholesale, AdaptConfig, AdaptOutcome};
use cosmos_core::distribute::{DistConfig, Distributor};
use cosmos_core::hierarchy::CoordinatorTree;
use cosmos_core::incremental::IncrementalOptimizer;
use cosmos_core::online::OnlineRouter;
use cosmos_core::spec::{Assignment, QuerySpec};
use cosmos_core::stats::StatDelta;
use cosmos_net::{Deployment, NodeId, Topology};
use cosmos_pubsub::{
    BrokerNetwork, LossyNetwork, Message, RecoveryNetwork, SubId, Subscription, SubstreamTable,
    TrafficModel,
};
use cosmos_query::{Query, QueryId};
use cosmos_util::rng::rng_for;
use cosmos_util::stats::stddev;
use cosmos_util::Symbol;
use rand::seq::SliceRandom;

/// A [`BrokerNetwork`] whose churn operations re-validate the installation
/// ledger after every step in debug builds.
///
/// The differential test suites assert
/// [`BrokerNetwork::check_ledger_consistency`] after each churn operation,
/// but simulator-driven churn historically ran unchecked — ledger drift
/// introduced by a new scenario only surfaced once a dedicated test covered
/// it. Routing churn through this wrapper makes every debug simulator run a
/// free ledger audit; release builds compile the check away entirely.
#[derive(Debug)]
pub struct BrokerSim {
    net: BrokerNetwork,
}

impl BrokerSim {
    /// Wraps a broker network over `topo`.
    pub fn new(topo: Topology) -> Self {
        Self { net: BrokerNetwork::new(topo) }
    }

    /// Read access to the wrapped network (publishing, stats, snapshots).
    pub fn network(&self) -> &BrokerNetwork {
        &self.net
    }

    /// Mutable access for non-churn operations (publishing mutates stats).
    ///
    /// Churn performed through this borrow bypasses the debug audit; prefer
    /// the wrapper's own churn methods.
    pub fn network_mut(&mut self) -> &mut BrokerNetwork {
        &mut self.net
    }

    /// Unwraps the audited network.
    pub fn into_inner(self) -> BrokerNetwork {
        self.net
    }

    /// [`BrokerNetwork::advertise`], audited.
    pub fn advertise(&mut self, stream: impl Into<Symbol>, source: NodeId) {
        self.net.advertise(stream, source);
        self.audit("advertise");
    }

    /// [`BrokerNetwork::subscribe`], audited.
    pub fn subscribe(&mut self, sub: Subscription) {
        self.net.subscribe(sub);
        self.audit("subscribe");
    }

    /// [`BrokerNetwork::unsubscribe`], audited.
    pub fn unsubscribe(&mut self, id: SubId) {
        self.net.unsubscribe(id);
        self.audit("unsubscribe");
    }

    /// [`BrokerNetwork::fail_link`], audited.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> bool {
        let hit = self.net.fail_link(a, b);
        self.audit("fail_link");
        hit
    }

    /// [`BrokerNetwork::restore_link`], audited.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId, latency: f64) -> bool {
        let fresh = self.net.restore_link(a, b, latency);
        self.audit("restore_link");
        fresh
    }

    /// [`BrokerNetwork::fail_node`], audited.
    pub fn fail_node(&mut self, n: NodeId) -> Option<Vec<(NodeId, f64)>> {
        let edges = self.net.fail_node(n);
        self.audit("fail_node");
        edges
    }

    /// [`BrokerNetwork::restore_node`], audited.
    pub fn restore_node(&mut self, n: NodeId, edges: &[(NodeId, f64)]) -> bool {
        let attached = self.net.restore_node(n, edges);
        self.audit("restore_node");
        attached
    }

    #[inline]
    fn audit(&self, op: &str) {
        #[cfg(debug_assertions)]
        if let Err(why) = self.net.check_ledger_consistency() {
            panic!("ledger drift after {op}: {why}");
        }
        #[cfg(not(debug_assertions))]
        let _ = op;
    }
}

/// Outcome of one [`RecoverySim::fault_step`] roll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Crashed the named engine host.
    Killed(NodeId),
    /// Restored the named engine host (reverse crash order).
    Restored(NodeId),
    /// No fault this step: the roll landed in the workload share, no host
    /// was safely killable, or nothing was down to restore.
    Idle,
}

/// A [`RecoveryNetwork`] whose churn operations re-validate the broker
/// ledger *and* the replay-retention bound after every step in debug
/// builds — the crash-recovery analogue of [`BrokerSim`].
///
/// Beyond auditing, it turns [`RecoveryParams`] into workload behaviour:
/// the checkpoint interval paces the simulated-time schedule, and
/// [`RecoverySim::fault_step`] rolls the kill/restore weights into the
/// step mix, guarding kills so the surviving overlay stays connected
/// (an engine cut off from its upstreams could never converge) and
/// restoring in reverse crash order (the only order guaranteed to
/// rebuild the pre-crash topology from the saved edge batches).
#[derive(Debug)]
pub struct RecoverySim {
    r: RecoveryNetwork,
    params: RecoveryParams,
    crash_stack: Vec<NodeId>,
}

impl RecoverySim {
    /// Wraps a recovery network over `lossy`, checkpointing at the
    /// scenario's interval. Rejects invalid knobs up front (see
    /// [`RecoveryParams::validate`]).
    pub fn new(lossy: LossyNetwork, params: RecoveryParams) -> Result<Self, String> {
        params.validate()?;
        Ok(Self {
            r: RecoveryNetwork::new(lossy, params.checkpoint_interval),
            params,
            crash_stack: Vec::new(),
        })
    }

    /// The scenario knobs this simulator runs under.
    pub fn params(&self) -> &RecoveryParams {
        &self.params
    }

    /// Read access to the wrapped recovery network.
    pub fn recovery(&self) -> &RecoveryNetwork {
        &self.r
    }

    /// Mutable access to the wrapped network. Churn performed through
    /// this borrow bypasses the debug audit and the crash stack; prefer
    /// the wrapper's own operations.
    pub fn recovery_mut(&mut self) -> &mut RecoveryNetwork {
        &mut self.r
    }

    /// Unwraps the audited network.
    pub fn into_inner(self) -> RecoveryNetwork {
        self.r
    }

    /// Hosts whose engines are currently down, most recent crash last.
    pub fn crashed(&self) -> &[NodeId] {
        &self.crash_stack
    }

    /// [`RecoveryNetwork::host_engine`], audited.
    pub fn host_engine(&mut self, node: NodeId, queries: Vec<(QueryId, Query)>) {
        self.r.host_engine(node, queries);
        self.audit("host_engine");
    }

    /// [`RecoveryNetwork::publish`] — unaudited, it is the hot path; the
    /// next settle or churn operation audits its effects.
    pub fn publish(&mut self, msg: Message) -> bool {
        self.r.publish(msg)
    }

    /// [`RecoveryNetwork::settle`], audited.
    pub fn settle(&mut self) {
        self.r.settle();
        self.audit("settle");
    }

    /// [`RecoveryNetwork::checkpoint_now`], audited.
    pub fn checkpoint_now(&mut self, node: NodeId) {
        self.r.checkpoint_now(node);
        self.audit("checkpoint_now");
    }

    /// [`RecoveryNetwork::crash_host`], audited and recorded on the
    /// crash stack.
    pub fn crash_host(&mut self, node: NodeId) {
        self.r.crash_host(node);
        self.crash_stack.push(node);
        self.audit("crash_host");
    }

    /// [`RecoveryNetwork::restore_host`], audited and removed from the
    /// crash stack.
    pub fn restore_host(&mut self, node: NodeId) {
        self.r.restore_host(node);
        self.crash_stack.retain(|&n| n != node);
        self.audit("restore_host");
    }

    /// Rolls one fault-plane step of the workload mix. `roll` is taken
    /// modulo 100 against the scenario weights: the kill share crashes a
    /// safely killable host (chosen by `pick`), the restore share brings
    /// back the most recently crashed one, and the rest of the budget is
    /// the caller's workload (publishes) — [`FaultOp::Idle`] here.
    pub fn fault_step(&mut self, roll: u32, pick: usize) -> FaultOp {
        let roll = roll % 100;
        if roll < self.params.kill_weight {
            let candidates = self.killable();
            if candidates.is_empty() {
                return FaultOp::Idle;
            }
            let victim = candidates[pick % candidates.len()];
            self.crash_host(victim);
            return FaultOp::Killed(victim);
        }
        if roll < self.params.kill_weight + self.params.restore_weight {
            if let Some(&node) = self.crash_stack.last() {
                self.restore_host(node);
                return FaultOp::Restored(node);
            }
        }
        FaultOp::Idle
    }

    /// Live engine hosts whose crash would keep every surviving node in
    /// one connected component — the overlay can then still route every
    /// publish to every live engine, so replay logs stay bounded and
    /// recovery converges.
    fn killable(&self) -> Vec<NodeId> {
        let topo = self.r.network().topology();
        let down: Vec<NodeId> = self.r.host_nodes().filter(|&n| !self.r.is_up(n)).collect();
        let live: Vec<NodeId> = self.r.host_nodes().filter(|&n| self.r.is_up(n)).collect();
        live.into_iter()
            .filter(|&victim| {
                let dead: Vec<NodeId> =
                    down.iter().copied().chain(std::iter::once(victim)).collect();
                let Some(start) =
                    (0..topo.node_count() as u32).map(NodeId).find(|n| !dead.contains(n))
                else {
                    return false;
                };
                let mut seen = vec![start];
                let mut stack = vec![start];
                while let Some(u) = stack.pop() {
                    for (v, _) in topo.neighbors(u) {
                        if !dead.contains(&v) && !seen.contains(&v) {
                            seen.push(v);
                            stack.push(v);
                        }
                    }
                }
                seen.len() + dead.len() == topo.node_count()
            })
            .collect()
    }

    #[inline]
    fn audit(&self, op: &str) {
        #[cfg(debug_assertions)]
        {
            if let Err(why) = self.r.network().check_ledger_consistency() {
                panic!("ledger drift after {op}: {why}");
            }
            for n in self.r.host_nodes() {
                let retained = self.r.retained(n) as u64;
                let unacked = self.r.input_seq(n) - self.r.acked_watermark(n);
                assert_eq!(
                    retained, unacked,
                    "replay retention drift at host {n} after {op}: \
                     {retained} retained vs {unacked} unacked"
                );
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = op;
    }
}

/// A fully built experiment environment.
#[derive(Debug)]
pub struct Simulation {
    /// Physical network with roles and routing state.
    pub dep: Deployment,
    /// Ground-truth substream rates (perturbable).
    pub table: SubstreamTable,
    /// Coordinator hierarchy.
    pub tree: CoordinatorTree,
    /// The experiment parameters used to build this simulation.
    pub params: PaperParams,
    /// All queries known to the system.
    pub specs: Vec<QuerySpec>,
    /// Current query → processor placement.
    pub assignment: Assignment,
    generator: QueryGenerator,
}

impl Simulation {
    /// Builds topology, deployment, substream table, and coordinator tree
    /// from `params`.
    pub fn build(params: PaperParams, seed: u64) -> Self {
        let topo = params.topology.generate(seed);
        let dep = Deployment::assign(topo, params.n_sources, params.n_processors, seed);
        let table = SubstreamTable::random(
            params.n_substreams,
            params.n_sources,
            params.rate_min,
            params.rate_max,
            seed,
        );
        let tree = CoordinatorTree::build(&dep, params.k);
        let generator = QueryGenerator::new(WorkloadConfig::from_params(&params), seed);
        Self {
            dep,
            table,
            tree,
            params,
            specs: Vec::new(),
            assignment: Assignment::new(),
            generator,
        }
    }

    /// A distributor over the current state (borrow-scoped helper).
    pub fn distributor(&self) -> Distributor<'_> {
        let mut config = DistConfig::default();
        config.map.alpha = self.params.alpha;
        Distributor::with_config(&self.dep, &self.tree, &self.table, config)
    }

    /// Generates `n` new queries (ids continue), appends them to the
    /// population, and returns clones of the new specs.
    pub fn arrivals(&mut self, n: usize, seed: u64) -> Vec<QuerySpec> {
        let batch = self.generator.generate(n, &self.dep, &self.table, seed);
        self.specs.extend(batch.iter().cloned());
        batch
    }

    /// Replaces the current assignment.
    pub fn apply(&mut self, assignment: Assignment) {
        self.assignment = assignment;
    }

    /// Routes a batch of new queries through the online router (seeded from
    /// the current assignment) and places them.
    pub fn insert_online(&mut self, batch: &[QuerySpec]) {
        let mut router = OnlineRouter::new(&self.dep, &self.tree, &self.table, self.params.alpha);
        router.seed_from(&self.specs, &self.assignment);
        for q in batch {
            let p = router.insert(q);
            self.assignment.place(q.id, p);
        }
    }

    /// One adaptation round (Algorithm 3 hierarchy-wide); applies and
    /// returns the outcome.
    ///
    /// A single round optimizes a local surrogate and can transiently
    /// worsen the global communication cost while it rebalances load;
    /// rounds compound (refinement iterates to a fixpoint inside
    /// [`adapt_wholesale`]), so periodic application converges — do not
    /// gate a round on the global metric, or load rebalancing starves.
    pub fn adapt_round(&mut self, seed: u64) -> AdaptOutcome {
        let d = self.distributor();
        let out = adapt_wholesale(&d, &self.specs, &self.assignment, &AdaptConfig::default(), seed);
        drop(d);
        self.assignment = out.assignment.clone();
        out
    }

    /// One adaptation round through a delta-driven
    /// [`IncrementalOptimizer`]; applies and returns the outcome. With the
    /// optimizer's fixed seed, the applied assignment is identical to what
    /// [`Simulation::adapt_round`] would apply with that same seed — only
    /// the work performed differs.
    pub fn adapt_round_incremental(&mut self, opt: &mut IncrementalOptimizer) -> AdaptOutcome {
        let d = self.distributor();
        let out = opt.round(&d, &self.specs, &self.assignment);
        drop(d);
        self.assignment = out.assignment.clone();
        out
    }

    /// Scales the rates of `n` random substreams by `factor` (the Figure 10
    /// "I"/"D" events use factors > 1 and < 1 respectively), then refreshes
    /// the rate-derived query statistics (load, result rate). Returns the
    /// [`StatDelta`] stream describing the change — one `RateChanged` per
    /// scaled substream, one `QueryChanged` per query whose statistics the
    /// refresh actually moved — for feeding an [`IncrementalOptimizer`].
    pub fn perturb_rates(&mut self, n: usize, factor: f64, seed: u64) -> Vec<StatDelta> {
        let mut rng = rng_for(seed, "perturb");
        let mut indices: Vec<usize> = (0..self.table.len()).collect();
        indices.shuffle(&mut rng);
        let scaled: Vec<usize> = indices.iter().take(n.min(self.table.len())).copied().collect();
        for &s in &scaled {
            self.table.scale_rate(s, factor);
        }
        let mut deltas: Vec<StatDelta> =
            scaled.iter().map(|&s| StatDelta::RateChanged { substream: s }).collect();
        for q in &self.specs {
            if scaled.iter().any(|&s| q.interest.contains(s)) {
                deltas.push(StatDelta::QueryChanged { id: q.id });
            }
        }
        self.refresh_statistics();
        deltas
    }

    /// Recomputes load and result rate of every query from the current
    /// rates (the §3.8 statistics reports reaching the coordinators).
    pub fn refresh_statistics(&mut self) {
        for q in &mut self.specs {
            let input = q.interest.weighted_len(self.table.rates());
            q.load = input * self.params.load_per_byte;
            q.result_rate = input * self.params.result_ratio;
        }
    }

    /// Measured weighted communication cost of an assignment: substream
    /// multicast delivery (shared links charged once) plus result-stream
    /// unicast back to the proxies.
    pub fn comm_cost_of(&self, assignment: &Assignment) -> f64 {
        let model = TrafficModel::new(&self.dep, &self.table);
        let interests = assignment.interests(&self.specs, self.dep.processors(), self.table.len());
        let flows = self
            .specs
            .iter()
            .filter_map(|q| assignment.processor_of(q.id).map(|p| (p, q.proxy, q.result_rate)));
        model.source_delivery_cost(&interests) + model.result_unicast_cost(flows)
    }

    /// Measured communication cost of the current assignment.
    pub fn comm_cost(&self) -> f64 {
        self.comm_cost_of(&self.assignment)
    }

    /// Communication cost with §2.1 result-stream sharing: queries hosted
    /// on the same processor with identical data interests (the abstract
    /// analogue of mergeable queries) share one result stream, multicast to
    /// their proxies along shared tree links (Figure 4(b)); everything else
    /// is unicast as in [`Simulation::comm_cost_of`].
    pub fn comm_cost_with_result_sharing(&self, assignment: &Assignment) -> f64 {
        use std::collections::HashMap;
        let model = TrafficModel::new(&self.dep, &self.table);
        let interests = assignment.interests(&self.specs, self.dep.processors(), self.table.len());
        let mut cost = model.source_delivery_cost(&interests);
        // Group result flows by (processor, interest signature).
        let mut groups: HashMap<(cosmos_net::NodeId, &cosmos_util::InterestSet), Vec<&QuerySpec>> =
            HashMap::new();
        for q in &self.specs {
            if let Some(p) = assignment.processor_of(q.id) {
                groups.entry((p, &q.interest)).or_default().push(q);
            }
        }
        for ((proc, _), members) in groups {
            if members.len() == 1 {
                let q = members[0];
                cost += model.result_unicast_cost([(proc, q.proxy, q.result_rate)]);
            } else {
                // One shared stream at the maximum member rate, multicast to
                // every member's proxy; the splitting happens at the proxies
                // via residual subscriptions.
                let rate = members.iter().map(|q| q.result_rate).fold(0.0, f64::max);
                let proxies: Vec<cosmos_net::NodeId> = members.iter().map(|q| q.proxy).collect();
                cost += model.result_multicast_cost(proc, &proxies, rate);
            }
        }
        cost
    }

    /// Per-processor loads of the current assignment.
    pub fn loads(&self) -> Vec<f64> {
        self.assignment.loads(&self.specs, self.dep.processors())
    }

    /// Standard deviation of processor loads (Figures 7b/8b/10b).
    pub fn load_stddev(&self) -> f64 {
        stddev(&self.loads())
    }

    /// Standard deviation of loads under another assignment.
    pub fn load_stddev_of(&self, assignment: &Assignment) -> f64 {
        stddev(&assignment.loads(&self.specs, self.dep.processors()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_baselines::{naive_assignment, random_assignment};

    fn sim() -> Simulation {
        let mut s = Simulation::build(PaperParams::tiny(), 3);
        let batch = s.arrivals(60, 4);
        let d = s.distributor();
        let out = d.distribute(&batch, 5);
        drop(d);
        s.apply(out.assignment);
        s
    }

    #[test]
    fn build_produces_consistent_environment() {
        let s = sim();
        assert_eq!(s.dep.processors().len(), 8);
        assert_eq!(s.specs.len(), 60);
        assert_eq!(s.assignment.len(), 60);
        assert!(s.comm_cost() > 0.0);
    }

    #[test]
    fn optimized_beats_random_and_shares_sources_better_than_naive() {
        let s = sim();
        let naive = naive_assignment(&s.specs);
        let random = random_assignment(&s.specs, &s.dep, 9);
        let c_opt = s.comm_cost();
        let c_naive = s.comm_cost_of(&naive);
        let c_random = s.comm_cost_of(&random);
        assert!(c_opt < c_random, "optimized {c_opt} vs random {c_random}");
        // Naive pays zero result-delivery cost by construction, and at this
        // tiny scale (8 processors, low overlap) the multicast savings are
        // bounded, so only a loose total-cost bound is meaningful here; the
        // full Figure 6(a) ordering is exercised at bench scale.
        assert!(c_opt <= c_naive * 1.25, "optimized {c_opt} vs naive {c_naive}");
        // The sharing claim proper: source-side delivery must be cheaper.
        let model = TrafficModel::new(&s.dep, &s.table);
        let src_opt = model.source_delivery_cost(&s.assignment.interests(
            &s.specs,
            s.dep.processors(),
            s.table.len(),
        ));
        let src_naive = model.source_delivery_cost(&naive.interests(
            &s.specs,
            s.dep.processors(),
            s.table.len(),
        ));
        assert!(src_opt < src_naive, "source delivery {src_opt} vs naive {src_naive}");
        // And load balance must be far better than naive's.
        assert!(s.load_stddev() < s.load_stddev_of(&naive));
    }

    #[test]
    fn online_insertion_extends_assignment() {
        let mut s = sim();
        let batch = s.arrivals(15, 6);
        s.insert_online(&batch);
        assert_eq!(s.assignment.len(), 75);
    }

    #[test]
    fn incremental_adaptation_matches_wholesale_rounds() {
        // Two identically-built simulations driven through the same rate
        // perturbations: the delta-driven optimizer and the batch path
        // must apply the same assignment after every round.
        let seed = 77;
        let mut whole = sim();
        let mut inc = sim();
        let mut opt = IncrementalOptimizer::new(seed, AdaptConfig::default())
            .expect("default config is valid");
        for round in 0..4u64 {
            if round % 2 == 1 {
                whole.perturb_rates(5, 1.5, 100 + round);
                let deltas = inc.perturb_rates(5, 1.5, 100 + round);
                assert!(!deltas.is_empty(), "perturbation must report deltas");
                for d in &deltas {
                    opt.ingest(d);
                }
            }
            let a = whole.adapt_round(seed).assignment;
            let b = inc.adapt_round_incremental(&mut opt).assignment;
            assert_eq!(a, b, "round {round} diverged");
        }
        assert!(opt.cache_stats().hier_hits > 0, "quiet rounds must hit the caches");
    }

    #[test]
    fn perturbation_changes_cost_and_stats() {
        let mut s = sim();
        let before_cost = s.comm_cost();
        let before_load: f64 = s.specs.iter().map(|q| q.load).sum();
        s.perturb_rates(50, 4.0, 7);
        let after_cost = s.comm_cost();
        let after_load: f64 = s.specs.iter().map(|q| q.load).sum();
        assert!(after_cost > before_cost, "rate increase must raise cost");
        assert!(after_load > before_load, "loads must track rates");
    }

    #[test]
    fn result_sharing_never_costs_more() {
        let mut s = sim();
        // Clone a few queries so identical-interest groups exist.
        let clones: Vec<_> = s
            .specs
            .iter()
            .take(10)
            .map(|q| {
                let mut c = q.clone();
                c.id = cosmos_query::QueryId(10_000 + q.id.0);
                c.proxy = s.dep.processors()[(q.id.0 as usize + 3) % 8];
                c
            })
            .collect();
        for c in &clones {
            let host = s.assignment.processor_of(cosmos_query::QueryId(c.id.0 - 10_000));
            s.assignment.place(c.id, host.unwrap());
        }
        s.specs.extend(clones);
        let unshared = s.comm_cost();
        let shared = s.comm_cost_with_result_sharing(&s.assignment.clone());
        assert!(
            shared <= unshared + 1e-6,
            "sharing must not increase cost: {shared} vs {unshared}"
        );
        assert!(shared > 0.0);
    }

    #[test]
    fn broker_sim_audits_every_churn_operation() {
        use cosmos_pubsub::StreamProjection;
        let mut topo = Topology::new(5);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        let mut b = BrokerSim::new(topo);
        b.advertise("R", NodeId(0));
        b.subscribe(
            Subscription::builder(NodeId(4))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert!(b.fail_link(NodeId(1), NodeId(2)));
        assert!(b.restore_link(NodeId(1), NodeId(2), 2.0));
        let edges = b.fail_node(NodeId(3)).expect("node 3 is attached");
        assert!(b.restore_node(NodeId(3), &edges));
        b.unsubscribe(SubId(1));
        assert!(b.network().check_ledger_consistency().is_ok());
        assert_eq!(b.into_inner().topology().node_count(), 5);
    }

    #[test]
    fn recovery_sim_audits_fault_steps_and_bounds_retention() {
        use cosmos_pubsub::{FaultConfig, FaultPlan};
        use cosmos_query::{parse_query, QueryId, Scalar};
        // A 5-node ring: any single crash leaves the survivors connected,
        // so both engine hosts are always killable.
        let mut topo = Topology::new(5);
        for i in 0..5u32 {
            topo.add_edge(NodeId(i), NodeId((i + 1) % 5), 1.0);
        }
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        let lossy = LossyNetwork::new(net, FaultPlan::new(11, FaultConfig::clean()));
        let params =
            RecoveryParams { checkpoint_interval: 10_000, kill_weight: 10, restore_weight: 10 };
        let mut s = RecoverySim::new(lossy, params).expect("valid knobs");
        let q = parse_query("SELECT R.v FROM R [Range 60 Seconds] WHERE R.v > 0")
            .expect("query parses");
        s.host_engine(NodeId(2), vec![(QueryId(1), q.clone())]);
        s.host_engine(NodeId(3), vec![(QueryId(2), q)]);
        fn feed(s: &mut RecoverySim, n: usize, ts: &mut i64) {
            for _ in 0..n {
                *ts += 1;
                assert!(s.publish(Message::new("R", *ts).with("v", Scalar::Int(5))));
            }
            s.settle();
        }
        let mut ts = 0i64;
        feed(&mut s, 8, &mut ts);
        // The kill share of the roll budget crashes a killable host...
        let FaultOp::Killed(victim) = s.fault_step(0, 1) else {
            panic!("kill share must fire with live hosts");
        };
        assert!(!s.recovery().is_up(victim));
        assert_eq!(s.crashed(), &[victim]);
        // ...the workload share does nothing...
        assert_eq!(s.fault_step(95, 0), FaultOp::Idle);
        // ...records published during downtime are retained for replay...
        feed(&mut s, 6, &mut ts);
        assert!(s.recovery().retained(victim) >= 6);
        // ...and the restore share brings back the most recent crash.
        assert_eq!(s.fault_step(params.kill_weight, 0), FaultOp::Restored(victim));
        assert!(s.crashed().is_empty());
        feed(&mut s, 4, &mut ts);
        // Replay closed the downtime gap: both hosts output all 18
        // records; an explicit checkpoint acks and truncates retention.
        for n in [NodeId(2), NodeId(3)] {
            assert_eq!(s.recovery().output_log(n).len(), 18);
            s.checkpoint_now(n);
            assert_eq!(s.recovery().retained(n), 0);
        }
        // The restore share with nothing down is a no-op.
        assert_eq!(s.fault_step(params.kill_weight, 0), FaultOp::Idle);
    }

    #[test]
    fn adaptation_round_applies_assignment() {
        let mut s = sim();
        s.perturb_rates(50, 5.0, 8);
        let before = s.load_stddev();
        let mut improved = before;
        for round in 0..3 {
            s.adapt_round(40 + round);
            improved = s.load_stddev();
        }
        assert!(
            improved <= before * 1.5,
            "adaptation should not blow up load deviation: {before} -> {improved}"
        );
        assert_eq!(s.assignment.len(), s.specs.len());
    }
}
