//! The group-permuted Zipfian query generator (§4.1).
//!
//! "To simulate clustering effect of user behaviors, g = 20 groups of user
//! queries are generated and each group has different data hot spots. The
//! group that a query belongs to is chosen randomly and the number of
//! substreams that a query requests is uniformly chosen from 100 to 200.
//! For the queries within every group, the probability that a substream is
//! selected conforms to a zipfian distribution with θ = 0.8. To model
//! different groups having different hot spots, we generate g number of
//! random permutations of the substreams."
//!
//! One under-specified point, resolved in favour of the paper's own
//! results: if every group's Zipf ranges over the *whole* permuted
//! universe, the heavy θ = 0.8 tail makes each group of queries
//! collectively request ~80 % of all substreams — every processor ends up
//! subscribing to nearly everything under *any* distribution scheme, and
//! the 2–3× Naive-to-optimized gap of Figure 6(a) is unreproducible. We
//! therefore read "each group has different data hot spots" as each group
//! drawing from a bounded pool — the first `n_substreams / n_groups` ranks
//! of its permutation (pools of distinct groups still overlap ~1/g of
//! their mass, preserving cross-group sharing). See DESIGN.md.

use crate::params::PaperParams;
use cosmos_core::spec::QuerySpec;
use cosmos_net::Deployment;
use cosmos_pubsub::SubstreamTable;
use cosmos_query::QueryId;
use cosmos_util::rng::{rng_for, rng_for_indexed};
use cosmos_util::zipf::Zipf;
use cosmos_util::InterestSet;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generator configuration, derived from [`PaperParams`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of substreams.
    pub n_substreams: usize,
    /// Number of hot-spot groups.
    pub n_groups: usize,
    /// Zipf skew.
    pub theta: f64,
    /// Per-query substream count range (inclusive).
    pub substreams_per_query: (usize, usize),
    /// Query load per byte/second of input.
    pub load_per_byte: f64,
    /// Result rate as a fraction of input rate.
    pub result_ratio: f64,
}

impl WorkloadConfig {
    /// Extracts the generator knobs from experiment parameters.
    pub fn from_params(p: &PaperParams) -> Self {
        Self {
            n_substreams: p.n_substreams,
            n_groups: p.n_groups,
            theta: p.theta,
            substreams_per_query: (p.query_substreams_min, p.query_substreams_max),
            load_per_byte: p.load_per_byte,
            result_ratio: p.result_ratio,
        }
    }
}

/// The reusable generator: owns the per-group permutations so that query
/// batches generated at different times (e.g. Figure 8's arrivals) come
/// from the same population.
#[derive(Debug)]
pub struct QueryGenerator {
    config: WorkloadConfig,
    zipf: Zipf,
    /// One substream permutation per group.
    permutations: Vec<Vec<usize>>,
    next_id: u64,
}

impl QueryGenerator {
    /// Creates a generator with `seed`-derived group permutations.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let pool = Self::pool_size_for(&config);
        let zipf = Zipf::new(pool, config.theta);
        let mut permutations = Vec::with_capacity(config.n_groups);
        for g in 0..config.n_groups {
            let mut perm: Vec<usize> = (0..config.n_substreams).collect();
            let mut rng = rng_for_indexed(seed, "group-permutation", g as u64);
            perm.shuffle(&mut rng);
            permutations.push(perm);
        }
        Self { config, zipf, permutations, next_id: 0 }
    }

    /// The per-group hot-spot pool size (see module docs): `1/g` of the
    /// universe, but always large enough to fit the biggest query.
    fn pool_size_for(config: &WorkloadConfig) -> usize {
        (config.n_substreams / config.n_groups.max(1))
            .max(config.substreams_per_query.1 * 2)
            .min(config.n_substreams)
    }

    /// The per-group pool size in effect.
    pub fn pool_size(&self) -> usize {
        Self::pool_size_for(&self.config)
    }

    /// Generates `n` fresh queries with proxies drawn uniformly from the
    /// deployment's processors. Ids continue from the previous batch.
    pub fn generate(
        &mut self,
        n: usize,
        dep: &Deployment,
        table: &SubstreamTable,
        seed: u64,
    ) -> Vec<QuerySpec> {
        let mut rng = rng_for(seed ^ self.next_id, "query-batch");
        let procs = dep.processors();
        let (lo, hi) = self.config.substreams_per_query;
        (0..n)
            .map(|_| {
                let id = QueryId(self.next_id);
                self.next_id += 1;
                let group = rng.gen_range(0..self.config.n_groups);
                let count = rng.gen_range(lo..=hi);
                let ranks = self.zipf.sample_distinct(&mut rng, count);
                let interest = InterestSet::from_indices(
                    self.config.n_substreams,
                    ranks.iter().map(|&r| self.permutations[group][r]),
                );
                let input_rate = interest.weighted_len(table.rates());
                QuerySpec {
                    id,
                    interest,
                    load: input_rate * self.config.load_per_byte,
                    proxy: procs[rng.gen_range(0..procs.len())],
                    result_rate: input_rate * self.config.result_ratio,
                    state_size: 1.0 + rng.gen_range(0.0..9.0),
                }
            })
            .collect()
    }

    /// Total queries generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

/// One-shot convenience wrapper around [`QueryGenerator`].
pub fn generate_queries(
    config: &WorkloadConfig,
    dep: &Deployment,
    table: &SubstreamTable,
    n: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    QueryGenerator::new(config.clone(), seed).generate(n, dep, table, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::TransitStubConfig;

    fn fixture() -> (Deployment, SubstreamTable, WorkloadConfig) {
        let topo = TransitStubConfig::small().generate(5);
        let dep = Deployment::assign(topo, 4, 8, 5);
        let table = SubstreamTable::random(400, 4, 1.0, 10.0, 5);
        let config = WorkloadConfig {
            n_substreams: 400,
            n_groups: 4,
            theta: 0.8,
            substreams_per_query: (10, 20),
            load_per_byte: 0.001,
            result_ratio: 0.1,
        };
        (dep, table, config)
    }

    #[test]
    fn queries_respect_size_bounds() {
        let (dep, table, config) = fixture();
        let qs = generate_queries(&config, &dep, &table, 50, 1);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            let n = q.interest.len();
            assert!((10..=20).contains(&n), "query requests {n} substreams");
            assert!(dep.processors().contains(&q.proxy));
            assert!(q.load > 0.0);
            assert!(q.result_rate < q.interest.weighted_len(table.rates()));
        }
    }

    #[test]
    fn ids_are_sequential_across_batches() {
        let (dep, table, config) = fixture();
        let mut generator = QueryGenerator::new(config, 2);
        let a = generator.generate(10, &dep, &table, 3);
        let b = generator.generate(10, &dep, &table, 4);
        assert_eq!(a[0].id, QueryId(0));
        assert_eq!(b[0].id, QueryId(10));
        assert_eq!(generator.generated(), 20);
    }

    #[test]
    fn groups_create_overlapping_hot_spots() {
        let (dep, table, mut config) = fixture();
        config.n_groups = 1; // single group ⇒ shared hot spot
        let qs = generate_queries(&config, &dep, &table, 30, 7);
        // With θ=0.8 and one permutation, the hottest mapped substream
        // should appear in many queries.
        let mut counts = vec![0usize; 400];
        for q in &qs {
            for s in q.interest.iter() {
                counts[s] += 1;
            }
        }
        let max = counts.iter().max().copied().unwrap();
        assert!(max >= 10, "hot substream appears only {max} times out of 30 queries");
    }

    #[test]
    fn different_groups_have_different_hot_spots() {
        let (_, _, config) = fixture();
        let generator = QueryGenerator::new(config, 9);
        assert_ne!(
            generator.permutations[0][..10],
            generator.permutations[1][..10],
            "group permutations must differ"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (dep, table, config) = fixture();
        let a = generate_queries(&config, &dep, &table, 20, 42);
        let b = generate_queries(&config, &dep, &table, 20, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.interest, y.interest);
            assert_eq!(x.proxy, y.proxy);
        }
    }

    #[test]
    fn load_proportional_to_input_rate() {
        let (dep, table, config) = fixture();
        let qs = generate_queries(&config, &dep, &table, 20, 11);
        for q in &qs {
            let input = q.interest.weighted_len(table.rates());
            assert!((q.load - input * 0.001).abs() < 1e-9);
        }
    }
}
