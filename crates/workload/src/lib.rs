//! Workload generation and the experiment simulation driver.
//!
//! Everything §4.1 specifies about the simulation study lives here:
//!
//! - [`params::PaperParams`]: the experimental constants (4096-node
//!   transit-stub topology, 100 sources, 256 processors, 20 000 substreams
//!   with rates 1–10 B/s, g = 20 query groups with Zipf θ = 0.8 hot spots,
//!   queries requesting 100–200 substreams, α = 0.1, adaptation every
//!   200 s) plus a uniform `scaled(f)` knob so benches can run the same
//!   *shape* at laptop sizes.
//! - [`generator`]: the group-permuted Zipfian query generator ("to model
//!   different groups having different hot spots, we generate g random
//!   permutations of the substreams"); query load proportional to input
//!   rate.
//! - [`sensors`]: the SensorScope substitute for the prototype study —
//!   synthetic snow-station sensors with random-walk readings, CQL query
//!   generation (1–3 selections + timestamp joins), and the mapping of CQL
//!   queries onto abstract [`cosmos_core::spec::QuerySpec`]s.
//! - [`sim`]: the [`sim::Simulation`] driver: holds the deployment, the
//!   (mutable) substream table, the coordinator tree and the current
//!   assignment; measures Pub/Sub communication cost and load deviation;
//!   applies query arrivals, rate perturbations, and adaptation rounds.

pub mod generator;
pub mod params;
pub mod sensors;
pub mod sim;

pub use generator::{generate_queries, WorkloadConfig};
pub use params::{PaperParams, RecoveryParams};
pub use sim::{FaultOp, RecoverySim, Simulation};
