//! The paper's experimental constants (§4.1), with uniform scaling, plus
//! the fault-scenario knobs the robustness experiments feed into the
//! deterministic fault plane ([`cosmos_pubsub::fault`]).

use cosmos_net::TransitStubConfig;
use cosmos_pubsub::{FaultConfig, FaultPlan};
use serde::{Deserialize, Serialize};

/// Fault-scenario knobs for robustness experiments: a seed plus per-link
/// fault rates, serializable so a scenario file pins the exact chaos
/// schedule a run replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultParams {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Probability a transmission is lost.
    pub drop: f64,
    /// Probability a transmission arrives twice.
    pub duplicate: f64,
    /// Probability a transmission is delayed past later traffic.
    pub reorder: f64,
    /// Maximum extra delay (simulated ticks) of duplicated/reordered copies.
    pub max_extra_ticks: u64,
}

impl FaultParams {
    /// A fault-free plan (the control arm of every robustness experiment).
    pub fn clean(seed: u64) -> Self {
        let c = FaultConfig::clean();
        Self {
            seed,
            drop: c.drop,
            duplicate: c.duplicate,
            reorder: c.reorder,
            max_extra_ticks: c.max_extra_ticks,
        }
    }

    /// The moderately hostile default (5% drop, 3% duplicate, 5% reorder).
    pub fn lossy(seed: u64) -> Self {
        let c = FaultConfig::lossy();
        Self {
            seed,
            drop: c.drop,
            duplicate: c.duplicate,
            reorder: c.reorder,
            max_extra_ticks: c.max_extra_ticks,
        }
    }

    /// Validates the rates exactly like [`FaultPlan::new`] does at
    /// construction — plus finiteness, which the arithmetic checks would
    /// only reject indirectly. Scenario ingestion calls this so a corrupt
    /// file fails *here*, with the offending knob named, instead of
    /// panicking deep inside the fault plane mid-experiment.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in
            [("drop", self.drop), ("duplicate", self.duplicate), ("reorder", self.reorder)]
        {
            if !v.is_finite() {
                return Err(format!("fault rate `{name}` must be finite, got {v}"));
            }
            if v < 0.0 {
                return Err(format!("fault rate `{name}` must be non-negative, got {v}"));
            }
        }
        let sum = self.drop + self.duplicate + self.reorder;
        if sum > 1.0 {
            return Err(format!("fault rates must sum to at most 1, got {sum}"));
        }
        if self.drop >= 1.0 {
            return Err("a link dropping everything can never converge (drop must be < 1)".into());
        }
        Ok(())
    }

    /// Parses a fault-scenario file: one `key = value` per line, `#`
    /// comments, blank lines ignored. Required keys: `seed`, `drop`,
    /// `duplicate`, `reorder`, `max_extra_ticks`. The parsed knobs are
    /// [`FaultParams::validate`]d before they are returned, so corrupt
    /// scenario files fail fast at ingestion.
    ///
    /// The format is the inverse of [`FaultParams::to_scenario`].
    pub fn from_scenario(text: &str) -> Result<Self, String> {
        let mut p = FaultParams::clean(0);
        let mut seen = [false; 5];
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected `key = value`, got `{raw}`", lineno + 1)
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: String| {
                format!("line {}: invalid value `{value}` for `{key}`: {e}", lineno + 1)
            };
            match key {
                "seed" => {
                    (p.seed, seen[0]) = (
                        value.parse().map_err(|e: std::num::ParseIntError| bad(e.to_string()))?,
                        true,
                    )
                }
                "drop" => {
                    (p.drop, seen[1]) = (
                        value.parse().map_err(|e: std::num::ParseFloatError| bad(e.to_string()))?,
                        true,
                    )
                }
                "duplicate" => {
                    (p.duplicate, seen[2]) = (
                        value.parse().map_err(|e: std::num::ParseFloatError| bad(e.to_string()))?,
                        true,
                    )
                }
                "reorder" => {
                    (p.reorder, seen[3]) = (
                        value.parse().map_err(|e: std::num::ParseFloatError| bad(e.to_string()))?,
                        true,
                    )
                }
                "max_extra_ticks" => {
                    (p.max_extra_ticks, seen[4]) = (
                        value.parse().map_err(|e: std::num::ParseIntError| bad(e.to_string()))?,
                        true,
                    )
                }
                _ => return Err(format!("line {}: unknown scenario key `{key}`", lineno + 1)),
            }
        }
        const KEYS: [&str; 5] = ["seed", "drop", "duplicate", "reorder", "max_extra_ticks"];
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(format!("scenario is missing required key `{}`", KEYS[i]));
        }
        p.validate()?;
        Ok(p)
    }

    /// Renders these knobs in the scenario-file format
    /// [`FaultParams::from_scenario`] parses.
    pub fn to_scenario(&self) -> String {
        format!(
            "seed = {}\ndrop = {}\nduplicate = {}\nreorder = {}\nmax_extra_ticks = {}\n",
            self.seed, self.drop, self.duplicate, self.reorder, self.max_extra_ticks
        )
    }

    /// The per-link fault rates as the pubsub layer's config.
    pub fn config(&self) -> FaultConfig {
        FaultConfig {
            drop: self.drop,
            duplicate: self.duplicate,
            reorder: self.reorder,
            max_extra_ticks: self.max_extra_ticks,
        }
    }

    /// Builds the seeded fault schedule these knobs describe.
    ///
    /// # Panics
    ///
    /// Panics if the rates are invalid (see [`FaultPlan::new`]); knobs
    /// that arrived via [`FaultParams::from_scenario`] are already
    /// validated and cannot panic here.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.config())
    }
}

/// Crash-recovery scenario knobs: how often hosted engines checkpoint,
/// and how aggressively the workload kills and restores them. Fed to the
/// recovery simulator (`cosmos_workload::sim::RecoverySim`), which
/// schedules checkpoints on the reliable plane's simulated clock and
/// rolls engine-kill ops into the workload step mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Simulated ticks between checkpoints of each hosted engine. Bounds
    /// upstream replay-log retention: at most one interval of traffic is
    /// ever retained per engine.
    pub checkpoint_interval: u64,
    /// Out of 100 workload steps, how many crash a live engine host.
    pub kill_weight: u32,
    /// Out of 100 workload steps, how many restore a crashed host.
    pub restore_weight: u32,
}

impl RecoveryParams {
    /// Moderate defaults: checkpoints every 5 000 ticks, a kill every
    /// ~12 steps, a restore every ~8 (downtime stays short-lived).
    pub fn moderate() -> Self {
        Self { checkpoint_interval: 5_000, kill_weight: 8, restore_weight: 12 }
    }

    /// Validates the knobs at construction: a zero checkpoint interval
    /// would never truncate replay logs, and kill/restore weights must
    /// leave room in the 100-step budget for actual workload.
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive (zero never truncates)".into());
        }
        if self.kill_weight + self.restore_weight > 100 {
            return Err(format!(
                "kill_weight + restore_weight must be at most 100, got {}",
                self.kill_weight + self.restore_weight
            ));
        }
        Ok(())
    }
}

/// All simulation-study parameters in one place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperParams {
    /// Transit-stub topology configuration.
    pub topology: TransitStubConfig,
    /// Number of data-source nodes (paper: 100).
    pub n_sources: usize,
    /// Number of stream processors (paper: 256).
    pub n_processors: usize,
    /// Number of substreams (paper: 20 000).
    pub n_substreams: usize,
    /// Substream rate range in bytes/second (paper: 1–10).
    pub rate_min: f64,
    /// Upper end of the substream rate range.
    pub rate_max: f64,
    /// Number of user-behaviour groups (paper: g = 20).
    pub n_groups: usize,
    /// Zipf skew for substream popularity (paper: θ = 0.8).
    pub theta: f64,
    /// Minimum substreams per query (paper: 100).
    pub query_substreams_min: usize,
    /// Maximum substreams per query (paper: 200).
    pub query_substreams_max: usize,
    /// Cluster-size parameter of the coordinator tree (paper default: 4).
    pub k: usize,
    /// Load-imbalance tolerance α (paper: 0.1).
    pub alpha: f64,
    /// Adaptation interval in seconds (paper: 200).
    pub adapt_interval_s: u64,
    /// Query load per byte/second of input (load ∝ input rate).
    pub load_per_byte: f64,
    /// Result rate as a fraction of input rate.
    ///
    /// Calibrated, not copied: the paper never states the simulation's
    /// result rates, but Naive — which pays *zero* result-delivery cost by
    /// construction — is its worst scheme (Figure 6a), which is only
    /// possible when result traffic is a minor share of the total. 0.002
    /// keeps result delivery at a few percent of the communication cost,
    /// preserving that regime (see EXPERIMENTS.md).
    pub result_ratio: f64,
}

impl PaperParams {
    /// The paper's full scale.
    pub fn full() -> Self {
        Self {
            topology: TransitStubConfig::paper_scale(),
            n_sources: 100,
            n_processors: 256,
            n_substreams: 20_000,
            rate_min: 1.0,
            rate_max: 10.0,
            n_groups: 20,
            theta: 0.8,
            query_substreams_min: 100,
            query_substreams_max: 200,
            k: 4,
            alpha: 0.1,
            adapt_interval_s: 200,
            load_per_byte: 0.001,
            result_ratio: 0.002,
        }
    }

    /// Scales every size-like dimension by `f` (0 < f ≤ 1), keeping the
    /// paper's *shape*: topology, source/processor counts, substream count
    /// and group count scale linearly; per-query substream counts scale by
    /// `√f`. The square root is deliberate: the expected interest overlap
    /// between two same-group queries is `picks² × Σ p(s)²`, and the
    /// Zipfian head concentration `Σ p(s)²` decays only logarithmically
    /// with the universe — linear pick scaling would collapse the overlap
    /// fraction that the sharing experiments depend on, while `√f` keeps
    /// the shared-fraction-per-pair close to the paper's regime. Rates, θ,
    /// α, k stay as-is.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f <= 1`.
    pub fn scaled(f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        let full = Self::full();
        let s = |v: usize, min: usize| ((v as f64 * f).round() as usize).max(min);
        let sq = |v: usize, min: usize| ((v as f64 * f.sqrt()).round() as usize).max(min);
        let mut topology = full.topology.clone();
        // Keep 4 transit domains; shrink stub dimensions by ∛f-ish factors
        // so the node count scales roughly linearly.
        let cube = f.cbrt();
        topology.transit_nodes_per_domain =
            ((topology.transit_nodes_per_domain as f64 * cube).round() as usize).max(2);
        topology.stub_domains_per_transit =
            ((topology.stub_domains_per_transit as f64 * cube).round() as usize).max(1);
        topology.stub_nodes_per_domain =
            ((topology.stub_nodes_per_domain as f64 * cube).round() as usize).max(4);
        Self {
            topology,
            n_sources: s(full.n_sources, 4),
            n_processors: s(full.n_processors, 8),
            n_substreams: s(full.n_substreams, 100),
            // The group count does NOT scale: the communication savings the
            // paper measures come from reducing each substream's fan-out
            // from "all processors" (Naive) to "the processors dedicated to
            // its group" — i.e. from the processors:groups ratio. Scaling
            // groups down with processors would keep that ratio constant
            // and erase the effect the experiments exist to show.
            n_groups: full.n_groups.min(s(full.n_processors, 8)),
            query_substreams_min: sq(full.query_substreams_min, 4),
            query_substreams_max: sq(full.query_substreams_max, 8),
            ..full
        }
    }

    /// A fast configuration for tests (≈70-node topology).
    pub fn tiny() -> Self {
        Self {
            topology: TransitStubConfig::small(),
            n_sources: 4,
            n_processors: 8,
            n_substreams: 200,
            rate_min: 1.0,
            rate_max: 10.0,
            n_groups: 2,
            theta: 0.8,
            query_substreams_min: 15,
            query_substreams_max: 30,
            k: 2,
            alpha: 0.1,
            adapt_interval_s: 200,
            load_per_byte: 0.001,
            result_ratio: 0.002,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_numbers() {
        let p = PaperParams::full();
        assert_eq!(p.n_sources, 100);
        assert_eq!(p.n_processors, 256);
        assert_eq!(p.n_substreams, 20_000);
        assert_eq!(p.n_groups, 20);
        assert_eq!(p.k, 4);
        assert!((p.theta - 0.8).abs() < 1e-12);
        assert!((p.alpha - 0.1).abs() < 1e-12);
        assert!(p.topology.node_count() >= 4096);
    }

    #[test]
    fn scaling_shrinks_sizes_not_shape() {
        let p = PaperParams::scaled(0.1);
        assert!(p.n_processors < 256 && p.n_processors >= 8);
        assert!(p.n_substreams <= 2_100);
        assert!((p.theta - 0.8).abs() < 1e-12);
        assert_eq!(p.k, 4);
        assert!(p.topology.node_count() >= p.n_sources + p.n_processors);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        let _ = PaperParams::scaled(0.0);
    }

    #[test]
    fn scenario_round_trips_and_tolerates_comments() {
        let p = FaultParams {
            seed: 42,
            drop: 0.07,
            duplicate: 0.04,
            reorder: 0.06,
            max_extra_ticks: 900,
        };
        assert_eq!(FaultParams::from_scenario(&p.to_scenario()), Ok(p));
        let annotated = "# robustness scenario\nseed = 7 # schedule seed\n\n\
                         drop = 0.1\nduplicate = 0.0\nreorder = 0.05\nmax_extra_ticks = 500\n";
        let q = FaultParams::from_scenario(annotated).unwrap();
        assert_eq!(q.seed, 7);
        assert!((q.drop - 0.1).abs() < 1e-12);
        // Valid knobs build a plan without tripping FaultPlan's asserts.
        let _ = q.plan();
    }

    /// Corrupt scenario files must fail at ingestion with the offending
    /// knob named — the same predicates [`FaultPlan::new`] enforces.
    #[test]
    fn corrupt_scenarios_are_rejected_at_ingestion() {
        let base = |drop: f64, duplicate: f64, reorder: f64| FaultParams {
            seed: 0,
            drop,
            duplicate,
            reorder,
            max_extra_ticks: 100,
        };
        // Total drop can never converge — rejected even though it sums to 1.
        let e = base(1.0, 0.0, 0.0).validate().unwrap_err();
        assert!(e.contains("never converge"), "{e}");
        // Negative and non-finite rates name the knob.
        let e = base(-0.1, 0.0, 0.0).validate().unwrap_err();
        assert!(e.contains("`drop`") && e.contains("non-negative"), "{e}");
        let e = base(0.0, f64::NAN, 0.0).validate().unwrap_err();
        assert!(e.contains("`duplicate`") && e.contains("finite"), "{e}");
        let e = base(0.0, 0.0, f64::INFINITY).validate().unwrap_err();
        assert!(e.contains("`reorder`") && e.contains("finite"), "{e}");
        // Rates summing past 1 leave no probability mass for delivery.
        let e = base(0.5, 0.4, 0.3).validate().unwrap_err();
        assert!(e.contains("sum to at most 1"), "{e}");
        // The same predicates guard the text path.
        let corrupt = "seed = 0\ndrop = 1.5\nduplicate = 0\nreorder = 0\nmax_extra_ticks = 0\n";
        assert!(FaultParams::from_scenario(corrupt).is_err());
    }

    #[test]
    fn malformed_scenario_text_is_rejected() {
        let e = FaultParams::from_scenario("seed 7\n").unwrap_err();
        assert!(e.contains("line 1") && e.contains("key = value"), "{e}");
        let e = FaultParams::from_scenario("seed = banana\n").unwrap_err();
        assert!(e.contains("line 1") && e.contains("banana"), "{e}");
        let e = FaultParams::from_scenario("seed = 1\nchaos = yes\n").unwrap_err();
        assert!(e.contains("unknown scenario key `chaos`"), "{e}");
        let partial = "seed = 1\ndrop = 0.1\nduplicate = 0\nreorder = 0\n";
        let e = FaultParams::from_scenario(partial).unwrap_err();
        assert!(e.contains("missing required key `max_extra_ticks`"), "{e}");
    }

    #[test]
    fn recovery_params_are_validated_at_construction() {
        assert!(RecoveryParams::moderate().validate().is_ok());
        let e = RecoveryParams { checkpoint_interval: 0, ..RecoveryParams::moderate() }
            .validate()
            .unwrap_err();
        assert!(e.contains("checkpoint_interval"), "{e}");
        let e = RecoveryParams { kill_weight: 60, restore_weight: 50, checkpoint_interval: 1 }
            .validate()
            .unwrap_err();
        assert!(e.contains("at most 100") && e.contains("110"), "{e}");
    }

    #[test]
    fn fault_params_mirror_the_pubsub_configs() {
        let p = FaultParams::lossy(11);
        assert_eq!(p.config(), FaultConfig::lossy());
        let mut plan = p.plan();
        let _ = plan.roll(cosmos_net::NodeId(0), cosmos_net::NodeId(1));
        assert_eq!(FaultParams::clean(0).config(), FaultConfig::clean());
        assert_eq!(FaultParams::clean(0).plan().total_injected(), 0);
    }
}
