//! Read-copy-update primitives for the broker's parallel data plane.
//!
//! The broker splits its routing state into an immutable read snapshot
//! and a single-writer churn path. [`SnapshotCell`] is the publication
//! point: the writer [`SnapshotCell::store`]s a freshly built
//! `Arc<Snapshot>`, readers [`SnapshotCell::load`] a handle and keep
//! matching against it lock-free — the cell is touched only when a reader
//! decides (by comparing versions out of band) that its handle is stale.
//!
//! The implementation is deliberately `unsafe`-free, matching the rest of
//! the workspace: an `ArcSwap`-style atomic-pointer cell needs unsafe
//! pointer juggling, so the slot is a short-critical-section
//! `parking_lot::Mutex<Arc<T>>` instead (lock, clone/replace an `Arc`,
//! unlock — a few nanoseconds, and *off* the per-message hot path by
//! construction). A monotonically increasing generation counter lets
//! pollers skip even that lock when nothing was published.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared slot holding the current `Arc<T>` snapshot. See the module
/// docs for the access pattern and the no-`unsafe` design note.
pub struct SnapshotCell<T> {
    slot: Mutex<Arc<T>>,
    generation: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Wraps an initial snapshot (generation 0).
    pub fn new(value: Arc<T>) -> Self {
        Self { slot: Mutex::new(value), generation: AtomicU64::new(0) }
    }

    /// Returns a handle to the current snapshot.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.lock())
    }

    /// Publishes a new snapshot, returning the previous one. Bumps the
    /// generation.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.lock();
        let old = std::mem::replace(&mut *slot, value);
        self.generation.fetch_add(1, Ordering::Release);
        old
    }

    /// Number of [`SnapshotCell::store`]s so far: a cheap staleness probe
    /// for pollers that want to avoid the slot lock entirely.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl<T> fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell").field("generation", &self.generation()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::SnapshotCell;
    use std::sync::Arc;

    #[test]
    fn load_store_round_trip() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.generation(), 0);
        let old = cell.store(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn readers_observe_writer_updates() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        std::thread::scope(|s| {
            let reader = {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    // Spin until the writer's final value is visible.
                    loop {
                        if *cell.load() == 99 {
                            return;
                        }
                        std::thread::yield_now();
                    }
                })
            };
            for v in 1..=99u64 {
                cell.store(Arc::new(v));
            }
            reader.join().unwrap();
        });
        assert_eq!(cell.generation(), 99);
    }
}
