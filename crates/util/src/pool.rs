//! A tiny scoped thread pool for parallel candidate scoring.
//!
//! The adaptive optimizer scores independent candidate moves inside a
//! round; each score is a pure function of shared read-only state, so the
//! map parallelizes trivially. [`parallel_map`] fans such a function over a
//! slice with `std::thread::scope` — no queues, no persistent workers, no
//! unsafe — and returns results in input order, so a caller's output is
//! byte-identical whatever the thread count. With `threads <= 1` (the
//! default everywhere: the reference container is single-core) or a tiny
//! input, it degrades to a plain sequential map with no thread overhead.

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// preserving input order.
///
/// The slice is split into at most `threads` contiguous chunks, one worker
/// per chunk, and the per-chunk results are concatenated in chunk order —
/// so the output is exactly `items.iter().map(f).collect()` regardless of
/// `threads`. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Below this size the spawn cost dominates any conceivable win.
    const MIN_PARALLEL_LEN: usize = 32;
    if threads <= 1 || items.len() < MIN_PARALLEL_LEN {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel_map worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(4, &[], |x: &i32| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 4, 7, 64] {
            let got = parallel_map(threads, &items, |x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1i64, 2, 3];
        assert_eq!(parallel_map(16, &items, |x| -x), vec![-1, -2, -3]);
    }

    #[test]
    fn preserves_order_on_non_commutative_results() {
        let items: Vec<usize> = (0..500).collect();
        let got = parallel_map(5, &items, |&i| format!("#{i}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("#{i}"));
        }
    }

    #[test]
    fn float_sums_are_bit_identical_across_thread_counts() {
        // The optimizer relies on scores being bit-equal whatever the
        // thread count; each element's result must not depend on chunking.
        let items: Vec<f64> = (0..300).map(|i| (i as f64).sin()).collect();
        let seq = parallel_map(1, &items, |x| x * 1.7 + 0.3);
        let par = parallel_map(4, &items, |x| x * 1.7 + 0.3);
        assert!(seq.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
