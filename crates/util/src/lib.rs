//! Shared utilities for the COSMOS reproduction.
//!
//! This crate hosts the small, dependency-free building blocks that the rest
//! of the workspace leans on:
//!
//! - [`InterestSet`]: a packed bit vector over *substreams*, the paper's
//!   representation of a query's data interest (§3.2: "we partition each
//!   stream into a number of substreams, and represent each query's data
//!   interest as a bit vector").
//! - [`zipf::Zipf`]: a deterministic Zipfian sampler used by the workload
//!   generator (the paper draws substream popularity with θ = 0.8).
//! - [`stats`]: running mean / standard deviation and small-vector helpers
//!   used to report the load-deviation figures.
//! - [`solver`]: a conjugate-gradient Laplacian solver used by the Hu–Blake
//!   load-diffusion step of the adaptive redistribution algorithm (§3.7).
//! - [`rng`]: seed-derivation helpers so every experiment is reproducible.
//! - [`intern`]: global [`Symbol`] and [`Schema`] interners backing the
//!   schema-indexed tuple data plane — stream/attribute names become `u32`
//!   symbols, tuple shapes become shared `Arc<Schema>`s, and the per-tuple
//!   hot paths (predicate evaluation, join flattening, broker filtering
//!   and early projection) compare integers instead of strings.
//! - [`sync`]: read-copy-update primitives ([`SnapshotCell`]) backing the
//!   broker's parallel publish plane — a writer publishes immutable
//!   routing snapshots, readers match against them lock-free.
//! - [`pool`]: a scoped order-preserving [`pool::parallel_map`] used by the
//!   adaptive optimizer to score independent candidate moves concurrently
//!   without changing the chosen moves.
//!
//! # Examples
//!
//! ```
//! use cosmos_util::InterestSet;
//!
//! let mut a = InterestSet::new(128);
//! a.insert(3);
//! a.insert(64);
//! let mut b = InterestSet::new(128);
//! b.insert(64);
//! assert_eq!(a.intersection_count(&b), 1);
//! ```

pub mod bitset;
pub mod intern;
pub mod plancache;
pub mod pool;
pub mod rng;
pub mod solver;
pub mod stats;
pub mod sync;
pub mod timer;
pub mod zipf;

pub use bitset::InterestSet;
pub use intern::{Schema, Symbol};
pub use plancache::PlanCache;
pub use sync::SnapshotCell;
pub use timer::{EventQueue, Stopwatch};
