//! Zipfian sampling for workload generation.
//!
//! The paper's simulation draws the substreams a query is interested in from
//! a Zipfian distribution with θ = 0.8 (§4.1): "the probability that a
//! substream is selected conforms to a zipfian distribution with θ = 0.8".
//! [`Zipf`] precomputes the cumulative distribution once and samples by
//! binary search, so sampling is `O(log n)` and fully deterministic given the
//! caller's RNG.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n`.
///
/// Rank `r` (0-based) has probability proportional to `1 / (r + 1)^theta`.
/// With `theta = 0` this degenerates to the uniform distribution, which the
/// tests exploit.
///
/// # Examples
///
/// ```
/// use cosmos_util::zipf::Zipf;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let z = Zipf::new(1000, 0.8);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf distribution needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP round-off so sampling u == 1.0 - eps still lands.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has no ranks (never: `new` panics).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len()`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Samples a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Samples `count` *distinct* ranks, retrying duplicates.
    ///
    /// The paper's queries request 100–200 distinct substreams out of 20 000;
    /// duplicate-retry is cheap at those ratios. Falls back to taking the
    /// lowest ranks if `count` approaches `len()` to stay O(n).
    ///
    /// # Panics
    ///
    /// Panics if `count > len()`.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        assert!(count <= self.len(), "cannot sample {count} distinct ranks out of {}", self.len());
        if count * 2 >= self.len() {
            // Dense request: permute everything (uniform among ranks) — only
            // used by stress tests; experiments stay in the sparse regime.
            let mut all: Vec<usize> = (0..self.len()).collect();
            for i in (1..all.len()).rev() {
                let j = rng.gen_range(0..=i);
                all.swap(i, j);
            }
            all.truncate(count);
            return all;
        }
        let mut seen = vec![false; self.len()];
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let r = self.sample(rng);
            if !seen[r] {
                seen[r] = true;
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.8);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(100, 0.8);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12, "rank {r}");
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let z = Zipf::new(1000, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let z = Zipf::new(200, 0.8);
        let mut rng = StdRng::seed_from_u64(9);
        let picks = z.sample_distinct(&mut rng, 150);
        assert_eq!(picks.len(), 150);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 150);
    }

    #[test]
    fn empirical_frequency_tracks_pmf() {
        let z = Zipf::new(50, 0.8);
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // The head of the distribution should match within a few percent.
        #[allow(clippy::needless_range_loop)]
        for r in 0..5 {
            let emp = counts[r] as f64 / n as f64;
            let expect = z.pmf(r);
            assert!(
                (emp - expect).abs() / expect < 0.05,
                "rank {r}: empirical {emp:.4} vs pmf {expect:.4}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 0.8);
    }
}
