//! A small owner-attached plan cache.
//!
//! The hot paths of the engine and the broker resolve *plans* — projected
//! schemas, flatten layouts, retained-column lists — that are pure
//! functions of an input shape. Probing a shared thread-local map for them
//! costs a key allocation per call; instead, owners (a compiled residual,
//! a route entry, a bench loop) hang a [`PlanCache`] off themselves and
//! look plans up by comparing stored keys against a *borrowed* probe, so
//! the steady-state hit path allocates nothing.
//!
//! Entries are kept in a plain vector and scanned linearly: an owner sees
//! a handful of distinct shapes, so a scan beats hashing. The cache resets
//! wholesale once it exceeds [`PLAN_CACHE_LIMIT`] entries — far above any
//! steady-state working set, and a reset merely costs one rebuild per
//! shape.

/// Entries retained before the cache resets.
pub const PLAN_CACHE_LIMIT: usize = 128;

/// An owner-attached `(key, plan)` cache with allocation-free hits. See
/// the module docs.
#[derive(Debug, Clone)]
pub struct PlanCache<K, V> {
    entries: Vec<(K, V)>,
}

// Manual impl: the derive would needlessly bound `K: Default, V: Default`.
impl<K, V> Default for PlanCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> PlanCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Returns the plan whose stored key satisfies `hit`, building and
    /// caching one (with the key produced by `key`) on a miss. `hit`
    /// compares stored keys against whatever borrowed probe the caller
    /// closed over, so hits never allocate; `key` and `build` run only on
    /// misses.
    pub fn get_or_insert_with(
        &mut self,
        hit: impl Fn(&K) -> bool,
        key: impl FnOnce() -> K,
        build: impl FnOnce() -> V,
    ) -> &V {
        if let Some(i) = self.entries.iter().position(|(k, _)| hit(k)) {
            return &self.entries[i].1;
        }
        if self.entries.len() > PLAN_CACHE_LIMIT {
            self.entries.clear();
        }
        self.entries.push((key(), build()));
        &self.entries.last().expect("just pushed").1
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_cached_plan_without_rebuilding() {
        let mut cache: PlanCache<u32, String> = PlanCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(
                |k| *k == 7,
                || 7,
                || {
                    builds += 1;
                    "plan".to_string()
                },
            );
            assert_eq!(v, "plan");
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn overflow_resets_and_rebuilds() {
        let mut cache: PlanCache<usize, usize> = PlanCache::new();
        for i in 0..=PLAN_CACHE_LIMIT + 1 {
            cache.get_or_insert_with(|k| *k == i, || i, || i * 2);
        }
        assert!(cache.len() <= PLAN_CACHE_LIMIT + 1, "cache must reset on overflow");
        assert!(!cache.is_empty());
        assert_eq!(*cache.get_or_insert_with(|k| *k == 1, || 1, || 2), 2);
    }
}
