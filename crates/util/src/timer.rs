//! Wall-clock measurement for optimizer running-time figures.
//!
//! Figure 6(b) and Figure 11(b) report optimizer *response time* (begin to
//! end of a mapping) and *total time* (CPU summed over all coordinators). In
//! our in-process simulation the coordinators run sequentially, so the driver
//! measures each coordinator's slice with a [`Stopwatch`] and combines them:
//! total time = Σ slices; response time = critical path over the tree
//! (children of one coordinator run "in parallel" in the paper's deployment).

use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating elapsed wall time.
///
/// # Examples
///
/// ```
/// use cosmos_util::Stopwatch;
///
/// let mut sw = Stopwatch::new();
/// sw.start();
/// let x: u64 = (0..1000).sum();
/// sw.stop();
/// assert!(x > 0);
/// assert!(sw.elapsed().as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) timing; a no-op if already running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing, folding the running span into the accumulator.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the live span when running).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Resets the accumulator to zero and stops the watch.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        self.started = None;
    }

    /// Times a closure, returning its result and adding the span.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(2)));
        let first = sw.elapsed();
        sw.time(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(sw.elapsed() >= first + Duration::from_millis(1));
    }

    #[test]
    fn reset_zeroes_state() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(1)));
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn double_start_is_harmless() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        sw.stop();
        sw.stop();
        // No panic, time recorded once.
        assert!(sw.elapsed() < Duration::from_secs(1));
    }
}
