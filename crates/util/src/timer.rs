//! Wall-clock measurement for optimizer running-time figures, plus a
//! deterministic simulated clock for the fault plane.
//!
//! Figure 6(b) and Figure 11(b) report optimizer *response time* (begin to
//! end of a mapping) and *total time* (CPU summed over all coordinators). In
//! our in-process simulation the coordinators run sequentially, so the driver
//! measures each coordinator's slice with a [`Stopwatch`] and combines them:
//! total time = Σ slices; response time = critical path over the tree
//! (children of one coordinator run "in parallel" in the paper's deployment).
//!
//! The reliable-delivery layer (cosmos-pubsub `reliable`) additionally needs
//! *simulated* time: retransmission timers and link-delay events must fire in
//! a reproducible order independent of the host clock. [`EventQueue`] is that
//! clock — integer ticks, events ordered by `(due, insertion sequence)` so
//! same-tick events pop in FIFO order and every run of a seeded schedule is
//! bit-identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating elapsed wall time.
///
/// # Examples
///
/// ```
/// use cosmos_util::Stopwatch;
///
/// let mut sw = Stopwatch::new();
/// sw.start();
/// let x: u64 = (0..1000).sum();
/// sw.stop();
/// assert!(x > 0);
/// assert!(sw.elapsed().as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) timing; a no-op if already running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing, folding the running span into the accumulator.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the live span when running).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Resets the accumulator to zero and stops the watch.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        self.started = None;
    }

    /// Times a closure, returning its result and adding the span.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }
}

/// A deterministic discrete-event clock: events are `(due tick, payload)`
/// pairs popped in non-decreasing tick order, with FIFO tie-breaking among
/// events scheduled for the same tick. Popping an event advances `now()` to
/// its due tick; time never flows backwards.
///
/// # Examples
///
/// ```
/// use cosmos_util::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule_in(5, "b");
/// q.schedule_in(2, "a");
/// q.schedule_in(5, "c"); // same tick as "b": FIFO
/// assert_eq!(q.pop(), Some((2, "a")));
/// assert_eq!(q.pop(), Some((5, "b")));
/// assert_eq!(q.pop(), Some((5, "c")));
/// assert_eq!(q.now(), 5);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, OrdIgnored<T>)>>,
}

/// Wrapper that lets payloads ride inside the heap key without requiring
/// (or consulting) an `Ord` on `T`: the `(due, seq)` prefix is already a
/// total order, so payload comparison is unreachable.
#[derive(Debug, Clone)]
struct OrdIgnored<T>(T);

impl<T> PartialEq for OrdIgnored<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdIgnored<T> {}
impl<T> PartialOrd for OrdIgnored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdIgnored<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at tick 0.
    pub fn new() -> Self {
        Self { now: 0, seq: 0, heap: BinaryHeap::new() }
    }

    /// Current simulated time: the due tick of the last popped event.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute tick `due`. Ticks before `now()` are
    /// clamped to `now()` (the event fires "immediately", after anything
    /// already scheduled for the current tick).
    pub fn schedule_at(&mut self, due: u64, payload: T) {
        let due = due.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((due, seq, OrdIgnored(payload))));
    }

    /// Schedules `payload` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, payload: T) {
        self.schedule_at(self.now.saturating_add(delay), payload);
    }

    /// Pops the earliest pending event, advancing the clock to its due
    /// tick. Returns `None` when the queue is empty (the clock holds).
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse((due, _, OrdIgnored(payload))) = self.heap.pop()?;
        self.now = due;
        Some((due, payload))
    }

    /// Due tick of the earliest pending event, without popping it.
    pub fn peek_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((due, _, _))| *due)
    }

    /// Pops the earliest pending event only if it is due at or before
    /// `tick`, advancing the clock to `max(its due tick, now)`. Lets a
    /// caller drive this queue from an *external* clock (e.g. checkpoint
    /// schedules paced by a network's simulated time) without racing
    /// ahead of it: events due after `tick` stay queued.
    pub fn pop_due(&mut self, tick: u64) -> Option<(u64, T)> {
        if self.peek_due()? > tick {
            return None;
        }
        self.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(2)));
        let first = sw.elapsed();
        sw.time(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(sw.elapsed() >= first + Duration::from_millis(1));
    }

    #[test]
    fn reset_zeroes_state() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(1)));
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn double_start_is_harmless() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        sw.stop();
        sw.stop();
        // No panic, time recorded once.
        assert!(sw.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn event_queue_orders_by_tick_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 'c');
        q.schedule_at(3, 'a');
        q.schedule_at(10, 'd');
        q.schedule_at(3, 'b');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, 'a'), (3, 'b'), (10, 'c'), (10, 'd')]);
        assert_eq!(q.now(), 10);
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_clamps_past_deadlines() {
        let mut q = EventQueue::new();
        q.schedule_at(7, 1u32);
        assert_eq!(q.pop(), Some((7, 1)));
        // Scheduling "in the past" fires at the current tick instead.
        q.schedule_at(2, 2);
        q.schedule_in(0, 3);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((7, 3)));
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn event_queue_interleaves_scheduling_and_popping() {
        let mut q = EventQueue::new();
        q.schedule_in(4, "first");
        assert_eq!(q.pop(), Some((4, "first")));
        q.schedule_in(4, "second"); // relative to now = 4
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((8, "second")));
    }

    #[test]
    fn pop_due_holds_future_events() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 'a');
        q.schedule_at(9, 'b');
        assert_eq!(q.peek_due(), Some(5));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.now(), 0, "a refused pop must not advance the clock");
        assert_eq!(q.pop_due(5), Some((5, 'a')));
        assert_eq!(q.pop_due(5), None, "'b' is due at 9, past the external tick");
        assert_eq!(q.pop_due(20), Some((9, 'b')));
        assert_eq!(q.pop_due(20), None);
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn pop_due_same_tick_is_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(3, 1u32);
        q.schedule_at(3, 2u32);
        assert_eq!(q.pop_due(3), Some((3, 1)));
        assert_eq!(q.pop_due(3), Some((3, 2)));
    }

    /// The reliable/recovery planes cancel timers lazily: payloads carry an
    /// epoch, cancellation bumps the live epoch, and stale events are
    /// discarded on pop. A restore cycle (state torn down and rebuilt while
    /// old timers are still queued) must not let a pre-crash timer fire
    /// into the restored state.
    #[test]
    fn epoch_lazy_cancellation_survives_restore_cycle() {
        let mut q: EventQueue<(u64, &str)> = EventQueue::new();
        let mut epoch = 0u64;
        q.schedule_at(10, (epoch, "pre-crash retransmit"));
        q.schedule_at(12, (epoch, "pre-crash checkpoint"));

        // Crash + restore: the owning state is rebuilt; its queued timers
        // cannot be removed from the heap, so the epoch is bumped instead.
        epoch += 1;
        q.schedule_at(15, (epoch, "post-restore checkpoint"));

        let mut fired = Vec::new();
        while let Some((due, (ep, label))) = q.pop() {
            if ep == epoch {
                fired.push((due, label));
            }
        }
        assert_eq!(fired, vec![(15, "post-restore checkpoint")]);
        // Stale events still advanced the clock (they were popped, just
        // not acted on) — time is shared, cancellation is per-payload.
        assert_eq!(q.now(), 15);

        // A second restore cycle: the bumped epoch invalidates the first
        // restore's timers the same way.
        q.schedule_at(20, (epoch, "stale after second restore"));
        epoch += 1;
        q.schedule_at(22, (epoch, "live"));
        let mut fired = Vec::new();
        while let Some((due, (ep, label))) = q.pop_due(30) {
            if ep == epoch {
                fired.push((due, label));
            }
        }
        assert_eq!(fired, vec![(22, "live")]);
    }
}
