//! Global symbol interning and schema interning for the tuple data plane.
//!
//! Every stream name, relation alias, and attribute name in the system is
//! a short string drawn from a small, slowly-growing universe, while the
//! tuples carrying them number in the millions. Interning maps each
//! distinct string to a [`Symbol`] — a `u32` — once, so the per-tuple hot
//! paths (predicate evaluation, window-join probing, broker filtering and
//! early projection, join flattening) compare and hash integers instead of
//! strings and never allocate.
//!
//! [`Schema`] extends the same idea to attribute *lists*: tuples with the
//! same shape share one interned, `Arc`-ed schema (symbol → column index),
//! so a tuple's payload is a bare `Vec<Scalar>` indexed positionally.
//! Schema identity (`Schema::id`) makes derived-schema caches — like the
//! join-flatten cache in `cosmos-engine` — cheap to key.
//!
//! Interned strings are leaked (`&'static str`); the universe of names is
//! bounded by the workload definition, not by traffic, so this is the
//! standard time/space trade for interners.
//!
//! # Examples
//!
//! ```
//! use cosmos_util::intern::{Schema, Symbol};
//!
//! let a = Symbol::intern("snowHeight");
//! let b = Symbol::intern("snowHeight");
//! assert_eq!(a, b); // equal strings intern to the same symbol
//! assert_eq!(a.as_str(), "snowHeight");
//!
//! let schema = Schema::intern(&[Symbol::intern("k"), Symbol::intern("v")]);
//! assert_eq!(schema.index_of(Symbol::intern("v")), Some(1));
//! let same = Schema::intern(&[Symbol::intern("k"), Symbol::intern("v")]);
//! assert_eq!(schema.id(), same.id()); // equal attr lists share a schema
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned string: `u32`-sized, `Copy`, compared and hashed as an
/// integer. Equal strings always intern to the same symbol, across
/// threads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct StringInterner {
    map: HashMap<&'static str, u32>,
    len: u32,
}

fn string_interner() -> &'static RwLock<StringInterner> {
    static INTERNER: OnceLock<RwLock<StringInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(StringInterner { map: HashMap::new(), len: 0 }))
}

/// Lock-free id → string resolution table: append-only chunks of
/// geometrically growing capacity (chunk `c` holds `64 << c` entries), each
/// slot written once under the interner's write lock and thereafter read
/// with two relaxed `OnceLock` loads — `as_str` never takes a lock, which
/// matters because the data plane calls it per routing-table entry.
const RESOLVE_CHUNKS: usize = 26;

type ResolveChunk = Box<[OnceLock<&'static str>]>;

fn resolve_table() -> &'static [OnceLock<ResolveChunk>; RESOLVE_CHUNKS] {
    static TABLE: OnceLock<[OnceLock<ResolveChunk>; RESOLVE_CHUNKS]> = OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|_| OnceLock::new()))
}

/// `(chunk, offset)` of symbol id `id`.
fn resolve_slot(id: u32) -> (usize, usize) {
    let k = (id / 64) + 1;
    let chunk = (31 - k.leading_zeros()) as usize;
    let start = 64 * ((1u32 << chunk) - 1);
    (chunk, (id - start) as usize)
}

fn resolve_store(id: u32, s: &'static str) {
    let (chunk, offset) = resolve_slot(id);
    assert!(chunk < RESOLVE_CHUNKS, "symbol table overflow");
    let slab = resolve_table()[chunk].get_or_init(|| {
        let cap = 64usize << chunk;
        (0..cap).map(|_| OnceLock::new()).collect::<Vec<_>>().into_boxed_slice()
    });
    slab[offset].set(s).expect("symbol slot written twice");
}

thread_local! {
    /// Per-thread string → symbol fast path; hits cost one hash, no lock.
    static INTERN_CACHE: RefCell<HashMap<&'static str, Symbol>> =
        RefCell::new(HashMap::new());
}

impl Symbol {
    /// Interns `s`, returning its symbol (stable for the process lifetime).
    pub fn intern(s: &str) -> Symbol {
        if let Some(sym) = INTERN_CACHE.with_borrow(|c| c.get(s).copied()) {
            return sym;
        }
        let sym = Self::intern_global(s);
        INTERN_CACHE.with_borrow_mut(|c| c.insert(sym.as_str(), sym));
        sym
    }

    fn intern_global(s: &str) -> Symbol {
        let interner = string_interner();
        if let Some(&id) = interner.read().unwrap_or_else(|e| e.into_inner()).map.get(s) {
            return Symbol(id);
        }
        let mut w = interner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = w.len;
        w.len = w.len.checked_add(1).expect("symbol table overflow");
        resolve_store(id, leaked);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// The symbol for `s` if it was interned before; never allocates.
    pub fn lookup(s: &str) -> Option<Symbol> {
        if let Some(sym) = INTERN_CACHE.with_borrow(|c| c.get(s).copied()) {
            return Some(sym);
        }
        string_interner().read().unwrap_or_else(|e| e.into_inner()).map.get(s).copied().map(Symbol)
    }

    /// The interned string. Lock-free (two atomic loads).
    pub fn as_str(self) -> &'static str {
        let (chunk, offset) = resolve_slot(self.0);
        resolve_table()[chunk]
            .get()
            .and_then(|slab| slab[offset].get())
            .expect("dangling symbol id")
    }

    /// The raw table index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The interned symbol for `"{alias}.{attr}"`, built (and allocated)
    /// only the first time a given pair is seen — per-thread caches make
    /// repeat lookups two `u32` hashes with no locking.
    pub fn dotted(alias: Symbol, attr: Symbol) -> Symbol {
        DOTTED_CACHE.with_borrow_mut(|cache| {
            *cache
                .entry((alias, attr))
                .or_insert_with(|| Symbol::intern(&format!("{}.{}", alias.as_str(), attr.as_str())))
        })
    }

    /// Splits a dotted symbol back into `(alias, attr)` symbols; `None`
    /// when the string has no `.`. Allocation-free for names already
    /// interned via [`Symbol::dotted`].
    pub fn split_dotted(self) -> Option<(Symbol, Symbol)> {
        let (alias, attr) = self.as_str().split_once('.')?;
        Some((Symbol::intern(alias), Symbol::intern(attr)))
    }
}

thread_local! {
    static DOTTED_CACHE: RefCell<HashMap<(Symbol, Symbol), Symbol>> =
        RefCell::new(HashMap::new());
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

/// The well-known `timestamp` symbol (every tuple exposes its event time
/// under this pseudo-attribute).
pub fn sym_timestamp() -> Symbol {
    static TS: OnceLock<Symbol> = OnceLock::new();
    *TS.get_or_init(|| Symbol::intern("timestamp"))
}

/// An interned attribute list: maps attribute symbols to column indices.
///
/// Schemas are deduplicated globally — equal attribute lists share one
/// `Arc<Schema>` and one `id` — so "same shape" checks and derived-schema
/// caches are integer comparisons.
#[derive(PartialEq, Eq)]
pub struct Schema {
    id: u32,
    attrs: Box<[Symbol]>,
}

struct SchemaInterner {
    map: HashMap<Box<[Symbol]>, Arc<Schema>>,
}

fn schema_interner() -> &'static RwLock<SchemaInterner> {
    static INTERNER: OnceLock<RwLock<SchemaInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(SchemaInterner { map: HashMap::new() }))
}

thread_local! {
    /// Per-thread `(schema id, appended attr)` → extended schema cache.
    static EXTEND_CACHE: RefCell<HashMap<(u32, Symbol), Arc<Schema>>> =
        RefCell::new(HashMap::new());
}

impl Schema {
    /// Interns an attribute list.
    ///
    /// # Panics
    ///
    /// Panics on duplicate attributes — a schema is a positional index, so
    /// a repeated name would make `index_of` ambiguous.
    pub fn intern(attrs: &[Symbol]) -> Arc<Schema> {
        let interner = schema_interner();
        if let Some(existing) = interner.read().unwrap_or_else(|e| e.into_inner()).map.get(attrs) {
            return Arc::clone(existing);
        }
        // Validate before taking the write lock so a panic cannot leave it
        // poisoned mid-insert.
        for (i, a) in attrs.iter().enumerate() {
            assert!(!attrs[..i].contains(a), "duplicate attribute {a} in schema {attrs:?}");
        }
        let mut w = interner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = w.map.get(attrs) {
            return Arc::clone(existing);
        }
        let id = u32::try_from(w.map.len()).expect("schema table overflow");
        let key: Box<[Symbol]> = attrs.into();
        let schema = Arc::new(Schema { id, attrs: key.clone() });
        w.map.insert(key, Arc::clone(&schema));
        schema
    }

    /// The empty schema.
    pub fn empty() -> Arc<Schema> {
        static EMPTY: OnceLock<Arc<Schema>> = OnceLock::new();
        Arc::clone(EMPTY.get_or_init(|| Schema::intern(&[])))
    }

    /// This schema extended by `attr` (interned). A per-thread cache keyed
    /// by `(schema id, attr)` makes the builder-style tuple constructors
    /// (`.with(...)` chains) two small hashes per attribute on repeat
    /// shapes instead of a global-lock schema interning.
    pub fn with(&self, attr: Symbol) -> Arc<Schema> {
        EXTEND_CACHE.with_borrow_mut(|cache| {
            Arc::clone(cache.entry((self.id, attr)).or_insert_with(|| {
                let mut attrs = self.attrs.to_vec();
                attrs.push(attr);
                Schema::intern(&attrs)
            }))
        })
    }

    /// Globally unique id (equal attribute lists ⇒ equal ids).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The attribute list, in column order.
    pub fn attrs(&self) -> &[Symbol] {
        &self.attrs
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The column index of `attr`. Linear scan over `u32`s — sensor
    /// schemas are narrow, so this beats hashing.
    pub fn index_of(&self, attr: Symbol) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Schema").field("id", &self.id).field("attrs", &self.attrs).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_intern_to_same_symbol() {
        let a = Symbol::intern("alpha-test");
        let b = Symbol::intern("alpha-test");
        let c = Symbol::intern("beta-test");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn round_trip_through_str() {
        let s = Symbol::intern("round-trip-value");
        assert_eq!(s.as_str(), "round-trip-value");
        assert_eq!(s, "round-trip-value");
        assert_eq!(s.to_string(), "round-trip-value");
        assert_eq!(Symbol::from("round-trip-value"), s);
        assert_eq!(Symbol::lookup("round-trip-value"), Some(s));
        assert_eq!(Symbol::lookup("never-interned-xyzzy"), None);
    }

    #[test]
    fn cross_thread_stability() {
        let here = Symbol::intern("cross-thread-name");
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mine = Symbol::intern("cross-thread-name");
                    let unique = Symbol::intern(&format!("cross-thread-{i}"));
                    (mine, unique)
                })
            })
            .collect();
        let mut uniques = Vec::new();
        for h in handles {
            let (mine, unique) = h.join().unwrap();
            assert_eq!(mine, here, "same string must be the same symbol on every thread");
            uniques.push(unique);
        }
        uniques.sort_unstable();
        uniques.dedup();
        assert_eq!(uniques.len(), 8, "distinct strings must stay distinct");
    }

    #[test]
    fn dotted_builds_and_splits() {
        let alias = Symbol::intern("S1");
        let attr = Symbol::intern("snowHeight");
        let dotted = Symbol::dotted(alias, attr);
        assert_eq!(dotted.as_str(), "S1.snowHeight");
        assert_eq!(Symbol::dotted(alias, attr), dotted);
        assert_eq!(dotted.split_dotted(), Some((alias, attr)));
        assert_eq!(alias.split_dotted(), None);
    }

    #[test]
    fn schema_interning_dedupes() {
        let k = Symbol::intern("schema-k");
        let v = Symbol::intern("schema-v");
        let a = Schema::intern(&[k, v]);
        let b = Schema::intern(&[k, v]);
        let c = Schema::intern(&[v, k]);
        assert_eq!(a.id(), b.id());
        assert!(Arc::ptr_eq(&a, &b));
        assert_ne!(a.id(), c.id(), "column order is part of schema identity");
        assert_eq!(a.index_of(k), Some(0));
        assert_eq!(a.index_of(v), Some(1));
        assert_eq!(c.index_of(k), Some(1));
        assert_eq!(a.index_of(Symbol::intern("schema-missing")), None);
    }

    #[test]
    fn schema_with_extends() {
        let base = Schema::empty();
        assert!(base.is_empty());
        let k = Symbol::intern("extend-k");
        let one = base.with(k);
        assert_eq!(one.len(), 1);
        assert_eq!(one.attrs(), &[k]);
        // Extending again with the same symbol would duplicate — covered by
        // the panic contract, exercised below.
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn schema_rejects_duplicates() {
        let k = Symbol::intern("dup-k");
        let _ = Schema::intern(&[k, k]);
    }

    #[test]
    fn timestamp_symbol_is_stable() {
        assert_eq!(sym_timestamp(), Symbol::intern("timestamp"));
    }
}
