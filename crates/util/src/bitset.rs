//! Packed bit vectors representing query data interests over substreams.
//!
//! The paper (§3.2) partitions every stream into substreams and represents a
//! query's data interest as a bit vector so that overlap between two queries
//! can be estimated "by efficient bit operations" instead of semantic
//! reasoning. [`InterestSet`] is that bit vector: a fixed-universe bitset
//! packed into `u64` words with word-parallel intersection/union/weighted
//! overlap operations.

use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-universe bitset over substream indices.
///
/// Two `InterestSet`s are only meaningfully comparable when they share the
/// same `universe` (number of substreams); all binary operations panic on a
/// universe mismatch, since mixing universes is always a logic error.
///
/// # Examples
///
/// ```
/// use cosmos_util::InterestSet;
///
/// let a = InterestSet::from_indices(100, [1usize, 5, 63, 64]);
/// let b = InterestSet::from_indices(100, [5usize, 64, 99]);
/// assert_eq!(a.intersection_count(&b), 2);
/// assert!(a.union(&b).contains(99));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterestSet {
    universe: usize,
    words: Vec<u64>,
}

impl InterestSet {
    /// Creates an empty interest set over `universe` substreams.
    pub fn new(universe: usize) -> Self {
        let nwords = universe.div_ceil(WORD_BITS);
        Self { universe, words: vec![0; nwords] }
    }

    /// Creates a set with every substream selected.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for i in 0..universe {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of substream indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        let mut s = Self::new(universe);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The number of substreams this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts substream `i` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.universe, "substream index {i} out of universe {}", self.universe);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes substream `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.universe, "substream index {i} out of universe {}", self.universe);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Returns `true` if substream `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.universe {
            return false;
        }
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of substreams in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no substream is selected.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn assert_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "interest sets over different substream universes"
        );
    }

    /// Number of substreams present in both sets (population of the AND).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Returns `true` if the two sets share at least one substream.
    ///
    /// Cheaper than [`InterestSet::intersection_count`] because it can exit
    /// at the first overlapping word.
    pub fn overlaps(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if `self` is a superset of `other` (covers it).
    pub fn is_superset(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| b & !a == 0)
    }

    /// The intersection of the two sets.
    pub fn intersection(&self, other: &Self) -> Self {
        self.assert_same_universe(other);
        Self {
            universe: self.universe,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
        }
    }

    /// The union of the two sets.
    pub fn union(&self, other: &Self) -> Self {
        self.assert_same_universe(other);
        Self {
            universe: self.universe,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
        }
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Sum of `rates[i]` over the substreams present in the set.
    ///
    /// This is the *data rate of a query's interest* — the quantity the paper
    /// uses for query-graph edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != universe`.
    pub fn weighted_len(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.universe, "rate table does not match universe");
        self.iter().map(|i| rates[i]).sum()
    }

    /// Sum of `rates[i]` over the substreams present in **both** sets.
    ///
    /// This is the weight of a query-graph *overlap edge* (§3.1.2): "the rate
    /// of the data that are of interest to both of its end vertices".
    ///
    /// # Panics
    ///
    /// Panics if the universes differ or `rates.len() != universe`.
    pub fn weighted_overlap(&self, other: &Self, rates: &[f64]) -> f64 {
        self.assert_same_universe(other);
        assert_eq!(rates.len(), self.universe, "rate table does not match universe");
        let mut total = 0.0;
        for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut w = a & b;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                total += rates[wi * WORD_BITS + bit];
                w &= w - 1;
            }
        }
        total
    }

    /// Iterates over the substream indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }
}

impl fmt::Debug for InterestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InterestSet")
            .field("universe", &self.universe)
            .field("len", &self.len())
            .finish()
    }
}

impl FromIterator<usize> for InterestSet {
    /// Collects indices into a set whose universe is `max index + 1`.
    ///
    /// Mostly useful in tests; prefer [`InterestSet::from_indices`] so the
    /// universe matches the experiment's substream count.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let universe = indices.iter().max().map_or(0, |m| m + 1);
        Self::from_indices(universe, indices)
    }
}

/// Iterator over set substream indices, produced by [`InterestSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a InterestSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = InterestSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = InterestSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = InterestSet::from_indices(10, [3usize]);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = InterestSet::new(10);
        s.insert(10);
    }

    #[test]
    #[should_panic(expected = "different substream universes")]
    fn mixed_universe_panics() {
        let a = InterestSet::new(10);
        let b = InterestSet::new(20);
        let _ = a.intersection_count(&b);
    }

    #[test]
    fn full_set_covers_everything() {
        let f = InterestSet::full(77);
        assert_eq!(f.len(), 77);
        let s = InterestSet::from_indices(77, [0usize, 40, 76]);
        assert!(f.is_superset(&s));
        assert!(!s.is_superset(&f));
    }

    #[test]
    fn weighted_overlap_matches_manual_sum() {
        let rates: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = InterestSet::from_indices(100, [1usize, 50, 99]);
        let b = InterestSet::from_indices(100, [50usize, 99, 3]);
        assert_eq!(a.weighted_overlap(&b, &rates), 50.0 + 99.0);
        assert_eq!(a.weighted_len(&rates), 1.0 + 50.0 + 99.0);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = InterestSet::from_indices(200, [199usize, 0, 64, 63, 128]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn from_iterator_universe_is_max_plus_one() {
        let s: InterestSet = [5usize, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = InterestSet::new(8);
        assert!(!format!("{s:?}").is_empty());
    }

    fn arb_indices(universe: usize) -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(0..universe, 0..universe)
    }

    proptest! {
        #[test]
        fn prop_intersection_commutes(a in arb_indices(256), b in arb_indices(256)) {
            let sa = InterestSet::from_indices(256, a);
            let sb = InterestSet::from_indices(256, b);
            prop_assert_eq!(sa.intersection_count(&sb), sb.intersection_count(&sa));
            prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
            prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        }

        #[test]
        fn prop_union_is_superset_of_both(a in arb_indices(256), b in arb_indices(256)) {
            let sa = InterestSet::from_indices(256, a);
            let sb = InterestSet::from_indices(256, b);
            let u = sa.union(&sb);
            prop_assert!(u.is_superset(&sa));
            prop_assert!(u.is_superset(&sb));
            prop_assert_eq!(u.len() + sa.intersection_count(&sb), sa.len() + sb.len());
        }

        #[test]
        fn prop_superset_iff_intersection_is_smaller(a in arb_indices(128), b in arb_indices(128)) {
            let sa = InterestSet::from_indices(128, a);
            let sb = InterestSet::from_indices(128, b);
            let covers = sa.is_superset(&sb);
            prop_assert_eq!(covers, sa.intersection_count(&sb) == sb.len());
        }

        #[test]
        fn prop_weighted_overlap_equals_scalar_sum(
            a in arb_indices(192),
            b in arb_indices(192),
            seed in 0u64..1000,
        ) {
            let rates: Vec<f64> = (0..192).map(|i| ((i as u64 * 31 + seed) % 17) as f64).collect();
            let sa = InterestSet::from_indices(192, a);
            let sb = InterestSet::from_indices(192, b);
            let fast = sa.weighted_overlap(&sb, &rates);
            let slow: f64 = (0..192)
                .filter(|&i| sa.contains(i) && sb.contains(i))
                .map(|i| rates[i])
                .sum();
            prop_assert!((fast - slow).abs() < 1e-9);
        }

        #[test]
        fn prop_overlaps_agrees_with_count(a in arb_indices(96), b in arb_indices(96)) {
            let sa = InterestSet::from_indices(96, a);
            let sb = InterestSet::from_indices(96, b);
            prop_assert_eq!(sa.overlaps(&sb), sa.intersection_count(&sb) > 0);
        }
    }
}
