//! Sparse symmetric linear solvers for the load-diffusion step.
//!
//! The adaptive redistribution algorithm (§3.7) adopts the Hu–Blake optimal
//! dynamic load-balancing method: find per-edge load transfers `m_ij` whose
//! Euclidean norm is minimal among all transfers that balance the load. The
//! classic construction solves the graph Laplacian system `L λ = b` (where
//! `b_i = load_i − average`) and sets `m_ij = λ_i − λ_j` along each edge.
//!
//! The Laplacian is singular (constant vectors are its null space), so we use
//! conjugate gradients restricted to the subspace orthogonal to the all-ones
//! vector, which is exactly where `b` lives when total load is conserved.

/// A sparse symmetric matrix stored as (row, col, value) triplets with
/// implied symmetry: push each off-diagonal pair once.
#[derive(Debug, Clone, Default)]
pub struct SparseSym {
    n: usize,
    /// Adjacency: for each row, (col, value) entries including the diagonal.
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseSym {
    /// Creates an `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        Self { n, rows: vec![Vec::new(); n] }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix is 0 × 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `v` at `(i, j)` and, when `i != j`, at `(j, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.rows[i].push((j, v));
        if i != j {
            self.rows[j].push((i, v));
        }
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for (i, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0;
            for &(j, v) in row {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        y
    }
}

/// Builds the graph Laplacian of an undirected graph given as an edge list
/// over `n` vertices. Parallel edges accumulate.
pub fn laplacian(n: usize, edges: &[(usize, usize)]) -> SparseSym {
    let mut l = SparseSym::new(n);
    let mut degree = vec![0.0; n];
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of bounds");
        assert_ne!(u, v, "self-loops are not part of a Laplacian");
        l.add(u, v, -1.0);
        degree[u] += 1.0;
        degree[v] += 1.0;
    }
    for (i, d) in degree.iter().enumerate() {
        l.add(i, i, *d);
    }
    l
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn project_out_ones(v: &mut [f64]) {
    if v.is_empty() {
        return;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

/// Solves `A x = b` by conjugate gradients in the subspace orthogonal to the
/// all-ones vector (suitable for connected-graph Laplacians).
///
/// Returns the solution with zero mean. Iterates until the residual norm
/// falls below `tol` or `max_iter` iterations elapse.
///
/// # Panics
///
/// Panics if `b.len() != A.len()`.
pub fn cg_laplacian(a: &SparseSym, b: &[f64], tol: f64, max_iter: usize) -> Vec<f64> {
    assert_eq!(b.len(), a.len(), "dimension mismatch");
    let n = b.len();
    let mut b = b.to_vec();
    project_out_ones(&mut b);

    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    if rs_old.sqrt() <= tol {
        return x;
    }
    for _ in 0..max_iter {
        let ap = a.mul(&p);
        let denom = dot(&p, &ap);
        if denom.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() <= tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    project_out_ones(&mut x);
    x
}

/// Hu–Blake diffusion solution: given vertex loads and an undirected edge
/// list, returns per-edge transfers `m`, aligned with `edges`, such that
/// applying them balances the load (vertex `u` sends `m_k` to `v` when
/// `m_k > 0`, receives when negative) with minimal Euclidean norm.
///
/// The graph must be connected for an exact balance; on a disconnected graph
/// each component balances internally around its own mean.
pub fn diffusion_solution(loads: &[f64], edges: &[(usize, usize)]) -> Vec<f64> {
    let n = loads.len();
    if n == 0 || edges.is_empty() {
        return vec![0.0; edges.len()];
    }
    let l = laplacian(n, edges);
    let mean = loads.iter().sum::<f64>() / n as f64;
    let b: Vec<f64> = loads.iter().map(|&x| x - mean).collect();
    let lambda = cg_laplacian(&l, &b, 1e-10, 4 * n.max(32));
    edges.iter().map(|&(u, v)| lambda[u] - lambda[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn apply_transfers(loads: &[f64], edges: &[(usize, usize)], m: &[f64]) -> Vec<f64> {
        let mut out = loads.to_vec();
        for (k, &(u, v)) in edges.iter().enumerate() {
            out[u] -= m[k];
            out[v] += m[k];
        }
        out
    }

    #[test]
    fn two_nodes_split_evenly() {
        let loads = [10.0, 0.0];
        let edges = [(0, 1)];
        let m = diffusion_solution(&loads, &edges);
        let after = apply_transfers(&loads, &edges, &m);
        assert!((after[0] - 5.0).abs() < 1e-6);
        assert!((after[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn path_graph_balances() {
        let loads = [9.0, 0.0, 0.0];
        let edges = [(0, 1), (1, 2)];
        let m = diffusion_solution(&loads, &edges);
        let after = apply_transfers(&loads, &edges, &m);
        for l in after {
            assert!((l - 3.0).abs() < 1e-6, "got {l}");
        }
        // Node 0 must push 6 through its only edge; edge (1,2) carries 3.
        assert!((m[0] - 6.0).abs() < 1e-6);
        assert!((m[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph_matches_closed_form() {
        // On K_n, lambda_i = (load_i - mean) / n, so m_ij = (l_i - l_j) / n.
        let loads = [8.0, 2.0, 2.0, 0.0];
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let m = diffusion_solution(&loads, &edges);
        let after = apply_transfers(&loads, &edges, &m);
        for l in &after {
            assert!((l - 3.0).abs() < 1e-6);
        }
        for (k, &(u, v)) in edges.iter().enumerate() {
            let expect = (loads[u] - loads[v]) / 4.0;
            assert!((m[k] - expect).abs() < 1e-6, "edge {k}");
        }
    }

    #[test]
    fn already_balanced_means_zero_transfers() {
        let loads = [4.0, 4.0, 4.0];
        let edges = [(0, 1), (1, 2), (0, 2)];
        let m = diffusion_solution(&loads, &edges);
        for v in m {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ones = vec![1.0; 4];
        for v in l.mul(&ones) {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = laplacian(3, &[(1, 1)]);
    }

    proptest! {
        #[test]
        fn prop_diffusion_balances_random_ring(
            loads in proptest::collection::vec(0.0f64..100.0, 3..20),
        ) {
            let n = loads.len();
            let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let m = diffusion_solution(&loads, &edges);
            let after = apply_transfers(&loads, &edges, &m);
            let mean = loads.iter().sum::<f64>() / n as f64;
            for l in after {
                prop_assert!((l - mean).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_total_load_conserved(
            loads in proptest::collection::vec(0.0f64..50.0, 2..16),
            extra in proptest::collection::vec((0usize..16, 0usize..16), 0..10),
        ) {
            let n = loads.len();
            let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            for (a, b) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let m = diffusion_solution(&loads, &edges);
            let after = apply_transfers(&loads, &edges, &m);
            let before_total: f64 = loads.iter().sum();
            let after_total: f64 = after.iter().sum();
            prop_assert!((before_total - after_total).abs() < 1e-6);
        }
    }
}
