//! Deterministic seed derivation.
//!
//! Every stochastic component of the reproduction takes an explicit `u64`
//! seed. To keep sub-components independent (changing how many random draws
//! the topology generator makes must not perturb the query generator), seeds
//! are *derived* from a root seed plus a label using SplitMix64, rather than
//! sharing one RNG stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; good avalanche behaviour makes it a
/// solid seed mixer.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a root seed and a textual label.
///
/// # Examples
///
/// ```
/// use cosmos_util::rng::derive_seed;
///
/// let topo = derive_seed(42, "topology");
/// let queries = derive_seed(42, "queries");
/// assert_ne!(topo, queries);
/// assert_eq!(topo, derive_seed(42, "topology"));
/// ```
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0xA076_1D64_78BD_642F;
    for &b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h)
}

/// Derives a child seed from a root seed and an index (for per-item streams).
pub fn derive_seed_indexed(root: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(root, label) ^ splitmix64(index))
}

/// Creates a [`StdRng`] from a root seed and label.
pub fn rng_for(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// Creates a [`StdRng`] from a root seed, label, and index.
pub fn rng_for_indexed(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(root, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_stable() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_eq!(derive_seed_indexed(1, "a", 7), derive_seed_indexed(1, "a", 7));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
        assert_ne!(derive_seed_indexed(1, "a", 0), derive_seed_indexed(1, "a", 1));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = rng_for(99, "x");
        let mut r2 = rng_for(99, "x");
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_has_no_trivial_fixed_point_at_zero() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
