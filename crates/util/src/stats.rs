//! Summary statistics used throughout the experiment harness.
//!
//! The paper reports the *standard deviation of processor loads* (Figures
//! 7b, 8b, 10b) next to communication cost. [`Summary`] computes the moments
//! with Welford's online algorithm so long simulation runs never accumulate
//! FP cancellation error.

/// Online mean / variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use cosmos_util::stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation — what the paper's "standard deviation
    /// of system load" figures plot.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by `n - 1`; 0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Population standard deviation of a slice, convenience wrapper.
pub fn stddev(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Summary>().population_stddev()
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Summary>().mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_stddev(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn matches_two_pass_formula() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0, -5.0];
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a: Summary = (0..100).map(|i| i as f64).collect();
        let b: Summary = (100..250).map(|i| (i as f64).sqrt()).collect();
        let whole: Summary =
            (0..100).map(|i| i as f64).chain((100..250).map(|i| (i as f64).sqrt())).collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn helpers_agree_with_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s: Summary = xs.iter().copied().collect();
            prop_assert!(s.population_variance() >= -1e-9);
        }

        #[test]
        fn prop_merge_commutes(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let a: Summary = xs.iter().copied().collect();
            let b: Summary = ys.iter().copied().collect();
            let mut ab = a; ab.merge(&b);
            let mut ba = b; ba.merge(&a);
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-6);
            prop_assert_eq!(ab.count(), ba.count());
        }
    }
}
