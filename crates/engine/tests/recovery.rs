//! Engine crash-recovery differential suite.
//!
//! Every trial drives a *recoverable host* — an engine plus the
//! checkpoint/retain/replay bookkeeping of `cosmos-pubsub::recovery`,
//! reduced to a single in-process upstream — through a random
//! interleaving of input batches, checkpoints, crashes, and restores,
//! against a **crash-free twin** consuming the identical input serially.
//! After every operation the host's lifetime output log and execution
//! counters must equal the twin's **bit-for-bit**, and the retained
//! replay suffix must be exactly the inputs above the acked checkpoint
//! watermark (the upstream-backup retention bound).
//!
//! Crashes land mid-window by construction: batches are small, windows
//! span many batches, and the op schedule interleaves freely — so
//! checkpoints race crashes, windows are partially filled, and joins are
//! in flight at most failure points.
//!
//! All three stateful engines run the same schedule: [`StreamEngine`]
//! (SPJ window joins), [`AggregateEngine`], and [`SharedEngine`].
//!
//! A failing trial prints its seed and op index;
//! `COSMOS_RECOVERY_TRIAL=<n>` reruns exactly that trial.
//! `COSMOS_STRESS=1` raises trial counts.
//!
//! The proptests pin the core algebraic law the suite leans on:
//! `restore(extract(e))` is observationally identical to `e` on
//! arbitrary subsequent input — push-for-push output equality.

use cosmos_engine::aggregate::AggregateEngine;
use cosmos_engine::checkpoint::{AggregateCheckpoint, SharedCheckpoint, StreamCheckpoint};
use cosmos_engine::exec::{EngineStats, StreamEngine};
use cosmos_engine::shared::SharedEngine;
use cosmos_engine::tuple::Tuple;
use cosmos_query::{parse_query, Query, QueryId, Scalar};
use cosmos_util::rng::rng_for;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

fn stress() -> bool {
    std::env::var("COSMOS_STRESS").is_ok_and(|v| v == "1")
}

/// `COSMOS_RECOVERY_TRIAL=<n>` replays a single failing trial.
fn trial_override() -> Option<u64> {
    std::env::var("COSMOS_RECOVERY_TRIAL").ok().and_then(|v| v.parse().ok())
}

thread_local! {
    /// Op index of the step currently executing, for failure reports.
    static STEP: Cell<u32> = const { Cell::new(0) };
}

/// The uniform engine surface the differential harness drives. Each
/// implementor rebuilds from its query set on crash and restores the
/// last checkpoint, exactly like a restarted broker host.
trait Recoverable: Sized {
    type Cp;
    type Out: PartialEq + std::fmt::Debug + Clone;
    fn build(queries: &[(QueryId, Query)]) -> Self;
    fn feed(&mut self, t: Tuple) -> Vec<Self::Out>;
    fn extract(&self) -> Self::Cp;
    fn restore_cp(&mut self, cp: &Self::Cp);
    /// Execution counters, where the engine exposes them.
    fn stats(&self) -> Option<EngineStats>;
}

impl Recoverable for StreamEngine {
    type Cp = StreamCheckpoint;
    type Out = cosmos_engine::exec::ResultTuple;
    fn build(queries: &[(QueryId, Query)]) -> Self {
        let mut e = StreamEngine::new();
        for (id, q) in queries {
            e.add_query(*id, q.clone());
        }
        e
    }
    fn feed(&mut self, t: Tuple) -> Vec<Self::Out> {
        self.push(t)
    }
    fn extract(&self) -> Self::Cp {
        self.checkpoint()
    }
    fn restore_cp(&mut self, cp: &Self::Cp) {
        self.restore(cp);
    }
    fn stats(&self) -> Option<EngineStats> {
        Some(self.total_stats())
    }
}

impl Recoverable for AggregateEngine {
    type Cp = AggregateCheckpoint;
    type Out = (QueryId, Tuple);
    fn build(queries: &[(QueryId, Query)]) -> Self {
        let mut e = AggregateEngine::new();
        for (id, q) in queries {
            e.add_query(*id, q.clone());
        }
        e
    }
    fn feed(&mut self, t: Tuple) -> Vec<Self::Out> {
        self.push(t)
    }
    fn extract(&self) -> Self::Cp {
        self.checkpoint()
    }
    fn restore_cp(&mut self, cp: &Self::Cp) {
        self.restore(cp);
    }
    fn stats(&self) -> Option<EngineStats> {
        None
    }
}

impl Recoverable for SharedEngine {
    type Cp = SharedCheckpoint;
    type Out = (QueryId, Tuple);
    fn build(queries: &[(QueryId, Query)]) -> Self {
        SharedEngine::build(queries.to_vec())
    }
    fn feed(&mut self, t: Tuple) -> Vec<Self::Out> {
        self.push(t)
    }
    fn extract(&self) -> Self::Cp {
        self.checkpoint()
    }
    fn restore_cp(&mut self, cp: &Self::Cp) {
        self.restore(cp);
    }
    fn stats(&self) -> Option<EngineStats> {
        Some(self.stats())
    }
}

/// One engine host with upstream-backup bookkeeping: retained replay
/// suffix, checkpoint watermark, crash/replay output verification —
/// the in-process reduction of `cosmos-pubsub::recovery`.
struct Host<E: Recoverable> {
    queries: Vec<(QueryId, Query)>,
    /// `None` while crashed.
    engine: Option<E>,
    /// Seq-tagged unacked inputs; truncated at every checkpoint.
    retained: VecDeque<(u64, Tuple)>,
    next_seq: u64,
    consumed: u64,
    acked: u64,
    consumed_at_crash: u64,
    verify_cursor: usize,
    outputs_at_checkpoint: usize,
    last_cp: Option<E::Cp>,
    /// Lifetime output log — survives crashes, verified during replay.
    outputs: Vec<E::Out>,
}

impl<E: Recoverable> Host<E> {
    fn new(queries: Vec<(QueryId, Query)>) -> Self {
        Self {
            engine: Some(E::build(&queries)),
            queries,
            retained: VecDeque::new(),
            next_seq: 0,
            consumed: 0,
            acked: 0,
            consumed_at_crash: 0,
            verify_cursor: 0,
            outputs_at_checkpoint: 0,
            last_cp: None,
            outputs: Vec::new(),
        }
    }

    fn is_up(&self) -> bool {
        self.engine.is_some()
    }

    /// Retains the input (crashed or not) and feeds a live engine.
    fn publish(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.retained.push_back((seq, t));
        if self.is_up() {
            self.feed_all();
        }
    }

    /// Consumes every retained input above the engine's watermark, in
    /// seq order. Below the crash mark, outputs verify against the
    /// pre-crash log instead of re-emitting (output-side dedup).
    fn feed_all(&mut self) {
        let engine = self.engine.as_mut().expect("feeding a live engine");
        while self.consumed < self.next_seq {
            let seq = self.consumed;
            let i = self.retained.partition_point(|(s, _)| *s < seq);
            let (s, t) = self.retained.get(i).expect("unacked input is retained");
            assert_eq!(*s, seq, "replay log must be seq-dense above the ack watermark");
            let out = engine.feed(t.clone());
            self.consumed += 1;
            if self.consumed <= self.consumed_at_crash {
                for o in out {
                    assert!(
                        self.verify_cursor < self.outputs.len(),
                        "replay produced more outputs than the pre-crash run"
                    );
                    assert_eq!(
                        self.outputs[self.verify_cursor], o,
                        "replayed output diverged from the pre-crash log"
                    );
                    self.verify_cursor += 1;
                }
                if self.consumed == self.consumed_at_crash {
                    assert_eq!(
                        self.verify_cursor,
                        self.outputs.len(),
                        "replay must regenerate exactly the pre-crash outputs"
                    );
                }
            } else {
                self.outputs.extend(out);
            }
        }
    }

    /// Extracts a checkpoint and truncates the replay log at its
    /// watermark, asserting the retention bound.
    fn checkpoint(&mut self) {
        let engine = self.engine.as_ref().expect("checkpointing a live engine");
        self.last_cp = Some(engine.extract());
        self.acked = self.consumed;
        self.outputs_at_checkpoint = self.outputs.len();
        while self.retained.front().is_some_and(|&(s, _)| s < self.acked) {
            self.retained.pop_front();
        }
        assert_eq!(
            self.retained.len() as u64,
            self.next_seq - self.acked,
            "replay retention must be exactly the unacked suffix"
        );
    }

    fn crash(&mut self) {
        assert!(self.is_up(), "host is already down");
        self.engine = None;
        self.consumed_at_crash = self.consumed;
    }

    /// Rebuilds the engine from the query set, restores the last
    /// checkpoint, and replays the retained suffix.
    fn restore(&mut self) {
        assert!(!self.is_up(), "host is already up");
        let mut engine = E::build(&self.queries);
        match &self.last_cp {
            Some(cp) => {
                engine.restore_cp(cp);
                self.consumed = self.acked;
                self.verify_cursor = self.outputs_at_checkpoint;
            }
            None => {
                self.consumed = 0;
                self.verify_cursor = 0;
            }
        }
        self.engine = Some(engine);
        self.feed_all();
    }
}

/// Random in-order tuple over small key/value domains (small keys force
/// join hits; ties and duplicates are common by design).
fn random_tuple(rng: &mut StdRng, streams: &[&str], ts: &mut i64) -> Tuple {
    *ts += rng.gen_range(0i64..4_000);
    Tuple::new(streams[rng.gen_range(0..streams.len())], *ts)
        .with("k", Scalar::Int(rng.gen_range(0i64..5)))
        .with("v", Scalar::Int(rng.gen_range(-20i64..20)))
}

/// One randomized trial: host vs crash-free twin over an identical
/// input schedule, compared bit-for-bit after every operation.
fn run_trial<E: Recoverable>(trial: u64, label: &str, pool: &[&str], streams: &[&str]) {
    let mut rng = rng_for(trial, label);
    let n_queries = rng.gen_range(1..=pool.len().min(4));
    let queries: Vec<(QueryId, Query)> = (0..n_queries)
        .map(|i| {
            let q = pool[rng.gen_range(0..pool.len())];
            (QueryId(i as u64 + 1), parse_query(q).expect("pool query parses"))
        })
        .collect();
    let mut host: Host<E> = Host::new(queries.clone());
    let mut twin = E::build(&queries);
    let mut twin_out: Vec<E::Out> = Vec::new();
    let mut ts = 0i64;
    for step in 0..rng.gen_range(30u32..70) {
        STEP.set(step);
        let roll = rng.gen_range(0u32..100);
        if roll < 55 {
            for _ in 0..rng.gen_range(1u32..6) {
                let t = random_tuple(&mut rng, streams, &mut ts);
                twin_out.extend(twin.feed(t.clone()));
                host.publish(t);
            }
        } else if roll < 70 {
            if host.is_up() {
                host.checkpoint();
            }
        } else if roll < 85 {
            if host.is_up() {
                host.crash();
            }
        } else if !host.is_up() {
            host.restore();
        }
        if host.is_up() {
            assert_eq!(host.outputs, twin_out, "output log diverged from the crash-free twin");
            let (h, t) = (host.engine.as_ref().unwrap().stats(), twin.stats());
            assert_eq!(h, t, "execution counters diverged from the crash-free twin");
        }
    }
    STEP.set(u32::MAX);
    if !host.is_up() {
        host.restore();
    }
    assert_eq!(host.outputs, twin_out, "final output log diverged from the crash-free twin");
    assert_eq!(
        host.engine.as_ref().unwrap().stats(),
        twin.stats(),
        "final execution counters diverged from the crash-free twin"
    );
}

/// Runs `trials` trials (or the single `COSMOS_RECOVERY_TRIAL`
/// override), reporting seed + op index of any failure.
fn run_suite<E: Recoverable>(trials: u64, label: &'static str, pool: &[&str], streams: &[&str]) {
    for trial in 0..trials {
        if trial_override().is_some_and(|t| t != trial) {
            continue;
        }
        if let Err(e) =
            catch_unwind(AssertUnwindSafe(|| run_trial::<E>(trial, label, pool, streams)))
        {
            let step = STEP.get();
            let at =
                if step == u32::MAX { "final convergence".into() } else { format!("op {step}") };
            eprintln!(
                "{label} trial {trial} failed at {at}; rerun with \
                 COSMOS_RECOVERY_TRIAL={trial} cargo test -p cosmos-engine --test recovery"
            );
            resume_unwind(e);
        }
    }
}

const STREAM_POOL: [&str; 5] = [
    "SELECT * FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k",
    "SELECT R.v, S.v FROM R [Range 30 Seconds], S [Range 30 Seconds] WHERE R.k = S.k",
    "SELECT R.v FROM R [Range 90 Seconds] WHERE R.v > 5",
    "SELECT * FROM S [Range 45 Seconds], T [Now] WHERE S.k = T.k",
    "SELECT R.v, T.v FROM R [Range 20 Seconds], T [Range 120 Seconds] WHERE R.v = T.v",
];

const AGG_POOL: [&str; 4] = [
    "SELECT COUNT(R.v), SUM(R.v) FROM R [Range 60 Seconds]",
    "SELECT AVG(S.v) FROM S [Range 30 Seconds]",
    "SELECT MIN(T.v), MAX(T.v) FROM T [Unbounded]",
    "SELECT COUNT(R.v) FROM R [Range 90 Seconds] WHERE R.v > 0",
];

const SHARED_POOL: [&str; 4] = [
    "SELECT R.v FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k AND R.v > 3",
    "SELECT R.v, S.v FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k",
    "SELECT S.v FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k AND S.v < 10",
    "SELECT R.k FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k AND R.v = S.v",
];

const STREAMS: [&str; 3] = ["R", "S", "T"];
const RS: [&str; 2] = ["R", "S"];

#[test]
fn stream_engine_recovers_bit_for_bit() {
    run_suite::<StreamEngine>(
        if stress() { 64 } else { 20 },
        "recovery-stream",
        &STREAM_POOL,
        &STREAMS,
    );
}

#[test]
fn aggregate_engine_recovers_bit_for_bit() {
    run_suite::<AggregateEngine>(
        if stress() { 48 } else { 16 },
        "recovery-agg",
        &AGG_POOL,
        &STREAMS,
    );
}

#[test]
fn shared_engine_recovers_bit_for_bit() {
    run_suite::<SharedEngine>(if stress() { 48 } else { 16 }, "recovery-shared", &SHARED_POOL, &RS);
}

/// Builds engine pairs `(original, restored-from-checkpoint)` after a
/// prefix, then proves push-for-push observational identity on an
/// arbitrary suffix.
fn split_feed<E: Recoverable>(
    queries: &[(QueryId, Query)],
    prefix: &[Tuple],
    suffix: &[Tuple],
) -> Result<(), String> {
    let mut a = E::build(queries);
    for t in prefix {
        a.feed(t.clone());
    }
    let mut c = E::build(queries);
    c.restore_cp(&a.extract());
    for t in suffix {
        prop_assert_eq!(a.feed(t.clone()), c.feed(t.clone()), "push-for-push outputs diverged");
    }
    prop_assert_eq!(a.stats(), c.stats());
    Ok(())
}

/// `(ts deltas, keys, values, stream picks)` → an in-order tuple batch.
fn tuples(spec: Vec<(i64, i64, i64, u8)>, streams: &[&str], ts0: &mut i64) -> Vec<Tuple> {
    spec.into_iter()
        .map(|(dt, k, v, s)| {
            *ts0 += dt;
            Tuple::new(streams[s as usize % streams.len()], *ts0)
                .with("k", Scalar::Int(k))
                .with("v", Scalar::Int(v))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `restore(extract(e))` is observationally identical to `e` on
    /// arbitrary subsequent input, for all three stateful engines.
    #[test]
    fn restore_of_extract_is_observationally_identical(
        pre in proptest::collection::vec((0i64..3_000, 0i64..5, -20i64..20, 0u8..3), 0..50),
        post in proptest::collection::vec((0i64..3_000, 0i64..5, -20i64..20, 0u8..3), 0..50),
        picks in proptest::collection::vec(0usize..5, 1..4),
    ) {
        let mut ts = 0i64;
        let prefix = tuples(pre, &STREAMS, &mut ts);
        let suffix = tuples(post, &STREAMS, &mut ts);
        let qs = |pool: &[&str]| -> Vec<(QueryId, Query)> {
            picks.iter()
                .enumerate()
                .map(|(i, &p)| {
                    (QueryId(i as u64 + 1), parse_query(pool[p % pool.len()]).unwrap())
                })
                .collect()
        };
        split_feed::<StreamEngine>(&qs(&STREAM_POOL), &prefix, &suffix)?;
        split_feed::<AggregateEngine>(&qs(&AGG_POOL), &prefix, &suffix)?;
        split_feed::<SharedEngine>(&qs(&SHARED_POOL), &prefix, &suffix)?;
    }
}
