//! Bounded-disorder ingestion: a reorder buffer in front of the engine.
//!
//! The join executor assumes tuples arrive in non-decreasing timestamp
//! order ([`crate::exec`] docs). Over a wide-area Pub/Sub that assumption
//! only holds per stream, not across streams: messages from a far source
//! arrive later than simultaneous messages from a near one. The standard
//! remedy — and a practical necessity the paper's deployment would have
//! faced on PlanetLab — is a *reorder buffer*: hold arrivals until a
//! watermark (the maximum timestamp seen minus a slack bound) passes them,
//! then release in timestamp order. Tuples older than the watermark at
//! arrival are late and reported as such rather than silently reordered.

use crate::tuple::Tuple;
use std::collections::BinaryHeap;

/// Output of [`ReorderBuffer::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// The tuple was buffered; previously buffered tuples that fell behind
    /// the advanced watermark are released, in timestamp order.
    Released(Vec<Tuple>),
    /// The tuple arrived later than the slack bound allows; the caller
    /// decides whether to drop it or route it to a side channel.
    Late(Tuple),
}

#[derive(Debug)]
struct Pending(Tuple, u64);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0.timestamp == other.0.timestamp && self.1 == other.1
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by timestamp; FIFO (arrival sequence) on ties, so
        // equal-timestamp tuples come back out in arrival order.
        other.0.timestamp.cmp(&self.0.timestamp).then_with(|| other.1.cmp(&self.1))
    }
}

/// A watermark-based reorder buffer with a fixed disorder bound.
///
/// # Examples
///
/// ```
/// use cosmos_engine::reorder::{Arrival, ReorderBuffer};
/// use cosmos_engine::tuple::Tuple;
///
/// let mut buf = ReorderBuffer::new(1_000);
/// assert!(matches!(buf.push(Tuple::new("R", 500)), Arrival::Released(v) if v.is_empty()));
/// // 2_000 advances the watermark to 1_000: the 500-tuple is released.
/// match buf.push(Tuple::new("R", 2_000)) {
///     Arrival::Released(v) => assert_eq!(v[0].timestamp, 500),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct ReorderBuffer {
    slack_ms: i64,
    max_seen: i64,
    heap: BinaryHeap<Pending>,
    seq: u64,
    late: u64,
    released: u64,
}

impl ReorderBuffer {
    /// Creates a buffer tolerating up to `slack_ms` of disorder.
    ///
    /// # Panics
    ///
    /// Panics on a negative slack.
    pub fn new(slack_ms: i64) -> Self {
        assert!(slack_ms >= 0, "slack must be non-negative");
        Self { slack_ms, max_seen: i64::MIN, heap: BinaryHeap::new(), seq: 0, late: 0, released: 0 }
    }

    /// The current watermark: everything at or below it has been released.
    pub fn watermark(&self) -> i64 {
        if self.max_seen == i64::MIN {
            i64::MIN
        } else {
            self.max_seen - self.slack_ms
        }
    }

    /// Number of tuples currently held.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// `(released, late)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.released, self.late)
    }

    /// Feeds one tuple; returns released tuples (in timestamp order) or a
    /// late verdict.
    pub fn push(&mut self, tuple: Tuple) -> Arrival {
        if tuple.timestamp <= self.watermark() {
            self.late += 1;
            return Arrival::Late(tuple);
        }
        self.max_seen = self.max_seen.max(tuple.timestamp);
        self.heap.push(Pending(tuple, self.seq));
        self.seq += 1;
        let wm = self.watermark();
        let mut out = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.0.timestamp <= wm {
                out.push(self.heap.pop().expect("peeked").0);
            } else {
                break;
            }
        }
        self.released += out.len() as u64;
        Arrival::Released(out)
    }

    /// Drains everything still buffered, in timestamp order (end of
    /// stream).
    pub fn flush(&mut self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(p) = self.heap.pop() {
            out.push(p.0);
        }
        self.released += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::Scalar;
    use proptest::prelude::*;

    fn t(ts: i64) -> Tuple {
        Tuple::new("R", ts).with("v", Scalar::Int(ts))
    }

    fn release(buf: &mut ReorderBuffer, ts: i64) -> Vec<i64> {
        match buf.push(t(ts)) {
            Arrival::Released(v) => v.into_iter().map(|x| x.timestamp).collect(),
            Arrival::Late(_) => panic!("unexpected late verdict for {ts}"),
        }
    }

    #[test]
    fn in_order_stream_flows_with_slack_delay() {
        let mut buf = ReorderBuffer::new(100);
        assert!(release(&mut buf, 0).is_empty());
        assert!(release(&mut buf, 50).is_empty());
        // 150 moves the watermark to 50: releases 0 and 50.
        assert_eq!(release(&mut buf, 150), vec![0, 50]);
        assert_eq!(buf.pending(), 1);
    }

    #[test]
    fn disorder_within_slack_is_repaired() {
        let mut buf = ReorderBuffer::new(100);
        release(&mut buf, 100);
        release(&mut buf, 40); // out of order, within slack (wm = 0)
        let out = release(&mut buf, 250); // wm -> 150: release 40, 100
        assert_eq!(out, vec![40, 100]);
    }

    #[test]
    fn late_tuples_are_flagged_not_reordered() {
        let mut buf = ReorderBuffer::new(100);
        release(&mut buf, 1_000); // wm = 900
        match buf.push(t(800)) {
            Arrival::Late(tup) => assert_eq!(tup.timestamp, 800),
            other => panic!("{other:?}"),
        }
        assert_eq!(buf.stats().1, 1);
    }

    #[test]
    fn zero_slack_releases_immediately_in_order() {
        let mut buf = ReorderBuffer::new(0);
        assert_eq!(release(&mut buf, 10), vec![10]);
        assert_eq!(release(&mut buf, 20), vec![20]);
        // Equal timestamp: 20 <= watermark(20) → late under zero slack.
        assert!(matches!(buf.push(t(20)), Arrival::Late(_)));
    }

    #[test]
    fn flush_drains_in_order() {
        let mut buf = ReorderBuffer::new(1_000);
        for ts in [500, 100, 900, 300] {
            release(&mut buf, ts);
        }
        let out: Vec<i64> = buf.flush().into_iter().map(|x| x.timestamp).collect();
        assert_eq!(out, vec![100, 300, 500, 900]);
        assert_eq!(buf.pending(), 0);
    }

    proptest! {
        /// Whatever the arrival order, the released sequence is sorted and
        /// contains exactly the non-late tuples.
        #[test]
        fn prop_released_is_sorted_and_complete(
            mut times in proptest::collection::vec(0i64..10_000, 1..100),
            slack in 0i64..2_000,
        ) {
            let mut buf = ReorderBuffer::new(slack);
            let mut released = Vec::new();
            let mut late = 0usize;
            for &ts in &times {
                match buf.push(t(ts)) {
                    Arrival::Released(v) => released.extend(v.into_iter().map(|x| x.timestamp)),
                    Arrival::Late(_) => late += 1,
                }
            }
            released.extend(buf.flush().into_iter().map(|x| x.timestamp));
            let mut sorted = released.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&released, &sorted, "released sequence must be ordered");
            prop_assert_eq!(released.len() + late, times.len());
            // With unbounded slack nothing is late.
            if slack >= 10_000 {
                prop_assert_eq!(late, 0);
            }
            times.clear();
        }
    }
}
