//! Windowed aggregation — an engine extension beyond the paper's worked
//! examples, motivated by its own application context (environmental
//! monitoring dashboards want `AVG(snowHeight)`-style rollups, not only
//! joins).
//!
//! An aggregate query is a single-relation CQL query whose `SELECT` list
//! contains aggregate functions:
//!
//! ```text
//! SELECT AVG(S1.snowHeight), MAX(S1.snowHeight)
//! FROM Station1 [Range 30 Minutes] S1
//! WHERE S1.snowHeight >= 0
//! ```
//!
//! Semantics: pushed-down selections filter tuples before they enter the
//! window; on every accepted tuple the engine emits one output tuple with
//! the aggregates evaluated over the current window contents (the usual
//! per-arrival istream behaviour of CQL windowed aggregates). Non-numeric
//! values participate only in `COUNT`.

use crate::exec::SingleView;
use crate::tuple::Tuple;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate};
use cosmos_query::{AggFunc, Query, QueryId, Scalar};
use cosmos_util::intern::{Schema, Symbol};
use std::collections::VecDeque;
use std::sync::Arc;

/// A compiled single-relation aggregate query. Names (stream, alias,
/// aggregated attributes, output attribute labels, output stream) are
/// resolved to symbols once at compile time; the per-tuple path allocates
/// only the output payload.
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    id: QueryId,
    stream: Symbol,
    alias: Symbol,
    /// Window width in ms; `None` = unbounded.
    width: Option<i64>,
    selections: Vec<CompiledPredicate>,
    /// `(function, aggregated attribute)` per output column.
    aggs: Vec<(AggFunc, Symbol)>,
    /// Output stream tag (`agg-<id>`), interned once.
    out_stream: Symbol,
    /// Output schema (`FUNC(alias.attr)` labels), interned once.
    out_schema: Arc<Schema>,
    buffer: VecDeque<Arc<Tuple>>,
    emitted: u64,
    filtered: u64,
}

impl AggregateQuery {
    /// Compiles an aggregate query.
    ///
    /// # Panics
    ///
    /// Panics if the query is not well-formed, has no aggregates, spans
    /// more than one relation, or mixes aggregates with join predicates.
    pub fn compile(id: QueryId, query: Query) -> Self {
        assert!(query.is_well_formed(), "aggregate query {id} is not well-formed");
        assert!(query.has_aggregates(), "query {id} has no aggregate items");
        assert_eq!(query.relations.len(), 1, "aggregate queries are single-relation (query {id})");
        assert_eq!(
            query.join_predicates().count(),
            0,
            "aggregate queries cannot contain join predicates (query {id})"
        );
        let rel = &query.relations[0];
        let mut aggs = Vec::new();
        let mut labels = Vec::new();
        for p in &query.projection {
            if let cosmos_query::ProjItem::Agg { func, attr } = p {
                let label = Symbol::intern(&format!("{func}({attr})"));
                // Repeated aggregate items collapse to one output column
                // (schemas are positional indices; duplicates are rejected).
                if !labels.contains(&label) {
                    aggs.push((*func, Symbol::intern(&attr.attr)));
                    labels.push(label);
                }
            }
        }
        Self {
            id,
            stream: Symbol::intern(&rel.stream),
            alias: Symbol::intern(&rel.alias),
            width: rel.window.width_ms().map(|w| w as i64),
            selections: query.selection_predicates().map(CompiledPredicate::compile).collect(),
            aggs,
            out_stream: Symbol::intern(&format!("agg-{}", id.0)),
            out_schema: Schema::intern(&labels),
            buffer: VecDeque::new(),
            emitted: 0,
            filtered: 0,
        }
    }

    /// The query id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// `(emitted, filtered)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.emitted, self.filtered)
    }

    /// Number of tuples currently in the window.
    pub fn window_len(&self) -> usize {
        self.buffer.len()
    }

    /// Checkpoint extraction: window contents + counters. The compiled
    /// shape (stream, selections, aggs, schemas) is rebuilt from the source
    /// query at restore, so only mutable state travels.
    pub(crate) fn snapshot(&self) -> (Vec<Arc<Tuple>>, u64, u64) {
        (self.buffer.iter().cloned().collect(), self.emitted, self.filtered)
    }

    /// Checkpoint restore: replaces window contents and counters.
    pub(crate) fn restore(&mut self, window: Vec<Arc<Tuple>>, emitted: u64, filtered: u64) {
        self.buffer = window.into();
        self.emitted = emitted;
        self.filtered = filtered;
    }

    fn evaluate(&self, func: AggFunc, attr: Symbol) -> Scalar {
        let values = self.buffer.iter().filter_map(|t| t.get_sym(attr).and_then(Scalar::as_f64));
        match func {
            AggFunc::Count => Scalar::Int(self.buffer.len() as i64),
            AggFunc::Sum => Scalar::Float(values.sum()),
            AggFunc::Avg => {
                let (mut sum, mut n) = (0.0, 0usize);
                for v in values {
                    sum += v;
                    n += 1;
                }
                if n == 0 {
                    Scalar::Float(0.0)
                } else {
                    Scalar::Float(sum / n as f64)
                }
            }
            AggFunc::Min => Scalar::Float(values.fold(f64::INFINITY, f64::min)),
            AggFunc::Max => Scalar::Float(values.fold(f64::NEG_INFINITY, f64::max)),
        }
    }

    /// Feeds one tuple; returns the aggregate output when the tuple enters
    /// the window (selection-passing), `None` otherwise.
    pub fn push(&mut self, tuple: Arc<Tuple>) -> Option<Tuple> {
        if tuple.stream != self.stream {
            return None;
        }
        let now = tuple.timestamp;
        if let Some(w) = self.width {
            while let Some(front) = self.buffer.front() {
                if front.timestamp < now - w {
                    self.buffer.pop_front();
                } else {
                    break;
                }
            }
        }
        let view = SingleView { alias: self.alias, tuple: &tuple };
        if !eval_compiled(&self.selections, &view) {
            self.filtered += 1;
            return None;
        }
        self.buffer.push_back(tuple.clone());
        self.emitted += 1;
        let values: Vec<Scalar> =
            self.aggs.iter().map(|&(func, attr)| self.evaluate(func, attr)).collect();
        Some(Tuple::from_parts(self.out_stream, now, Arc::clone(&self.out_schema), values))
    }
}

/// Hosts many aggregate queries, routing tuples by stream.
///
/// # Examples
///
/// ```
/// use cosmos_engine::aggregate::AggregateEngine;
/// use cosmos_engine::tuple::Tuple;
/// use cosmos_query::{parse_query, QueryId, Scalar};
///
/// let mut engine = AggregateEngine::new();
/// engine.add_query(
///     QueryId(1),
///     parse_query("SELECT AVG(S.v), COUNT(S.v) FROM R [Range 10 Seconds] S")?,
/// );
/// engine.push(Tuple::new("R", 0).with("v", Scalar::Int(10)));
/// let out = engine.push(Tuple::new("R", 1_000).with("v", Scalar::Int(20)));
/// assert_eq!(out[0].1.get("AVG(S.v)"), Some(&Scalar::Float(15.0)));
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
#[derive(Debug, Default)]
pub struct AggregateEngine {
    queries: Vec<AggregateQuery>,
    /// Monotone input watermark (see [`crate::checkpoint`]).
    inputs: u64,
}

impl AggregateEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an aggregate query.
    ///
    /// # Panics
    ///
    /// See [`AggregateQuery::compile`].
    pub fn add_query(&mut self, id: QueryId, query: Query) {
        self.queries.push(AggregateQuery::compile(id, query));
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Pushes a tuple; returns `(query, aggregate output)` pairs.
    pub fn push(&mut self, tuple: Tuple) -> Vec<(QueryId, Tuple)> {
        self.inputs += 1;
        let shared = Arc::new(tuple);
        self.queries
            .iter_mut()
            .filter_map(|q| q.push(shared.clone()).map(|t| (q.id(), t)))
            .collect()
    }

    /// Monotone input watermark: total tuples consumed via
    /// [`AggregateEngine::push`].
    pub fn watermark(&self) -> u64 {
        self.inputs
    }

    /// Checkpoint hooks: queries in registration order.
    pub(crate) fn queries(&self) -> &[AggregateQuery] {
        &self.queries
    }

    pub(crate) fn queries_mut(&mut self) -> &mut [AggregateQuery] {
        &mut self.queries
    }

    pub(crate) fn set_watermark(&mut self, watermark: u64) {
        self.inputs = watermark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::parse_query;

    fn t(ts: i64, v: i64) -> Tuple {
        Tuple::new("R", ts).with("v", Scalar::Int(v))
    }

    fn engine(src: &str) -> AggregateEngine {
        let mut e = AggregateEngine::new();
        e.add_query(QueryId(1), parse_query(src).unwrap());
        e
    }

    #[test]
    fn count_sum_avg_min_max_over_window() {
        let mut e = engine(
            "SELECT COUNT(R.v), SUM(R.v), AVG(R.v), MIN(R.v), MAX(R.v) \
             FROM R [Range 10 Seconds]",
        );
        e.push(t(0, 10));
        e.push(t(2_000, 30));
        let out = e.push(t(4_000, 20));
        let (_, agg) = &out[0];
        assert_eq!(agg.get("COUNT(R.v)"), Some(&Scalar::Int(3)));
        assert_eq!(agg.get("SUM(R.v)"), Some(&Scalar::Float(60.0)));
        assert_eq!(agg.get("AVG(R.v)"), Some(&Scalar::Float(20.0)));
        assert_eq!(agg.get("MIN(R.v)"), Some(&Scalar::Float(10.0)));
        assert_eq!(agg.get("MAX(R.v)"), Some(&Scalar::Float(30.0)));
    }

    #[test]
    fn window_expiry_drops_old_tuples() {
        let mut e = engine("SELECT COUNT(R.v) FROM R [Range 10 Seconds]");
        e.push(t(0, 1));
        e.push(t(5_000, 2));
        // At t = 11s the first tuple has expired.
        let out = e.push(t(11_000, 3));
        assert_eq!(out[0].1.get("COUNT(R.v)"), Some(&Scalar::Int(2)));
    }

    #[test]
    fn selection_pushdown_filters_before_window() {
        let mut e = engine("SELECT COUNT(R.v) FROM R [Range 1 Minute] WHERE R.v > 10");
        assert!(e.push(t(0, 5)).is_empty());
        let out = e.push(t(1_000, 20));
        assert_eq!(out[0].1.get("COUNT(R.v)"), Some(&Scalar::Int(1)));
    }

    #[test]
    fn unbounded_window_accumulates_forever() {
        let mut e = engine("SELECT SUM(R.v) FROM R [Unbounded]");
        for i in 1..=10 {
            e.push(t(i * 100_000, i));
        }
        let out = e.push(t(10_000_000, 0));
        assert_eq!(out[0].1.get("SUM(R.v)"), Some(&Scalar::Float(55.0)));
    }

    #[test]
    fn parses_with_alias_and_display_round_trips() {
        let q =
            parse_query("SELECT AVG(S1.snowHeight) FROM Station1 [Range 30 Minutes] S1").unwrap();
        assert!(q.has_aggregates());
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn missing_attr_counts_but_does_not_sum() {
        let mut e = engine("SELECT COUNT(R.v), SUM(R.v) FROM R [Range 1 Minute]");
        let out = e.push(Tuple::new("R", 0).with("other", Scalar::Int(1)));
        assert_eq!(out[0].1.get("COUNT(R.v)"), Some(&Scalar::Int(1)));
        assert_eq!(out[0].1.get("SUM(R.v)"), Some(&Scalar::Float(0.0)));
    }

    #[test]
    fn other_streams_are_ignored() {
        let mut e = engine("SELECT COUNT(R.v) FROM R [Range 1 Minute]");
        assert!(e.push(Tuple::new("Z", 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "single-relation")]
    fn multi_relation_aggregate_rejected() {
        let q = parse_query("SELECT COUNT(R.v) FROM R [Now], S [Now] WHERE R.k = S.k").unwrap();
        let _ = AggregateQuery::compile(QueryId(1), q);
    }

    #[test]
    #[should_panic(expected = "no aggregate items")]
    fn plain_query_rejected() {
        let q = parse_query("SELECT * FROM R [Now]").unwrap();
        let _ = AggregateQuery::compile(QueryId(1), q);
    }

    #[test]
    fn duplicate_aggregate_items_collapse_to_one_column() {
        let mut e = engine("SELECT COUNT(R.v), COUNT(R.v), SUM(R.v) FROM R [Range 1 Minute]");
        let out = e.push(t(0, 10));
        let (_, agg) = &out[0];
        assert_eq!(agg.len(), 2, "repeated COUNT collapses to one column");
        assert_eq!(agg.get("COUNT(R.v)"), Some(&Scalar::Int(1)));
        assert_eq!(agg.get("SUM(R.v)"), Some(&Scalar::Float(10.0)));
    }
}
