//! Shared execution with result-stream splitting (§2.1).
//!
//! "At each site, if there are multiple queries with overlapping results,
//! the COSMOS component will compose a new query Q whose result is the
//! superset of the overlapping queries and only inserts this Q into the
//! processing engine." The users' results are then recovered by residual
//! subscriptions on the shared result stream.
//!
//! [`SharedEngine`] implements exactly that: greedy grouping of mergeable
//! queries, one covering query per group registered in the underlying
//! [`StreamEngine`], and per-member residual filters/projections splitting
//! each emitted result. The splitting invariant — *shared execution emits
//! exactly the per-query results independent execution would* — is what the
//! tests (including property tests) pin down.

use crate::exec::{CompiledProjection, EngineStats, ProjPlanCache, StreamEngine};
use crate::tuple::Tuple;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate};
use cosmos_query::containment::{merge_queries, MergedQuery};
use cosmos_query::{Query, QueryId};
use cosmos_util::intern::{Schema, Symbol};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A member's residual subscription, fully symbol-compiled at build time
/// so splitting a shared result costs no string work per tuple. Both
/// halves of the split live in deduplicated group tables: the residual
/// *filters* in [`Group::filter_sets`] (members with identical residual
/// conjunctions share one set, evaluated once per shared result) and the
/// *output shape* in [`Group::proj_classes`] (members with identical
/// projections and alias renames share one projected record per result).
#[derive(Debug)]
struct ResidualCompiled {
    /// The member query this residual recovers.
    query: QueryId,
    /// Index into [`Group::filter_sets`] of this member's residual
    /// conjunction.
    filter_set: u32,
    /// Index into [`Group::proj_classes`] of this member's output shape.
    proj_class: u32,
}

/// One distinct output shape within a group: a projection over merged
/// aliases plus the renames back to member aliases. Members of the class
/// receive `Arc`-clones of a single projected record per shared result —
/// the dominant sharing win when many members ask for the same columns.
#[derive(Debug)]
struct ProjClass {
    /// Unique per class; keys the renamed-schema cache (`u64`: cannot
    /// wrap into an alias).
    id: u64,
    /// The class's projection over merged aliases.
    projection: CompiledProjection,
    /// Resolved projection plans per part shape — splitting a shared
    /// result allocates nothing beyond the one class output payload.
    plans: ProjPlanCache,
    /// `(merged alias, member alias)` renames for the output schema.
    pairs: Vec<(Symbol, Symbol)>,
}

fn next_class_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One group of merged queries.
#[derive(Debug)]
struct Group {
    /// Engine-internal id of the merged (covering) query.
    merged_id: QueryId,
    /// Shared result stream tag (paper: derived from the processor's
    /// unique identifier).
    result_stream: Symbol,
    merged: MergedQuery,
    /// Per-member compiled residuals, in member order.
    residuals: Vec<ResidualCompiled>,
    /// Distinct residual filter conjunctions (structural equality of the
    /// compiled predicates). Many members of a merged group carry the
    /// *same* residual — e.g. every member that contributed the weakest
    /// threshold — so each distinct conjunction is evaluated once per
    /// shared result and the verdict fans out to the whole equivalence
    /// class.
    filter_sets: Vec<Vec<CompiledPredicate>>,
    /// Scratch: per-result verdict per filter set (`None` = not yet
    /// evaluated for the current result).
    verdicts: Vec<Option<bool>>,
    /// Distinct output shapes (projection + renames). Each class projects
    /// a shared result once; every passing member of the class gets an
    /// `Arc`-clone of that one record.
    proj_classes: Vec<ProjClass>,
    /// Scratch: per-result projected record per class (`None` = not yet
    /// built for the current result).
    class_outputs: Vec<Option<Tuple>>,
}

/// Matches relations of `member` to `merged` by stream name in `FROM` order,
/// returning `(merged_alias, member_alias)` symbol pairs.
fn alias_pairs(merged: &Query, member: &Query) -> Vec<(Symbol, Symbol)> {
    let mut used = vec![false; merged.relations.len()];
    let mut out = Vec::new();
    for mrel in &member.relations {
        if let Some((gi, grel)) = merged
            .relations
            .iter()
            .enumerate()
            .find(|(gi, grel)| !used[*gi] && grel.stream == mrel.stream)
        {
            used[gi] = true;
            out.push((Symbol::intern(&grel.alias), Symbol::intern(&mrel.alias)));
        }
    }
    out
}

/// A stream engine that shares work between overlapping queries.
///
/// # Examples
///
/// ```
/// use cosmos_engine::SharedEngine;
/// use cosmos_engine::tuple::Tuple;
/// use cosmos_query::{parse_query, QueryId, Scalar};
///
/// let q3 = parse_query(
///     "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10")?;
/// let q4 = parse_query(
///     "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
///      FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight")?;
/// let mut shared = SharedEngine::build(vec![(QueryId(3), q3), (QueryId(4), q4)]);
/// assert_eq!(shared.group_count(), 1); // one merged query runs, not two
/// shared.push(Tuple::new("Station1", 0).with("snowHeight", Scalar::Int(30)));
/// let out = shared.push(Tuple::new("Station2", 1_000).with("snowHeight", Scalar::Int(5)));
/// assert_eq!(out.len(), 2); // both users get their result
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
#[derive(Debug)]
pub struct SharedEngine {
    engine: StreamEngine,
    groups: Vec<Group>,
    /// Merged-query id → slot in `groups`. Splitting a shared result
    /// resolves its group in O(1); a linear scan over groups would start
    /// to bite once a processor hosts hundreds of merged groups.
    by_query: HashMap<QueryId, u32>,
}

impl SharedEngine {
    /// Groups `queries` greedily (each query joins the first group it merges
    /// with) and registers one covering query per group.
    pub fn build(queries: Vec<(QueryId, Query)>) -> Self {
        let mut membership: Vec<Vec<(QueryId, Query)>> = Vec::new();
        for (id, q) in queries {
            let mut placed = false;
            for group in &mut membership {
                let mut candidate: Vec<(QueryId, &Query)> =
                    group.iter().map(|(i, q)| (*i, q)).collect();
                candidate.push((id, &q));
                if merge_queries(&candidate).is_some() {
                    group.push((id, q.clone()));
                    placed = true;
                    break;
                }
            }
            if !placed {
                membership.push(vec![(id, q)]);
            }
        }

        let mut engine = StreamEngine::new();
        let mut groups = Vec::new();
        for (gi, members) in membership.into_iter().enumerate() {
            let refs: Vec<(QueryId, &Query)> = members.iter().map(|(i, q)| (*i, q)).collect();
            let merged = merge_queries(&refs).expect("group members were verified mergeable");
            // Internal ids live far above user ids to avoid collisions.
            let merged_id = QueryId(u64::MAX - gi as u64);
            engine.add_query(merged_id, merged.query.clone());
            // Compile every residual once: filters, projection, renames.
            // Identical residual conjunctions collapse into one shared
            // filter set, and identical (projection, renames) collapse
            // into one projection class — so splitting evaluates each
            // distinct conjunction once per result and projects each
            // distinct output shape once per result.
            let mut filter_sets: Vec<Vec<CompiledPredicate>> = Vec::new();
            let mut proj_classes: Vec<ProjClass> = Vec::new();
            let residuals: Vec<ResidualCompiled> = merged
                .residuals
                .iter()
                .map(|r| {
                    let (_, member_query) = members
                        .iter()
                        .find(|(id, _)| *id == r.query)
                        .expect("residual for unknown member");
                    let compiled = CompiledPredicate::compile_all(&r.filters);
                    let filter_set = match filter_sets.iter().position(|s| *s == compiled) {
                        Some(s) => s,
                        None => {
                            filter_sets.push(compiled);
                            filter_sets.len() - 1
                        }
                    };
                    let projection = CompiledProjection::compile(&r.projection);
                    let pairs = alias_pairs(&merged.query, member_query);
                    let proj_class = match proj_classes
                        .iter()
                        .position(|c| c.projection.same_items(&projection) && c.pairs == pairs)
                    {
                        Some(c) => c,
                        None => {
                            proj_classes.push(ProjClass {
                                id: next_class_id(),
                                projection,
                                plans: ProjPlanCache::new(),
                                pairs,
                            });
                            proj_classes.len() - 1
                        }
                    };
                    ResidualCompiled {
                        query: r.query,
                        filter_set: u32::try_from(filter_set).expect("filter set overflow"),
                        proj_class: u32::try_from(proj_class).expect("projection class overflow"),
                    }
                })
                .collect();
            let verdicts = vec![None; filter_sets.len()];
            let class_outputs = vec![None; proj_classes.len()];
            groups.push(Group {
                merged_id,
                result_stream: Symbol::intern(&format!("shared-{gi}")),
                merged,
                residuals,
                filter_sets,
                verdicts,
                proj_classes,
                class_outputs,
            });
        }
        let by_query = groups
            .iter()
            .enumerate()
            .map(|(i, g)| (g.merged_id, u32::try_from(i).expect("group count overflow")))
            .collect();
        Self { engine, groups, by_query }
    }

    /// Number of merged groups (= queries actually running in the engine).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of distinct residual filter conjunctions across all groups —
    /// the number of residual evaluations one shared result can cost at
    /// most. With heavy duplication this is far below the member count.
    pub fn residual_set_count(&self) -> usize {
        self.groups.iter().map(|g| g.filter_sets.len()).sum()
    }

    /// Number of distinct projection classes across all groups — the
    /// number of projections one shared result can cost at most. Members
    /// with identical projections and alias renames share one class (and
    /// one `Arc`-shared output record per result).
    pub fn projection_class_count(&self) -> usize {
        self.groups.iter().map(|g| g.proj_classes.len()).sum()
    }

    /// The covering query of each group.
    pub fn merged_queries(&self) -> impl Iterator<Item = &Query> {
        self.groups.iter().map(|g| &g.merged.query)
    }

    /// Engine counters (probes/emits of the merged queries).
    pub fn stats(&self) -> EngineStats {
        self.engine.total_stats()
    }

    /// Monotone input watermark of the underlying merged-query engine.
    /// All of a [`SharedEngine`]'s mutable state lives there — groups,
    /// residuals, and caches are compiled shape or per-push scratch — so
    /// the checkpoint plane snapshots the inner engine alone (see
    /// [`crate::checkpoint`]).
    pub fn watermark(&self) -> u64 {
        self.engine.watermark()
    }

    /// Checkpoint hooks: the underlying engine hosting the merged queries.
    pub(crate) fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    pub(crate) fn engine_mut(&mut self) -> &mut StreamEngine {
        &mut self.engine
    }

    /// Pushes a tuple; returns `(query, result)` pairs after splitting the
    /// shared result streams with each member's residual subscription.
    /// Each distinct residual conjunction is evaluated once per shared
    /// result, and each distinct projection class is projected once per
    /// shared result — passing members of a class receive `Arc`-clones of
    /// the same record (member output order is unchanged).
    pub fn push(&mut self, tuple: Tuple) -> Vec<(QueryId, Tuple)> {
        let results = self.engine.push(tuple);
        let mut out = Vec::new();
        for r in results {
            let slot = *self.by_query.get(&r.query).expect("result from unknown merged query");
            let group = &mut self.groups[slot as usize];
            let Group {
                result_stream,
                residuals,
                filter_sets,
                verdicts,
                proj_classes,
                class_outputs,
                ..
            } = group;
            let result_stream = *result_stream;
            verdicts.iter_mut().for_each(|v| *v = None);
            class_outputs.iter_mut().for_each(|c| *c = None);
            for residual in residuals.iter() {
                // Residual filters are in merged aliases; the joined tuple
                // exposes exactly those aliases.
                let set = residual.filter_set as usize;
                let passes = *verdicts[set]
                    .get_or_insert_with(|| eval_compiled(&filter_sets[set], &r.joined));
                if !passes {
                    continue;
                }
                let cls = residual.proj_class as usize;
                let record = class_outputs[cls].get_or_insert_with(|| {
                    let class = &mut proj_classes[cls];
                    let projected =
                        r.project_cached(&class.projection, &mut class.plans, result_stream);
                    rename_aliases(projected, class)
                });
                out.push((residual.query, record.clone()));
            }
        }
        out
    }
}

thread_local! {
    /// (input schema id, projection class id) → renamed schema; the rename
    /// is a pure function of both, so repeat shapes skip the schema
    /// interner.
    static RENAMED_SCHEMAS: RefCell<HashMap<(u32, u64), Arc<Schema>>> =
        RefCell::new(HashMap::new());
}

/// Renames `merged_alias.attr` attribute names back to the member query's
/// own aliases, so users see the schema they asked for. Pure schema work:
/// the `Arc`-shared payload is reused untouched, and the renamed schema is
/// cached per (input schema, projection class) and interned (so equal
/// shapes keep sharing one schema).
fn rename_aliases(t: Tuple, class: &ProjClass) -> Tuple {
    let schema = RENAMED_SCHEMAS.with_borrow_mut(|cache| {
        // Class ids are minted per SharedEngine::build; bound the
        // per-thread cache so engine rebuilds cannot grow it forever.
        if cache.len() > 4096 {
            cache.clear();
        }
        Arc::clone(cache.entry((t.schema().id(), class.id)).or_insert_with(|| {
            let attrs: Vec<Symbol> = t
                .schema()
                .attrs()
                .iter()
                .map(|&name| match name.split_dotted() {
                    Some((alias, attr)) => match class.pairs.iter().find(|(m, _)| *m == alias) {
                        Some((_, orig)) => Symbol::dotted(*orig, attr),
                        None => name,
                    },
                    None => name,
                })
                .collect();
            Schema::intern(&attrs)
        }))
    });
    t.with_schema(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{parse_query, Scalar};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
        let mut tup = Tuple::new(stream, ts);
        for (k, v) in kv {
            tup = tup.with(*k, Scalar::Int(*v));
        }
        tup
    }

    fn paper_queries() -> Vec<(QueryId, Query)> {
        vec![
            (
                QueryId(3),
                parse_query(
                    "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
                     WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
                )
                .unwrap(),
            ),
            (
                QueryId(4),
                parse_query(
                    "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
                     FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
                     WHERE S1.snowHeight > S2.snowHeight",
                )
                .unwrap(),
            ),
        ]
    }

    /// Runs the same tuple sequence through a SharedEngine and through
    /// independent engines; returns (shared, independent) result multisets
    /// keyed by query id and flattened content.
    fn run_both(
        queries: Vec<(QueryId, Query)>,
        tuples: Vec<Tuple>,
    ) -> (BTreeSet<String>, BTreeSet<String>) {
        let mut shared = SharedEngine::build(queries.clone());
        let mut shared_out = BTreeSet::new();
        for tup in &tuples {
            for (id, result) in shared.push(tup.clone()) {
                let mut vals: Vec<String> =
                    result.iter().map(|(k, v)| format!("{k}={v}")).collect();
                vals.sort();
                shared_out.insert(format!("{id}:{}", vals.join(",")));
            }
        }
        let mut indep = StreamEngine::new();
        for (id, q) in &queries {
            indep.add_query(*id, q.clone());
        }
        let mut indep_out = BTreeSet::new();
        let projections: std::collections::HashMap<QueryId, Vec<cosmos_query::ProjItem>> =
            queries.iter().map(|(i, q)| (*i, q.projection.clone())).collect();
        for tup in &tuples {
            for r in indep.push(tup.clone()) {
                let projected = r.project(&projections[&r.query], "x");
                let mut vals: Vec<String> =
                    projected.iter().map(|(k, v)| format!("{k}={v}")).collect();
                vals.sort();
                indep_out.insert(format!("{}:{}", r.query, vals.join(",")));
            }
        }
        (shared_out, indep_out)
    }

    #[test]
    fn paper_q3_q4_share_one_engine_query() {
        let shared = SharedEngine::build(paper_queries());
        assert_eq!(shared.group_count(), 1);
        let merged = shared.merged_queries().next().unwrap();
        // Q5: no selection filter, 1-hour window.
        assert_eq!(merged.selection_predicates().count(), 0);
        assert_eq!(merged.relation("S1").unwrap().window, cosmos_query::Window::Range(3_600_000));
    }

    #[test]
    fn splitting_respects_original_windows_and_filters() {
        let mut shared = SharedEngine::build(paper_queries());
        // S1 tuple 45 minutes before S2's: inside Q4's 1h window, outside
        // Q3's 30 min window.
        shared.push(t("Station1", 0, &[("snowHeight", 30)]));
        let out = shared.push(t("Station2", 45 * 60_000, &[("snowHeight", 5)]));
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![QueryId(4)], "only Q4 sees a 45-minute-old S1 tuple");
        // S1 tuple with snowHeight below 10, 10 minutes old: Q4 only again.
        shared.push(t("Station1", 50 * 60_000, &[("snowHeight", 7)]));
        let out = shared.push(t("Station2", 55 * 60_000, &[("snowHeight", 3)]));
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&QueryId(4)));
        assert!(!ids.contains(&QueryId(3)), "Q3 requires snowHeight >= 10");
        // Tall, recent S1 tuple: both.
        shared.push(t("Station1", 56 * 60_000, &[("snowHeight", 40)]));
        let out = shared.push(t("Station2", 57 * 60_000, &[("snowHeight", 2)]));
        let mut ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        ids.sort();
        assert!(ids.contains(&QueryId(3)) && ids.contains(&QueryId(4)));
    }

    #[test]
    fn shared_equals_independent_on_paper_workload() {
        let mut tuples = Vec::new();
        for i in 0..40i64 {
            tuples.push(t("Station1", i * 5 * 60_000, &[("snowHeight", (i * 7) % 25)]));
            tuples.push(t("Station2", i * 5 * 60_000 + 60_000, &[("snowHeight", (i * 3) % 20)]));
        }
        let (shared, indep) = run_both(paper_queries(), tuples);
        assert_eq!(shared, indep);
        assert!(!shared.is_empty(), "workload should produce results");
    }

    #[test]
    fn identical_residuals_share_one_filter_set() {
        // 20 members, two distinct selection thresholds: the members with
        // the same threshold carry identical residual conjunctions, so the
        // group holds far fewer filter sets than members — and splitting
        // still recovers exactly the per-member results.
        let queries: Vec<(QueryId, Query)> = (0..20u64)
            .map(|i| {
                let th = if i % 2 == 0 { 10 } else { 20 };
                (
                    QueryId(i),
                    parse_query(&format!(
                        "SELECT R.v FROM R [Range 60 Seconds], S [Now] \
                         WHERE R.k = S.k AND R.v > {th}"
                    ))
                    .unwrap(),
                )
            })
            .collect();
        let mut shared = SharedEngine::build(queries.clone());
        assert_eq!(shared.group_count(), 1);
        assert!(
            shared.residual_set_count() <= 3,
            "two distinct thresholds must collapse to at most a handful of \
             filter sets, got {}",
            shared.residual_set_count()
        );
        shared.push(t("R", 0, &[("k", 1), ("v", 15)]));
        let out = shared.push(t("S", 500, &[("k", 1)]));
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        // v = 15 passes only the even members' threshold (10).
        assert_eq!(ids, (0..20).filter(|i| i % 2 == 0).map(QueryId).collect::<Vec<_>>());
        shared.push(t("R", 1_000, &[("k", 2), ("v", 25)]));
        let out = shared.push(t("S", 1_500, &[("k", 2)]));
        assert_eq!(out.len(), 20, "v = 25 passes both thresholds");
    }

    #[test]
    fn identical_projections_share_one_output_record() {
        // 20 members differing only in selection threshold: identical
        // projections and renames collapse to a single projection class,
        // so a passing result is projected once and every member's copy
        // shares the same payload allocation.
        let queries: Vec<(QueryId, Query)> = (0..20u64)
            .map(|i| {
                (
                    QueryId(i),
                    parse_query(&format!(
                        "SELECT R.v FROM R [Range 60 Seconds], S [Now] \
                         WHERE R.k = S.k AND R.v > {}",
                        i % 2 * 10
                    ))
                    .unwrap(),
                )
            })
            .collect();
        let mut shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 1);
        assert_eq!(
            shared.projection_class_count(),
            1,
            "identical projections + renames must share one class"
        );
        shared.push(t("R", 0, &[("k", 1), ("v", 30)]));
        let out = shared.push(t("S", 500, &[("k", 1)]));
        assert_eq!(out.len(), 20);
        let first = &out[0].1;
        for (id, result) in &out {
            assert_eq!(result, first, "{id}: same class, same record content");
            assert!(
                std::ptr::eq(result.values().as_ptr(), first.values().as_ptr()),
                "{id}: class members must share one payload allocation"
            );
        }

        // Distinct member aliases force distinct classes even with equal
        // column lists — the rename is part of the output shape.
        let queries = vec![
            (QueryId(1), parse_query("SELECT X.v FROM R [Now] X").unwrap()),
            (QueryId(2), parse_query("SELECT Y.v FROM R [Now] Y").unwrap()),
        ];
        let shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 1);
        assert_eq!(shared.projection_class_count(), 2);
    }

    #[test]
    fn group_lookup_preserves_output_order() {
        // Two groups (different relation sets) plus a duplicated member in
        // the first: one R tuple completes results for *both* merged
        // queries. The map-based group lookup must leave the output order
        // exactly as the scan produced it — merged queries in engine
        // registration order, members in group member order.
        let queries = vec![
            (QueryId(1), parse_query("SELECT R.v FROM R [Now] WHERE R.v > 0").unwrap()),
            (
                QueryId(2),
                parse_query("SELECT R.v, S.v FROM R [Now], S [Range 10 Seconds] WHERE R.k = S.k")
                    .unwrap(),
            ),
            (QueryId(3), parse_query("SELECT R.v FROM R [Now] WHERE R.v > 0").unwrap()),
        ];
        let mut shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 2);
        shared.push(t("S", 0, &[("k", 1), ("v", 7)]));
        let out = shared.push(t("R", 500, &[("k", 1), ("v", 4)]));
        let ids: Vec<QueryId> = out.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            ids,
            vec![QueryId(1), QueryId(3), QueryId(2)],
            "group order then member order, unchanged by the keyed lookup"
        );
    }

    #[test]
    fn unmergeable_queries_run_separately() {
        let queries = vec![
            (QueryId(1), parse_query("SELECT * FROM A [Now]").unwrap()),
            (QueryId(2), parse_query("SELECT * FROM B [Now]").unwrap()),
        ];
        let shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 2);
    }

    #[test]
    fn projection_differs_per_member() {
        let queries = vec![
            (QueryId(1), parse_query("SELECT R.a FROM R [Now]").unwrap()),
            (QueryId(2), parse_query("SELECT R.b FROM R [Now]").unwrap()),
        ];
        let mut shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 1);
        let out = shared.push(t("R", 0, &[("a", 1), ("b", 2)]));
        assert_eq!(out.len(), 2);
        for (id, result) in out {
            if id == QueryId(1) {
                assert!(result.get("R.a").is_some());
                assert!(result.get("R.b").is_none());
            } else {
                assert!(result.get("R.b").is_some());
                assert!(result.get("R.a").is_none());
            }
        }
    }

    #[test]
    fn alias_renaming_for_members() {
        let queries = vec![
            (QueryId(1), parse_query("SELECT X.v FROM R [Now] X").unwrap()),
            (QueryId(2), parse_query("SELECT Y.v FROM R [Now] Y").unwrap()),
        ];
        let mut shared = SharedEngine::build(queries);
        assert_eq!(shared.group_count(), 1);
        let out = shared.push(t("R", 0, &[("v", 5)]));
        assert_eq!(out.len(), 2);
        for (id, result) in out {
            let expect = if id == QueryId(1) { "X.v" } else { "Y.v" };
            assert!(result.get(expect).is_some(), "{id} should see {expect}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Shared execution must equal independent execution for random
        /// threshold/window variations of a two-query workload.
        #[test]
        fn prop_shared_equals_independent(
            th1 in 0i64..30, th2 in 0i64..30,
            w1 in 1u64..60, w2 in 1u64..60,
            vals in proptest::collection::vec((0i64..40, 0i64..40), 5..25),
        ) {
            let q1 = parse_query(&format!(
                "SELECT R.v, S.v FROM R [Range {w1} Seconds], S [Now] \
                 WHERE R.k = S.k AND R.v > {th1}"
            )).unwrap();
            let q2 = parse_query(&format!(
                "SELECT R.v FROM R [Range {w2} Seconds], S [Now] \
                 WHERE R.k = S.k AND R.v > {th2}"
            )).unwrap();
            let mut tuples = Vec::new();
            for (i, (rv, sv)) in vals.iter().enumerate() {
                let ts = i as i64 * 10_000;
                tuples.push(t("R", ts, &[("k", 1), ("v", *rv)]));
                tuples.push(t("S", ts + 5_000, &[("k", 1), ("v", *sv)]));
            }
            let (shared, indep) =
                run_both(vec![(QueryId(1), q1), (QueryId(2), q2)], tuples);
            prop_assert_eq!(shared, indep);
        }
    }
}
