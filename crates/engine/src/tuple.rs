//! Timestamped tuples and joined tuples.

use cosmos_query::predicate::AttrSource;
use cosmos_query::{AttrRef, Scalar};
use std::fmt;
use std::sync::Arc;

/// A single stream tuple: stream (or alias) tag, event timestamp, values.
///
/// Values are kept as name/value pairs — schemas in sensor settings are
/// narrow (a handful of attributes), so linear scans beat a hash map.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The stream this tuple belongs to.
    pub stream: String,
    /// Event time in milliseconds.
    pub timestamp: i64,
    /// Attribute values.
    pub values: Vec<(String, Scalar)>,
}

impl Tuple {
    /// Creates an empty tuple.
    pub fn new(stream: impl Into<String>, timestamp: i64) -> Self {
        Self { stream: stream.into(), timestamp, values: Vec::new() }
    }

    /// Adds an attribute (builder-style).
    pub fn with(mut self, name: impl Into<String>, value: Scalar) -> Self {
        self.values.push((name.into(), value));
        self
    }

    /// Looks up an attribute value.
    pub fn get(&self, name: &str) -> Option<&Scalar> {
        self.values.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Approximate wire size in bytes (16-byte header + 16 per attribute),
    /// matching the Pub/Sub message model.
    pub fn wire_size(&self) -> usize {
        16 + 16 * self.values.len()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{{", self.stream, self.timestamp)?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A join output: one source tuple per relation alias.
///
/// Component tuples are shared (`Arc`) because one window tuple typically
/// participates in many join outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedTuple {
    parts: Vec<(String, Arc<Tuple>)>,
}

impl JoinedTuple {
    /// Builds a joined tuple from `(alias, tuple)` parts.
    pub fn new(parts: Vec<(String, Arc<Tuple>)>) -> Self {
        Self { parts }
    }

    /// The component tuple bound to `alias`.
    pub fn part(&self, alias: &str) -> Option<&Tuple> {
        self.parts.iter().find(|(a, _)| a == alias).map(|(_, t)| t.as_ref())
    }

    /// Iterates over `(alias, tuple)` parts in join order.
    pub fn parts(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.parts.iter().map(|(a, t)| (a.as_str(), t.as_ref()))
    }

    /// The largest component timestamp — the output's event time.
    pub fn timestamp(&self) -> i64 {
        self.parts.iter().map(|(_, t)| t.timestamp).max().unwrap_or(0)
    }

    /// Flattens into a result tuple with `alias.attr` attribute names, plus
    /// per-alias `alias.timestamp` attributes so downstream consumers (e.g.
    /// residual window filters) retain the component times.
    pub fn flatten(&self, result_stream: &str) -> Tuple {
        let mut out = Tuple::new(result_stream, self.timestamp());
        for (alias, t) in &self.parts {
            out.values
                .push((format!("{alias}.timestamp"), Scalar::Int(t.timestamp)));
            for (k, v) in &t.values {
                out.values.push((format!("{alias}.{k}"), v.clone()));
            }
        }
        out
    }
}

impl AttrSource for JoinedTuple {
    fn value(&self, attr: &AttrRef) -> Option<Scalar> {
        let part = self.part(&attr.relation)?;
        if attr.attr == "timestamp" {
            return Some(Scalar::Int(part.timestamp));
        }
        part.get(&attr.attr).cloned()
    }

    fn timestamp(&self, alias: &str) -> Option<i64> {
        self.part(alias).map(|t| t.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::predicate::eval_predicate;
    use cosmos_query::{CmpOp, Predicate};

    fn joined() -> JoinedTuple {
        JoinedTuple::new(vec![
            (
                "S1".into(),
                Arc::new(Tuple::new("Station1", 1_000).with("snowHeight", Scalar::Int(30))),
            ),
            (
                "S2".into(),
                Arc::new(Tuple::new("Station2", 2_000).with("snowHeight", Scalar::Int(10))),
            ),
        ])
    }

    #[test]
    fn attr_source_resolves_alias_and_timestamp() {
        let j = joined();
        assert_eq!(
            j.value(&AttrRef::new("S1", "snowHeight")),
            Some(Scalar::Int(30))
        );
        assert_eq!(j.value(&AttrRef::new("S1", "timestamp")), Some(Scalar::Int(1_000)));
        assert_eq!(j.value(&AttrRef::new("S3", "snowHeight")), None);
        assert_eq!(AttrSource::timestamp(&j, "S2"), Some(2_000));
        assert_eq!(j.timestamp(), 2_000);
    }

    #[test]
    fn join_predicate_evaluation() {
        let j = joined();
        let p = Predicate::JoinCmp {
            left: AttrRef::new("S1", "snowHeight"),
            op: CmpOp::Gt,
            right: AttrRef::new("S2", "snowHeight"),
        };
        assert_eq!(eval_predicate(&p, &j), Some(true));
        let td = Predicate::TimeDelta {
            left: "S1".into(),
            right: "S2".into(),
            min_ms: -30 * 60_000,
            max_ms: 0,
        };
        assert_eq!(eval_predicate(&td, &j), Some(true));
    }

    #[test]
    fn flatten_prefixes_attributes() {
        let j = joined();
        let flat = j.flatten("result");
        assert_eq!(flat.stream, "result");
        assert_eq!(flat.timestamp, 2_000);
        assert_eq!(flat.get("S1.snowHeight"), Some(&Scalar::Int(30)));
        assert_eq!(flat.get("S1.timestamp"), Some(&Scalar::Int(1_000)));
        assert_eq!(flat.get("S2.snowHeight"), Some(&Scalar::Int(10)));
    }

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new("R", 5).with("a", Scalar::Int(1));
        assert_eq!(t.get("a"), Some(&Scalar::Int(1)));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.wire_size(), 32);
        assert!(t.to_string().contains("R@5"));
    }
}
