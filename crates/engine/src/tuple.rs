//! Schema-indexed tuples and joined tuples.
//!
//! # Performance architecture
//!
//! The tuple data plane is symbol-interned, schema-indexed, and
//! payload-shared:
//!
//! - A [`Tuple`] **is** a [`cosmos_query::record::Record`] — `{ stream:
//!   Symbol, timestamp, Arc<Schema>, Arc<[Scalar]> }`. Tuples of the same
//!   shape share one interned schema, so the payload carries **no
//!   attribute names at all** — attribute lookup is a linear scan over
//!   `u32`s in the schema (sensor schemas are narrow, so this beats
//!   hashing) — and cloning a tuple bumps two reference counts. The
//!   Pub/Sub `Message` is the same type, so records cross the
//!   broker→engine boundary without conversion.
//! - A [`JoinedTuple`] stores positional `(alias: Symbol, Arc<Tuple>)`
//!   parts. Component tuples are `Arc`-shared because one window tuple
//!   typically participates in many join outputs.
//! - [`JoinedTuple::flatten`] emits a tuple on a **precomputed flattened
//!   schema** (`alias.attr` names, built once per distinct combination of
//!   part aliases and part schemas, then cached per thread). The per-tuple
//!   work is copying scalars — no `format!`, no `String` allocation.
//!
//! String-based constructors (`Tuple::new("R", ts).with("k", v)`,
//! `tuple.get("k")`) remain as thin compatibility shims: they intern on
//! the way in, so tests and examples read naturally while the hot paths
//! stay symbol-only.

use cosmos_query::compiled::{ScalarRef, SymSource};
use cosmos_query::predicate::AttrSource;
use cosmos_query::{AttrRef, Scalar};
use cosmos_util::intern::{sym_timestamp, Schema, Symbol};
use cosmos_util::PlanCache;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A single stream tuple — the engine-side name of the unified,
/// `Arc`-shared [`cosmos_query::record::Record`].
pub type Tuple = cosmos_query::record::Record;

/// Cache key for flattened schemas: `(alias, part schema id)` per part.
type FlatKey = Vec<(Symbol, u32)>;

/// A cached flattened schema: the interned schema plus, when any source
/// column had to be dropped (a stored attribute colliding with the
/// synthetic `alias.timestamp`, or a repeated name — first occurrence
/// wins, matching the legacy string-keyed shadowing), a keep-mask over
/// the concatenated `[timestamp, attrs…]` stream of all parts.
#[derive(Debug, Clone)]
struct FlatSchema {
    schema: Arc<Schema>,
    mask: Option<Arc<[bool]>>,
}

thread_local! {
    /// (alias, part-schema-id) list → flattened schema. Schema identity
    /// makes the key two `u32`s per part; hits are one hash over a short
    /// slice, no locking.
    static FLAT_SCHEMAS: RefCell<HashMap<FlatKey, FlatSchema>> = RefCell::new(HashMap::new());
}

/// Builds the flattened schema for a list of `(alias, component)` parts:
/// `alias.timestamp` followed by `alias.attr` for each component column.
fn build_flat_schema(parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
    let ts = sym_timestamp();
    let mut attrs = Vec::new();
    let mut mask = Vec::new();
    let push = |attrs: &mut Vec<Symbol>, mask: &mut Vec<bool>, sym: Symbol| {
        let fresh = !attrs.contains(&sym);
        if fresh {
            attrs.push(sym);
        }
        mask.push(fresh);
    };
    for (alias, t) in parts {
        push(&mut attrs, &mut mask, Symbol::dotted(*alias, ts));
        for &attr in t.schema().attrs() {
            push(&mut attrs, &mut mask, Symbol::dotted(*alias, attr));
        }
    }
    FlatSchema { schema: Schema::intern(&attrs), mask: mask.contains(&false).then(|| mask.into()) }
}

/// The flattened schema for `parts`, via the shared thread-local cache
/// (allocates a small key `Vec` per probe — see [`FlattenCache`] for the
/// allocation-free owner-attached variant).
fn flat_schema(parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
    let key: FlatKey = parts.iter().map(|(a, t)| (*a, t.schema().id())).collect();
    FLAT_SCHEMAS.with_borrow_mut(|cache| {
        cache.entry(key).or_insert_with(|| build_flat_schema(parts)).clone()
    })
}

/// An owner-attached flatten plan cache: hang one off whatever repeatedly
/// flattens joined tuples (a compiled query's consumer, a bench loop) and
/// call [`JoinedTuple::flatten_cached`]. Hits compare the part shapes
/// against stored keys directly — no per-call key allocation, unlike the
/// thread-local cache behind [`JoinedTuple::flatten`].
#[derive(Debug, Clone, Default)]
pub struct FlattenCache {
    plans: PlanCache<FlatKey, FlatSchema>,
}

impl FlattenCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn lookup(&mut self, parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
        self.plans
            .get_or_insert_with(
                |key| {
                    key.len() == parts.len()
                        && key
                            .iter()
                            .zip(parts)
                            .all(|(&(ka, ks), (pa, pt))| ka == *pa && ks == pt.schema().id())
                },
                || parts.iter().map(|(a, t)| (*a, t.schema().id())).collect(),
                || build_flat_schema(parts),
            )
            .clone()
    }
}

/// A join output: one source tuple per relation alias, in join order.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedTuple {
    parts: Vec<(Symbol, Arc<Tuple>)>,
}

impl JoinedTuple {
    /// Builds a joined tuple from `(alias, tuple)` parts.
    pub fn new(parts: Vec<(Symbol, Arc<Tuple>)>) -> Self {
        Self { parts }
    }

    /// The component tuple bound to `alias` — the hot path.
    #[inline]
    pub fn part_sym(&self, alias: Symbol) -> Option<&Tuple> {
        self.parts.iter().find(|(a, _)| *a == alias).map(|(_, t)| t.as_ref())
    }

    /// The component tuple bound to `alias` (compat shim; never interns).
    pub fn part(&self, alias: &str) -> Option<&Tuple> {
        self.part_sym(Symbol::lookup(alias)?)
    }

    /// Iterates over `(alias, tuple)` parts in join order.
    pub fn parts(&self) -> impl Iterator<Item = (Symbol, &Tuple)> {
        self.parts.iter().map(|(a, t)| (*a, t.as_ref()))
    }

    /// The largest component timestamp — the output's event time.
    pub fn timestamp(&self) -> i64 {
        self.parts.iter().map(|(_, t)| t.timestamp).max().unwrap_or(0)
    }

    /// Flattens into a result tuple with `alias.attr` attribute names,
    /// plus per-alias `alias.timestamp` attributes so downstream consumers
    /// (e.g. residual window filters) retain the component times.
    ///
    /// The flattened schema is precomputed and cached per distinct
    /// (aliases, part schemas) combination; per call this copies scalars
    /// plus one small cache-key allocation — no string formatting or
    /// name interning.
    pub fn flatten(&self, result_stream: impl Into<Symbol>) -> Tuple {
        let flat = flat_schema(&self.parts);
        self.apply_flat(&flat, result_stream)
    }

    /// [`JoinedTuple::flatten`] with an owner-attached plan cache: the
    /// steady-state path copies scalars only — no cache-key allocation.
    pub fn flatten_cached(
        &self,
        cache: &mut FlattenCache,
        result_stream: impl Into<Symbol>,
    ) -> Tuple {
        let flat = cache.lookup(&self.parts);
        self.apply_flat(&flat, result_stream)
    }

    fn apply_flat(&self, flat: &FlatSchema, result_stream: impl Into<Symbol>) -> Tuple {
        Tuple::build(result_stream, self.timestamp(), Arc::clone(&flat.schema), |values| {
            match &flat.mask {
                None => {
                    for (_, t) in &self.parts {
                        values.push(Scalar::Int(t.timestamp));
                        values.extend(t.values().iter().cloned());
                    }
                }
                // Colliding names were dropped from the schema (first
                // wins); drop the matching source columns.
                Some(mask) => {
                    let mut keep = mask.iter();
                    for (_, t) in &self.parts {
                        if *keep.next().expect("mask covers all columns") {
                            values.push(Scalar::Int(t.timestamp));
                        }
                        for v in t.values() {
                            if *keep.next().expect("mask covers all columns") {
                                values.push(v.clone());
                            }
                        }
                    }
                }
            }
        })
    }
}

impl SymSource for JoinedTuple {
    #[inline]
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
        self.part_sym(rel)?.get_sym(attr).map(Into::into)
    }

    #[inline]
    fn timestamp(&self, rel: Symbol) -> Option<i64> {
        self.part_sym(rel).map(|t| t.timestamp)
    }
}

impl AttrSource for JoinedTuple {
    fn value(&self, attr: &AttrRef) -> Option<Scalar> {
        let part = self.part(&attr.relation)?;
        if attr.attr == "timestamp" {
            return Some(Scalar::Int(part.timestamp));
        }
        part.get(&attr.attr).cloned()
    }

    fn timestamp(&self, alias: &str) -> Option<i64> {
        self.part(alias).map(|t| t.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::compiled::CompiledPredicate;
    use cosmos_query::predicate::eval_predicate;
    use cosmos_query::{CmpOp, Predicate};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn joined() -> JoinedTuple {
        JoinedTuple::new(vec![
            (
                "S1".into(),
                Arc::new(Tuple::new("Station1", 1_000).with("snowHeight", Scalar::Int(30))),
            ),
            (
                "S2".into(),
                Arc::new(Tuple::new("Station2", 2_000).with("snowHeight", Scalar::Int(10))),
            ),
        ])
    }

    #[test]
    fn attr_source_resolves_alias_and_timestamp() {
        let j = joined();
        assert_eq!(AttrSource::value(&j, &AttrRef::new("S1", "snowHeight")), Some(Scalar::Int(30)));
        assert_eq!(
            AttrSource::value(&j, &AttrRef::new("S1", "timestamp")),
            Some(Scalar::Int(1_000))
        );
        assert_eq!(AttrSource::value(&j, &AttrRef::new("S3", "snowHeight")), None);
        assert_eq!(AttrSource::timestamp(&j, "S2"), Some(2_000));
        assert_eq!(j.timestamp(), 2_000);
    }

    #[test]
    fn join_predicate_evaluation() {
        let j = joined();
        let p = Predicate::JoinCmp {
            left: AttrRef::new("S1", "snowHeight"),
            op: CmpOp::Gt,
            right: AttrRef::new("S2", "snowHeight"),
        };
        assert_eq!(eval_predicate(&p, &j), Some(true));
        assert_eq!(CompiledPredicate::compile(&p).eval(&j), Some(true));
        let td = Predicate::TimeDelta {
            left: "S1".into(),
            right: "S2".into(),
            min_ms: -30 * 60_000,
            max_ms: 0,
        };
        assert_eq!(eval_predicate(&td, &j), Some(true));
        assert_eq!(CompiledPredicate::compile(&td).eval(&j), Some(true));
    }

    #[test]
    fn flatten_prefixes_attributes() {
        let j = joined();
        let flat = j.flatten("result");
        assert_eq!(flat.stream, "result");
        assert_eq!(flat.timestamp, 2_000);
        assert_eq!(flat.get("S1.snowHeight"), Some(&Scalar::Int(30)));
        assert_eq!(flat.get("S1.timestamp"), Some(&Scalar::Int(1_000)));
        assert_eq!(flat.get("S2.snowHeight"), Some(&Scalar::Int(10)));
    }

    #[test]
    fn flatten_shares_schema_across_tuples_of_same_shape() {
        let a = joined().flatten("res");
        let b = joined().flatten("res");
        assert_eq!(a.schema().id(), b.schema().id());
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
    }

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new("R", 5).with("a", Scalar::Int(1));
        assert_eq!(t.get("a"), Some(&Scalar::Int(1)));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.get_sym(Symbol::intern("a")), Some(&Scalar::Int(1)));
        // 16-byte header + 4-byte symbol + 8-byte int payload.
        assert_eq!(t.wire_size(), 28);
        assert!(t.to_string().contains("R@5"));
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn wire_size_charges_actual_string_payload() {
        let small = Tuple::new("R", 0).with("s", Scalar::Str("ab".into()));
        let big = Tuple::new("R", 0).with("s", Scalar::Str("a".repeat(100)));
        assert_eq!(small.wire_size(), 16 + 4 + 4 + 2);
        assert_eq!(big.wire_size(), 16 + 4 + 4 + 100);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn tuples_of_same_shape_share_schema() {
        let a = Tuple::new("R", 0).with("k", Scalar::Int(1)).with("v", Scalar::Int(2));
        let b = Tuple::new("R", 1).with("k", Scalar::Int(3)).with("v", Scalar::Int(4));
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
    }

    proptest! {
        /// Payload sharing must be invisible to byte accounting: a clone
        /// (refcount bump) costs the same wire bytes as its source, a
        /// retained projection charges exactly the kept attributes, and
        /// flattening `Arc`-shared parts charges the same bytes as
        /// flattening freshly built deep copies of the same content.
        #[test]
        fn prop_sharing_preserves_wire_size(
            vals in proptest::collection::vec(-100i64..100, 1..6),
            str_lens in proptest::collection::vec(0usize..13, 0..3),
            keep_mask in proptest::collection::vec(0u32..2, 1..10),
        ) {
            let mut t = Tuple::new("R", 7);
            let mut names = Vec::new();
            for (i, v) in vals.iter().enumerate() {
                let name = format!("n{i}");
                t = t.with(name.as_str(), Scalar::Int(*v));
                names.push(name);
            }
            for (i, len) in str_lens.iter().enumerate() {
                let name = format!("s{i}");
                t = t.with(name.as_str(), Scalar::Str("x".repeat(*len)));
                names.push(name);
            }
            // Clone: refcount bump, identical bytes.
            prop_assert_eq!(t.clone().wire_size(), t.wire_size());
            // Retain: the shared source charges exactly the kept content.
            let keep: BTreeSet<Symbol> = names
                .iter()
                .zip(keep_mask.iter().cycle())
                .filter(|(_, k)| **k == 1)
                .map(|(n, _)| Symbol::intern(n))
                .collect();
            let kept_payload: usize = t
                .iter()
                .filter(|(a, _)| keep.contains(a))
                .map(|(_, v)| 4 + v.wire_size())
                .sum();
            prop_assert_eq!(t.retaining(&keep).wire_size(), 16 + kept_payload);
            // Flatten: Arc-shared parts vs deep-copied parts, same bytes.
            let deep = Tuple::from_parts(
                t.stream,
                t.timestamp,
                Arc::clone(t.schema()),
                t.values().to_vec(),
            );
            let part = Arc::new(t.clone());
            let shared_parts = JoinedTuple::new(vec![
                ("A".into(), Arc::clone(&part)),
                ("B".into(), Arc::clone(&part)),
            ]);
            let deep_parts = JoinedTuple::new(vec![
                ("A".into(), Arc::new(deep.clone())),
                ("B".into(), Arc::new(deep)),
            ]);
            let f_shared = shared_parts.flatten("res");
            let f_deep = deep_parts.flatten("res");
            prop_assert_eq!(f_shared.wire_size(), f_deep.wire_size());
            prop_assert_eq!(f_shared, f_deep);
            // The source is untouched by all of the above.
            prop_assert_eq!(t.clone().wire_size(), t.wire_size());
        }
    }
}
