//! Schema-indexed tuples and joined tuples.
//!
//! # Performance architecture
//!
//! The tuple data plane is symbol-interned and schema-indexed:
//!
//! - A [`Tuple`] is `{ stream: Symbol, timestamp, values: Vec<Scalar> }`
//!   plus a shared [`Arc<Schema>`] mapping attribute symbols to column
//!   indices. Tuples of the same shape share one interned schema, so the
//!   payload carries **no attribute names at all** — attribute lookup is a
//!   linear scan over `u32`s in the schema (sensor schemas are narrow, so
//!   this beats hashing), and cloning a tuple clones scalars only.
//! - A [`JoinedTuple`] stores positional `(alias: Symbol, Arc<Tuple>)`
//!   parts. Component tuples are `Arc`-shared because one window tuple
//!   typically participates in many join outputs.
//! - [`JoinedTuple::flatten`] emits a tuple on a **precomputed flattened
//!   schema** (`alias.attr` names, built once per distinct combination of
//!   part aliases and part schemas, then cached per thread). The per-tuple
//!   work is copying scalars — no `format!`, no `String` allocation.
//!
//! String-based constructors (`Tuple::new("R", ts).with("k", v)`,
//! `tuple.get("k")`) remain as thin compatibility shims: they intern on
//! the way in, so tests and examples read naturally while the hot paths
//! stay symbol-only.

use cosmos_query::compiled::{ScalarRef, SymSource};
use cosmos_query::predicate::AttrSource;
use cosmos_query::{AttrRef, Scalar};
use cosmos_util::intern::{sym_timestamp, Schema, Symbol};
use cosmos_util::PlanCache;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single stream tuple: stream (or alias) tag, event timestamp, and a
/// positional scalar payload indexed by a shared [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The stream this tuple belongs to.
    pub stream: Symbol,
    /// Event time in milliseconds.
    pub timestamp: i64,
    schema: Arc<Schema>,
    values: Vec<Scalar>,
}

impl Tuple {
    /// Creates an empty tuple (compat shim; interns `stream`).
    pub fn new(stream: impl Into<Symbol>, timestamp: i64) -> Self {
        Self { stream: stream.into(), timestamp, schema: Schema::empty(), values: Vec::new() }
    }

    /// Builds a tuple directly on a schema — the hot-path constructor.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `schema` disagree on arity.
    pub fn from_parts(
        stream: impl Into<Symbol>,
        timestamp: i64,
        schema: Arc<Schema>,
        values: Vec<Scalar>,
    ) -> Self {
        assert_eq!(schema.len(), values.len(), "schema/values arity mismatch");
        Self { stream: stream.into(), timestamp, schema, values }
    }

    /// Adds an attribute (builder-style compat shim; re-interns the
    /// extended schema, so repeated shapes still share one schema).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already present — schemas are positional
    /// indices, so duplicate names are rejected at construction (the old
    /// string-keyed layout silently shadowed them).
    pub fn with(mut self, name: impl Into<Symbol>, value: Scalar) -> Self {
        self.schema = self.schema.with(name.into());
        self.values.push(value);
        self
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The positional payload.
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Consumes the tuple, returning the payload (for schema-rewriting
    /// transformations that keep the values).
    pub fn into_values(self) -> Vec<Scalar> {
        self.values
    }

    /// Looks up an attribute value by symbol — the hot path.
    #[inline]
    pub fn get_sym(&self, attr: Symbol) -> Option<&Scalar> {
        self.schema.index_of(attr).map(|i| &self.values[i])
    }

    /// Looks up an attribute value by name (compat shim; never interns).
    pub fn get(&self, name: &str) -> Option<&Scalar> {
        self.get_sym(Symbol::lookup(name)?)
    }

    /// Iterates `(attribute, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Scalar)> {
        self.schema.attrs().iter().copied().zip(self.values.iter())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Approximate wire size in bytes: a 16-byte header (stream tag +
    /// timestamp), then per attribute a 4-byte symbol id plus the value's
    /// actual payload — 8 bytes for numbers, length + 4-byte length prefix
    /// for strings. The Pub/Sub `Message` uses the same model, keeping
    /// engine-side and broker-side byte accounting consistent.
    pub fn wire_size(&self) -> usize {
        16 + self.values.iter().map(|v| 4 + v.wire_size()).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{{", self.stream, self.timestamp)?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Cache key for flattened schemas: `(alias, part schema id)` per part.
type FlatKey = Vec<(Symbol, u32)>;

/// A cached flattened schema: the interned schema plus, when any source
/// column had to be dropped (a stored attribute colliding with the
/// synthetic `alias.timestamp`, or a repeated name — first occurrence
/// wins, matching the legacy string-keyed shadowing), a keep-mask over
/// the concatenated `[timestamp, attrs…]` stream of all parts.
#[derive(Debug, Clone)]
struct FlatSchema {
    schema: Arc<Schema>,
    mask: Option<Arc<[bool]>>,
}

thread_local! {
    /// (alias, part-schema-id) list → flattened schema. Schema identity
    /// makes the key two `u32`s per part; hits are one hash over a short
    /// slice, no locking.
    static FLAT_SCHEMAS: RefCell<HashMap<FlatKey, FlatSchema>> = RefCell::new(HashMap::new());
}

/// Builds the flattened schema for a list of `(alias, component)` parts:
/// `alias.timestamp` followed by `alias.attr` for each component column.
fn build_flat_schema(parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
    let ts = sym_timestamp();
    let mut attrs = Vec::new();
    let mut mask = Vec::new();
    let push = |attrs: &mut Vec<Symbol>, mask: &mut Vec<bool>, sym: Symbol| {
        let fresh = !attrs.contains(&sym);
        if fresh {
            attrs.push(sym);
        }
        mask.push(fresh);
    };
    for (alias, t) in parts {
        push(&mut attrs, &mut mask, Symbol::dotted(*alias, ts));
        for &attr in t.schema.attrs() {
            push(&mut attrs, &mut mask, Symbol::dotted(*alias, attr));
        }
    }
    FlatSchema { schema: Schema::intern(&attrs), mask: mask.contains(&false).then(|| mask.into()) }
}

/// The flattened schema for `parts`, via the shared thread-local cache
/// (allocates a small key `Vec` per probe — see [`FlattenCache`] for the
/// allocation-free owner-attached variant).
fn flat_schema(parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
    let key: FlatKey = parts.iter().map(|(a, t)| (*a, t.schema.id())).collect();
    FLAT_SCHEMAS.with_borrow_mut(|cache| {
        cache.entry(key).or_insert_with(|| build_flat_schema(parts)).clone()
    })
}

/// An owner-attached flatten plan cache: hang one off whatever repeatedly
/// flattens joined tuples (a compiled query's consumer, a bench loop) and
/// call [`JoinedTuple::flatten_cached`]. Hits compare the part shapes
/// against stored keys directly — no per-call key allocation, unlike the
/// thread-local cache behind [`JoinedTuple::flatten`].
#[derive(Debug, Clone, Default)]
pub struct FlattenCache {
    plans: PlanCache<FlatKey, FlatSchema>,
}

impl FlattenCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn lookup(&mut self, parts: &[(Symbol, Arc<Tuple>)]) -> FlatSchema {
        self.plans
            .get_or_insert_with(
                |key| {
                    key.len() == parts.len()
                        && key
                            .iter()
                            .zip(parts)
                            .all(|(&(ka, ks), (pa, pt))| ka == *pa && ks == pt.schema.id())
                },
                || parts.iter().map(|(a, t)| (*a, t.schema.id())).collect(),
                || build_flat_schema(parts),
            )
            .clone()
    }
}

/// A join output: one source tuple per relation alias, in join order.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedTuple {
    parts: Vec<(Symbol, Arc<Tuple>)>,
}

impl JoinedTuple {
    /// Builds a joined tuple from `(alias, tuple)` parts.
    pub fn new(parts: Vec<(Symbol, Arc<Tuple>)>) -> Self {
        Self { parts }
    }

    /// The component tuple bound to `alias` — the hot path.
    #[inline]
    pub fn part_sym(&self, alias: Symbol) -> Option<&Tuple> {
        self.parts.iter().find(|(a, _)| *a == alias).map(|(_, t)| t.as_ref())
    }

    /// The component tuple bound to `alias` (compat shim; never interns).
    pub fn part(&self, alias: &str) -> Option<&Tuple> {
        self.part_sym(Symbol::lookup(alias)?)
    }

    /// Iterates over `(alias, tuple)` parts in join order.
    pub fn parts(&self) -> impl Iterator<Item = (Symbol, &Tuple)> {
        self.parts.iter().map(|(a, t)| (*a, t.as_ref()))
    }

    /// The largest component timestamp — the output's event time.
    pub fn timestamp(&self) -> i64 {
        self.parts.iter().map(|(_, t)| t.timestamp).max().unwrap_or(0)
    }

    /// Flattens into a result tuple with `alias.attr` attribute names,
    /// plus per-alias `alias.timestamp` attributes so downstream consumers
    /// (e.g. residual window filters) retain the component times.
    ///
    /// The flattened schema is precomputed and cached per distinct
    /// (aliases, part schemas) combination; per call this copies scalars
    /// plus one small cache-key allocation — no string formatting or
    /// name interning.
    pub fn flatten(&self, result_stream: impl Into<Symbol>) -> Tuple {
        let flat = flat_schema(&self.parts);
        self.apply_flat(&flat, result_stream)
    }

    /// [`JoinedTuple::flatten`] with an owner-attached plan cache: the
    /// steady-state path copies scalars only — no cache-key allocation.
    pub fn flatten_cached(
        &self,
        cache: &mut FlattenCache,
        result_stream: impl Into<Symbol>,
    ) -> Tuple {
        let flat = cache.lookup(&self.parts);
        self.apply_flat(&flat, result_stream)
    }

    fn apply_flat(&self, flat: &FlatSchema, result_stream: impl Into<Symbol>) -> Tuple {
        let mut values = Vec::with_capacity(flat.schema.len());
        match &flat.mask {
            None => {
                for (_, t) in &self.parts {
                    values.push(Scalar::Int(t.timestamp));
                    values.extend(t.values.iter().cloned());
                }
            }
            // Colliding names were dropped from the schema (first wins);
            // drop the matching source columns.
            Some(mask) => {
                let mut keep = mask.iter();
                for (_, t) in &self.parts {
                    if *keep.next().expect("mask covers all columns") {
                        values.push(Scalar::Int(t.timestamp));
                    }
                    for v in &t.values {
                        if *keep.next().expect("mask covers all columns") {
                            values.push(v.clone());
                        }
                    }
                }
            }
        }
        Tuple::from_parts(result_stream, self.timestamp(), Arc::clone(&flat.schema), values)
    }
}

impl SymSource for JoinedTuple {
    #[inline]
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
        self.part_sym(rel)?.get_sym(attr).map(Into::into)
    }

    #[inline]
    fn timestamp(&self, rel: Symbol) -> Option<i64> {
        self.part_sym(rel).map(|t| t.timestamp)
    }
}

impl AttrSource for JoinedTuple {
    fn value(&self, attr: &AttrRef) -> Option<Scalar> {
        let part = self.part(&attr.relation)?;
        if attr.attr == "timestamp" {
            return Some(Scalar::Int(part.timestamp));
        }
        part.get(&attr.attr).cloned()
    }

    fn timestamp(&self, alias: &str) -> Option<i64> {
        self.part(alias).map(|t| t.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::compiled::CompiledPredicate;
    use cosmos_query::predicate::eval_predicate;
    use cosmos_query::{CmpOp, Predicate};

    fn joined() -> JoinedTuple {
        JoinedTuple::new(vec![
            (
                "S1".into(),
                Arc::new(Tuple::new("Station1", 1_000).with("snowHeight", Scalar::Int(30))),
            ),
            (
                "S2".into(),
                Arc::new(Tuple::new("Station2", 2_000).with("snowHeight", Scalar::Int(10))),
            ),
        ])
    }

    #[test]
    fn attr_source_resolves_alias_and_timestamp() {
        let j = joined();
        assert_eq!(AttrSource::value(&j, &AttrRef::new("S1", "snowHeight")), Some(Scalar::Int(30)));
        assert_eq!(
            AttrSource::value(&j, &AttrRef::new("S1", "timestamp")),
            Some(Scalar::Int(1_000))
        );
        assert_eq!(AttrSource::value(&j, &AttrRef::new("S3", "snowHeight")), None);
        assert_eq!(AttrSource::timestamp(&j, "S2"), Some(2_000));
        assert_eq!(j.timestamp(), 2_000);
    }

    #[test]
    fn join_predicate_evaluation() {
        let j = joined();
        let p = Predicate::JoinCmp {
            left: AttrRef::new("S1", "snowHeight"),
            op: CmpOp::Gt,
            right: AttrRef::new("S2", "snowHeight"),
        };
        assert_eq!(eval_predicate(&p, &j), Some(true));
        assert_eq!(CompiledPredicate::compile(&p).eval(&j), Some(true));
        let td = Predicate::TimeDelta {
            left: "S1".into(),
            right: "S2".into(),
            min_ms: -30 * 60_000,
            max_ms: 0,
        };
        assert_eq!(eval_predicate(&td, &j), Some(true));
        assert_eq!(CompiledPredicate::compile(&td).eval(&j), Some(true));
    }

    #[test]
    fn flatten_prefixes_attributes() {
        let j = joined();
        let flat = j.flatten("result");
        assert_eq!(flat.stream, "result");
        assert_eq!(flat.timestamp, 2_000);
        assert_eq!(flat.get("S1.snowHeight"), Some(&Scalar::Int(30)));
        assert_eq!(flat.get("S1.timestamp"), Some(&Scalar::Int(1_000)));
        assert_eq!(flat.get("S2.snowHeight"), Some(&Scalar::Int(10)));
    }

    #[test]
    fn flatten_shares_schema_across_tuples_of_same_shape() {
        let a = joined().flatten("res");
        let b = joined().flatten("res");
        assert_eq!(a.schema().id(), b.schema().id());
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
    }

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new("R", 5).with("a", Scalar::Int(1));
        assert_eq!(t.get("a"), Some(&Scalar::Int(1)));
        assert_eq!(t.get("b"), None);
        assert_eq!(t.get_sym(Symbol::intern("a")), Some(&Scalar::Int(1)));
        // 16-byte header + 4-byte symbol + 8-byte int payload.
        assert_eq!(t.wire_size(), 28);
        assert!(t.to_string().contains("R@5"));
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn wire_size_charges_actual_string_payload() {
        let small = Tuple::new("R", 0).with("s", Scalar::Str("ab".into()));
        let big = Tuple::new("R", 0).with("s", Scalar::Str("a".repeat(100)));
        assert_eq!(small.wire_size(), 16 + 4 + 4 + 2);
        assert_eq!(big.wire_size(), 16 + 4 + 4 + 100);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn tuples_of_same_shape_share_schema() {
        let a = Tuple::new("R", 0).with("k", Scalar::Int(1)).with("v", Scalar::Int(2));
        let b = Tuple::new("R", 1).with("k", Scalar::Int(3)).with("v", Scalar::Int(4));
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
    }
}
