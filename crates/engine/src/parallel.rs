//! A multi-worker executor: one worker (OS thread) per simulated stream
//! processor, fed over channels — the in-process analogue of the paper's
//! prototype deployment where 30 PlanetLab nodes each run their share of
//! the queries.
//!
//! Tuples are broadcast to every worker whose queries read the tuple's
//! stream (what the Pub/Sub would deliver); each worker runs an independent
//! [`StreamEngine`] and pushes its results into a shared sink. Results are
//! deterministic as a *set* (per-worker engines are single-threaded and
//! in-order); only the interleaving across workers varies.

use crate::exec::{EngineStats, ResultTuple, StreamEngine};
use crate::tuple::Tuple;
use cosmos_query::{Query, QueryId};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Command {
    Tuple(Arc<Tuple>),
    Flush(Sender<()>),
}

struct Worker {
    sender: Sender<Command>,
    streams: HashSet<cosmos_util::Symbol>,
    handle: Option<JoinHandle<EngineStats>>,
}

/// A pool of per-processor engine workers.
///
/// # Examples
///
/// ```
/// use cosmos_engine::parallel::ParallelEngine;
/// use cosmos_engine::tuple::Tuple;
/// use cosmos_query::{parse_query, QueryId, Scalar};
///
/// let mut pool = ParallelEngine::new();
/// pool.add_worker(vec![(
///     QueryId(1),
///     parse_query("SELECT * FROM R [Now] WHERE R.a > 10")?,
/// )]);
/// pool.add_worker(vec![(
///     QueryId(2),
///     parse_query("SELECT * FROM R [Now] WHERE R.a > 20")?,
/// )]);
/// pool.publish(Tuple::new("R", 0).with("a", Scalar::Int(15)));
/// let results = pool.finish();
/// assert_eq!(results.len(), 1); // only Q1 matches
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
#[derive(Default)]
pub struct ParallelEngine {
    workers: Vec<Worker>,
    results: Arc<Mutex<Vec<ResultTuple>>>,
}

impl ParallelEngine {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a worker hosting `queries`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any query is not well-formed (see
    /// [`StreamEngine::add_query`]).
    pub fn add_worker(&mut self, queries: Vec<(QueryId, Query)>) -> usize {
        let mut streams = HashSet::new();
        for (_, q) in &queries {
            for r in &q.relations {
                streams.insert(cosmos_util::Symbol::intern(&r.stream));
            }
        }
        let (tx, rx) = unbounded::<Command>();
        let sink = Arc::clone(&self.results);
        let handle = std::thread::spawn(move || {
            let mut engine = StreamEngine::new();
            for (id, q) in queries {
                engine.add_query(id, q);
            }
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Tuple(t) => {
                        let out = engine.push((*t).clone());
                        if !out.is_empty() {
                            sink.lock().extend(out);
                        }
                    }
                    Command::Flush(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
            engine.total_stats()
        });
        self.workers.push(Worker { sender: tx, streams, handle: Some(handle) });
        self.workers.len() - 1
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Publishes a tuple to every worker reading its stream (Pub/Sub-style
    /// interest-based delivery). Returns how many workers received it.
    pub fn publish(&self, tuple: Tuple) -> usize {
        let shared = Arc::new(tuple);
        let mut delivered = 0;
        for w in &self.workers {
            if w.streams.contains(&shared.stream)
                && w.sender.send(Command::Tuple(shared.clone())).is_ok()
            {
                delivered += 1;
            }
        }
        delivered
    }

    /// Blocks until every worker has drained its queue.
    pub fn flush(&self) {
        let mut acks = Vec::new();
        for w in &self.workers {
            let (tx, rx) = unbounded();
            if w.sender.send(Command::Flush(tx)).is_ok() {
                acks.push(rx);
            }
        }
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Shuts the pool down and returns all results produced so far,
    /// together with the summed worker statistics.
    pub fn finish_with_stats(mut self) -> (Vec<ResultTuple>, EngineStats) {
        self.flush();
        let mut stats = EngineStats::default();
        for w in &mut self.workers {
            // Dropping the sender closes the channel; join for the stats.
            let (closed_tx, _closed_rx) = unbounded::<Command>();
            let old = std::mem::replace(&mut w.sender, closed_tx);
            drop(old);
            if let Some(handle) = w.handle.take() {
                if let Ok(s) = handle.join() {
                    stats.ingested += s.ingested;
                    stats.probes += s.probes;
                    stats.emitted += s.emitted;
                    stats.filtered += s.filtered;
                }
            }
        }
        let results = std::mem::take(&mut *self.results.lock());
        (results, stats)
    }

    /// Shuts the pool down and returns all results produced so far.
    pub fn finish(self) -> Vec<ResultTuple> {
        self.finish_with_stats().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{parse_query, Scalar};
    use std::collections::BTreeSet;

    fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
        let mut tup = Tuple::new(stream, ts);
        for (k, v) in kv {
            tup = tup.with(*k, Scalar::Int(*v));
        }
        tup
    }

    #[test]
    fn parallel_equals_sequential() {
        let queries: Vec<(QueryId, Query)> = (0..8)
            .map(|i| {
                (
                    QueryId(i),
                    parse_query(&format!(
                        "SELECT * FROM R [Range 30 Seconds], S [Now] \
                         WHERE R.k = S.k AND R.v > {}",
                        i * 10
                    ))
                    .unwrap(),
                )
            })
            .collect();
        let tuples: Vec<Tuple> = (0..60)
            .flat_map(|i| {
                vec![
                    t("R", i * 1_000, &[("k", i % 3), ("v", (i * 13) % 90)]),
                    t("S", i * 1_000 + 500, &[("k", i % 3)]),
                ]
            })
            .collect();

        // Sequential reference.
        let mut seq = StreamEngine::new();
        for (id, q) in &queries {
            seq.add_query(*id, q.clone());
        }
        let mut expect: BTreeSet<String> = BTreeSet::new();
        for tup in &tuples {
            for r in seq.push(tup.clone()) {
                expect.insert(format!("{}@{}", r.query, r.joined.timestamp()));
            }
        }

        // Parallel: queries spread over 4 workers.
        let mut pool = ParallelEngine::new();
        for chunk in queries.chunks(2) {
            pool.add_worker(chunk.to_vec());
        }
        assert_eq!(pool.worker_count(), 4);
        for tup in &tuples {
            pool.publish(tup.clone());
        }
        let (results, stats) = pool.finish_with_stats();
        let got: BTreeSet<String> =
            results.iter().map(|r| format!("{}@{}", r.query, r.joined.timestamp())).collect();
        assert_eq!(got, expect);
        assert!(stats.probes > 0);
    }

    #[test]
    fn interest_based_delivery_skips_unrelated_workers() {
        let mut pool = ParallelEngine::new();
        pool.add_worker(vec![(QueryId(1), parse_query("SELECT * FROM A [Now]").unwrap())]);
        pool.add_worker(vec![(QueryId(2), parse_query("SELECT * FROM B [Now]").unwrap())]);
        assert_eq!(pool.publish(t("A", 0, &[])), 1);
        assert_eq!(pool.publish(t("B", 0, &[])), 1);
        assert_eq!(pool.publish(t("C", 0, &[])), 0);
        let results = pool.finish();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn flush_makes_results_visible() {
        let mut pool = ParallelEngine::new();
        pool.add_worker(vec![(QueryId(1), parse_query("SELECT * FROM R [Now]").unwrap())]);
        for i in 0..100 {
            pool.publish(t("R", i, &[]));
        }
        pool.flush();
        let results = pool.finish();
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn empty_pool_finishes_cleanly() {
        let pool = ParallelEngine::new();
        assert!(pool.finish().is_empty());
    }
}
