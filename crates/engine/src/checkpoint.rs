//! Operator-state checkpointing for engine crash recovery.
//!
//! The paper pushes query operators out onto the broker overlay, so a
//! broker crash destroys not just routing state (healed incrementally by
//! `cosmos-pubsub`) but the *operator state* hosted there: window buffers,
//! join key indexes, aggregate partials, shared-group counters. This module
//! gives every stateful engine an extract/restore API so a restarted broker
//! can resume its operators instead of forgetting them.
//!
//! # Checkpoint lifecycle
//!
//! 1. **Extract.** [`StreamEngine::checkpoint`] (and the aggregate/shared
//!    equivalents) snapshots all mutable operator state — window contents
//!    in arrival order, the sticky index-activation flag of each buffer,
//!    and the per-query execution counters — tagged with the engine's
//!    **monotone input watermark**: the count of tuples consumed via
//!    `push` so far. Snapshots share tuple payloads by `Arc`, so
//!    extraction is O(window sizes) refcount bumps, never a deep copy.
//! 2. **Retain upstream.** The upstream-backup layer
//!    (`cosmos-pubsub::recovery`) keeps every record forwarded toward the
//!    engine in a replay log until a checkpoint watermark acknowledges it;
//!    acking at watermark `w` truncates everything numbered `≤ w`, so
//!    retention is bounded by the checkpoint interval, not stream length.
//! 3. **Restore + replay.** After a crash, a fresh engine is built with
//!    the *same* queries in the *same* registration order, then
//!    [`StreamEngine::restore`] overwrites its mutable state from the
//!    checkpoint (key buckets are rebuilt from the arrival-ordered window
//!    contents — derived state never travels). Upstreams replay the
//!    retained records `(w, now]` in input order; because the restored
//!    state is bit-identical to the state the crash-free run had after
//!    input `w` — including the sticky `active` flags, which change how
//!    many probe combinations materialize and are therefore observable
//!    through [`EngineStats`] — the replayed run re-derives the exact
//!    outputs and counters of the run that never crashed.
//!
//! Compiled shape (predicates, schemas, equi-join plans, residual groups)
//! is deliberately *not* checkpointed: it is a pure function of the query
//! set, which the recovery layer re-registers before restoring. `restore`
//! cross-checks that premise and panics on any mismatch — restoring a
//! checkpoint into the wrong query set silently corrupting windows is the
//! one failure mode this plane must never have.
//!
//! # Examples
//!
//! ```
//! use cosmos_engine::exec::StreamEngine;
//! use cosmos_engine::tuple::Tuple;
//! use cosmos_query::{parse_query, QueryId, Scalar};
//!
//! let q = "SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k";
//! let mut engine = StreamEngine::new();
//! engine.add_query(QueryId(1), parse_query(q)?);
//! engine.push(Tuple::new("R", 0).with("k", Scalar::Int(7)));
//! let cp = engine.checkpoint();
//! assert_eq!(cp.watermark, 1);
//!
//! // Crash: the engine is lost. Rebuild with the same queries, restore.
//! let mut restored = StreamEngine::new();
//! restored.add_query(QueryId(1), parse_query(q)?);
//! restored.restore(&cp);
//! // The restored engine joins against the checkpointed window.
//! let out = restored.push(Tuple::new("S", 1_000).with("k", Scalar::Int(7)));
//! assert_eq!(out.len(), 1);
//! # Ok::<(), cosmos_query::ParseError>(())
//! ```

use crate::aggregate::AggregateEngine;
use crate::exec::{EngineStats, StreamEngine};
use crate::shared::SharedEngine;
use crate::tuple::Tuple;
use cosmos_query::QueryId;
use std::sync::Arc;

/// Extracted state of one window buffer: the arrival-ordered contents and
/// the sticky key-index flag. Key buckets are derived state — rebuilt on
/// restore — so they never travel.
#[derive(Debug, Clone)]
pub struct BufferState {
    /// Window contents in arrival order (`Arc`-shared with the engine).
    pub tuples: Vec<Arc<Tuple>>,
    /// Whether the equi-join key index had activated. Sticky and
    /// observable (indexed probing materializes fewer combinations, which
    /// [`EngineStats::probes`] counts), so it must restore exactly.
    pub active: bool,
}

/// Extracted state of one compiled SPJ query.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// The query this state belongs to; restore refuses a mismatch.
    pub id: QueryId,
    /// Execution counters at the checkpoint.
    pub stats: EngineStats,
    /// Window buffers in relation (`FROM`) order.
    pub buffers: Vec<BufferState>,
}

/// A [`StreamEngine`] checkpoint: everything `restore` needs to make a
/// freshly built engine (same queries, same registration order)
/// observationally identical to this one.
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    /// Monotone input watermark: tuples consumed when the checkpoint was
    /// taken. Upstream replay logs truncate at this value.
    pub watermark: u64,
    /// Per-query state in registration order.
    pub queries: Vec<QueryState>,
}

impl StreamEngine {
    /// Extracts a checkpoint of all mutable operator state.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        let queries = self
            .queries()
            .iter()
            .map(|q| QueryState {
                id: q.id(),
                stats: q.stats(),
                buffers: q
                    .buffers()
                    .iter()
                    .map(|b| {
                        let (tuples, active) = b.snapshot();
                        BufferState { tuples, active }
                    })
                    .collect(),
            })
            .collect();
        StreamCheckpoint { watermark: self.watermark(), queries }
    }

    /// Restores a checkpoint taken from an engine with the same queries in
    /// the same registration order, overwriting windows, key indexes, and
    /// counters. The input watermark resumes from the checkpoint's value.
    ///
    /// # Panics
    ///
    /// Panics if the registered query set does not match the checkpoint
    /// (count, ids, or per-query buffer arity).
    pub fn restore(&mut self, cp: &StreamCheckpoint) {
        assert_eq!(
            self.queries().len(),
            cp.queries.len(),
            "checkpoint covers {} queries, engine has {}",
            cp.queries.len(),
            self.queries().len()
        );
        for (q, qs) in self.queries_mut().iter_mut().zip(&cp.queries) {
            assert_eq!(q.id(), qs.id, "checkpoint query order mismatch");
            assert_eq!(
                q.buffers().len(),
                qs.buffers.len(),
                "query {} buffer arity mismatch: checkpoint has {}, engine has {}",
                qs.id,
                qs.buffers.len(),
                q.buffers().len()
            );
            for (b, bs) in q.buffers_mut().iter_mut().zip(&qs.buffers) {
                b.restore(bs.tuples.clone(), bs.active);
            }
            q.set_stats(qs.stats);
        }
        self.set_watermark(cp.watermark);
    }
}

/// Extracted state of one aggregate query: the window plus its counters.
#[derive(Debug, Clone)]
pub struct AggregateQueryState {
    /// The query this state belongs to; restore refuses a mismatch.
    pub id: QueryId,
    /// Window contents in arrival order.
    pub window: Vec<Arc<Tuple>>,
    /// Tuples accepted into the window so far.
    pub emitted: u64,
    /// Tuples rejected by pushed-down selections so far.
    pub filtered: u64,
}

/// An [`AggregateEngine`] checkpoint.
#[derive(Debug, Clone)]
pub struct AggregateCheckpoint {
    /// Monotone input watermark at extraction.
    pub watermark: u64,
    /// Per-query state in registration order.
    pub queries: Vec<AggregateQueryState>,
}

impl AggregateEngine {
    /// Extracts a checkpoint of all mutable operator state.
    pub fn checkpoint(&self) -> AggregateCheckpoint {
        let queries = self
            .queries()
            .iter()
            .map(|q| {
                let (window, emitted, filtered) = q.snapshot();
                AggregateQueryState { id: q.id(), window, emitted, filtered }
            })
            .collect();
        AggregateCheckpoint { watermark: self.watermark(), queries }
    }

    /// Restores a checkpoint taken from an engine with the same queries in
    /// the same registration order.
    ///
    /// # Panics
    ///
    /// Panics if the registered query set does not match the checkpoint.
    pub fn restore(&mut self, cp: &AggregateCheckpoint) {
        assert_eq!(
            self.queries().len(),
            cp.queries.len(),
            "checkpoint covers {} aggregate queries, engine has {}",
            cp.queries.len(),
            self.queries().len()
        );
        for (q, qs) in self.queries_mut().iter_mut().zip(&cp.queries) {
            assert_eq!(q.id(), qs.id, "checkpoint query order mismatch");
            q.restore(qs.window.clone(), qs.emitted, qs.filtered);
        }
        self.set_watermark(cp.watermark);
    }
}

/// A [`SharedEngine`] checkpoint. All of a shared engine's mutable state
/// lives in the inner [`StreamEngine`] hosting the merged queries (groups,
/// residual filters, and projection plans are compiled shape; verdicts are
/// per-push scratch), so this wraps a [`StreamCheckpoint`] of it.
#[derive(Debug, Clone)]
pub struct SharedCheckpoint {
    /// The inner merged-query engine's checkpoint.
    pub inner: StreamCheckpoint,
}

impl SharedCheckpoint {
    /// Monotone input watermark at extraction.
    pub fn watermark(&self) -> u64 {
        self.inner.watermark
    }
}

impl SharedEngine {
    /// Extracts a checkpoint of all mutable operator state.
    pub fn checkpoint(&self) -> SharedCheckpoint {
        SharedCheckpoint { inner: self.engine().checkpoint() }
    }

    /// Restores a checkpoint taken from a shared engine built over the
    /// same member queries in the same order (grouping is deterministic,
    /// so equal builds produce equal merged query sets).
    ///
    /// # Panics
    ///
    /// Panics if the merged query set does not match the checkpoint.
    pub fn restore(&mut self, cp: &SharedCheckpoint) {
        self.engine_mut().restore(&cp.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{parse_query, Scalar};

    fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
        let mut tup = Tuple::new(stream, ts);
        for (k, v) in kv {
            tup = tup.with(*k, Scalar::Int(*v));
        }
        tup
    }

    const JOIN: &str = "SELECT * FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k";

    #[test]
    fn stream_checkpoint_restores_windows_and_stats() {
        let mut a = StreamEngine::new();
        a.add_query(QueryId(1), parse_query(JOIN).unwrap());
        for i in 0..40i64 {
            a.push(t("R", i * 100, &[("k", i % 4)]));
        }
        let cp = a.checkpoint();
        assert_eq!(cp.watermark, 40);
        assert!(cp.queries[0].buffers[0].active, "40 tuples outgrow the activation threshold");

        let mut b = StreamEngine::new();
        b.add_query(QueryId(1), parse_query(JOIN).unwrap());
        b.restore(&cp);
        assert_eq!(b.watermark(), 40);
        assert_eq!(b.total_stats(), a.total_stats());
        // Identical subsequent input produces identical output and stats.
        for i in 40..60i64 {
            let probe = t("S", i * 100, &[("k", i % 4)]);
            assert_eq!(a.push(probe.clone()), b.push(probe));
        }
        assert_eq!(b.total_stats(), a.total_stats());
        assert_eq!(b.watermark(), a.watermark());
    }

    #[test]
    fn restore_preserves_inactive_index_flag() {
        // Below the activation threshold the index is off; a restore must
        // not turn it on (probes would diverge from the crash-free run).
        let mut a = StreamEngine::new();
        a.add_query(QueryId(1), parse_query(JOIN).unwrap());
        for i in 0..5i64 {
            a.push(t("R", i, &[("k", i)]));
        }
        let cp = a.checkpoint();
        assert!(!cp.queries[0].buffers[0].active);
        let mut b = StreamEngine::new();
        b.add_query(QueryId(1), parse_query(JOIN).unwrap());
        b.restore(&cp);
        let probe = t("S", 10, &[("k", 3)]);
        assert_eq!(a.push(probe.clone()), b.push(probe));
        assert_eq!(b.total_stats(), a.total_stats());
    }

    #[test]
    #[should_panic(expected = "query order mismatch")]
    fn restore_rejects_wrong_query_set() {
        let mut a = StreamEngine::new();
        a.add_query(QueryId(1), parse_query(JOIN).unwrap());
        let cp = a.checkpoint();
        let mut b = StreamEngine::new();
        b.add_query(QueryId(2), parse_query(JOIN).unwrap());
        b.restore(&cp);
    }

    #[test]
    #[should_panic(expected = "covers 1 queries")]
    fn restore_rejects_wrong_query_count() {
        let mut a = StreamEngine::new();
        a.add_query(QueryId(1), parse_query(JOIN).unwrap());
        let cp = a.checkpoint();
        let mut b = StreamEngine::new();
        b.restore(&cp);
    }

    #[test]
    fn aggregate_checkpoint_round_trips() {
        let src = "SELECT AVG(R.v), COUNT(R.v) FROM R [Range 10 Seconds] WHERE R.v > 0";
        let mut a = AggregateEngine::new();
        a.add_query(QueryId(1), parse_query(src).unwrap());
        for i in 0..10i64 {
            a.push(t("R", i * 500, &[("v", i - 2)])); // some filtered
        }
        let cp = a.checkpoint();
        assert_eq!(cp.watermark, 10);
        let mut b = AggregateEngine::new();
        b.add_query(QueryId(1), parse_query(src).unwrap());
        b.restore(&cp);
        for i in 10..20i64 {
            let probe = t("R", i * 500, &[("v", i)]);
            assert_eq!(a.push(probe.clone()), b.push(probe));
        }
        assert_eq!(a.watermark(), b.watermark());
    }

    #[test]
    fn shared_checkpoint_round_trips() {
        let queries = || {
            vec![
                (
                    QueryId(1),
                    parse_query(
                        "SELECT R.v FROM R [Range 60 Seconds], S [Now] \
                         WHERE R.k = S.k AND R.v > 10",
                    )
                    .unwrap(),
                ),
                (
                    QueryId(2),
                    parse_query("SELECT R.v FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k")
                        .unwrap(),
                ),
            ]
        };
        let mut a = SharedEngine::build(queries());
        for i in 0..30i64 {
            a.push(t("R", i * 100, &[("k", i % 3), ("v", i)]));
        }
        let cp = a.checkpoint();
        let mut b = SharedEngine::build(queries());
        b.restore(&cp);
        for i in 30..45i64 {
            let probe = t("S", i * 100, &[("k", i % 3)]);
            assert_eq!(a.push(probe.clone()), b.push(probe));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.watermark(), b.watermark());
    }
}
