//! Compiled continuous queries and the multi-query engine.
//!
//! Each query compiles to per-relation window buffers with pushed-down
//! selection predicates (early filtering — tuples failing their relation's
//! selections never enter a window) and an event-driven probe: when a tuple
//! arrives on relation `i`, it is combined with every window combination of
//! the other relations; combinations passing the join predicates are
//! emitted. A pair is emitted exactly once — when its *later* tuple arrives
//! (ties broken by relation position).

use crate::tuple::{JoinedTuple, Tuple};
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, ScalarRef, SymSource};
use cosmos_query::{ProjItem, Query, QueryId, Scalar};
use cosmos_util::intern::{sym_timestamp, Schema, Symbol};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A projection list with aliases and attributes resolved to symbols once,
/// so applying it to a result tuple compares integers only.
#[derive(Debug, Clone)]
pub struct CompiledProjection {
    /// Unique per compilation; keys the projected-schema cache. `u64` so
    /// the per-call compat shim can never wrap it into an alias.
    id: u64,
    items: Vec<ProjSym>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProjSym {
    All,
    AllOf(Symbol),
    Attr(Symbol, Symbol),
}

impl CompiledProjection {
    /// Resolves a projection list. Aggregate items are skipped — they are
    /// evaluated by the `AggregateEngine`, never by SPJ projection.
    pub fn compile(items: &[ProjItem]) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let items = items
            .iter()
            .filter_map(|item| match item {
                ProjItem::All => Some(ProjSym::All),
                ProjItem::AllOf(a) => Some(ProjSym::AllOf(Symbol::intern(a))),
                ProjItem::Attr(ar) => {
                    Some(ProjSym::Attr(Symbol::intern(&ar.relation), Symbol::intern(&ar.attr)))
                }
                ProjItem::Agg { .. } => None,
            })
            .collect();
        Self { id, items }
    }

    #[inline]
    fn keeps(&self, alias: Symbol, attr: Symbol) -> bool {
        self.items.iter().any(|item| match item {
            ProjSym::All => true,
            ProjSym::AllOf(a) => *a == alias,
            ProjSym::Attr(a, at) => *a == alias && *at == attr,
        })
    }
}

/// One emitted result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTuple {
    /// The query that produced the result.
    pub query: QueryId,
    /// The joined source tuples.
    pub joined: JoinedTuple,
}

impl ResultTuple {
    /// Applies the producing query's projection, flattening to a tuple on
    /// `result_stream` with `alias.attr` names. Component timestamps are
    /// always retained (`alias.timestamp`) so residual filters downstream
    /// can re-check window bounds.
    ///
    /// Compat shim: compiles `projection` on the fly (uncached — each call
    /// gets a fresh compilation, so it deliberately bypasses the plan
    /// cache). Callers on the hot path should compile once and use
    /// [`ResultTuple::project_compiled`].
    pub fn project(&self, projection: &[ProjItem], result_stream: &str) -> Tuple {
        let plan = self.build_plan(&CompiledProjection::compile(projection));
        self.apply_plan(&plan, result_stream)
    }

    /// [`ResultTuple::project`] with a precompiled projection — symbol
    /// compares, scalar copies, and one small cache-key allocation; no
    /// string allocation. The output schema is determined by
    /// `(projection, part aliases, part schemas)` and cached per thread,
    /// so repeat shapes skip the schema interner.
    /// Colliding output names (e.g. a stored `timestamp` attribute) keep
    /// their first occurrence, matching the legacy shadowing behaviour.
    pub fn project_compiled(
        &self,
        projection: &CompiledProjection,
        result_stream: impl Into<Symbol>,
    ) -> Tuple {
        let key: ProjKey =
            (projection.id, self.joined.parts().map(|(a, t)| (a, t.schema().id())).collect());
        let plan = PROJECTED_SCHEMAS.with_borrow_mut(|cache| {
            // Ids are minted per compilation, so entries for dropped
            // projections (e.g. SharedEngine rebuilds) would otherwise
            // accumulate; a periodic clear bounds per-thread memory.
            if cache.len() > PLAN_CACHE_LIMIT {
                cache.clear();
            }
            cache.entry(key).or_insert_with(|| self.build_plan(projection)).clone()
        });
        self.apply_plan(&plan, result_stream)
    }

    /// Builds the projection plan for this result's part shapes:
    /// the output schema and an emit-mask over the concatenated
    /// `[timestamp, attrs…]` column stream of all parts. Colliding names
    /// keep their first occurrence (legacy shadowing behaviour).
    fn build_plan(&self, projection: &CompiledProjection) -> ProjPlan {
        let ts = sym_timestamp();
        let mut attrs = Vec::new();
        let mut mask = Vec::new();
        let push = |attrs: &mut Vec<Symbol>, mask: &mut Vec<bool>, sym: Symbol, keep: bool| {
            let emit = keep && !attrs.contains(&sym);
            if emit {
                attrs.push(sym);
            }
            mask.push(emit);
        };
        for (alias, t) in self.joined.parts() {
            push(&mut attrs, &mut mask, Symbol::dotted(alias, ts), true);
            for &attr in t.schema().attrs() {
                let keep = projection.keeps(alias, attr);
                push(&mut attrs, &mut mask, Symbol::dotted(alias, attr), keep);
            }
        }
        ProjPlan { schema: Schema::intern(&attrs), mask: mask.into() }
    }

    fn apply_plan(&self, plan: &ProjPlan, result_stream: impl Into<Symbol>) -> Tuple {
        let mut values = Vec::with_capacity(plan.schema.len());
        let mut keep = plan.mask.iter();
        for (_, t) in self.joined.parts() {
            if *keep.next().expect("mask covers all columns") {
                values.push(Scalar::Int(t.timestamp));
            }
            for v in t.values() {
                if *keep.next().expect("mask covers all columns") {
                    values.push(v.clone());
                }
            }
        }
        Tuple::from_parts(result_stream, self.joined.timestamp(), Arc::clone(&plan.schema), values)
    }
}

/// Projected-schema cache key: projection id + per-part (alias, schema id).
type ProjKey = (u64, Vec<(Symbol, u32)>);

/// Cached projection plan: the output schema plus an emit-mask over the
/// concatenated `[timestamp, attrs…]` column stream of all parts.
#[derive(Clone)]
struct ProjPlan {
    schema: Arc<Schema>,
    mask: Arc<[bool]>,
}

/// Per-thread plan-cache bound; far above any steady-state working set.
const PLAN_CACHE_LIMIT: usize = 4096;

thread_local! {
    static PROJECTED_SCHEMAS: RefCell<HashMap<ProjKey, ProjPlan>> = RefCell::new(HashMap::new());
}

/// Execution counters for load estimation (§3.8 collects "the average CPU
/// time that each of its running queries consumes"; we expose probe/emit
/// counts as the deterministic analogue).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tuples accepted into windows (passed selection).
    pub ingested: u64,
    /// Join combinations examined.
    pub probes: u64,
    /// Results emitted.
    pub emitted: u64,
    /// Tuples rejected by pushed-down selections.
    pub filtered: u64,
}

/// A compiled continuous query: names resolved to symbols, predicates
/// compiled, so the per-tuple path never touches a string.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    id: QueryId,
    query: Query,
    /// Window width (ms) per relation; `None` = unbounded.
    widths: Vec<Option<i64>>,
    /// Interned relation aliases, in `FROM` order.
    aliases: Vec<Symbol>,
    /// Pushed-down selection predicates per relation, symbol-compiled.
    selections: Vec<Vec<CompiledPredicate>>,
    /// Join (and any other multi-relation) predicates, symbol-compiled.
    cross: Vec<CompiledPredicate>,
    /// Window buffers per relation, timestamp-ordered.
    buffers: Vec<VecDeque<Arc<Tuple>>>,
    stats: EngineStats,
}

impl CompiledQuery {
    /// Compiles `query` for execution.
    ///
    /// # Panics
    ///
    /// Panics if the query is not well-formed.
    pub fn compile(id: QueryId, query: Query) -> Self {
        assert!(query.is_well_formed(), "query {id} is not well-formed");
        assert!(
            !query.has_aggregates(),
            "query {id} contains aggregates; use cosmos_engine::aggregate::AggregateQuery"
        );
        let n = query.relations.len();
        let widths =
            query.relations.iter().map(|r| r.window.width_ms().map(|w| w as i64)).collect();
        let aliases: Vec<Symbol> =
            query.relations.iter().map(|r| Symbol::intern(&r.alias)).collect();
        let mut selections = vec![Vec::new(); n];
        let mut cross = Vec::new();
        for p in &query.predicates {
            match p {
                cosmos_query::Predicate::Cmp { attr, .. } => {
                    let idx = query
                        .relations
                        .iter()
                        .position(|r| r.alias == attr.relation)
                        .expect("well-formed query has known aliases");
                    selections[idx].push(CompiledPredicate::compile(p));
                }
                _ => cross.push(CompiledPredicate::compile(p)),
            }
        }
        Self {
            id,
            query,
            widths,
            aliases,
            selections,
            cross,
            buffers: vec![VecDeque::new(); n],
            stats: EngineStats::default(),
        }
    }

    /// The query's identifier.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The source query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Execution counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Positions of relations reading `stream`.
    #[allow(dead_code)]
    fn relations_for(&self, stream: &str) -> Vec<usize> {
        self.query
            .relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.stream == stream)
            .map(|(i, _)| i)
            .collect()
    }

    fn prune(&mut self, now: i64) {
        for (i, buf) in self.buffers.iter_mut().enumerate() {
            if let Some(w) = self.widths[i] {
                while let Some(front) = buf.front() {
                    if front.timestamp < now - w {
                        buf.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Feeds one tuple into relation `rel_idx`, returning emitted results.
    fn push_at(&mut self, rel_idx: usize, tuple: Arc<Tuple>, out: &mut Vec<ResultTuple>) {
        let now = tuple.timestamp;
        self.prune(now);
        // Pushed-down selection: reject before the tuple enters the window.
        let alias = self.aliases[rel_idx];
        let probe_view = SingleView { alias, tuple: &tuple };
        if !eval_compiled(&self.selections[rel_idx], &probe_view) {
            self.stats.filtered += 1;
            return;
        }
        self.stats.ingested += 1;

        // Probe: all combinations of other relations' windows.
        let n = self.buffers.len();
        if n == 1 {
            self.stats.probes += 1;
            self.stats.emitted += 1;
            out.push(ResultTuple {
                query: self.id,
                joined: JoinedTuple::new(vec![(alias, tuple.clone())]),
            });
        } else {
            let mut combo: Vec<Option<Arc<Tuple>>> = vec![None; n];
            combo[rel_idx] = Some(tuple.clone());
            self.probe_recursive(0, rel_idx, now, &mut combo, out);
        }
        self.buffers[rel_idx].push_back(tuple);
    }

    fn probe_recursive(
        &mut self,
        rel: usize,
        arriving: usize,
        now: i64,
        combo: &mut Vec<Option<Arc<Tuple>>>,
        out: &mut Vec<ResultTuple>,
    ) {
        let n = self.buffers.len();
        if rel == n {
            self.stats.probes += 1;
            let parts: Vec<(Symbol, Arc<Tuple>)> = combo
                .iter()
                .enumerate()
                .map(|(i, t)| (self.aliases[i], t.clone().expect("combo complete")))
                .collect();
            let joined = JoinedTuple::new(parts);
            if eval_compiled(&self.cross, &joined) {
                self.stats.emitted += 1;
                out.push(ResultTuple { query: self.id, joined });
            }
            return;
        }
        if rel == arriving {
            self.probe_recursive(rel + 1, arriving, now, combo, out);
            return;
        }
        // Iterate a snapshot of indices; buffer content is not mutated
        // during probing.
        for k in 0..self.buffers[rel].len() {
            let cand = self.buffers[rel][k].clone();
            // Window check relative to the arriving tuple's time.
            if let Some(w) = self.widths[rel] {
                if cand.timestamp < now - w {
                    continue;
                }
            }
            // Emit-once rule: the arriving tuple must be the latest of the
            // combination; ties broken by relation position.
            if cand.timestamp > now || (cand.timestamp == now && rel > arriving) {
                continue;
            }
            combo[rel] = Some(cand);
            self.probe_recursive(rel + 1, arriving, now, combo, out);
            combo[rel] = None;
        }
    }
}

/// Evaluates single-relation predicates against a lone tuple under an
/// alias. Shared by the SPJ and aggregate engines.
pub(crate) struct SingleView<'a> {
    pub(crate) alias: Symbol,
    pub(crate) tuple: &'a Tuple,
}

impl SymSource for SingleView<'_> {
    #[inline]
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
        if rel != self.alias {
            return None;
        }
        self.tuple.get_sym(attr).map(Into::into)
    }

    #[inline]
    fn timestamp(&self, rel: Symbol) -> Option<i64> {
        (rel == self.alias).then_some(self.tuple.timestamp)
    }
}

/// Hosts many continuous queries; routes arriving tuples by stream name.
///
/// See the crate-level example.
#[derive(Debug, Default)]
pub struct StreamEngine {
    queries: Vec<CompiledQuery>,
    /// stream symbol → (query index, relation index) feeds.
    feeds: HashMap<Symbol, Vec<(usize, usize)>>,
}

impl StreamEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query.
    ///
    /// # Panics
    ///
    /// Panics if the query is not well-formed.
    pub fn add_query(&mut self, id: QueryId, query: Query) {
        let compiled = CompiledQuery::compile(id, query);
        let qi = self.queries.len();
        for (ri, rel) in compiled.query.relations.iter().enumerate() {
            self.feeds.entry(Symbol::intern(&rel.stream)).or_default().push((qi, ri));
        }
        self.queries.push(compiled);
    }

    /// Removes a query (its window state is dropped).
    pub fn remove_query(&mut self, id: QueryId) {
        if let Some(pos) = self.queries.iter().position(|q| q.id == id) {
            self.queries.remove(pos);
            self.feeds.clear();
            for (qi, q) in self.queries.iter().enumerate() {
                for (ri, rel) in q.query.relations.iter().enumerate() {
                    self.feeds.entry(Symbol::intern(&rel.stream)).or_default().push((qi, ri));
                }
            }
        }
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Pushes one tuple, returning all results it triggers.
    pub fn push(&mut self, tuple: Tuple) -> Vec<ResultTuple> {
        let mut out = Vec::new();
        let shared = Arc::new(tuple);
        if let Some(feeds) = self.feeds.get(&shared.stream).cloned() {
            for (qi, ri) in feeds {
                self.queries[qi].push_at(ri, shared.clone(), &mut out);
            }
        }
        out
    }

    /// The compiled query with id `id`, if registered.
    pub fn query(&self, id: QueryId) -> Option<&CompiledQuery> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// Aggregate statistics over all queries.
    pub fn total_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for q in &self.queries {
            total.ingested += q.stats.ingested;
            total.probes += q.stats.probes;
            total.emitted += q.stats.emitted;
            total.filtered += q.stats.filtered;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::parse_query;

    fn engine_with(src: &str) -> StreamEngine {
        let mut e = StreamEngine::new();
        e.add_query(QueryId(1), parse_query(src).unwrap());
        e
    }

    fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
        let mut tup = Tuple::new(stream, ts);
        for (k, v) in kv {
            tup = tup.with(*k, Scalar::Int(*v));
        }
        tup
    }

    #[test]
    fn selection_only_query() {
        let mut e = engine_with("SELECT * FROM R [Now] WHERE R.a > 10");
        assert_eq!(e.push(t("R", 0, &[("a", 15)])).len(), 1);
        assert_eq!(e.push(t("R", 1, &[("a", 5)])).len(), 0);
        let stats = e.total_stats();
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.emitted, 1);
    }

    #[test]
    fn window_join_within_range() {
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1)]));
        e.push(t("R", 5_000, &[("k", 1)]));
        // S arrives at 8s: both R tuples are within 10s.
        let out = e.push(t("S", 8_000, &[("k", 1)]));
        assert_eq!(out.len(), 2);
        // S arrives at 12s: only the R@5s tuple remains in window.
        let out = e.push(t("S", 12_000, &[("k", 1)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].joined.part("R").unwrap().timestamp, 5_000);
    }

    #[test]
    fn join_key_mismatch_produces_nothing() {
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1)]));
        assert_eq!(e.push(t("S", 1_000, &[("k", 2)])).len(), 0);
    }

    #[test]
    fn now_window_joins_only_simultaneous() {
        let mut e = engine_with("SELECT * FROM R [Now], S [Now] WHERE R.k = S.k");
        e.push(t("R", 1_000, &[("k", 1)]));
        // Same timestamp: joins.
        assert_eq!(e.push(t("S", 1_000, &[("k", 1)])).len(), 1);
        // Later: R@1s expired from [Now] window.
        assert_eq!(e.push(t("S", 2_000, &[("k", 1)])).len(), 0);
    }

    #[test]
    fn each_pair_emitted_exactly_once() {
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute], S [Range 1 Minute] WHERE R.k = S.k");
        let mut total = 0;
        total += e.push(t("R", 0, &[("k", 1)])).len();
        total += e.push(t("S", 0, &[("k", 1)])).len(); // pair (R@0, S@0)
        total += e.push(t("R", 1_000, &[("k", 1)])).len(); // pair (R@1, S@0)
        total += e.push(t("S", 2_000, &[("k", 1)])).len(); // pairs with R@0, R@1
        assert_eq!(total, 4);
    }

    #[test]
    fn selection_pushdown_blocks_window_entry() {
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k AND R.a > 10");
        e.push(t("R", 0, &[("k", 1), ("a", 5)])); // filtered out
        assert_eq!(e.push(t("S", 1_000, &[("k", 1)])).len(), 0);
        e.push(t("R", 2_000, &[("k", 1), ("a", 20)]));
        assert_eq!(e.push(t("S", 3_000, &[("k", 1)])).len(), 1);
        assert_eq!(e.query(QueryId(1)).unwrap().stats().filtered, 1);
    }

    #[test]
    fn three_way_join() {
        let mut e = engine_with(
            "SELECT * FROM A [Range 1 Minute], B [Range 1 Minute], C [Now] \
             WHERE A.k = B.k AND B.k = C.k",
        );
        e.push(t("A", 0, &[("k", 7)]));
        e.push(t("B", 1_000, &[("k", 7)]));
        let out = e.push(t("C", 2_000, &[("k", 7)]));
        assert_eq!(out.len(), 1);
        let j = &out[0].joined;
        assert_eq!(j.part("A").unwrap().timestamp, 0);
        assert_eq!(j.part("B").unwrap().timestamp, 1_000);
        assert_eq!(j.part("C").unwrap().timestamp, 2_000);
    }

    #[test]
    fn inequality_join_predicate() {
        let mut e = engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.v > S.v");
        e.push(t("R", 0, &[("v", 10)]));
        assert_eq!(e.push(t("S", 1_000, &[("v", 5)])).len(), 1);
        assert_eq!(e.push(t("S", 2_000, &[("v", 15)])).len(), 0);
    }

    #[test]
    fn self_stream_two_relations() {
        // Same stream twice under different aliases.
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute] A, R [Range 1 Minute] B WHERE A.v < B.v");
        e.push(t("R", 0, &[("v", 1)]));
        let out = e.push(t("R", 1_000, &[("v", 2)]));
        // A@0 (v=1) < B@1s (v=2): one pair. The reverse has v 2 < 1: no.
        // Self-pair at same timestamp checked once in each role: v<v false.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn projection_of_results() {
        let mut e = engine_with("SELECT R.v FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1), ("v", 42), ("x", 9)]));
        let out = e.push(t("S", 500, &[("k", 1), ("y", 3)]));
        let projected = out[0].project(
            &parse_query("SELECT R.v FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k")
                .unwrap()
                .projection,
            "res",
        );
        assert_eq!(projected.get("R.v"), Some(&Scalar::Int(42)));
        assert_eq!(projected.get("R.x"), None);
        assert_eq!(projected.get("S.y"), None);
        // Component timestamps always retained.
        assert_eq!(projected.get("R.timestamp"), Some(&Scalar::Int(0)));
    }

    #[test]
    fn unrelated_stream_is_ignored() {
        let mut e = engine_with("SELECT * FROM R [Now]");
        assert_eq!(e.push(t("Z", 0, &[])).len(), 0);
    }

    #[test]
    fn remove_query_stops_results() {
        let mut e = engine_with("SELECT * FROM R [Now]");
        assert_eq!(e.push(t("R", 0, &[])).len(), 1);
        e.remove_query(QueryId(1));
        assert_eq!(e.push(t("R", 1, &[])).len(), 0);
        assert_eq!(e.query_count(), 0);
    }

    #[test]
    fn multiple_queries_share_input() {
        let mut e = StreamEngine::new();
        e.add_query(QueryId(1), parse_query("SELECT * FROM R [Now] WHERE R.a > 10").unwrap());
        e.add_query(QueryId(2), parse_query("SELECT * FROM R [Now] WHERE R.a > 20").unwrap());
        let out = e.push(t("R", 0, &[("a", 15)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query, QueryId(1));
        let out = e.push(t("R", 1, &[("a", 25)]));
        assert_eq!(out.len(), 2);
    }
}
