//! Compiled continuous queries and the multi-query engine.
//!
//! Each query compiles to per-relation window buffers with pushed-down
//! selection predicates (early filtering — tuples failing their relation's
//! selections never enter a window) and an event-driven probe: when a tuple
//! arrives on relation `i`, it is combined with every window combination of
//! the other relations; combinations passing the join predicates are
//! emitted. A pair is emitted exactly once — when its *later* tuple arrives
//! (ties broken by relation position).

use crate::tuple::{JoinedTuple, Tuple};
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, Operand, ScalarRef, SymSource};
use cosmos_query::{ProjItem, Query, QueryId, Scalar};
use cosmos_util::intern::{sym_timestamp, Schema, Symbol};
use cosmos_util::PlanCache;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A projection list with aliases and attributes resolved to symbols once,
/// so applying it to a result tuple compares integers only.
#[derive(Debug, Clone)]
pub struct CompiledProjection {
    /// Unique per compilation; keys the projected-schema cache. `u64` so
    /// the per-call compat shim can never wrap it into an alias.
    id: u64,
    items: Vec<ProjSym>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProjSym {
    All,
    AllOf(Symbol),
    Attr(Symbol, Symbol),
}

impl CompiledProjection {
    /// Resolves a projection list. Aggregate items are skipped — they are
    /// evaluated by the `AggregateEngine`, never by SPJ projection.
    pub fn compile(items: &[ProjItem]) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let items = items
            .iter()
            .filter_map(|item| match item {
                ProjItem::All => Some(ProjSym::All),
                ProjItem::AllOf(a) => Some(ProjSym::AllOf(Symbol::intern(a))),
                ProjItem::Attr(ar) => {
                    Some(ProjSym::Attr(Symbol::intern(&ar.relation), Symbol::intern(&ar.attr)))
                }
                ProjItem::Agg { .. } => None,
            })
            .collect();
        Self { id, items }
    }

    /// Structural equality of the resolved items. Ids are minted per
    /// compilation, so identity cannot detect that two members asked for
    /// the same columns — class grouping compares the items themselves.
    pub(crate) fn same_items(&self, other: &Self) -> bool {
        self.items == other.items
    }

    #[inline]
    fn keeps(&self, alias: Symbol, attr: Symbol) -> bool {
        self.items.iter().any(|item| match item {
            ProjSym::All => true,
            ProjSym::AllOf(a) => *a == alias,
            ProjSym::Attr(a, at) => *a == alias && *at == attr,
        })
    }
}

/// One emitted result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTuple {
    /// The query that produced the result.
    pub query: QueryId,
    /// The joined source tuples.
    pub joined: JoinedTuple,
}

impl ResultTuple {
    /// Applies the producing query's projection, flattening to a tuple on
    /// `result_stream` with `alias.attr` names. Component timestamps are
    /// always retained (`alias.timestamp`) so residual filters downstream
    /// can re-check window bounds.
    ///
    /// Compat shim: compiles `projection` on the fly (uncached — each call
    /// gets a fresh compilation, so it deliberately bypasses the plan
    /// cache). Callers on the hot path should compile once and use
    /// [`ResultTuple::project_compiled`].
    pub fn project(&self, projection: &[ProjItem], result_stream: &str) -> Tuple {
        let plan = self.build_plan(&CompiledProjection::compile(projection));
        self.apply_plan(&plan, result_stream)
    }

    /// [`ResultTuple::project`] with a precompiled projection — symbol
    /// compares, scalar copies, and one small cache-key allocation; no
    /// string allocation. The output schema is determined by
    /// `(projection, part aliases, part schemas)` and cached per thread,
    /// so repeat shapes skip the schema interner.
    /// Colliding output names (e.g. a stored `timestamp` attribute) keep
    /// their first occurrence, matching the legacy shadowing behaviour.
    pub fn project_compiled(
        &self,
        projection: &CompiledProjection,
        result_stream: impl Into<Symbol>,
    ) -> Tuple {
        let key: ProjKey =
            (projection.id, self.joined.parts().map(|(a, t)| (a, t.schema().id())).collect());
        let plan = PROJECTED_SCHEMAS.with_borrow_mut(|cache| {
            // Ids are minted per compilation, so entries for dropped
            // projections (e.g. SharedEngine rebuilds) would otherwise
            // accumulate; a periodic clear bounds per-thread memory.
            if cache.len() > PLAN_CACHE_LIMIT {
                cache.clear();
            }
            cache.entry(key).or_insert_with(|| self.build_plan(projection)).clone()
        });
        self.apply_plan(&plan, result_stream)
    }

    /// [`ResultTuple::project_compiled`] with an owner-attached plan cache
    /// (one cache per projection — part shapes key the lookup, the
    /// projection's identity is implicit). The steady-state path compares
    /// part shapes against stored keys directly and copies scalars only:
    /// no cache-key allocation, no thread-local map probe.
    pub fn project_cached(
        &self,
        projection: &CompiledProjection,
        cache: &mut ProjPlanCache,
        result_stream: impl Into<Symbol>,
    ) -> Tuple {
        let plan = cache.plans.get_or_insert_with(
            |key| {
                key.len() == self.joined.parts().count()
                    && key
                        .iter()
                        .zip(self.joined.parts())
                        .all(|(&(ka, ks), (pa, pt))| ka == pa && ks == pt.schema().id())
            },
            || self.joined.parts().map(|(a, t)| (a, t.schema().id())).collect(),
            || self.build_plan(projection),
        );
        self.apply_plan(plan, result_stream)
    }

    /// Builds the projection plan for this result's part shapes:
    /// the output schema and an emit-mask over the concatenated
    /// `[timestamp, attrs…]` column stream of all parts. Colliding names
    /// keep their first occurrence (legacy shadowing behaviour).
    fn build_plan(&self, projection: &CompiledProjection) -> ProjPlan {
        let ts = sym_timestamp();
        let mut attrs = Vec::new();
        let mut mask = Vec::new();
        let push = |attrs: &mut Vec<Symbol>, mask: &mut Vec<bool>, sym: Symbol, keep: bool| {
            let emit = keep && !attrs.contains(&sym);
            if emit {
                attrs.push(sym);
            }
            mask.push(emit);
        };
        for (alias, t) in self.joined.parts() {
            push(&mut attrs, &mut mask, Symbol::dotted(alias, ts), true);
            for &attr in t.schema().attrs() {
                let keep = projection.keeps(alias, attr);
                push(&mut attrs, &mut mask, Symbol::dotted(alias, attr), keep);
            }
        }
        ProjPlan { schema: Schema::intern(&attrs), mask: mask.into() }
    }

    fn apply_plan(&self, plan: &ProjPlan, result_stream: impl Into<Symbol>) -> Tuple {
        Tuple::build(result_stream, self.joined.timestamp(), Arc::clone(&plan.schema), |values| {
            let mut keep = plan.mask.iter();
            for (_, t) in self.joined.parts() {
                if *keep.next().expect("mask covers all columns") {
                    values.push(Scalar::Int(t.timestamp));
                }
                for v in t.values() {
                    if *keep.next().expect("mask covers all columns") {
                        values.push(v.clone());
                    }
                }
            }
        })
    }
}

/// Projected-schema cache key: projection id + per-part (alias, schema id).
type ProjKey = (u64, Vec<(Symbol, u32)>);

/// Cached projection plan: the output schema plus an emit-mask over the
/// concatenated `[timestamp, attrs…]` column stream of all parts.
#[derive(Debug, Clone)]
struct ProjPlan {
    schema: Arc<Schema>,
    mask: Arc<[bool]>,
}

/// Part-shape key of an owner-attached plan: `(alias, schema id)` pairs.
type PartShapeKey = Box<[(Symbol, u32)]>;

/// An owner-attached projection plan cache for one [`CompiledProjection`]
/// (see [`ResultTuple::project_cached`]): hang it off whatever owns the
/// projection — a compiled residual, a route entry — so repeat shapes
/// never allocate a cache key.
#[derive(Debug, Default)]
pub struct ProjPlanCache {
    plans: PlanCache<PartShapeKey, ProjPlan>,
}

impl ProjPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-thread plan-cache bound; far above any steady-state working set.
const PLAN_CACHE_LIMIT: usize = 4096;

thread_local! {
    static PROJECTED_SCHEMAS: RefCell<HashMap<ProjKey, ProjPlan>> = RefCell::new(HashMap::new());
}

/// Execution counters for load estimation (§3.8 collects "the average CPU
/// time that each of its running queries consumes"; we expose probe/emit
/// counts as the deterministic analogue).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tuples accepted into windows (passed selection).
    pub ingested: u64,
    /// Join combinations materialized (candidates skipped by the equi-join
    /// hash index never count — they are never formed).
    pub probes: u64,
    /// Results emitted.
    pub emitted: u64,
    /// Tuples rejected by pushed-down selections.
    pub filtered: u64,
}

/// A hashable view of an equi-join key value. Numeric values normalize
/// through `f64` bits (with `-0.0` collapsed onto `0.0`), matching
/// [`compare_ref`]'s equality semantics exactly: `Int(5)` and `Float(5.0)`
/// are the same key because `5 = 5.0` evaluates true. `NaN` has no key —
/// it is equal to nothing, so an un-indexed NaN tuple is correct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Num(u64),
    Str(String),
}

fn join_key(v: &Scalar) -> Option<JoinKey> {
    match v {
        Scalar::Int(i) => Some(JoinKey::Num((*i as f64).to_bits())),
        Scalar::Float(f) if f.is_nan() => None,
        Scalar::Float(f) => Some(JoinKey::Num((if *f == 0.0 { 0.0 } else { *f }).to_bits())),
        Scalar::Str(s) => Some(JoinKey::Str(s.clone())),
    }
}

/// One equi-join constraint usable as a probe fast path: this relation's
/// `attr` must equal `other`'s `other_attr`.
#[derive(Debug, Clone)]
struct EquiConstraint {
    attr: Symbol,
    other: usize,
    other_attr: Symbol,
}

/// Buffer size at which the key index switches on: below it, a linear
/// scan is cheaper than maintaining hash buckets (small and `[Now]`
/// windows churn tuples constantly — per-tuple bucket upkeep would cost
/// more than it saves).
const INDEX_ACTIVATION: usize = 16;

/// A window buffer with a lazily-activated `(join attr, key value)` hash
/// index over the attributes that participate in equi-join predicates:
/// once the buffer outgrows [`INDEX_ACTIVATION`], probing binds only
/// candidates that can satisfy the join key instead of scanning (and
/// `Arc`-cloning into) every buffered tuple.
#[derive(Debug, Clone, Default)]
pub(crate) struct WindowBuffer {
    queue: VecDeque<Arc<Tuple>>,
    /// `(attr, key)` → tuples in arrival (= timestamp) order. Populated
    /// only while `active`.
    buckets: HashMap<(Symbol, JoinKey), VecDeque<Arc<Tuple>>>,
    /// Attributes of this relation appearing in equi-join predicates.
    indexed_attrs: Vec<Symbol>,
    /// Whether the key index is live (sticky once activated).
    active: bool,
}

impl WindowBuffer {
    fn new(indexed_attrs: Vec<Symbol>) -> Self {
        Self { queue: VecDeque::new(), buckets: HashMap::new(), indexed_attrs, active: false }
    }

    fn index_tuple(
        buckets: &mut HashMap<(Symbol, JoinKey), VecDeque<Arc<Tuple>>>,
        indexed_attrs: &[Symbol],
        tuple: &Arc<Tuple>,
    ) {
        for &attr in indexed_attrs {
            if let Some(key) = tuple.get_sym(attr).and_then(join_key) {
                buckets.entry((attr, key)).or_default().push_back(tuple.clone());
            }
        }
    }

    fn push(&mut self, tuple: Arc<Tuple>) {
        if self.active {
            Self::index_tuple(&mut self.buckets, &self.indexed_attrs, &tuple);
        }
        self.queue.push_back(tuple);
        if !self.active && !self.indexed_attrs.is_empty() && self.queue.len() >= INDEX_ACTIVATION {
            self.active = true;
            for t in &self.queue {
                Self::index_tuple(&mut self.buckets, &self.indexed_attrs, t);
            }
        }
    }

    /// Checkpoint extraction: the arrival-ordered window contents plus the
    /// sticky index-activation flag. Together with the compiled query (which
    /// callers rebuild from its source [`Query`]) this is the buffer's
    /// complete observable state — `active` must travel with the tuples
    /// because probing through buckets vs. the linear queue materializes
    /// different candidate counts ([`EngineStats::probes`] is observable).
    pub(crate) fn snapshot(&self) -> (Vec<Arc<Tuple>>, bool) {
        (self.queue.iter().cloned().collect(), self.active)
    }

    /// Checkpoint restore: replaces the window contents and index flag,
    /// rebuilding the key buckets from the arrival-ordered tuples (bucket
    /// order is derived, so the rebuild is deterministic).
    pub(crate) fn restore(&mut self, tuples: Vec<Arc<Tuple>>, active: bool) {
        self.queue = tuples.into();
        self.buckets.clear();
        self.active = active;
        if self.active {
            for t in &self.queue {
                Self::index_tuple(&mut self.buckets, &self.indexed_attrs, t);
            }
        }
    }

    /// Drops tuples older than `cutoff`. Bucket fronts mirror the queue
    /// front (both are arrival-ordered), so each removal is O(1).
    fn prune(&mut self, cutoff: i64) {
        while let Some(front) = self.queue.front() {
            if front.timestamp >= cutoff {
                break;
            }
            let tuple = self.queue.pop_front().expect("front exists");
            if !self.active {
                continue;
            }
            for &attr in &self.indexed_attrs {
                if let Some(key) = tuple.get_sym(attr).and_then(join_key) {
                    if let std::collections::hash_map::Entry::Occupied(mut e) =
                        self.buckets.entry((attr, key))
                    {
                        e.get_mut().pop_front();
                        if e.get().is_empty() {
                            e.remove();
                        }
                    }
                }
            }
        }
    }
}

/// A compiled continuous query: names resolved to symbols, predicates
/// compiled, so the per-tuple path never touches a string.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    id: QueryId,
    query: Query,
    /// Window width (ms) per relation; `None` = unbounded.
    widths: Vec<Option<i64>>,
    /// Interned relation aliases, in `FROM` order.
    aliases: Vec<Symbol>,
    /// Pushed-down selection predicates per relation, symbol-compiled.
    selections: Vec<Vec<CompiledPredicate>>,
    /// Join (and any other multi-relation) predicates, symbol-compiled.
    cross: Vec<CompiledPredicate>,
    /// Per relation: equi-join constraints usable as probe fast paths.
    equi: Vec<Vec<EquiConstraint>>,
    /// Window buffers per relation, timestamp-ordered and key-indexed.
    buffers: Vec<WindowBuffer>,
    stats: EngineStats,
}

impl CompiledQuery {
    /// Compiles `query` for execution.
    ///
    /// # Panics
    ///
    /// Panics if the query is not well-formed.
    pub fn compile(id: QueryId, query: Query) -> Self {
        assert!(query.is_well_formed(), "query {id} is not well-formed");
        assert!(
            !query.has_aggregates(),
            "query {id} contains aggregates; use cosmos_engine::aggregate::AggregateQuery"
        );
        let n = query.relations.len();
        let widths =
            query.relations.iter().map(|r| r.window.width_ms().map(|w| w as i64)).collect();
        let aliases: Vec<Symbol> =
            query.relations.iter().map(|r| Symbol::intern(&r.alias)).collect();
        let mut selections = vec![Vec::new(); n];
        let mut cross = Vec::new();
        for p in &query.predicates {
            match p {
                cosmos_query::Predicate::Cmp { attr, .. } => {
                    let idx = query
                        .relations
                        .iter()
                        .position(|r| r.alias == attr.relation)
                        .expect("well-formed query has known aliases");
                    selections[idx].push(CompiledPredicate::compile(p));
                }
                _ => cross.push(CompiledPredicate::compile(p)),
            }
        }
        // Equality joins between stored attributes become probe fast
        // paths: each side's buffer indexes the join attribute.
        let mut equi: Vec<Vec<EquiConstraint>> = vec![Vec::new(); n];
        for p in &cross {
            let CompiledPredicate::JoinCmp {
                left: Operand::Attr { rel: lr, attr: la },
                op: cosmos_query::CmpOp::Eq,
                right: Operand::Attr { rel: rr, attr: ra },
            } = p
            else {
                continue;
            };
            let (Some(li), Some(ri)) =
                (aliases.iter().position(|a| a == lr), aliases.iter().position(|a| a == rr))
            else {
                continue;
            };
            if li == ri {
                continue;
            }
            equi[li].push(EquiConstraint { attr: *la, other: ri, other_attr: *ra });
            equi[ri].push(EquiConstraint { attr: *ra, other: li, other_attr: *la });
        }
        let buffers = (0..n)
            .map(|i| {
                let mut attrs: Vec<Symbol> = equi[i].iter().map(|c| c.attr).collect();
                attrs.sort_unstable();
                attrs.dedup();
                WindowBuffer::new(attrs)
            })
            .collect();
        Self {
            id,
            query,
            widths,
            aliases,
            selections,
            cross,
            equi,
            buffers,
            stats: EngineStats::default(),
        }
    }

    /// The query's identifier.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The source query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Execution counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Checkpoint hooks: window buffers in relation order.
    pub(crate) fn buffers(&self) -> &[WindowBuffer] {
        &self.buffers
    }

    pub(crate) fn buffers_mut(&mut self) -> &mut [WindowBuffer] {
        &mut self.buffers
    }

    /// Checkpoint restore overwrites the counters wholesale.
    pub(crate) fn set_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    /// Positions of relations reading `stream`.
    #[allow(dead_code)]
    fn relations_for(&self, stream: &str) -> Vec<usize> {
        self.query
            .relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.stream == stream)
            .map(|(i, _)| i)
            .collect()
    }

    fn prune(&mut self, now: i64) {
        for (i, buf) in self.buffers.iter_mut().enumerate() {
            if let Some(w) = self.widths[i] {
                buf.prune(now - w);
            }
        }
    }

    /// Feeds one tuple into relation `rel_idx`, returning emitted results.
    fn push_at(&mut self, rel_idx: usize, tuple: Arc<Tuple>, out: &mut Vec<ResultTuple>) {
        let now = tuple.timestamp;
        self.prune(now);
        // Pushed-down selection: reject before the tuple enters the window.
        let alias = self.aliases[rel_idx];
        let probe_view = SingleView { alias, tuple: &tuple };
        if !eval_compiled(&self.selections[rel_idx], &probe_view) {
            self.stats.filtered += 1;
            return;
        }
        self.stats.ingested += 1;

        // Probe: all combinations of other relations' windows.
        let n = self.buffers.len();
        if n == 1 {
            self.stats.probes += 1;
            self.stats.emitted += 1;
            out.push(ResultTuple {
                query: self.id,
                joined: JoinedTuple::new(vec![(alias, tuple.clone())]),
            });
        } else {
            let mut combo: Vec<Option<Arc<Tuple>>> = vec![None; n];
            combo[rel_idx] = Some(tuple.clone());
            let mut ctx = ProbeCtx {
                id: self.id,
                buffers: &self.buffers,
                widths: &self.widths,
                aliases: &self.aliases,
                cross: &self.cross,
                equi: &self.equi,
                stats: &mut self.stats,
            };
            probe_recursive(&mut ctx, 0, rel_idx, now, &mut combo, out);
        }
        self.buffers[rel_idx].push(tuple);
    }
}

/// Borrowed probe state: buffers are shared (so candidate iterators can
/// outlive recursive calls), stats are the only mutation.
struct ProbeCtx<'a> {
    id: QueryId,
    buffers: &'a [WindowBuffer],
    widths: &'a [Option<i64>],
    aliases: &'a [Symbol],
    cross: &'a [CompiledPredicate],
    equi: &'a [Vec<EquiConstraint>],
    stats: &'a mut EngineStats,
}

fn probe_recursive(
    ctx: &mut ProbeCtx<'_>,
    rel: usize,
    arriving: usize,
    now: i64,
    combo: &mut Vec<Option<Arc<Tuple>>>,
    out: &mut Vec<ResultTuple>,
) {
    let n = ctx.buffers.len();
    if rel == n {
        ctx.stats.probes += 1;
        let parts: Vec<(Symbol, Arc<Tuple>)> = combo
            .iter()
            .enumerate()
            .map(|(i, t)| (ctx.aliases[i], t.clone().expect("combo complete")))
            .collect();
        let joined = JoinedTuple::new(parts);
        if eval_compiled(ctx.cross, &joined) {
            ctx.stats.emitted += 1;
            out.push(ResultTuple { query: ctx.id, joined });
        }
        return;
    }
    if rel == arriving {
        probe_recursive(ctx, rel + 1, arriving, now, combo, out);
        return;
    }
    // Fast path: if the buffer's key index is live and an equi-join
    // constraint links this relation to an already-bound one, probe only
    // the matching key bucket. A bound tuple missing the key attribute
    // (or carrying NaN) satisfies no equality, so there are no candidates
    // at all.
    let buffers = ctx.buffers;
    let fast = if buffers[rel].active {
        ctx.equi[rel]
            .iter()
            .find_map(|c| combo[c.other].as_ref().map(|b| (c.attr, b.get_sym(c.other_attr))))
    } else {
        None
    };
    let candidates = match fast {
        Some((attr, Some(v))) => match join_key(v) {
            Some(key) => buffers[rel].buckets.get(&(attr, key)),
            None => None,
        },
        Some((_, None)) => None,
        None => Some(&buffers[rel].queue),
    };
    let Some(candidates) = candidates else { return };
    for cand in candidates {
        // Window check relative to the arriving tuple's time.
        if let Some(w) = ctx.widths[rel] {
            if cand.timestamp < now - w {
                continue;
            }
        }
        // Emit-once rule: the arriving tuple must be the latest of the
        // combination; ties broken by relation position.
        if cand.timestamp > now || (cand.timestamp == now && rel > arriving) {
            continue;
        }
        combo[rel] = Some(cand.clone());
        probe_recursive(ctx, rel + 1, arriving, now, combo, out);
        combo[rel] = None;
    }
}

/// Evaluates single-relation predicates against a lone tuple under an
/// alias. Shared by the SPJ and aggregate engines.
pub(crate) struct SingleView<'a> {
    pub(crate) alias: Symbol,
    pub(crate) tuple: &'a Tuple,
}

impl SymSource for SingleView<'_> {
    #[inline]
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
        if rel != self.alias {
            return None;
        }
        self.tuple.get_sym(attr).map(Into::into)
    }

    #[inline]
    fn timestamp(&self, rel: Symbol) -> Option<i64> {
        (rel == self.alias).then_some(self.tuple.timestamp)
    }
}

/// Hosts many continuous queries; routes arriving tuples by stream name.
///
/// See the crate-level example.
#[derive(Debug, Default)]
pub struct StreamEngine {
    queries: Vec<CompiledQuery>,
    /// stream symbol → (query index, relation index) feeds.
    feeds: HashMap<Symbol, Vec<(usize, usize)>>,
    /// Monotone input watermark: tuples consumed via [`StreamEngine::push`]
    /// over the engine's lifetime (including tuples no query reads). The
    /// checkpoint/recovery plane keys replay on it — see
    /// [`crate::checkpoint`].
    inputs: u64,
}

impl StreamEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query.
    ///
    /// # Panics
    ///
    /// Panics if the query is not well-formed.
    pub fn add_query(&mut self, id: QueryId, query: Query) {
        let compiled = CompiledQuery::compile(id, query);
        let qi = self.queries.len();
        for (ri, rel) in compiled.query.relations.iter().enumerate() {
            self.feeds.entry(Symbol::intern(&rel.stream)).or_default().push((qi, ri));
        }
        self.queries.push(compiled);
    }

    /// Removes a query (its window state is dropped).
    pub fn remove_query(&mut self, id: QueryId) {
        if let Some(pos) = self.queries.iter().position(|q| q.id == id) {
            self.queries.remove(pos);
            self.feeds.clear();
            for (qi, q) in self.queries.iter().enumerate() {
                for (ri, rel) in q.query.relations.iter().enumerate() {
                    self.feeds.entry(Symbol::intern(&rel.stream)).or_default().push((qi, ri));
                }
            }
        }
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Pushes one tuple, returning all results it triggers.
    pub fn push(&mut self, tuple: Tuple) -> Vec<ResultTuple> {
        self.inputs += 1;
        let mut out = Vec::new();
        let shared = Arc::new(tuple);
        if let Some(feeds) = self.feeds.get(&shared.stream).cloned() {
            for (qi, ri) in feeds {
                self.queries[qi].push_at(ri, shared.clone(), &mut out);
            }
        }
        out
    }

    /// Monotone input watermark: total tuples consumed by
    /// [`StreamEngine::push`]. After `restore`, resumes from the restored
    /// checkpoint's watermark.
    pub fn watermark(&self) -> u64 {
        self.inputs
    }

    /// Checkpoint hooks: compiled queries in registration order.
    pub(crate) fn queries(&self) -> &[CompiledQuery] {
        &self.queries
    }

    pub(crate) fn queries_mut(&mut self) -> &mut [CompiledQuery] {
        &mut self.queries
    }

    pub(crate) fn set_watermark(&mut self, watermark: u64) {
        self.inputs = watermark;
    }

    /// The compiled query with id `id`, if registered.
    pub fn query(&self, id: QueryId) -> Option<&CompiledQuery> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// Aggregate statistics over all queries.
    pub fn total_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for q in &self.queries {
            total.ingested += q.stats.ingested;
            total.probes += q.stats.probes;
            total.emitted += q.stats.emitted;
            total.filtered += q.stats.filtered;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::parse_query;

    fn engine_with(src: &str) -> StreamEngine {
        let mut e = StreamEngine::new();
        e.add_query(QueryId(1), parse_query(src).unwrap());
        e
    }

    fn t(stream: &str, ts: i64, kv: &[(&str, i64)]) -> Tuple {
        let mut tup = Tuple::new(stream, ts);
        for (k, v) in kv {
            tup = tup.with(*k, Scalar::Int(*v));
        }
        tup
    }

    #[test]
    fn selection_only_query() {
        let mut e = engine_with("SELECT * FROM R [Now] WHERE R.a > 10");
        assert_eq!(e.push(t("R", 0, &[("a", 15)])).len(), 1);
        assert_eq!(e.push(t("R", 1, &[("a", 5)])).len(), 0);
        let stats = e.total_stats();
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.emitted, 1);
    }

    #[test]
    fn window_join_within_range() {
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1)]));
        e.push(t("R", 5_000, &[("k", 1)]));
        // S arrives at 8s: both R tuples are within 10s.
        let out = e.push(t("S", 8_000, &[("k", 1)]));
        assert_eq!(out.len(), 2);
        // S arrives at 12s: only the R@5s tuple remains in window.
        let out = e.push(t("S", 12_000, &[("k", 1)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].joined.part("R").unwrap().timestamp, 5_000);
    }

    #[test]
    fn join_key_mismatch_produces_nothing() {
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1)]));
        assert_eq!(e.push(t("S", 1_000, &[("k", 2)])).len(), 0);
    }

    #[test]
    fn now_window_joins_only_simultaneous() {
        let mut e = engine_with("SELECT * FROM R [Now], S [Now] WHERE R.k = S.k");
        e.push(t("R", 1_000, &[("k", 1)]));
        // Same timestamp: joins.
        assert_eq!(e.push(t("S", 1_000, &[("k", 1)])).len(), 1);
        // Later: R@1s expired from [Now] window.
        assert_eq!(e.push(t("S", 2_000, &[("k", 1)])).len(), 0);
    }

    #[test]
    fn each_pair_emitted_exactly_once() {
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute], S [Range 1 Minute] WHERE R.k = S.k");
        let mut total = 0;
        total += e.push(t("R", 0, &[("k", 1)])).len();
        total += e.push(t("S", 0, &[("k", 1)])).len(); // pair (R@0, S@0)
        total += e.push(t("R", 1_000, &[("k", 1)])).len(); // pair (R@1, S@0)
        total += e.push(t("S", 2_000, &[("k", 1)])).len(); // pairs with R@0, R@1
        assert_eq!(total, 4);
    }

    #[test]
    fn selection_pushdown_blocks_window_entry() {
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k AND R.a > 10");
        e.push(t("R", 0, &[("k", 1), ("a", 5)])); // filtered out
        assert_eq!(e.push(t("S", 1_000, &[("k", 1)])).len(), 0);
        e.push(t("R", 2_000, &[("k", 1), ("a", 20)]));
        assert_eq!(e.push(t("S", 3_000, &[("k", 1)])).len(), 1);
        assert_eq!(e.query(QueryId(1)).unwrap().stats().filtered, 1);
    }

    #[test]
    fn three_way_join() {
        let mut e = engine_with(
            "SELECT * FROM A [Range 1 Minute], B [Range 1 Minute], C [Now] \
             WHERE A.k = B.k AND B.k = C.k",
        );
        e.push(t("A", 0, &[("k", 7)]));
        e.push(t("B", 1_000, &[("k", 7)]));
        let out = e.push(t("C", 2_000, &[("k", 7)]));
        assert_eq!(out.len(), 1);
        let j = &out[0].joined;
        assert_eq!(j.part("A").unwrap().timestamp, 0);
        assert_eq!(j.part("B").unwrap().timestamp, 1_000);
        assert_eq!(j.part("C").unwrap().timestamp, 2_000);
    }

    #[test]
    fn inequality_join_predicate() {
        let mut e = engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.v > S.v");
        e.push(t("R", 0, &[("v", 10)]));
        assert_eq!(e.push(t("S", 1_000, &[("v", 5)])).len(), 1);
        assert_eq!(e.push(t("S", 2_000, &[("v", 15)])).len(), 0);
    }

    #[test]
    fn self_stream_two_relations() {
        // Same stream twice under different aliases.
        let mut e =
            engine_with("SELECT * FROM R [Range 1 Minute] A, R [Range 1 Minute] B WHERE A.v < B.v");
        e.push(t("R", 0, &[("v", 1)]));
        let out = e.push(t("R", 1_000, &[("v", 2)]));
        // A@0 (v=1) < B@1s (v=2): one pair. The reverse has v 2 < 1: no.
        // Self-pair at same timestamp checked once in each role: v<v false.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn projection_of_results() {
        let mut e = engine_with("SELECT R.v FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1), ("v", 42), ("x", 9)]));
        let out = e.push(t("S", 500, &[("k", 1), ("y", 3)]));
        let projected = out[0].project(
            &parse_query("SELECT R.v FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k")
                .unwrap()
                .projection,
            "res",
        );
        assert_eq!(projected.get("R.v"), Some(&Scalar::Int(42)));
        assert_eq!(projected.get("R.x"), None);
        assert_eq!(projected.get("S.y"), None);
        // Component timestamps always retained.
        assert_eq!(projected.get("R.timestamp"), Some(&Scalar::Int(0)));
    }

    #[test]
    fn unrelated_stream_is_ignored() {
        let mut e = engine_with("SELECT * FROM R [Now]");
        assert_eq!(e.push(t("Z", 0, &[])).len(), 0);
    }

    #[test]
    fn remove_query_stops_results() {
        let mut e = engine_with("SELECT * FROM R [Now]");
        assert_eq!(e.push(t("R", 0, &[])).len(), 1);
        e.remove_query(QueryId(1));
        assert_eq!(e.push(t("R", 1, &[])).len(), 0);
        assert_eq!(e.query_count(), 0);
    }

    #[test]
    fn equi_index_joins_int_and_float_keys() {
        // compare_ref says Int(1) = Float(1.0); the key index must agree.
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(Tuple::new("R", 0).with("k", Scalar::Float(1.0)));
        e.push(Tuple::new("R", 100).with("k", Scalar::Float(-0.0)));
        assert_eq!(e.push(t("S", 1_000, &[("k", 1)])).len(), 1);
        assert_eq!(e.push(Tuple::new("S", 2_000).with("k", Scalar::Float(0.0))).len(), 1);
    }

    #[test]
    fn equi_index_skips_non_matching_candidates() {
        let mut e = engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.k = S.k");
        for i in 0..50 {
            e.push(t("R", i, &[("k", i % 10)]));
        }
        let out = e.push(t("S", 1_000, &[("k", 3)]));
        assert_eq!(out.len(), 5);
        // Probes count only materialized combinations: 5 candidates from
        // the key bucket (plus 50 single-relation ingests probed nothing).
        assert_eq!(e.total_stats().probes, 5);
    }

    #[test]
    fn equi_index_survives_window_pruning() {
        let mut e = engine_with("SELECT * FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k");
        e.push(t("R", 0, &[("k", 1)]));
        e.push(t("R", 5_000, &[("k", 1)]));
        e.push(t("R", 11_000, &[("k", 1)]));
        // R@0 expired; the bucket must have dropped it too.
        let out = e.push(t("S", 12_000, &[("k", 1)]));
        assert_eq!(out.len(), 2);
        let times: Vec<i64> = out.iter().map(|r| r.joined.part("R").unwrap().timestamp).collect();
        assert_eq!(times, vec![5_000, 11_000]);
    }

    #[test]
    fn string_join_keys_use_the_index() {
        let mut e = engine_with("SELECT * FROM R [Range 1 Minute], S [Now] WHERE R.name = S.name");
        e.push(Tuple::new("R", 0).with("name", Scalar::Str("a".into())));
        e.push(Tuple::new("R", 1).with("name", Scalar::Str("b".into())));
        let out = e.push(Tuple::new("S", 1_000).with("name", Scalar::Str("b".into())));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].joined.part("R").unwrap().timestamp, 1);
    }

    #[test]
    fn indexed_probe_equals_full_scan_on_mixed_predicates() {
        // Differential test: `A.k = B.k` is rewritten for the reference
        // engine as `A.k <= B.k AND A.k >= B.k` — semantically identical,
        // but never recognized as an equi-join, so the reference always
        // probes by full window scan. Both engines must emit exactly the
        // same results in the same order; a bucket-index bug that drops
        // valid candidates diverges here.
        let mut indexed = engine_with(
            "SELECT * FROM A [Range 1 Minute], B [Range 1 Minute], C [Now] \
             WHERE A.k = B.k AND B.v < C.v",
        );
        let mut reference = engine_with(
            "SELECT * FROM A [Range 1 Minute], B [Range 1 Minute], C [Now] \
             WHERE A.k <= B.k AND A.k >= B.k AND B.v < C.v",
        );
        let mut indexed_out = Vec::new();
        let mut reference_out = Vec::new();
        for i in 0..30i64 {
            for tup in [
                t("A", i * 100, &[("k", i % 4), ("v", i)]),
                t("B", i * 100 + 10, &[("k", i % 3), ("v", i % 7)]),
                t("C", i * 100 + 20, &[("k", i % 5), ("v", 5)]),
            ] {
                indexed_out.extend(indexed.push(tup.clone()).into_iter().map(|r| r.joined));
                reference_out.extend(reference.push(tup).into_iter().map(|r| r.joined));
            }
        }
        assert!(!indexed_out.is_empty(), "workload must produce joins");
        assert_eq!(indexed_out, reference_out);
    }

    #[test]
    fn multiple_queries_share_input() {
        let mut e = StreamEngine::new();
        e.add_query(QueryId(1), parse_query("SELECT * FROM R [Now] WHERE R.a > 10").unwrap());
        e.add_query(QueryId(2), parse_query("SELECT * FROM R [Now] WHERE R.a > 20").unwrap());
        let out = e.push(t("R", 0, &[("a", 15)]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query, QueryId(1));
        let out = e.push(t("R", 1, &[("a", 25)]));
        assert_eq!(out.len(), 2);
    }
}
