//! Mini continuous-query stream engine.
//!
//! The paper's prototype runs on GSN, a stream system "tailored for
//! processing data from heterogeneous sensor networks". GSN is external Java
//! software; this crate is the from-scratch substitute: a single-node engine
//! evaluating the CQL subset of [`cosmos_query`] —
//! selection/projection/sliding-window joins over timestamped tuples.
//!
//! Layers:
//!
//! - [`mod@tuple`]: timestamped tuples and joined tuples (with per-relation
//!   timestamps, so residual window filters can be re-applied downstream).
//! - [`exec`]: compiled continuous queries with pushed-down selections,
//!   per-relation window buffers, and event-driven window-join probing;
//!   plus [`exec::StreamEngine`], which hosts many queries and routes
//!   arriving tuples.
//! - [`shared`]: the §2.1 result-sharing mechanism: group mergeable queries,
//!   run one covering query per group, split the shared result stream back
//!   into per-query results with residual filters/projections. An engine
//!   invariant — shared execution produces exactly the same per-query
//!   results as independent execution — is enforced by property tests.
//! - [`checkpoint`]: operator-state extraction and restore for crash
//!   recovery — every stateful engine (SPJ windows + join indexes,
//!   aggregate windows/partials, shared groups) checkpoints against a
//!   monotone input watermark; a restored engine replayed from the
//!   watermark converges bit-for-bit to the crash-free run. The
//!   upstream-backup replay side lives in `cosmos-pubsub::recovery`.
//!
//! Tuples must arrive in non-decreasing timestamp order across all streams
//! (the usual in-order assumption; the paper's experiments satisfy it by
//! construction).
//!
//! # Examples
//!
//! ```
//! use cosmos_engine::exec::StreamEngine;
//! use cosmos_engine::tuple::Tuple;
//! use cosmos_query::{parse_query, QueryId, Scalar};
//!
//! let mut engine = StreamEngine::new();
//! engine.add_query(
//!     QueryId(1),
//!     parse_query("SELECT R.v, S.v FROM R [Range 10 Seconds], S [Now] WHERE R.k = S.k")?,
//! );
//! engine.push(Tuple::new("R", 1_000).with("k", Scalar::Int(7)).with("v", Scalar::Int(1)));
//! let out = engine.push(Tuple::new("S", 2_000).with("k", Scalar::Int(7)).with("v", Scalar::Int(2)));
//! assert_eq!(out.len(), 1);
//! # Ok::<(), cosmos_query::ParseError>(())
//! ```

pub mod aggregate;
pub mod checkpoint;
pub mod exec;
pub mod parallel;
pub mod reorder;
pub mod shared;
pub mod tuple;

pub use aggregate::{AggregateEngine, AggregateQuery};
pub use checkpoint::{
    AggregateCheckpoint, AggregateQueryState, BufferState, QueryState, SharedCheckpoint,
    StreamCheckpoint,
};
pub use exec::{CompiledQuery, EngineStats, ProjPlanCache, ResultTuple, StreamEngine};
pub use parallel::ParallelEngine;
pub use reorder::ReorderBuffer;
pub use shared::SharedEngine;
pub use tuple::{FlattenCache, JoinedTuple, Tuple};
