//! Differential testing of the parallel publish plane: N publisher
//! threads matching over a frozen [`RoutingSnapshot`] must produce the
//! same delivery log (contents *and* order) and the same per-link
//! traffic as serial [`BrokerNetwork::publish`] — across random
//! topologies, populations, and message streams, with subscription
//! churn interleaved between snapshot swaps.
//!
//! The suite also drives the read-copy-update lifecycle under load:
//! publisher workers race a churning writer that commits snapshots
//! mid-stream, and every message must observe **exactly one** committed
//! snapshot — its deliveries equal what a serially built oracle network
//! at that exact churn prefix produces.
//!
//! Set `COSMOS_STRESS=1` to elevate trials, thread counts, and message
//! volume (the CI stress job does).

use cosmos_net::{NodeId, Topology};
use cosmos_pubsub::broker::{BrokerNetwork, Delivery, LinkStats};
use cosmos_pubsub::snapshot::{merge_outputs, ReaderOutput, SnapshotReader};
use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_query::{AttrRef, CmpOp, Predicate, Scalar};
use cosmos_util::rng::rng_for;
use cosmos_util::SnapshotCell;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

const STREAMS: [&str; 3] = ["A", "B", "C"];
const ATTRS: [&str; 3] = ["a", "b", "c"];
const STRINGS: [&str; 3] = ["x", "y", "z"];
const OPS: [CmpOp; 6] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];

fn stress() -> bool {
    std::env::var("COSMOS_STRESS").is_ok()
}

/// A random connected topology: a spanning tree plus a few extra edges.
fn random_topology(rng: &mut StdRng) -> Topology {
    let n = rng.gen_range(4u32..12);
    let mut topo = Topology::new(n as usize);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        topo.add_edge(NodeId(i), NodeId(j), rng.gen_range(1.0..5.0));
    }
    for _ in 0..rng.gen_range(0..4) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && topo.edge_latency(NodeId(a), NodeId(b)).is_none() {
            topo.add_edge(NodeId(a), NodeId(b), rng.gen_range(1.0..5.0));
        }
    }
    topo
}

fn random_scalar(rng: &mut StdRng) -> Scalar {
    if rng.gen_bool(0.3) {
        Scalar::Float(rng.gen_range(-5.0..45.0))
    } else {
        Scalar::Int(rng.gen_range(-5i64..45))
    }
}

/// A random filter: mostly indexable numeric comparisons, plus the
/// residual classes the frozen matcher must handle identically.
fn random_predicate(rng: &mut StdRng, stream: &str) -> Predicate {
    let roll = rng.gen_range(0u32..10);
    if roll < 7 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, ATTRS[rng.gen_range(0..ATTRS.len())]),
            op: OPS[rng.gen_range(0..OPS.len())],
            value: random_scalar(rng),
        }
    } else if roll < 8 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, "s"),
            op: if rng.gen_bool(0.5) { CmpOp::Eq } else { CmpOp::Ne },
            value: Scalar::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()),
        }
    } else if roll < 9 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, "timestamp"),
            op: if rng.gen_bool(0.5) { CmpOp::Ge } else { CmpOp::Lt },
            value: Scalar::Int(rng.gen_range(0i64..60_000)),
        }
    } else {
        let other = STREAMS[rng.gen_range(0..STREAMS.len())];
        Predicate::Cmp {
            attr: AttrRef::new(format!("not-{other}"), "a"),
            op: CmpOp::Gt,
            value: Scalar::Int(0),
        }
    }
}

fn random_projection(rng: &mut StdRng) -> StreamProjection {
    if rng.gen_bool(0.5) {
        StreamProjection::All
    } else {
        let mut attrs: Vec<&str> = Vec::new();
        for a in ATTRS.iter().chain(std::iter::once(&"s")) {
            if rng.gen_bool(0.5) {
                attrs.push(a);
            }
        }
        StreamProjection::attrs(attrs)
    }
}

fn random_sub(rng: &mut StdRng, id: u64, nodes: u32) -> Subscription {
    let mut builder = Subscription::builder(NodeId(rng.gen_range(0..nodes))).id(SubId(id));
    let first = rng.gen_range(0..STREAMS.len());
    let take_second = rng.gen_bool(0.3);
    for (i, stream) in STREAMS.iter().enumerate() {
        if i != first && (!take_second || i != (first + 1) % STREAMS.len()) {
            continue;
        }
        let filters = (0..rng.gen_range(0..4)).map(|_| random_predicate(rng, stream)).collect();
        builder = builder.stream(*stream, random_projection(rng), filters);
    }
    builder.build()
}

fn random_message(rng: &mut StdRng, ts: i64) -> Message {
    let stream =
        if rng.gen_bool(0.9) { STREAMS[rng.gen_range(0..STREAMS.len())] } else { "unadvertised" };
    let mut msg = Message::new(stream, ts);
    for attr in ATTRS {
        if rng.gen_bool(0.75) {
            msg = msg.with(attr, random_scalar(rng));
        }
    }
    if rng.gen_bool(0.5) {
        msg = msg.with("s", Scalar::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()));
    }
    msg
}

/// N publisher threads over a frozen snapshot, round-robin over a shared
/// message stream with explicit global orders, merged deterministically —
/// against serial `publish` of the same stream on the same network.
/// Three phases per trial with subscription churn (and a snapshot swap)
/// between them; the merged output is also absorbed back into the broker
/// to pin `absorb`'s log/stats equivalence.
#[test]
fn parallel_publish_equals_serial() {
    let trials = if stress() { 48 } else { 24u64 };
    for trial in 0..trials {
        let mut rng = rng_for(trial, "parallel-publish");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut net = BrokerNetwork::new(topo);
        for stream in STREAMS {
            net.advertise(stream, NodeId(rng.gen_range(0..nodes)));
        }
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..rng.gen_range(10u64..60) {
            net.subscribe(random_sub(&mut rng, next_id, nodes));
            live.push(next_id);
            next_id += 1;
        }
        let threads: usize = if stress() { 8 } else { [2, 4][(trial % 2) as usize] };
        let mut ts = 0i64;
        for phase in 0..3 {
            let m = rng.gen_range(10usize..40);
            let msgs: Vec<Message> = (0..m)
                .map(|_| {
                    ts += rng.gen_range(1i64..1_000);
                    random_message(&mut rng, ts)
                })
                .collect();
            // Serial reference on the broker itself.
            net.reset_stats();
            for msg in &msgs {
                net.publish(msg.clone());
            }
            let expected_log = net.log().deliveries().to_vec();
            let expected_links = net.all_link_stats();
            // Parallel over the frozen snapshot: thread t takes every
            // t-th message, tagging it with its global stream position.
            let snap = net.snapshot();
            let outputs: Vec<ReaderOutput> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let snap = &snap;
                        let msgs = &msgs;
                        s.spawn(move || {
                            let mut reader = snap.reader();
                            for (k, msg) in msgs.iter().enumerate() {
                                if k % threads == t {
                                    reader.publish_at(k as u64, msg.clone());
                                }
                            }
                            reader.take_output()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let merged = merge_outputs(outputs);
            assert_eq!(
                merged.deliveries().cloned().collect::<Vec<_>>(),
                expected_log,
                "parallel delivery log diverged (trial {trial}, phase {phase})"
            );
            assert_eq!(
                merged.all_link_stats(),
                expected_links,
                "parallel link traffic diverged (trial {trial}, phase {phase})"
            );
            // Absorb round-trip: folding the merged output back into the
            // broker must reproduce the serial log and counters exactly.
            net.reset_stats();
            net.absorb(merged);
            assert_eq!(
                net.log().deliveries(),
                expected_log.as_slice(),
                "absorbed log diverged (trial {trial}, phase {phase})"
            );
            assert_eq!(
                net.all_link_stats(),
                expected_links,
                "absorbed link traffic diverged (trial {trial}, phase {phase})"
            );
            // Churn between phases: the next phase publishes over a
            // freshly committed snapshot.
            for _ in 0..rng.gen_range(1u32..5) {
                if !live.is_empty() && rng.gen_bool(0.5) {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    net.unsubscribe(SubId(id));
                } else {
                    net.subscribe(random_sub(&mut rng, next_id, nodes));
                    live.push(next_id);
                    next_id += 1;
                }
            }
            net.check_ledger_consistency().expect("ledger consistent after churn");
        }
    }
}

/// `publish_shared` (`&self`, thread-local readers) from several threads
/// at once: per-message outputs, reassembled in stream order, must equal
/// the serial log and link counters.
#[test]
fn publish_shared_equals_serial_across_threads() {
    let trials = if stress() { 12 } else { 6u64 };
    for trial in 0..trials {
        let mut rng = rng_for(trial, "publish-shared");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut net = BrokerNetwork::new(topo);
        for stream in STREAMS {
            net.advertise(stream, NodeId(rng.gen_range(0..nodes)));
        }
        for id in 0..rng.gen_range(10u64..50) {
            net.subscribe(random_sub(&mut rng, id, nodes));
        }
        let mut ts = 0i64;
        let msgs: Vec<Message> = (0..rng.gen_range(20usize..60))
            .map(|_| {
                ts += rng.gen_range(1i64..1_000);
                random_message(&mut rng, ts)
            })
            .collect();
        net.reset_stats();
        for msg in &msgs {
            net.publish(msg.clone());
        }
        let expected_log = net.log().deliveries().to_vec();
        let expected_links = net.all_link_stats();
        let threads: usize = if stress() { 8 } else { 4 };
        let net_ref = &net;
        type PerMessage = (usize, Vec<Delivery>, Vec<((NodeId, NodeId), LinkStats)>);
        let mut results: Vec<PerMessage> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let msgs = &msgs;
                    s.spawn(move || {
                        let mut local: Vec<PerMessage> = Vec::new();
                        for (k, msg) in msgs.iter().enumerate() {
                            if k % threads == t {
                                let out = net_ref.publish_shared(msg.clone());
                                local.push((
                                    k,
                                    out.deliveries().cloned().collect(),
                                    out.all_link_stats(),
                                ));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        results.sort_by_key(|(k, _, _)| *k);
        let flat: Vec<Delivery> = results.iter().flat_map(|(_, d, _)| d.clone()).collect();
        assert_eq!(flat, expected_log, "publish_shared log diverged (trial {trial})");
        let mut links: BTreeMap<(NodeId, NodeId), LinkStats> = BTreeMap::new();
        for (_, _, per_msg) in &results {
            for &(k, s) in per_msg {
                let e = links.entry(k).or_default();
                e.messages += s.messages;
                e.bytes += s.bytes;
            }
        }
        let links: Vec<_> =
            links.into_iter().filter(|(_, s)| s.messages > 0 || s.bytes > 0).collect();
        assert_eq!(links, expected_links, "publish_shared link traffic diverged (trial {trial})");
    }
}

/// Snapshots are cached (same `Arc` back) while no churn happens and
/// rebuilt — with a higher version — as soon as churn commits.
#[test]
fn snapshot_cached_until_churn() {
    let mut topo = Topology::new(3);
    topo.add_edge(NodeId(0), NodeId(1), 1.0);
    topo.add_edge(NodeId(1), NodeId(2), 1.0);
    let mut net = BrokerNetwork::new(topo);
    net.advertise("R", NodeId(0));
    net.subscribe(
        Subscription::builder(NodeId(2))
            .id(SubId(1))
            .stream("R", StreamProjection::All, vec![])
            .build(),
    );
    let s1 = net.snapshot();
    let s2 = net.snapshot();
    assert!(std::sync::Arc::ptr_eq(&s1, &s2), "no churn: snapshot must be cached");
    assert_eq!(s1.version(), net.routing_version());
    net.subscribe(
        Subscription::builder(NodeId(1))
            .id(SubId(2))
            .stream("R", StreamProjection::All, vec![])
            .build(),
    );
    let s3 = net.snapshot();
    assert!(!std::sync::Arc::ptr_eq(&s1, &s3), "churn must produce a new snapshot");
    assert!(s3.version() > s1.version());
    // A reader kept on the old snapshot still matches the old state
    // consistently; retargeting adopts the new one.
    let mut reader = s1.reader();
    assert_eq!(reader.publish(Message::new("R", 0).with("a", Scalar::Int(1))), 1);
    reader.retarget(&s3);
    reader.take_output();
    assert_eq!(reader.publish(Message::new("R", 1).with("a", Scalar::Int(1))), 2);
}

/// `publish_shared` must observe churn as soon as it commits: the
/// thread-local reader is refreshed when the broker's version moved.
#[test]
fn publish_shared_observes_committed_churn() {
    let mut topo = Topology::new(3);
    topo.add_edge(NodeId(0), NodeId(1), 1.0);
    topo.add_edge(NodeId(1), NodeId(2), 1.0);
    let mut net = BrokerNetwork::new(topo);
    net.advertise("R", NodeId(0));
    net.subscribe(
        Subscription::builder(NodeId(2))
            .id(SubId(1))
            .stream("R", StreamProjection::All, vec![])
            .build(),
    );
    let out = net.publish_shared(Message::new("R", 0).with("a", Scalar::Int(1)));
    assert_eq!(out.delivered(), 1);
    net.subscribe(
        Subscription::builder(NodeId(1))
            .id(SubId(2))
            .stream("R", StreamProjection::All, vec![])
            .build(),
    );
    let out = net.publish_shared(Message::new("R", 1).with("a", Scalar::Int(1)));
    assert_eq!(out.delivered(), 2, "publish_shared must see the committed subscription");
    net.unsubscribe(SubId(1));
    net.unsubscribe(SubId(2));
    let out = net.publish_shared(Message::new("R", 2).with("a", Scalar::Int(1)));
    assert_eq!(out.delivered(), 0, "publish_shared must see the unsubscribes");
}

/// One churn step of the swap-under-load script.
#[derive(Debug, Clone)]
enum Op {
    Sub(Subscription),
    Unsub(SubId),
}

/// The read-copy-update lifecycle under load: publisher workers drain a
/// bounded channel of message indices while the writer interleaves churn
/// and snapshot commits through a [`SnapshotCell`]. Every message must
/// observe exactly one *committed* snapshot: its recorded snapshot
/// version must be one the writer actually published, and its deliveries
/// and link traffic must equal a serially built oracle network replaying
/// precisely that churn prefix. A message matched against a half-applied
/// or torn state would either report an uncommitted version or diverge
/// from every prefix oracle.
#[test]
fn snapshot_swap_under_load_is_consistent() {
    let trials = if stress() { 10 } else { 5u64 };
    let batches = if stress() { 10 } else { 6usize };
    let per_batch = if stress() { 12 } else { 8usize };
    let workers: usize = if stress() { 4 } else { 2 };
    for trial in 0..trials {
        let mut rng = rng_for(trial, "snapshot-swap");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let sources: Vec<(&str, NodeId)> =
            STREAMS.iter().map(|&s| (s, NodeId(rng.gen_range(0..nodes)))).collect();
        let mut net = BrokerNetwork::new(topo.clone());
        for &(s, src) in &sources {
            net.advertise(s, src);
        }
        let initial: Vec<Subscription> =
            (0..rng.gen_range(5u64..25)).map(|id| random_sub(&mut rng, id, nodes)).collect();
        for sub in &initial {
            net.subscribe(sub.clone());
        }
        let mut next_id = initial.len() as u64;
        let mut live: Vec<u64> = (0..initial.len() as u64).collect();
        let ops: Vec<Op> = (0..batches)
            .map(|_| {
                if !live.is_empty() && rng.gen_bool(0.4) {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    Op::Unsub(SubId(id))
                } else {
                    let sub = random_sub(&mut rng, next_id, nodes);
                    live.push(next_id);
                    next_id += 1;
                    Op::Sub(sub)
                }
            })
            .collect();
        let mut ts = 0i64;
        let messages: Vec<Message> = (0..batches * per_batch)
            .map(|_| {
                ts += rng.gen_range(1i64..1_000);
                random_message(&mut rng, ts)
            })
            .collect();

        let cell = SnapshotCell::new(net.snapshot());
        // Every snapshot version the writer publishes, with the number of
        // churn ops applied when it was built.
        let mut committed: Vec<(u64, usize)> = vec![(cell.load().version(), 0)];
        let (tx, rx) = crossbeam::channel::bounded::<usize>(4);
        type Record = (usize, u64, Vec<Delivery>, Vec<((NodeId, NodeId), LinkStats)>);
        let records: Vec<Record> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = rx.clone();
                    let cell = &cell;
                    let messages = &messages;
                    s.spawn(move || {
                        let mut reader: Option<SnapshotReader> = None;
                        let mut local: Vec<Record> = Vec::new();
                        while let Ok(idx) = rx.recv() {
                            // Re-sync to the latest committed snapshot
                            // *between* messages — never mid-message.
                            let snap = cell.load();
                            let r = reader.get_or_insert_with(|| snap.reader());
                            r.retarget(&snap);
                            r.publish_at(idx as u64, messages[idx].clone());
                            let out = r.take_output();
                            local.push((
                                idx,
                                r.snapshot().version(),
                                out.deliveries().cloned().collect(),
                                out.all_link_stats(),
                            ));
                        }
                        local
                    })
                })
                .collect();
            drop(rx);
            for (b, op) in ops.iter().enumerate() {
                for k in 0..per_batch {
                    tx.send(b * per_batch + k).unwrap();
                }
                // Churn commits mid-stream: workers may still be matching
                // earlier messages against the previous snapshot.
                match op {
                    Op::Sub(sub) => net.subscribe(sub.clone()),
                    Op::Unsub(id) => net.unsubscribe(*id),
                }
                cell.store(net.snapshot());
                committed.push((net.routing_version(), b + 1));
            }
            drop(tx);
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(records.len(), batches * per_batch, "every message processed once");

        // Oracle networks, one per observed snapshot version: a serial
        // broker replaying exactly that churn prefix.
        let mut oracles: HashMap<u64, BrokerNetwork> = HashMap::new();
        for (idx, version, deliveries, links) in records {
            let applied = committed
                .iter()
                .find(|&&(v, _)| v == version)
                .unwrap_or_else(|| {
                    panic!("message {idx} observed uncommitted snapshot version {version} (trial {trial})")
                })
                .1;
            let oracle = oracles.entry(version).or_insert_with(|| {
                let mut o = BrokerNetwork::new(topo.clone());
                for &(s, src) in &sources {
                    o.advertise(s, src);
                }
                for sub in &initial {
                    o.subscribe(sub.clone());
                }
                for op in &ops[..applied] {
                    match op {
                        Op::Sub(sub) => o.subscribe(sub.clone()),
                        Op::Unsub(id) => o.unsubscribe(*id),
                    }
                }
                o
            });
            oracle.reset_stats();
            oracle.publish(messages[idx].clone());
            assert_eq!(
                deliveries,
                oracle.log().deliveries(),
                "message {idx} diverged from its snapshot's oracle (trial {trial}, version {version})"
            );
            assert_eq!(
                links,
                oracle.all_link_stats(),
                "message {idx} link traffic diverged (trial {trial}, version {version})"
            );
        }
    }
}
