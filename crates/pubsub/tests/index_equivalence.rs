//! Differential testing of the routing index: indexed broker matching
//! must be observationally identical to the linear-scan reference
//! ([`BrokerNetwork::publish_linear`]) — same `DeliveryLog`, same
//! per-link traffic — across random topologies, subscription populations
//! (indexable and residual filters, projections), message streams,
//! interleaved unsubscribes, and link failures.
//!
//! The oracle networks are built with [`BrokerNetwork::new_linear`], so
//! subscription *arrival* is differentially covered too: the incremental
//! network resolves covering through the `(stream, hop)` buckets while
//! the oracle runs the reference linear covering scans — every install,
//! skip, and covering drop must agree. The churn drivers additionally
//! assert [`BrokerNetwork::check_ledger_consistency`] after every
//! control-plane operation on the incremental network.

use cosmos_net::{NodeId, Topology};
use cosmos_pubsub::broker::BrokerNetwork;
use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_query::{AttrRef, CmpOp, Predicate, Scalar};
use cosmos_util::rng::rng_for;
use rand::rngs::StdRng;
use rand::Rng;

const STREAMS: [&str; 3] = ["A", "B", "C"];
const ATTRS: [&str; 3] = ["a", "b", "c"];
const STRINGS: [&str; 3] = ["x", "y", "z"];
const OPS: [CmpOp; 6] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];

/// A random connected topology: a spanning tree plus a few extra edges.
fn random_topology(rng: &mut StdRng) -> Topology {
    let n = rng.gen_range(4u32..12);
    let mut topo = Topology::new(n as usize);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        topo.add_edge(NodeId(i), NodeId(j), rng.gen_range(1.0..5.0));
    }
    for _ in 0..rng.gen_range(0..4) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && topo.edge_latency(NodeId(a), NodeId(b)).is_none() {
            topo.add_edge(NodeId(a), NodeId(b), rng.gen_range(1.0..5.0));
        }
    }
    topo
}

fn random_scalar(rng: &mut StdRng) -> Scalar {
    if rng.gen_bool(0.3) {
        Scalar::Float(rng.gen_range(-5.0..45.0))
    } else {
        Scalar::Int(rng.gen_range(-5i64..45))
    }
}

/// A random filter: mostly indexable numeric comparisons, plus the
/// residual classes (string equality, `!=` included via OPS, timestamp
/// comparisons, foreign-relation references that can never hold).
fn random_predicate(rng: &mut StdRng, stream: &str) -> Predicate {
    let roll = rng.gen_range(0u32..10);
    if roll < 7 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, ATTRS[rng.gen_range(0..ATTRS.len())]),
            op: OPS[rng.gen_range(0..OPS.len())],
            value: random_scalar(rng),
        }
    } else if roll < 8 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, "s"),
            op: if rng.gen_bool(0.5) { CmpOp::Eq } else { CmpOp::Ne },
            value: Scalar::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()),
        }
    } else if roll < 9 {
        Predicate::Cmp {
            attr: AttrRef::new(stream, "timestamp"),
            op: if rng.gen_bool(0.5) { CmpOp::Ge } else { CmpOp::Lt },
            value: Scalar::Int(rng.gen_range(0i64..60_000)),
        }
    } else {
        // Qualified with a different stream: never satisfiable, must be
        // handled identically by both paths.
        let other = STREAMS[rng.gen_range(0..STREAMS.len())];
        Predicate::Cmp {
            attr: AttrRef::new(format!("not-{other}"), "a"),
            op: CmpOp::Gt,
            value: Scalar::Int(0),
        }
    }
}

fn random_projection(rng: &mut StdRng) -> StreamProjection {
    if rng.gen_bool(0.5) {
        StreamProjection::All
    } else {
        let mut attrs: Vec<&str> = Vec::new();
        for a in ATTRS.iter().chain(std::iter::once(&"s")) {
            if rng.gen_bool(0.5) {
                attrs.push(a);
            }
        }
        StreamProjection::attrs(attrs)
    }
}

fn random_sub(rng: &mut StdRng, id: u64, nodes: u32) -> Subscription {
    let mut builder = Subscription::builder(NodeId(rng.gen_range(0..nodes))).id(SubId(id));
    let first = rng.gen_range(0..STREAMS.len());
    let take_second = rng.gen_bool(0.3);
    for (i, stream) in STREAMS.iter().enumerate() {
        if i != first && (!take_second || i != (first + 1) % STREAMS.len()) {
            continue;
        }
        let filters = (0..rng.gen_range(0..4)).map(|_| random_predicate(rng, stream)).collect();
        builder = builder.stream(*stream, random_projection(rng), filters);
    }
    builder.build()
}

fn random_message(rng: &mut StdRng, ts: i64) -> Message {
    let stream =
        if rng.gen_bool(0.9) { STREAMS[rng.gen_range(0..STREAMS.len())] } else { "unadvertised" };
    let mut msg = Message::new(stream, ts);
    for attr in ATTRS {
        if rng.gen_bool(0.75) {
            msg = msg.with(attr, random_scalar(rng));
        }
    }
    if rng.gen_bool(0.5) {
        msg = msg.with("s", Scalar::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()));
    }
    msg
}

fn edges_of(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for u in topo.nodes() {
        for (v, _) in topo.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// The full random driver: every step either publishes (comparing delivery
/// counts immediately), unsubscribes, or fails a link — on both networks —
/// and the complete delivery logs and link counters must agree at the end.
/// The indexed network maintains its routing state *incrementally* (ledger
/// teardown + dependent re-propagation); the linear oracle uses the
/// reference `*_wholesale` rebuilds, so the comparison also pins the
/// incremental maintenance against the rebuild-the-world semantics.
#[test]
fn indexed_matching_equals_linear_scan() {
    for trial in 0..25u64 {
        let mut rng = rng_for(trial, "index-equivalence");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut indexed = BrokerNetwork::new(topo.clone());
        let mut linear = BrokerNetwork::new_linear(topo);
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            indexed.advertise(stream, src);
            linear.advertise(stream, src);
        }
        let mut live: Vec<u64> = Vec::new();
        for id in 0..rng.gen_range(5u64..80) {
            let sub = random_sub(&mut rng, id, nodes);
            indexed.subscribe(sub.clone());
            linear.subscribe(sub);
            live.push(id);
        }
        let mut ts = 0i64;
        for step in 0..rng.gen_range(40u32..120) {
            let roll = rng.gen_range(0u32..100);
            if roll < 5 && !live.is_empty() {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                indexed.unsubscribe(SubId(id));
                linear.unsubscribe_wholesale(SubId(id));
            } else if roll < 8 {
                let edges = edges_of(indexed.topology());
                if !edges.is_empty() {
                    let (a, b) = edges[rng.gen_range(0..edges.len())];
                    assert!(indexed.fail_link(a, b));
                    assert!(linear.fail_link_wholesale(a, b));
                }
            } else {
                ts += rng.gen_range(1i64..1_000);
                let msg = random_message(&mut rng, ts);
                let di = indexed.publish(msg.clone());
                let dl = linear.publish_linear(msg);
                assert_eq!(di, dl, "delivery count diverged (trial {trial}, step {step})");
            }
        }
        assert_eq!(
            indexed.log().deliveries(),
            linear.log().deliveries(),
            "delivery logs diverged (trial {trial})"
        );
        assert_eq!(
            indexed.all_link_stats(),
            linear.all_link_stats(),
            "link traffic diverged (trial {trial})"
        );
    }
}

/// Heavy-churn driver: the incrementally maintained indexed network
/// against the wholesale linear oracle under *bursty* control-plane load —
/// waves of unsubscribes, fresh arrivals, link failures, and link
/// recoveries interleaved with publishes — across 22 randomized trials.
/// This is the acceptance suite for the installation-ledger design: after
/// every interleaving the complete delivery log (contents *and* order) and
/// every link's traffic counters must equal the rebuild-the-world
/// reference.
#[test]
fn heavy_churn_equals_wholesale_oracle() {
    for trial in 0..22u64 {
        let mut rng = rng_for(trial, "index-heavy-churn");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut incremental = BrokerNetwork::new(topo.clone());
        let mut oracle = BrokerNetwork::new_linear(topo);
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            incremental.advertise(stream, src);
            oracle.advertise(stream, src);
        }
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..rng.gen_range(30u64..90) {
            let sub = random_sub(&mut rng, next_id, nodes);
            incremental.subscribe(sub.clone());
            oracle.subscribe(sub);
            live.push(next_id);
            next_id += 1;
        }
        let mut failed: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut ts = 0i64;
        for step in 0..rng.gen_range(60u32..140) {
            let roll = rng.gen_range(0u32..100);
            let consistent = |net: &BrokerNetwork, what: &str, step: u32| {
                net.check_ledger_consistency().unwrap_or_else(|e| {
                    panic!("ledger inconsistent after {what} (trial {trial}, step {step}): {e}")
                });
            };
            if roll < 12 && !live.is_empty() {
                // A wave of departures (bursty churn).
                for _ in 0..rng.gen_range(1usize..4).min(live.len()) {
                    let id = live.swap_remove(rng.gen_range(0..live.len()));
                    incremental.unsubscribe(SubId(id));
                    oracle.unsubscribe_wholesale(SubId(id));
                    consistent(&incremental, "unsubscribe", step);
                }
            } else if roll < 17 {
                // Fresh arrivals keep the population churning both ways.
                for _ in 0..rng.gen_range(1u32..3) {
                    let sub = random_sub(&mut rng, next_id, nodes);
                    incremental.subscribe(sub.clone());
                    oracle.subscribe(sub);
                    live.push(next_id);
                    next_id += 1;
                    consistent(&incremental, "subscribe", step);
                }
            } else if roll < 22 {
                let edges = edges_of(incremental.topology());
                if !edges.is_empty() {
                    let (a, b) = edges[rng.gen_range(0..edges.len())];
                    let lat = incremental.topology().edge_latency(a, b).unwrap();
                    assert!(incremental.fail_link(a, b));
                    assert!(oracle.fail_link_wholesale(a, b));
                    failed.push((a, b, lat));
                    consistent(&incremental, "fail_link", step);
                }
            } else if roll < 27 && !failed.is_empty() {
                let (a, b, lat) = failed.swap_remove(rng.gen_range(0..failed.len()));
                assert!(incremental.restore_link(a, b, lat));
                assert!(oracle.restore_link_wholesale(a, b, lat));
                consistent(&incremental, "restore_link", step);
            } else {
                ts += rng.gen_range(1i64..1_000);
                let msg = random_message(&mut rng, ts);
                let di = incremental.publish(msg.clone());
                let dl = oracle.publish_linear(msg);
                assert_eq!(di, dl, "delivery count diverged (trial {trial}, step {step})");
            }
        }
        assert_eq!(
            incremental.log().deliveries(),
            oracle.log().deliveries(),
            "delivery logs diverged (trial {trial})"
        );
        assert_eq!(
            incremental.all_link_stats(),
            oracle.all_link_stats(),
            "link traffic diverged (trial {trial})"
        );
    }
}

/// A *covering-sparse* subscription: a point constraint on a wide value
/// domain, so pairwise covering is rare and routing tables grow with the
/// population instead of merging down — the population shape that makes
/// subscription arrival expensive and that the covering buckets must
/// handle identically to the linear scans.
fn sparse_sub(rng: &mut StdRng, id: u64, nodes: u32) -> Subscription {
    let stream = STREAMS[rng.gen_range(0..STREAMS.len())];
    let filters = vec![Predicate::Cmp {
        attr: AttrRef::new(stream, ATTRS[rng.gen_range(0..ATTRS.len())]),
        op: CmpOp::Eq,
        value: Scalar::Int(rng.gen_range(-5_000i64..5_000)),
    }];
    Subscription::builder(NodeId(rng.gen_range(0..nodes)))
        .id(SubId(id))
        .stream(stream, random_projection(rng), filters)
        .build()
}

/// Arrival-dominated driver: bursts of subscribes against a large
/// standing population — mostly covering-sparse point subscriptions (so
/// tables keep growing and every install probes non-trivial buckets),
/// salted with the general random shapes — with occasional departures and
/// publishes. The incremental covering-indexed network must stay
/// observationally identical (full delivery log and per-link traffic) to
/// the linear-scan wholesale oracle, and its installation ledger must
/// stay consistent after every operation.
#[test]
fn arrival_bursts_equal_wholesale_oracle() {
    for trial in 0..8u64 {
        let mut rng = rng_for(trial, "index-arrival-bursts");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut incremental = BrokerNetwork::new(topo.clone());
        let mut oracle = BrokerNetwork::new_linear(topo);
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            incremental.advertise(stream, src);
            oracle.advertise(stream, src);
        }
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let arrive = |incremental: &mut BrokerNetwork,
                      oracle: &mut BrokerNetwork,
                      live: &mut Vec<u64>,
                      next_id: &mut u64,
                      rng: &mut StdRng| {
            let sub = if rng.gen_bool(0.8) {
                sparse_sub(rng, *next_id, nodes)
            } else {
                random_sub(rng, *next_id, nodes)
            };
            incremental.subscribe(sub.clone());
            oracle.subscribe(sub);
            live.push(*next_id);
            *next_id += 1;
            incremental.check_ledger_consistency().unwrap_or_else(|e| {
                panic!("ledger inconsistent after subscribe (trial {trial}): {e}")
            });
        };
        // The standing population the bursts land on.
        for _ in 0..rng.gen_range(150u32..300) {
            arrive(&mut incremental, &mut oracle, &mut live, &mut next_id, &mut rng);
        }
        let mut ts = 0i64;
        for step in 0..rng.gen_range(25u32..50) {
            let roll = rng.gen_range(0u32..100);
            if roll < 55 {
                // The dominant operation: a burst of fresh arrivals.
                for _ in 0..rng.gen_range(3u32..12) {
                    arrive(&mut incremental, &mut oracle, &mut live, &mut next_id, &mut rng);
                }
            } else if roll < 70 && !live.is_empty() {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                incremental.unsubscribe(SubId(id));
                oracle.unsubscribe_wholesale(SubId(id));
                incremental.check_ledger_consistency().unwrap_or_else(|e| {
                    panic!(
                        "ledger inconsistent after unsubscribe (trial {trial}, step {step}): {e}"
                    )
                });
            } else {
                ts += rng.gen_range(1i64..1_000);
                let msg = random_message(&mut rng, ts);
                let di = incremental.publish(msg.clone());
                let dl = oracle.publish_linear(msg);
                assert_eq!(di, dl, "delivery count diverged (trial {trial}, step {step})");
            }
        }
        assert_eq!(
            incremental.log().deliveries(),
            oracle.log().deliveries(),
            "delivery logs diverged (trial {trial})"
        );
        assert_eq!(
            incremental.all_link_stats(),
            oracle.all_link_stats(),
            "link traffic diverged (trial {trial})"
        );
    }
}

/// A *broad* subscription: a weak threshold (or none), so ≥90% of
/// published messages match, and a projection drawn from a small set of
/// shapes — many subscribers share a projection class, which is exactly
/// the population the delivery-side dedup must stay oracle-identical on.
fn broad_sub(rng: &mut StdRng, id: u64, nodes: u32) -> Subscription {
    let stream = STREAMS[rng.gen_range(0..STREAMS.len())];
    // Thresholds in [-10, -5]: message values are drawn from [-5, 45], so
    // an `a > threshold` filter passes whenever `a` is present (~90%+ of
    // messages carry each attribute). A tenth of the population is
    // filter-free and matches everything.
    let filters = if rng.gen_bool(0.9) {
        vec![Predicate::Cmp {
            attr: AttrRef::new(stream, ATTRS[rng.gen_range(0..ATTRS.len())]),
            op: CmpOp::Gt,
            value: Scalar::Int(rng.gen_range(-10i64..-5)),
        }]
    } else {
        vec![]
    };
    let proj = match rng.gen_range(0u32..4) {
        0 => StreamProjection::All,
        1 => StreamProjection::attrs(["a"]),
        2 => StreamProjection::attrs(["a", "b"]),
        _ => StreamProjection::attrs(["b", "c", "s"]),
    };
    Subscription::builder(NodeId(rng.gen_range(0..nodes)))
        .id(SubId(id))
        .stream(stream, proj, filters)
        .build()
}

/// A message carrying *every* attribute, so a broad subscription's weak
/// filter always resolves (and passes): ≥90% of same-stream subscribers
/// match each message.
fn broad_message(rng: &mut StdRng, ts: i64) -> Message {
    let stream = STREAMS[rng.gen_range(0..STREAMS.len())];
    let mut msg = Message::new(stream, ts);
    for attr in ATTRS {
        msg = msg.with(attr, random_scalar(rng));
    }
    msg.with("s", Scalar::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()))
}

/// High-match-rate populations: hundreds of broad subscriptions sharing a
/// handful of projection classes, nearly every message delivered to most
/// of them. This drives the projection-class dedup path hard; the indexed
/// network must still produce the identical delivery log (contents *and*
/// order) and identical link traffic as the linear oracle.
#[test]
fn high_match_rate_equals_linear_scan() {
    for trial in 0..8u64 {
        let mut rng = rng_for(trial, "index-equivalence-broad");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut indexed = BrokerNetwork::new(topo.clone());
        let mut linear = BrokerNetwork::new_linear(topo);
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            indexed.advertise(stream, src);
            linear.advertise(stream, src);
        }
        let n_subs = rng.gen_range(120u64..250);
        for id in 0..n_subs {
            let sub = broad_sub(&mut rng, id, nodes);
            indexed.subscribe(sub.clone());
            linear.subscribe(sub);
        }
        let mut ts = 0i64;
        let (mut published, mut delivered) = (0u64, 0u64);
        for step in 0..60 {
            ts += rng.gen_range(1i64..1_000);
            let msg = broad_message(&mut rng, ts);
            let di = indexed.publish(msg.clone());
            let dl = linear.publish_linear(msg);
            assert_eq!(di, dl, "delivery count diverged (trial {trial}, step {step})");
            published += 1;
            delivered += di as u64;
        }
        // The population splits evenly over three streams and every
        // broad filter passes: each publish must reach ≥90% of the ~n/3
        // same-stream subscribers.
        assert!(
            delivered * 10 >= published * (n_subs / 3) * 9,
            "population must be ≥90% match (trial {trial}: {delivered} deliveries \
             over {published} publishes of {n_subs} subs)"
        );
        assert_eq!(
            indexed.log().deliveries(),
            linear.log().deliveries(),
            "delivery logs diverged (trial {trial})"
        );
        assert_eq!(
            indexed.all_link_stats(),
            linear.all_link_stats(),
            "link traffic diverged (trial {trial})"
        );
    }
}

/// Unsubscribing must leave the index in exactly the state a fresh network
/// holding only the surviving subscriptions would build.
#[test]
fn unsubscribe_rebuild_matches_fresh_network() {
    let mut rng = rng_for(7, "index-rebuild");
    let topo = random_topology(&mut rng);
    let nodes = topo.node_count() as u32;
    let mut rebuilt = BrokerNetwork::new(topo.clone());
    let mut fresh = BrokerNetwork::new(topo);
    let src = NodeId(0);
    rebuilt.advertise("A", src);
    fresh.advertise("A", src);
    let subs: Vec<Subscription> = (0..12).map(|i| random_sub(&mut rng, i, nodes)).collect();
    for sub in &subs {
        rebuilt.subscribe(sub.clone());
    }
    for (i, sub) in subs.iter().enumerate() {
        if i % 3 == 0 {
            rebuilt.unsubscribe(sub.id);
        } else {
            fresh.subscribe(sub.clone());
        }
    }
    let mut ts = 0;
    for _ in 0..40 {
        ts += rng.gen_range(1i64..500);
        let msg = random_message(&mut rng, ts);
        assert_eq!(rebuilt.publish(msg.clone()), fresh.publish(msg));
    }
    assert_eq!(rebuilt.log().deliveries(), fresh.log().deliveries());
    assert_eq!(rebuilt.all_link_stats(), fresh.all_link_stats());
}

/// Link failure re-propagates through the indexed tables; the surviving
/// routes must deliver exactly what a fresh network over the surviving
/// topology delivers.
#[test]
fn fail_link_rebuild_matches_fresh_network() {
    let mut rng = rng_for(11, "index-fail-link");
    // A ring guarantees an alternate path for any single failure.
    let n = 6u32;
    let mut topo = Topology::new(n as usize);
    for i in 0..n {
        topo.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0);
    }
    let mut failed = BrokerNetwork::new(topo);
    failed.advertise("A", NodeId(0));
    failed.advertise("B", NodeId(2));
    let subs: Vec<Subscription> = (0..8).map(|i| random_sub(&mut rng, i, n)).collect();
    for sub in &subs {
        failed.subscribe(sub.clone());
    }
    assert!(failed.fail_link(NodeId(0), NodeId(1)));

    let mut survivor_topo = Topology::new(n as usize);
    for i in 0..n {
        if i == 0 {
            continue; // the failed link {0, 1}
        }
        survivor_topo.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0);
    }
    let mut fresh = BrokerNetwork::new(survivor_topo);
    fresh.advertise("A", NodeId(0));
    fresh.advertise("B", NodeId(2));
    for sub in &subs {
        fresh.subscribe(sub.clone());
    }
    let mut ts = 0;
    for _ in 0..40 {
        ts += rng.gen_range(1i64..500);
        let msg = random_message(&mut rng, ts);
        assert_eq!(failed.publish(msg.clone()), fresh.publish(msg));
    }
    assert_eq!(failed.log().deliveries(), fresh.log().deliveries());
    assert_eq!(failed.all_link_stats(), fresh.all_link_stats());
}

/// Batched-ingestion twin: a network fed exclusively through
/// [`BrokerNetwork::subscribe_batch`] and [`BrokerNetwork::publish_batch`]
/// against the serial indexed network and the linear-scan oracle. Batches
/// mix streams (split into same-stream runs internally) and are sometimes
/// pre-sorted by stream to exercise long shared walks. Delivery counts
/// are compared per batch; full logs and link counters at the end.
/// `COSMOS_STRESS=1` elevates the population and batch sizes — the
/// large-population batched-publish equivalence run wired into CI.
#[test]
fn batched_publish_and_subscribe_equal_serial_and_linear() {
    let stress = std::env::var("COSMOS_STRESS").is_ok_and(|v| v == "1");
    let (trials, pop_max, batch_max) = if stress { (6u64, 1200u64, 48) } else { (10u64, 90, 24) };
    for trial in 0..trials {
        let mut rng = rng_for(trial, "batched-publish");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut serial = BrokerNetwork::new(topo.clone());
        let mut batched = BrokerNetwork::new(topo.clone());
        let mut linear = BrokerNetwork::new_linear(topo);
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            serial.advertise(stream, src);
            batched.advertise(stream, src);
            linear.advertise(stream, src);
        }
        let pop = rng.gen_range(pop_max / 2..pop_max);
        let subs: Vec<Subscription> = (0..pop).map(|id| random_sub(&mut rng, id, nodes)).collect();
        for sub in &subs {
            serial.subscribe(sub.clone());
            linear.subscribe(sub.clone());
        }
        batched.subscribe_batch(subs);
        batched.check_ledger_consistency().expect("batched install ledger");
        let mut ts = 0i64;
        for round in 0..rng.gen_range(5u32..10) {
            let mut batch = Vec::new();
            for _ in 0..rng.gen_range(1..batch_max) {
                ts += rng.gen_range(1i64..1_000);
                batch.push(random_message(&mut rng, ts));
            }
            if rng.gen_bool(0.5) {
                // Long same-stream runs: the shared-walk fast path.
                batch.sort_by_key(|m| m.stream);
            }
            let db = batched.publish_batch(&batch);
            let mut ds = 0;
            let mut dl = 0;
            for msg in &batch {
                ds += serial.publish(msg.clone());
                dl += linear.publish_linear(msg.clone());
            }
            assert_eq!(db, ds, "batch/serial delivery count (trial {trial}, round {round})");
            assert_eq!(ds, dl, "serial/linear delivery count (trial {trial}, round {round})");
        }
        assert_eq!(
            batched.log().deliveries(),
            serial.log().deliveries(),
            "batched log diverged from serial (trial {trial})"
        );
        assert_eq!(
            serial.log().deliveries(),
            linear.log().deliveries(),
            "serial log diverged from linear (trial {trial})"
        );
        assert_eq!(
            batched.all_link_stats(),
            serial.all_link_stats(),
            "batched link traffic diverged (trial {trial})"
        );
    }
}

/// Snapshot-reader batched publish: `publish_batch_at` over order-tagged
/// chunks must merge to the exact serial broker log — same deliveries in
/// the same order, same link counters — and agree with a reader
/// publishing the same messages one `publish_at` at a time.
#[test]
fn reader_batched_publish_equals_serial() {
    for trial in 0..8u64 {
        let mut rng = rng_for(trial, "batched-reader");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut net = BrokerNetwork::new(topo);
        for stream in STREAMS {
            net.advertise(stream, NodeId(rng.gen_range(0..nodes)));
        }
        for id in 0..rng.gen_range(10u64..80) {
            net.subscribe(random_sub(&mut rng, id, nodes));
        }
        let mut ts = 0i64;
        let msgs: Vec<Message> = (0..rng.gen_range(20u32..80))
            .map(|_| {
                ts += rng.gen_range(1i64..1_000);
                random_message(&mut rng, ts)
            })
            .collect();
        let mut one_by_one = net.reader();
        for (k, msg) in msgs.iter().enumerate() {
            one_by_one.publish_at(k as u64, msg.clone());
        }
        let mut chunked = net.reader();
        let mut start = 0usize;
        while start < msgs.len() {
            let end = (start + rng.gen_range(1usize..16)).min(msgs.len());
            chunked.publish_batch_at(start as u64, &msgs[start..end]);
            start = end;
        }
        for msg in &msgs {
            net.publish(msg.clone());
        }
        let mut serial_out = one_by_one.take_output();
        serial_out.sort_by_order();
        let mut batch_out = chunked.take_output();
        batch_out.sort_by_order();
        let expected: Vec<_> = net.log().deliveries().to_vec();
        assert_eq!(
            batch_out.deliveries().cloned().collect::<Vec<_>>(),
            expected,
            "batched reader log diverged (trial {trial})"
        );
        assert_eq!(
            serial_out.deliveries().cloned().collect::<Vec<_>>(),
            expected,
            "serial reader log diverged (trial {trial})"
        );
        assert_eq!(
            batch_out.all_link_stats(),
            net.all_link_stats(),
            "batched reader link traffic diverged (trial {trial})"
        );
    }
}
