//! Chaos-suite extension: broker crashes that kill *hosted engines*
//! mid-window.
//!
//! Where `chaos.rs` pins the routing plane (delivery logs converge to the
//! fault-free oracle across crashes), this suite pins the **operator
//! plane**: each trial hosts checkpointed [`StreamEngine`]s at random
//! brokers of a random topology, then interleaves publish batches,
//! scheduled and explicit checkpoints, host crashes (with partially
//! filled windows and in-flight joins, by construction), restores, and
//! non-host subscriber churn — over both clean and seeded-lossy message
//! planes. After every settle with the host up, its lifetime output log
//! and execution counters must equal a **crash-free twin** engine fed
//! the identical publish sequence, bit-for-bit; upstream replay
//! retention must be exactly the unacked suffix; and broker ledger
//! consistency is asserted after every operation.
//!
//! Checkpoints race crashes two ways: the simulated-time schedule fires
//! whenever a settle drains past a due tick, and the op mix takes
//! explicit checkpoints — sometimes immediately before a kill.
//!
//! A failing trial prints its seed and op index;
//! `COSMOS_RECOVERY_TRIAL=<n>` reruns exactly that trial.
//! `COSMOS_STRESS=1` raises trial counts and fault rates.

use cosmos_engine::exec::{ResultTuple, StreamEngine};
use cosmos_net::{NodeId, Topology};
use cosmos_pubsub::broker::BrokerNetwork;
use cosmos_pubsub::fault::{FaultConfig, FaultPlan};
use cosmos_pubsub::recovery::RecoveryNetwork;
use cosmos_pubsub::reliable::LossyNetwork;
use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_query::{parse_query, Query, QueryId, Scalar};
use cosmos_util::rng::rng_for;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::Cell;
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

const QUERY_POOL: [&str; 4] = [
    "SELECT * FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k",
    "SELECT R.v, S.v FROM R [Range 30 Seconds], S [Range 30 Seconds] WHERE R.k = S.k",
    "SELECT R.v FROM R [Range 90 Seconds] WHERE R.v > 5",
    "SELECT S.k FROM R [Now], S [Range 120 Seconds] WHERE R.k = S.k",
];

fn stress() -> bool {
    std::env::var("COSMOS_STRESS").is_ok_and(|v| v == "1")
}

fn trial_override() -> Option<u64> {
    std::env::var("COSMOS_RECOVERY_TRIAL").ok().and_then(|v| v.parse().ok())
}

thread_local! {
    static STEP: Cell<u32> = const { Cell::new(0) };
}

/// A random connected topology with alternate paths (extra edges let
/// routing heal around a crashed host).
fn random_topology(rng: &mut StdRng) -> Topology {
    let n = rng.gen_range(5u32..11);
    let mut topo = Topology::new(n as usize);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        topo.add_edge(NodeId(i), NodeId(j), rng.gen_range(1.0..5.0));
    }
    for _ in 0..rng.gen_range(1..5) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && topo.edge_latency(NodeId(a), NodeId(b)).is_none() {
            topo.add_edge(NodeId(a), NodeId(b), rng.gen_range(1.0..5.0));
        }
    }
    topo
}

fn msg(rng: &mut StdRng, ts: i64) -> Message {
    Message::new(if rng.gen_bool(0.5) { "R" } else { "S" }, ts)
        .with("k", Scalar::Int(rng.gen_range(0i64..5)))
        .with("v", Scalar::Int(rng.gen_range(-20i64..20)))
}

/// Nodes reachable from `from` in the live topology, ignoring nodes in
/// `dead` (crashed hosts are isolated, but the guard must also hold for
/// a host we are *about* to kill).
fn reachable(topo: &Topology, from: NodeId, dead: &HashSet<NodeId>) -> HashSet<NodeId> {
    let mut seen = HashSet::from([from]);
    let mut stack = vec![from];
    while let Some(u) = stack.pop() {
        for (v, _) in topo.neighbors(u) {
            if !dead.contains(&v) && seen.insert(v) {
                stack.push(v);
            }
        }
    }
    seen
}

/// Per-host crash-free twin: the same publish sequence through a bare
/// engine, in publish order.
struct Twin {
    engine: StreamEngine,
    outputs: Vec<ResultTuple>,
}

struct Harness {
    r: RecoveryNetwork,
    twins: BTreeMap<NodeId, Twin>,
    sources: Vec<NodeId>,
    /// Crashed hosts in crash order. Restores pop the top: reverse
    /// crash order re-adds exactly the edges each fail removed (every
    /// saved endpoint is up again by then), so each restore rebuilds
    /// the pre-crash topology and the host rejoins reachable — the
    /// invariant the exactly-once feed cross-check needs.
    crash_stack: Vec<NodeId>,
    /// Non-host subscriber ids currently installed.
    churn_subs: Vec<u64>,
    next_sub: u64,
    nodes: u32,
}

impl Harness {
    fn down_hosts(&self) -> HashSet<NodeId> {
        self.r.host_nodes().filter(|&n| !self.r.is_up(n)).collect()
    }

    /// `true` if killing `victim` (on top of the already-down hosts)
    /// leaves every other live host reachable from every source — the
    /// reliable plane's exactly-once feed guarantee needs the path.
    fn can_kill(&self, victim: NodeId) -> bool {
        let mut dead = self.down_hosts();
        dead.insert(victim);
        let topo = self.r.network().topology();
        self.sources.iter().all(|&src| {
            let seen = reachable(topo, src, &dead);
            self.r.host_nodes().all(|h| h == victim || dead.contains(&h) || seen.contains(&h))
        })
    }

    /// Publishes through the recovery plane and through every host's
    /// crash-free twin (twins never crash, so they consume immediately).
    fn publish(&mut self, m: Message) {
        for twin in self.twins.values_mut() {
            twin.outputs.extend(twin.engine.push(m.clone()));
        }
        assert!(self.r.publish(m), "R and S are advertised");
    }

    fn converged(&self, trial: u64, step: u32) {
        self.r
            .network()
            .check_ledger_consistency()
            .unwrap_or_else(|e| panic!("ledger inconsistent (trial {trial}, step {step}): {e}"));
        for node in self.r.host_nodes().collect::<Vec<_>>() {
            assert_eq!(
                self.r.retained(node) as u64,
                self.r.input_seq(node) - self.r.acked_watermark(node),
                "retention bound violated at host {node} (trial {trial}, step {step})"
            );
            if self.r.is_up(node) {
                let twin = &self.twins[&node];
                assert_eq!(
                    self.r.output_log(node),
                    &twin.outputs[..],
                    "host {node} output log diverged from its crash-free twin \
                     (trial {trial}, step {step})"
                );
                assert_eq!(
                    self.r.engine_stats(node),
                    twin.engine.total_stats(),
                    "host {node} stats diverged from its crash-free twin \
                     (trial {trial}, step {step})"
                );
            }
        }
    }
}

/// Adversary-activity counters, summed across a suite run.
#[derive(Default)]
struct Activity {
    crashes: u64,
    restores: u64,
    checkpoints: u64,
    outputs: u64,
    faults: u64,
}

fn run_trial(trial: u64, cfg: FaultConfig, act: &mut Activity) {
    let mut rng = rng_for(trial, "engine-recovery");
    let topo = random_topology(&mut rng);
    let nodes = topo.node_count() as u32;
    let mut net = BrokerNetwork::new(topo);
    // Distinct sources for R and S, so a host can sit at neither.
    let src_r = NodeId(rng.gen_range(0..nodes));
    let src_s = NodeId((src_r.0 + 1 + rng.gen_range(0..nodes - 1)) % nodes);
    net.advertise("R", src_r);
    net.advertise("S", src_s);
    let lossy = LossyNetwork::new(net, FaultPlan::new(rng.gen(), cfg));
    let interval = rng.gen_range(2_000u64..20_000);
    let mut r = RecoveryNetwork::new(lossy, interval);
    // Host engines at 1–2 non-source brokers.
    let candidates: Vec<NodeId> =
        (0..nodes).map(NodeId).filter(|&n| n != src_r && n != src_s).collect();
    let n_hosts = rng.gen_range(1..=2.min(candidates.len()));
    let mut twins = BTreeMap::new();
    for i in 0..n_hosts {
        let node = candidates[(rng.gen_range(0..candidates.len()) + i) % candidates.len()];
        if twins.contains_key(&node) {
            continue;
        }
        let queries: Vec<(QueryId, Query)> = (0..rng.gen_range(1..=3))
            .map(|j| {
                let q = QUERY_POOL[rng.gen_range(0..QUERY_POOL.len())];
                (QueryId(j + 1), parse_query(q).expect("pool query parses"))
            })
            .collect();
        r.host_engine(node, queries.clone());
        let mut engine = StreamEngine::new();
        for (id, q) in &queries {
            engine.add_query(*id, q.clone());
        }
        twins.insert(node, Twin { engine, outputs: Vec::new() });
    }
    let mut h = Harness {
        r,
        twins,
        sources: vec![src_r, src_s],
        crash_stack: Vec::new(),
        churn_subs: Vec::new(),
        next_sub: 0,
        nodes,
    };
    let mut ts = 0i64;
    for step in 0..rng.gen_range(30u32..60) {
        STEP.set(step);
        let roll = rng.gen_range(0u32..100);
        if roll < 40 {
            // Publish a small batch and settle: windows fill gradually, so
            // most crashes land on partially filled windows with joins in
            // flight.
            for _ in 0..rng.gen_range(1u32..6) {
                ts += rng.gen_range(1i64..3_000);
                let m = msg(&mut rng, ts);
                h.publish(m);
            }
            h.r.settle();
        } else if roll < 52 {
            let up: Vec<NodeId> = h.r.host_nodes().filter(|&n| h.r.is_up(n)).collect();
            if !up.is_empty() {
                h.r.checkpoint_now(up[rng.gen_range(0..up.len())]);
                act.checkpoints += 1;
            }
        } else if roll < 70 {
            // Kill a live host — sometimes checkpointing it first, so
            // checkpoints race the crash at zero distance.
            let killable: Vec<NodeId> =
                h.r.host_nodes().filter(|&n| h.r.is_up(n) && h.can_kill(n)).collect();
            if !killable.is_empty() {
                let n = killable[rng.gen_range(0..killable.len())];
                if rng.gen_bool(0.3) {
                    h.r.checkpoint_now(n);
                    act.checkpoints += 1;
                }
                h.r.crash_host(n);
                h.crash_stack.push(n);
                act.crashes += 1;
            }
        } else if roll < 85 {
            if let Some(n) = h.crash_stack.pop() {
                h.r.restore_host(n);
                act.restores += 1;
            }
        } else if roll < 93 || h.churn_subs.is_empty() {
            // Non-host subscriber arrival (churn must hit quiescence).
            h.r.settle();
            let id = h.next_sub;
            h.next_sub += 1;
            let node = NodeId(rng.gen_range(0..h.nodes));
            if !h.down_hosts().contains(&node) {
                let sub = Subscription::builder(node)
                    .id(SubId(id))
                    .stream(
                        if rng.gen_bool(0.5) { "R" } else { "S" },
                        StreamProjection::All,
                        vec![],
                    )
                    .build();
                h.r.network_mut().subscribe(sub);
                h.churn_subs.push(id);
            }
        } else {
            h.r.settle();
            let at = rng.gen_range(0..h.churn_subs.len());
            let id = h.churn_subs.swap_remove(at);
            h.r.network_mut().unsubscribe(SubId(id));
        }
        h.converged(trial, step);
    }
    // Final convergence: everyone restored (reverse crash order),
    // everything replayed.
    STEP.set(u32::MAX);
    while let Some(n) = h.crash_stack.pop() {
        h.r.restore_host(n);
        act.restores += 1;
    }
    h.r.settle();
    h.converged(trial, u32::MAX);
    act.outputs += h.r.host_nodes().map(|n| h.r.output_log(n).len() as u64).sum::<u64>();
    act.faults += h.r.lossy().fault_plan().total_injected();
}

fn run_suite(trials: u64, cfg: FaultConfig) -> Activity {
    let mut act = Activity::default();
    for trial in 0..trials {
        if trial_override().is_some_and(|t| t != trial) {
            continue;
        }
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| run_trial(trial, cfg, &mut act))) {
            let step = STEP.get();
            let at =
                if step == u32::MAX { "final convergence".into() } else { format!("op {step}") };
            eprintln!(
                "engine-recovery trial {trial} failed at {at}; rerun with \
                 COSMOS_RECOVERY_TRIAL={trial} cargo test -p cosmos-pubsub --test engine_recovery"
            );
            resume_unwind(e);
        }
    }
    // The suite must actually exercise the machinery it pins — unless a
    // single-trial override narrowed the run on purpose.
    if trial_override().is_none() {
        assert!(act.crashes >= trials, "host crashes barely fired ({} crashes)", act.crashes);
        assert!(act.restores == act.crashes, "every crash must be restored");
        assert!(act.checkpoints >= trials, "checkpoints barely fired ({})", act.checkpoints);
        assert!(act.outputs > 200, "hosted engines barely produced output ({})", act.outputs);
    }
    act
}

/// Clean message plane: isolates checkpoint/replay correctness from
/// message faults.
#[test]
fn hosted_engines_recover_over_clean_plane() {
    run_suite(if stress() { 40 } else { 14 }, FaultConfig::clean());
}

/// Seeded lossy plane: drops, duplicates, and reorders underneath the
/// recovery machinery must leave no trace in the recovered output.
#[test]
fn hosted_engines_recover_over_lossy_plane() {
    let cfg = if stress() {
        FaultConfig { drop: 0.12, duplicate: 0.08, reorder: 0.1, max_extra_ticks: 1200 }
    } else {
        FaultConfig { drop: 0.07, duplicate: 0.05, reorder: 0.06, max_extra_ticks: 800 }
    };
    let act = run_suite(if stress() { 40 } else { 14 }, cfg);
    if trial_override().is_none() {
        assert!(act.faults > 100, "fault plan barely fired ({} faults)", act.faults);
    }
}
