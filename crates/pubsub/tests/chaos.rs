//! Chaos differential suite: the full fault plane against the fault-free
//! wholesale oracle.
//!
//! Every trial drives **three** networks over the same random topology
//! through the same interleaving of subscription churn, link flaps, and
//! whole-broker crashes/recoveries:
//!
//! - `lossy` — the incremental network wrapped in a
//!   [`LossyNetwork`], publishing over a seeded drop/duplicate/reorder
//!   schedule countered by per-link reliable delivery;
//! - `clean` — the incremental network on a perfect message plane,
//!   alternating serial [`BrokerNetwork::publish`] batches with the
//!   parallel [`BrokerNetwork::publish_shared`] snapshot plane;
//! - `oracle` — the linear-scan network maintained exclusively by the
//!   `*_wholesale` rebuild-the-world twins, publishing serially.
//!
//! After every publish batch the lossy plane is drained to quiescence
//! and all three must agree **bit-for-bit**: the converged delivery log
//! (contents and order) equals the oracle's serial log, and per-link
//! goodput equals the oracle's link counters — retransmissions,
//! duplicates, and reorderings must leave no trace beyond the overhead
//! ledger. [`BrokerNetwork::check_ledger_consistency`] is asserted on
//! every network after every control-plane operation.
//!
//! `COSMOS_STRESS=1` raises the trial count and the fault rates. A
//! failing trial prints its seed and op index; `COSMOS_CHAOS_TRIAL=<n>`
//! reruns exactly that trial.

use cosmos_net::{NodeId, Topology};
use cosmos_pubsub::broker::BrokerNetwork;
use cosmos_pubsub::fault::{FaultConfig, FaultPlan};
use cosmos_pubsub::reliable::LossyNetwork;
use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_query::{AttrRef, CmpOp, Predicate, Scalar};
use cosmos_util::rng::rng_for;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

const STREAMS: [&str; 3] = ["A", "B", "C"];
const ATTRS: [&str; 3] = ["a", "b", "c"];
const OPS: [CmpOp; 6] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];

fn stress() -> bool {
    std::env::var("COSMOS_STRESS").is_ok_and(|v| v == "1")
}

/// `COSMOS_CHAOS_TRIAL=<n>` replays a single failing trial.
fn trial_override() -> Option<u64> {
    std::env::var("COSMOS_CHAOS_TRIAL").ok().and_then(|v| v.parse().ok())
}

thread_local! {
    /// Op index of the step currently executing, for failure reports.
    static STEP: Cell<u32> = const { Cell::new(0) };
}

/// A random connected topology: a spanning tree plus a few extra edges
/// (the extras give crashes and flaps alternate paths to re-route over).
fn random_topology(rng: &mut StdRng) -> Topology {
    let n = rng.gen_range(5u32..12);
    let mut topo = Topology::new(n as usize);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        topo.add_edge(NodeId(i), NodeId(j), rng.gen_range(1.0..5.0));
    }
    for _ in 0..rng.gen_range(1..5) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && topo.edge_latency(NodeId(a), NodeId(b)).is_none() {
            topo.add_edge(NodeId(a), NodeId(b), rng.gen_range(1.0..5.0));
        }
    }
    topo
}

fn random_scalar(rng: &mut StdRng) -> Scalar {
    if rng.gen_bool(0.3) {
        Scalar::Float(rng.gen_range(-5.0..45.0))
    } else {
        Scalar::Int(rng.gen_range(-5i64..45))
    }
}

fn random_sub(rng: &mut StdRng, id: u64, nodes: u32) -> Subscription {
    let mut builder = Subscription::builder(NodeId(rng.gen_range(0..nodes))).id(SubId(id));
    let first = rng.gen_range(0..STREAMS.len());
    let take_second = rng.gen_bool(0.3);
    for (i, stream) in STREAMS.iter().enumerate() {
        if i != first && (!take_second || i != (first + 1) % STREAMS.len()) {
            continue;
        }
        let filters = (0..rng.gen_range(0..3))
            .map(|_| Predicate::Cmp {
                attr: AttrRef::new(*stream, ATTRS[rng.gen_range(0..ATTRS.len())]),
                op: OPS[rng.gen_range(0..OPS.len())],
                value: random_scalar(rng),
            })
            .collect();
        let proj = if rng.gen_bool(0.5) {
            StreamProjection::All
        } else {
            StreamProjection::attrs(ATTRS.iter().filter(|_| rng.gen_bool(0.6)).copied())
        };
        builder = builder.stream(*stream, proj, filters);
    }
    builder.build()
}

fn random_message(rng: &mut StdRng, ts: i64) -> Message {
    let stream =
        if rng.gen_bool(0.9) { STREAMS[rng.gen_range(0..STREAMS.len())] } else { "unadvertised" };
    let mut msg = Message::new(stream, ts);
    for attr in ATTRS {
        if rng.gen_bool(0.75) {
            msg = msg.with(attr, random_scalar(rng));
        }
    }
    msg
}

fn edges_of(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for u in topo.nodes() {
        for (v, _) in topo.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// The three networks under the same churn schedule, plus the bookkeeping
/// the harness needs to undo incidents.
struct Trial {
    lossy: LossyNetwork,
    clean: BrokerNetwork,
    oracle: BrokerNetwork,
    live: Vec<u64>,
    home: HashMap<u64, NodeId>,
    failed_links: Vec<(NodeId, NodeId, f64)>,
    failed_nodes: Vec<(NodeId, Vec<(NodeId, f64)>)>,
    next_id: u64,
}

impl Trial {
    /// `true` while broker `v` is crashed: no link may re-attach to it
    /// until its own recovery.
    fn is_down(&self, v: NodeId) -> bool {
        self.failed_nodes.iter().any(|&(n, _)| n == v)
    }

    fn consistent(&self, what: &str, trial: u64, step: u32) {
        for (name, net) in
            [("lossy", self.lossy.network()), ("clean", &self.clean), ("oracle", &self.oracle)]
        {
            net.check_ledger_consistency().unwrap_or_else(|e| {
                panic!("{name} ledger inconsistent after {what} (trial {trial}, step {step}): {e}")
            });
        }
    }

    fn subscribe(&mut self, sub: Subscription) {
        self.home.insert(sub.id.0, sub.subscriber);
        self.live.push(sub.id.0);
        self.lossy.network_mut().subscribe(sub.clone());
        self.clean.subscribe(sub.clone());
        self.oracle.subscribe(sub);
    }

    fn unsubscribe(&mut self, id: u64) {
        self.home.remove(&id);
        self.lossy.network_mut().unsubscribe(SubId(id));
        self.clean.unsubscribe(SubId(id));
        self.oracle.unsubscribe_wholesale(SubId(id));
    }
}

/// One randomized trial of interleaved broker crashes, link flaps, and
/// seeded message-fault schedules; returns `(injected faults,
/// retransmissions)` for the suite's activity floor.
fn run_trial(trial: u64, cfg: FaultConfig) -> (u64, u64) {
    let mut total_retransmissions = 0u64;
    {
        let mut rng = rng_for(trial, "chaos");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut t = Trial {
            lossy: LossyNetwork::new(
                BrokerNetwork::new(topo.clone()),
                FaultPlan::new(rng.gen(), cfg),
            ),
            clean: BrokerNetwork::new(topo.clone()),
            oracle: BrokerNetwork::new_linear(topo),
            live: Vec::new(),
            home: HashMap::new(),
            failed_links: Vec::new(),
            failed_nodes: Vec::new(),
            next_id: 0,
        };
        for stream in STREAMS {
            let src = NodeId(rng.gen_range(0..nodes));
            t.lossy.network_mut().advertise(stream, src);
            t.clean.advertise(stream, src);
            t.oracle.advertise(stream, src);
        }
        for _ in 0..rng.gen_range(10u64..40) {
            let id = t.next_id;
            t.next_id += 1;
            let sub = random_sub(&mut rng, id, nodes);
            t.subscribe(sub);
        }
        let mut ts = 0i64;
        let mut batch = 0u32;
        for step in 0..rng.gen_range(35u32..70) {
            STEP.set(step);
            let roll = rng.gen_range(0u32..100);
            if roll < 10 && !t.live.is_empty() {
                for _ in 0..rng.gen_range(1usize..4).min(t.live.len()) {
                    let id = t.live.swap_remove(rng.gen_range(0..t.live.len()));
                    t.unsubscribe(id);
                    t.consistent("unsubscribe", trial, step);
                }
            } else if roll < 18 {
                for _ in 0..rng.gen_range(1u32..3) {
                    let id = t.next_id;
                    t.next_id += 1;
                    let sub = random_sub(&mut rng, id, nodes);
                    t.subscribe(sub);
                    t.consistent("subscribe", trial, step);
                }
            } else if roll < 26 {
                let edges = edges_of(t.lossy.network().topology());
                if !edges.is_empty() {
                    let (a, b) = edges[rng.gen_range(0..edges.len())];
                    let lat = t.lossy.network().topology().edge_latency(a, b).unwrap();
                    assert!(t.lossy.network_mut().fail_link(a, b));
                    assert!(t.clean.fail_link(a, b));
                    assert!(t.oracle.fail_link_wholesale(a, b));
                    t.failed_links.push((a, b, lat));
                    t.consistent("fail_link", trial, step);
                }
            } else if roll < 33 && !t.failed_links.is_empty() {
                // A failed link may only come back while both endpoints
                // are up — a crashed broker's links return with *it*.
                let at = rng.gen_range(0..t.failed_links.len());
                let (a, b, lat) = t.failed_links[at];
                if !t.is_down(a) && !t.is_down(b) {
                    t.failed_links.swap_remove(at);
                    assert!(t.lossy.network_mut().restore_link(a, b, lat));
                    assert!(t.clean.restore_link(a, b, lat));
                    assert!(t.oracle.restore_link_wholesale(a, b, lat));
                    t.consistent("restore_link", trial, step);
                }
            } else if roll < 41 {
                // Crash a random attached broker. All three networks must
                // agree on the detached footprint, and the crashed
                // broker's local subscribers leave the population.
                let attached: Vec<NodeId> = t
                    .lossy
                    .network()
                    .topology()
                    .nodes()
                    .filter(|&u| t.lossy.network().topology().degree(u) > 0)
                    .collect();
                if !attached.is_empty() {
                    let n = attached[rng.gen_range(0..attached.len())];
                    let edges = t.lossy.network_mut().fail_node(n).expect("attached");
                    assert_eq!(t.clean.fail_node(n).as_ref(), Some(&edges));
                    assert_eq!(t.oracle.fail_node_wholesale(n).as_ref(), Some(&edges));
                    let home = &t.home;
                    t.live.retain(|id| home.get(id) != Some(&n));
                    t.home.retain(|_, node| *node != n);
                    t.failed_nodes.push((n, edges));
                    t.consistent("fail_node", trial, step);
                }
            } else if roll < 48 && !t.failed_nodes.is_empty() {
                // Recover a crashed broker. Links toward brokers that are
                // still down stay detached (they come back, if ever, with
                // the other endpoint's recovery).
                let at = rng.gen_range(0..t.failed_nodes.len());
                let (n, saved) = t.failed_nodes[at].clone();
                let up: Vec<(NodeId, f64)> =
                    saved.iter().copied().filter(|&(v, _)| !t.is_down(v)).collect();
                if !up.is_empty() {
                    t.failed_nodes.swap_remove(at);
                    assert!(t.lossy.network_mut().restore_node(n, &up));
                    assert!(t.clean.restore_node(n, &up));
                    assert!(t.oracle.restore_node_wholesale(n, &up));
                    t.consistent("restore_node", trial, step);
                }
            } else {
                // A publish batch, drained to quiescence, then the full
                // three-way convergence check.
                batch += 1;
                let shared = batch.is_multiple_of(2);
                for _ in 0..rng.gen_range(1u32..5) {
                    ts += rng.gen_range(1i64..1_000);
                    let msg = random_message(&mut rng, ts);
                    t.lossy.publish_lossy(msg.clone());
                    let dc = if shared {
                        let out = t.clean.publish_shared(msg.clone());
                        let n = out.delivered();
                        t.clean.absorb(out);
                        n
                    } else {
                        t.clean.publish(msg.clone())
                    };
                    let dl = t.oracle.publish_linear(msg);
                    assert_eq!(dc, dl, "delivery count diverged (trial {trial}, step {step})");
                }
                t.lossy.run_to_quiescence();
                assert_eq!(
                    t.lossy.converged_log(),
                    t.oracle.log().deliveries(),
                    "lossy log failed to converge to the oracle (trial {trial}, step {step})"
                );
                assert_eq!(
                    t.clean.log().deliveries(),
                    t.oracle.log().deliveries(),
                    "clean log diverged from the oracle (trial {trial}, step {step})"
                );
                assert_eq!(
                    t.lossy.goodput_stats(),
                    t.oracle.all_link_stats(),
                    "lossy goodput diverged from oracle link stats (trial {trial}, step {step})"
                );
                assert_eq!(
                    t.clean.all_link_stats(),
                    t.oracle.all_link_stats(),
                    "clean link stats diverged from the oracle (trial {trial}, step {step})"
                );
                // Segment verified on all three: restart the logs so
                // later comparisons stay sharp (and fast).
                total_retransmissions += t.lossy.retransmissions();
                t.lossy.reset_stats();
                t.clean.reset_stats();
                t.oracle.reset_stats();
            }
        }
        total_retransmissions += t.lossy.retransmissions();
        (t.lossy.fault_plan().total_injected(), total_retransmissions)
    }
}

/// ≥20 randomized trials of interleaved broker crashes, link flaps, and
/// seeded message-fault schedules: the lossy plane must converge to the
/// fault-free wholesale oracle's exact delivery log and per-link stats,
/// with ledger consistency asserted after every operation. A failing
/// trial reports its seed and op index for one-line reproduction.
#[test]
fn chaos_converges_to_fault_free_oracle() {
    let trials: u64 = if stress() { 60 } else { 24 };
    let cfg = if stress() {
        FaultConfig { drop: 0.12, duplicate: 0.08, reorder: 0.1, max_extra_ticks: 1500 }
    } else {
        FaultConfig { drop: 0.07, duplicate: 0.04, reorder: 0.06, max_extra_ticks: 900 }
    };
    let (mut total_faults, mut total_retransmissions) = (0u64, 0u64);
    for trial in 0..trials {
        if trial_override().is_some_and(|t| t != trial) {
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| run_trial(trial, cfg))) {
            Ok((faults, rtx)) => {
                total_faults += faults;
                total_retransmissions += rtx;
            }
            Err(e) => {
                eprintln!(
                    "chaos trial {trial} failed at op {}; rerun with \
                     COSMOS_CHAOS_TRIAL={trial} cargo test -p cosmos-pubsub --test chaos",
                    STEP.get()
                );
                resume_unwind(e);
            }
        }
    }
    // The suite must actually have exercised the adversary: plenty of
    // injected faults, and drops forcing timer-driven retransmissions —
    // unless a single-trial override narrowed the run on purpose.
    if trial_override().is_none() {
        assert!(total_faults > 500, "fault plan barely fired ({total_faults} faults)");
        assert!(total_retransmissions > 50, "retransmission path barely fired");
    }
}

/// Deterministic replay: the same seed must reproduce the exact same
/// converged log, fault schedule, and overhead accounting.
#[test]
fn chaos_trials_replay_deterministically() {
    let run = || {
        let mut rng = rng_for(99, "chaos-replay");
        let topo = random_topology(&mut rng);
        let nodes = topo.node_count() as u32;
        let mut net = BrokerNetwork::new(topo);
        for stream in STREAMS {
            net.advertise(stream, NodeId(rng.gen_range(0..nodes)));
        }
        for id in 0..20u64 {
            net.subscribe(random_sub(&mut rng, id, nodes));
        }
        let mut lossy = LossyNetwork::new(
            net,
            FaultPlan::new(
                7,
                FaultConfig { drop: 0.1, duplicate: 0.08, reorder: 0.1, max_extra_ticks: 700 },
            ),
        );
        for ts in 0..60 {
            lossy.publish_lossy(random_message(&mut rng, ts));
        }
        lossy.run_to_quiescence();
        (
            lossy.converged_log(),
            lossy.fault_plan().injected(),
            lossy.retransmissions(),
            lossy.physical_stats(),
        )
    };
    let (log_a, faults_a, rtx_a, phys_a) = run();
    let (log_b, faults_b, rtx_b, phys_b) = run();
    assert_eq!(log_a, log_b);
    assert_eq!(faults_a, faults_b);
    assert_eq!(rtx_a, rtx_b);
    assert_eq!(phys_a, phys_b);
    assert!(faults_a.0 > 0 && rtx_a > 0, "replay must exercise drops and retransmissions");
}
