//! Differential twin suite for the tiered threshold lists: a
//! [`TieredList`] driven through randomized insert / tombstone / sweep /
//! probe interleavings against a dense sorted `Vec` reference applying
//! the original `partition_point` semantics. The tiered layout must hold
//! the **identical global element order** (equal keys included — inserts
//! land before stored equal keys, exactly like the dense
//! `partition_point(total_cmp is_lt)` insert), and every walk must yield
//! the same elements in the same order as the dense range it replaces:
//! the counting index's numeric prefix/suffix/equal probes and the
//! covering buckets' `total_cmp` probes, `-0.0`/`0.0` included. NaN keys
//! are excluded by construction (both the counting index and the
//! covering buckets drop NaN thresholds before the lists ever see them),
//! so the twin pins NaN handling at the probe side only.

use cosmos_pubsub::tiered::{TieredList, RUN_MAX};
use cosmos_util::rng::rng_for;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// The dense reference: the exact layout and insert rule the routing
/// index used before the tiered conversion.
#[derive(Default)]
struct DenseTwin(Vec<(f64, u32)>);

impl DenseTwin {
    fn insert(&mut self, key: f64, value: u32) {
        let at = self.0.partition_point(|(k, _)| k.total_cmp(&key).is_lt());
        self.0.insert(at, (key, value));
    }

    fn retain_vals(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.0.retain(|&(_, v)| keep(v));
    }
}

/// Element-for-element equality, keys compared bitwise so `-0.0` and
/// `0.0` stay distinguishable.
fn assert_same_elements(tiered: &TieredList, dense: &DenseTwin, ctx: &str) {
    assert_eq!(tiered.len(), dense.0.len(), "{ctx}: length");
    let got: Vec<(u64, u32)> = tiered.iter().map(|(k, v)| (k.to_bits(), v)).collect();
    let want: Vec<(u64, u32)> = dense.0.iter().map(|&(k, v)| (k.to_bits(), v)).collect();
    assert_eq!(got, want, "{ctx}: global element order");
}

/// Compares every walk family against the dense `partition_point`
/// windows for one probe value: the numeric match probes (`<`, `<=`,
/// `>`, `>=`, `=`) and the `total_cmp` covering probes.
fn assert_same_walks(tiered: &TieredList, dense: &DenseTwin, v: f64, ctx: &str) {
    let collect = |walk: &dyn Fn(&mut Vec<u32>)| {
        let mut out = Vec::new();
        walk(&mut out);
        out
    };
    let vals = |r: &[(f64, u32)]| r.iter().map(|&(_, m)| m).collect::<Vec<u32>>();

    // Numeric: `attr > t` ⇔ prefix t < v.
    let got = collect(&|out| tiered.for_prefix(|k| k < v, |run| out.extend(vals(run))));
    let end = dense.0.partition_point(|(k, _)| *k < v);
    assert_eq!(got, vals(&dense.0[..end]), "{ctx}: prefix k < {v}");
    // `attr >= t` ⇔ prefix t <= v.
    let got = collect(&|out| tiered.for_prefix(|k| k <= v, |run| out.extend(vals(run))));
    let end = dense.0.partition_point(|(k, _)| *k <= v);
    assert_eq!(got, vals(&dense.0[..end]), "{ctx}: prefix k <= {v}");
    // `attr < t` ⇔ suffix t > v.
    let got = collect(&|out| tiered.for_suffix(|k| k > v, |run| out.extend(vals(run))));
    let start = dense.0.partition_point(|(k, _)| *k <= v);
    assert_eq!(got, vals(&dense.0[start..]), "{ctx}: suffix k > {v}");
    // `attr <= t` ⇔ suffix t >= v.
    let got = collect(&|out| tiered.for_suffix(|k| k >= v, |run| out.extend(vals(run))));
    let start = dense.0.partition_point(|(k, _)| *k < v);
    assert_eq!(got, vals(&dense.0[start..]), "{ctx}: suffix k >= {v}");
    // `attr = t` ⇔ the numeric equal range.
    let got = collect(&|out| {
        tiered.for_eq(|k| k < v, |k| k <= v, |run| out.extend(vals(run)));
    });
    let lo = dense.0.partition_point(|(k, _)| *k < v);
    let hi = dense.0.partition_point(|(k, _)| *k <= v);
    assert_eq!(got, vals(&dense.0[lo..hi]), "{ctx}: eq {v}");

    // Covering probes: total_cmp orderings (the buckets' bound walks).
    let got = collect(&|out| {
        tiered.for_prefix(|k| k.total_cmp(&v).is_le(), |run| out.extend(vals(run)));
    });
    let end = dense.0.partition_point(|(k, _)| k.total_cmp(&v).is_le());
    assert_eq!(got, vals(&dense.0[..end]), "{ctx}: total_cmp prefix <= {v}");
    let got = collect(&|out| {
        tiered.for_suffix(|k| k.total_cmp(&v).is_ge(), |run| out.extend(vals(run)));
    });
    let start = dense.0.partition_point(|(k, _)| k.total_cmp(&v).is_lt());
    assert_eq!(got, vals(&dense.0[start..]), "{ctx}: total_cmp suffix >= {v}");
    let got = collect(&|out| {
        tiered.for_eq(
            |k| k.total_cmp(&v).is_lt(),
            |k| k.total_cmp(&v).is_le(),
            |run| out.extend(vals(run)),
        );
    });
    let lo = dense.0.partition_point(|(k, _)| k.total_cmp(&v).is_lt());
    let hi = dense.0.partition_point(|(k, _)| k.total_cmp(&v).is_le());
    assert_eq!(got, vals(&dense.0[lo..hi]), "{ctx}: total_cmp eq {v}");
}

/// Key pool biased toward collisions and the signed-zero pair, so runs
/// fill with long equal-key stretches and every boundary case fires.
fn random_key(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..10) {
        0 => -0.0,
        1 => 0.0,
        2..=5 => f64::from(rng.gen_range(-20i32..20)),
        _ => rng.gen_range(-1_000.0..1_000.0),
    }
}

/// The randomized interleaving driver: inserts (collision-heavy keys),
/// tombstones applied through per-run sweeps, and probe checks after
/// every phase, across populations crossing several run splits.
#[test]
fn tiered_list_equals_dense_twin_under_churn() {
    let probes = [-0.0, 0.0, -1.0, 5.0, 19.0, -1_000.0, 1_000.0, 0.5];
    for trial in 0..12u64 {
        let mut rng = rng_for(trial, "tiered-twin");
        let mut tiered = TieredList::new();
        let mut dense = DenseTwin::default();
        let mut next_val = 0u32;
        for phase in 0..rng.gen_range(3u32..7) {
            // Insert burst: enough to split runs several times over.
            for _ in 0..rng.gen_range(1..3 * RUN_MAX) {
                let k = random_key(&mut rng);
                tiered.insert(k, next_val);
                dense.insert(k, next_val);
                next_val += 1;
            }
            let ctx = format!("trial {trial} phase {phase} after inserts");
            assert_same_elements(&tiered, &dense, &ctx);
            for &v in &probes {
                assert_same_walks(&tiered, &dense, v, &ctx);
            }
            // Tombstone sweep: kill a random residue class, as the
            // index's `sweep_dead` does when tombstones dominate.
            let (m, r) = (rng.gen_range(2u32..7), rng.gen_range(0u32..2));
            tiered.retain_vals(|val| val % m != r);
            dense.retain_vals(|val| val % m != r);
            let ctx = format!("trial {trial} phase {phase} after sweep % {m} != {r}");
            assert_same_elements(&tiered, &dense, &ctx);
            for &v in &probes {
                assert_same_walks(&tiered, &dense, v, &ctx);
            }
        }
    }
}

/// Bulk loads must hold the same multiset in the same key order; the
/// value order among equal keys may differ from point inserts (bulk is
/// first-come, point inserts are last-come), which every bulk-load
/// consumer tolerates by sorting candidates — so the twin asserts key
/// order exactly and values as a multiset per equal-key group.
#[test]
fn bulk_load_matches_dense_sort() {
    for trial in 0..8u64 {
        let mut rng = rng_for(trial, "tiered-bulk");
        let items: Vec<(f64, u32)> =
            (0..rng.gen_range(1u32..2_000)).map(|i| (random_key(&mut rng), i)).collect();
        let bulk = TieredList::from_unsorted(items.clone());
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(bulk.len(), sorted.len());
        let keys: Vec<u64> = bulk.iter().map(|(k, _)| k.to_bits()).collect();
        let want_keys: Vec<u64> = sorted.iter().map(|(k, _)| k.to_bits()).collect();
        assert_eq!(keys, want_keys, "trial {trial}: key order");
        let mut got: Vec<(u64, u32)> = bulk.iter().map(|(k, v)| (k.to_bits(), v)).collect();
        let mut want: Vec<(u64, u32)> = sorted.iter().map(|&(k, v)| (k.to_bits(), v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "trial {trial}: multiset");
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(f64),
    Sweep { modulus: u32, residue: u32 },
    Probe(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Key distribution mirrors `random_key`: signed zeros, a small
    // collision-heavy integer band, and a wide float band.
    (0u32..9, 0u32..10, -1_000.0..1_000.0f64, -15i32..15, 2u32..6, 0u32..3).prop_map(
        |(kind, key_kind, wide, narrow, modulus, residue)| {
            let key = match key_kind {
                0 => -0.0,
                1 => 0.0,
                2..=5 => f64::from(narrow),
                _ => wide,
            };
            match kind {
                0..=5 => Op::Insert(key),
                6 => Op::Sweep { modulus, residue },
                _ => Op::Probe(key),
            }
        },
    )
}

proptest! {
    /// Property form of the twin: any interleaving of inserts, sweeps,
    /// and probes keeps the tiered list element-identical to the dense
    /// reference and every walk window equal.
    #[test]
    fn tiered_twin_holds_for_arbitrary_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut tiered = TieredList::new();
        let mut dense = DenseTwin::default();
        let mut next_val = 0u32;
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    tiered.insert(k, next_val);
                    dense.insert(k, next_val);
                    next_val += 1;
                }
                Op::Sweep { modulus, residue } => {
                    tiered.retain_vals(|v| v % modulus != residue);
                    dense.retain_vals(|v| v % modulus != residue);
                }
                Op::Probe(v) => assert_same_walks(&tiered, &dense, v, "proptest"),
            }
        }
        assert_same_elements(&tiered, &dense, "proptest final");
        assert_same_walks(&tiered, &dense, 0.0, "proptest final");
    }
}
