//! Per-link reliable, exactly-once delivery over a lossy message plane.
//!
//! [`crate::broker::BrokerNetwork::publish`] assumes a perfect transport:
//! `forward()` recursion *is* the network. [`LossyNetwork`] replaces that
//! assumption with an adversarial one — every physical transmission rolls
//! a seeded [`FaultPlan`](crate::fault::FaultPlan) that may drop,
//! duplicate, or reorder it — and layers enough protocol on each directed
//! link that the delivery log still converges **bit-for-bit** to the
//! fault-free serial log once the simulated clock drains.
//!
//! # Sender state machine (per directed link)
//!
//! Frames get monotone sequence numbers at enqueue. At most
//! [`WINDOW`] frames are in flight (unacked); excess queues in `pending`
//! (flow control, so the receiver ring below can never be outrun). One
//! retransmission timer guards the link: armed whenever `unacked` is
//! non-empty, firing after the current backoff ([`Backoff`]: bounded
//! exponential, reset by ack progress). On fire it retransmits only the
//! *first* unacked frame — the receiver buffers out of order, so one
//! frame is enough to restart cumulative progress. Timer cancellation is
//! lazy: each armed timer carries an epoch, and a stale epoch no-ops.
//! A cumulative ack `cum` acknowledges everything `< cum`; an ack with
//! `cum <= base` is a duplicate and ignored (idempotent).
//!
//! # Receiver state machine (per directed link)
//!
//! `cum_next` is the next in-order sequence; a fixed [`WINDOW`]-slot ring
//! indexed `seq % WINDOW` buffers out-of-order arrivals and doubles as
//! the dedup window: a frame below `cum_next` or landing in an occupied
//! slot is a duplicate — dropped, but re-acked so a lost ack cannot
//! wedge the sender. Sender flow control guarantees every live sequence
//! maps to a distinct slot, across arbitrarily many wraparounds. Each
//! in-order acceptance hands the frame to the broker matching layer
//! exactly once, counting **goodput** — which must equal the fault-free
//! link stats — while every physical transmission (originals,
//! retransmits, fault duplicates, acks) counts separately as overhead.
//!
//! # Bit-exact convergence
//!
//! Serial [`BrokerNetwork::publish`] logs deliveries in DFS preorder with
//! children in forward order. Every frame therefore carries its
//! `(publish, path)` key, where `path` is the child-index path from the
//! source; lexicographic order on those keys *is* DFS preorder (a node's
//! own deliveries keep a prefix key, sorting before its subtree). After
//! quiescence, [`LossyNetwork::converged_log`] stable-sorts by key and
//! must equal the fault-free serial log exactly — the chaos suite
//! asserts it against a wholesale-maintained oracle network.

use crate::broker::{BrokerNetwork, Delivery, LinkStats};
use crate::fault::{FaultAction, FaultPlan};
use crate::index::MatchOutput;
use crate::subscription::Message;
use cosmos_net::NodeId;
use cosmos_util::EventQueue;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Sender window / receiver ring size, in frames, per directed link.
pub const WINDOW: usize = 32;
/// Simulated ticks per unit of link latency.
pub const TICKS_PER_LATENCY: f64 = 100.0;
/// Accounted wire size of an ack frame, in bytes.
const ACK_BYTES: u64 = 16;
/// Retransmission timeout: `RTO_RTT_FACTOR * link delay`, then bounded
/// exponential up to `RTO_CAP_FACTOR` times that base.
const RTO_RTT_FACTOR: u64 = 4;
const RTO_CAP_FACTOR: u64 = 64;
/// Event budget for [`LossyNetwork::run_to_quiescence`]: a protocol bug
/// that stops convergence panics instead of hanging the suite.
const MAX_EVENTS_PER_DRAIN: u64 = 200_000_000;

/// Bounded exponential backoff for one link's retransmission timer.
#[derive(Debug, Clone)]
struct Backoff {
    base: u64,
    max: u64,
    cur: u64,
}

impl Backoff {
    fn new(base: u64) -> Self {
        let base = base.max(1);
        Self { base, max: base.saturating_mul(RTO_CAP_FACTOR), cur: base }
    }

    /// Ack progress: the next timeout starts from the base again.
    fn reset(&mut self) {
        self.cur = self.base;
    }

    /// The current timeout; doubles (bounded) for the next one.
    fn next(&mut self) -> u64 {
        let d = self.cur;
        self.cur = self.cur.saturating_mul(2).min(self.max);
        d
    }
}

/// A data frame in flight on one directed link.
#[derive(Debug, Clone)]
struct DataFrame {
    seq: u64,
    publish: u64,
    path: Vec<u32>,
    msg: Message,
}

/// Sender half of one directed link.
#[derive(Debug)]
struct SendState {
    next_seq: u64,
    /// Lowest unacknowledged sequence.
    base: u64,
    unacked: BTreeMap<u64, DataFrame>,
    /// Flow-controlled overflow beyond [`WINDOW`] frames in flight.
    pending: VecDeque<DataFrame>,
    backoff: Backoff,
    timer_epoch: u64,
    timer_armed: bool,
}

impl SendState {
    fn new(rto_base: u64) -> Self {
        Self {
            next_seq: 0,
            base: 0,
            unacked: BTreeMap::new(),
            pending: VecDeque::new(),
            backoff: Backoff::new(rto_base),
            timer_epoch: 0,
            timer_armed: false,
        }
    }
}

/// Receiver half of one directed link: cumulative cursor plus the
/// fixed-size out-of-order ring (the dedup window).
#[derive(Debug)]
struct RecvState {
    cum_next: u64,
    ring: Vec<Option<DataFrame>>,
}

impl RecvState {
    fn new() -> Self {
        Self { cum_next: 0, ring: (0..WINDOW).map(|_| None).collect() }
    }
}

#[derive(Debug)]
enum Event {
    /// A data frame arriving over `from → to`.
    Data { from: NodeId, to: NodeId, frame: DataFrame },
    /// A cumulative ack arriving at the sender of `to → from`'s reverse:
    /// acknowledges the data link `sender → receiver`.
    Ack { receiver: NodeId, sender: NodeId, cum: u64 },
    /// Retransmission timeout for data link `from → to`.
    Rto { from: NodeId, to: NodeId, epoch: u64 },
}

/// One delivery plus its convergence key.
#[derive(Debug, Clone)]
struct LogEntry {
    publish: u64,
    path: Vec<u32>,
    delivery: Delivery,
}

/// A [`BrokerNetwork`] whose message plane is lossy: transmissions roll a
/// seeded [`FaultPlan`], countered per directed link by the reliable
/// sender/receiver state machines above over a deterministic simulated
/// clock ([`EventQueue`]).
///
/// Publishes inject at the source and return immediately;
/// [`LossyNetwork::run_to_quiescence`] drains the clock (arrivals, acks,
/// retransmissions) until silence. Churn goes through
/// [`LossyNetwork::network_mut`], which insists on quiescence — routing
/// state may not change under in-flight traffic.
#[derive(Debug)]
pub struct LossyNetwork {
    net: BrokerNetwork,
    plan: FaultPlan,
    clock: EventQueue<Event>,
    send: HashMap<(NodeId, NodeId), SendState>,
    recv: HashMap<(NodeId, NodeId), RecvState>,
    /// Exactly-once deliveries to the matching layer, undirected keys —
    /// must converge to the fault-free [`BrokerNetwork::all_link_stats`].
    goodput: HashMap<(NodeId, NodeId), LinkStats>,
    /// Every physical transmission: originals, retransmits, fault
    /// duplicates, acks.
    physical: HashMap<(NodeId, NodeId), LinkStats>,
    log: Vec<LogEntry>,
    next_publish: u64,
    retransmissions: u64,
    acks_sent: u64,
    scratch: MatchOutput,
}

impl LossyNetwork {
    /// Wraps `net` under the given fault schedule.
    pub fn new(net: BrokerNetwork, plan: FaultPlan) -> Self {
        Self {
            net,
            plan,
            clock: EventQueue::new(),
            send: HashMap::new(),
            recv: HashMap::new(),
            goodput: HashMap::new(),
            physical: HashMap::new(),
            log: Vec::new(),
            next_publish: 0,
            retransmissions: 0,
            acks_sent: 0,
            scratch: MatchOutput::default(),
        }
    }

    /// The wrapped network, read-only (log, stats, ledger checks).
    pub fn network(&self) -> &BrokerNetwork {
        &self.net
    }

    /// The wrapped network for churn (subscribe, link/node incidents).
    ///
    /// # Panics
    ///
    /// Panics while traffic is in flight: routing state must be quiescent
    /// when it changes, or convergence against a serial oracle is
    /// undefined.
    pub fn network_mut(&mut self) -> &mut BrokerNetwork {
        assert!(self.clock.is_empty(), "churn requires a quiescent message plane");
        &mut self.net
    }

    /// Injects one publish at its advertised source. Local deliveries at
    /// the source happen inline; every forward becomes reliable frames.
    /// Returns `false` for an unadvertised stream. Call
    /// [`LossyNetwork::run_to_quiescence`] (after any batch) to drain.
    pub fn publish_lossy(&mut self, msg: Message) -> bool {
        let Some(src) = self.net.source_of_symbol(msg.stream) else {
            return false;
        };
        let publish = self.next_publish;
        self.next_publish += 1;
        self.process(src, None, publish, Vec::new(), msg);
        true
    }

    /// Drains the simulated clock: arrivals, acks, and retransmissions
    /// fire in deterministic `(tick, FIFO)` order until nothing is
    /// pending. With any drop rate below 1 this terminates: every
    /// retransmission rolls a fresh fault.
    pub fn run_to_quiescence(&mut self) {
        let mut budget = MAX_EVENTS_PER_DRAIN;
        while let Some((_, ev)) = self.clock.pop() {
            budget = budget.checked_sub(1).expect("message plane failed to converge");
            match ev {
                Event::Data { from, to, frame } => self.handle_data(from, to, frame),
                Event::Ack { receiver, sender, cum } => self.handle_ack(sender, receiver, cum),
                Event::Rto { from, to, epoch } => self.handle_rto(from, to, epoch),
            }
        }
    }

    /// The exactly-once delivery log, stable-sorted to serial DFS
    /// preorder — after quiescence, bit-identical to what the fault-free
    /// serial network logs for the same publishes.
    pub fn converged_log(&self) -> Vec<Delivery> {
        let mut entries: Vec<&LogEntry> = self.log.iter().collect();
        entries.sort_by(|a, b| (a.publish, &a.path).cmp(&(b.publish, &b.path)));
        entries.into_iter().map(|e| e.delivery.clone()).collect()
    }

    /// Number of exactly-once deliveries logged since the last reset —
    /// [`LossyNetwork::converged_log`]'s length without the sort/clone,
    /// cheap enough for benchmark drain checks.
    pub fn delivered(&self) -> usize {
        self.log.len()
    }

    /// Per-link goodput (exactly-once crossings), nonzero links sorted —
    /// directly comparable to [`BrokerNetwork::all_link_stats`].
    pub fn goodput_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        Self::sorted_stats(&self.goodput)
    }

    /// Per-link physical transmissions (retransmit + duplicate + ack
    /// overhead included), nonzero links sorted.
    pub fn physical_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        Self::sorted_stats(&self.physical)
    }

    fn sorted_stats(
        map: &HashMap<(NodeId, NodeId), LinkStats>,
    ) -> Vec<((NodeId, NodeId), LinkStats)> {
        let mut all: Vec<_> = map
            .iter()
            .filter(|(_, s)| s.messages > 0 || s.bytes > 0)
            .map(|(&k, &s)| (k, s))
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// Timer-driven retransmissions so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Acks put on the wire so far.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// The fault schedule (injection telemetry lives here).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current simulated time of the message plane's clock. External
    /// schedules (e.g. checkpoint timers in [`crate::recovery`]) pace
    /// themselves against this tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Clears delivery and traffic accounting (both layers), keeping
    /// protocol state — sequence numbers survive like the wrapped
    /// network's routing state does across [`BrokerNetwork::reset_stats`].
    pub fn reset_stats(&mut self) {
        assert!(self.clock.is_empty(), "reset requires a quiescent message plane");
        self.net.reset_stats();
        self.goodput.clear();
        self.physical.clear();
        self.log.clear();
        self.next_publish = 0;
        self.retransmissions = 0;
        self.acks_sent = 0;
    }

    /// Matches a frame's payload at `node` (the exactly-once upcall),
    /// logging deliveries under the frame's convergence key and sending
    /// every forward as fresh reliable frames.
    fn process(
        &mut self,
        node: NodeId,
        from: Option<NodeId>,
        publish: u64,
        path: Vec<u32>,
        msg: Message,
    ) {
        let mut out = std::mem::take(&mut self.scratch);
        self.net.match_one(node, from, &msg, &mut out);
        for (sub, message) in out.deliveries.drain(..) {
            self.log.push(LogEntry {
                publish,
                path: path.clone(),
                delivery: Delivery { sub, node, message },
            });
        }
        let forwards: Vec<(NodeId, Message)> = out.forwards.drain(..).collect();
        self.scratch = out;
        for (i, (next, fwd)) in forwards.into_iter().enumerate() {
            let mut child = path.clone();
            child.push(i as u32);
            self.send_data(node, next, publish, child, fwd);
        }
    }

    fn link_delay(&self, s: NodeId, r: NodeId) -> u64 {
        let lat = self
            .net
            .topology()
            .edge_latency(s, r)
            .expect("reliable frames travel only over live links");
        ((lat * TICKS_PER_LATENCY).round() as u64).max(1)
    }

    /// Enqueues one frame on directed link `s → r`: sequence assigned
    /// now, transmitted immediately if the window has room, queued
    /// otherwise.
    fn send_data(&mut self, s: NodeId, r: NodeId, publish: u64, path: Vec<u32>, msg: Message) {
        let rto_base = RTO_RTT_FACTOR * self.link_delay(s, r);
        let ss = self.send.entry((s, r)).or_insert_with(|| SendState::new(rto_base));
        let seq = ss.next_seq;
        ss.next_seq += 1;
        let frame = DataFrame { seq, publish, path, msg };
        if ss.unacked.len() < WINDOW {
            ss.unacked.insert(seq, frame.clone());
            self.transmit(s, r, frame, false);
            self.arm_if_idle(s, r);
        } else {
            ss.pending.push_back(frame);
        }
    }

    /// One physical data transmission: counted as overhead, rolled
    /// through the fault plan, arrival(s) scheduled after link delay.
    fn transmit(&mut self, s: NodeId, r: NodeId, frame: DataFrame, is_retransmit: bool) {
        if is_retransmit {
            self.retransmissions += 1;
        }
        let key = undirected(s, r);
        let stats = self.physical.entry(key).or_default();
        stats.messages += 1;
        stats.bytes += frame.msg.wire_size() as u64;
        let delay = self.link_delay(s, r);
        match self.plan.roll(s, r) {
            FaultAction::Drop => {}
            FaultAction::Deliver => {
                self.clock.schedule_in(delay, Event::Data { from: s, to: r, frame });
            }
            FaultAction::Duplicate { extra } => {
                self.clock.schedule_in(delay, Event::Data { from: s, to: r, frame: frame.clone() });
                self.clock.schedule_in(delay + extra, Event::Data { from: s, to: r, frame });
            }
            FaultAction::Delay { extra } => {
                self.clock.schedule_in(delay + extra, Event::Data { from: s, to: r, frame });
            }
        }
    }

    /// One physical ack transmission for data link `s → r` (the ack
    /// itself crosses `r → s` and rolls its own faults).
    fn send_ack(&mut self, s: NodeId, r: NodeId, cum: u64) {
        self.acks_sent += 1;
        let stats = self.physical.entry(undirected(s, r)).or_default();
        stats.messages += 1;
        stats.bytes += ACK_BYTES;
        let delay = self.link_delay(r, s);
        let ev = |cum| Event::Ack { receiver: r, sender: s, cum };
        match self.plan.roll(r, s) {
            FaultAction::Drop => {}
            FaultAction::Deliver => self.clock.schedule_in(delay, ev(cum)),
            FaultAction::Duplicate { extra } => {
                self.clock.schedule_in(delay, ev(cum));
                self.clock.schedule_in(delay + extra, ev(cum));
            }
            FaultAction::Delay { extra } => self.clock.schedule_in(delay + extra, ev(cum)),
        }
    }

    /// Arms the retransmission timer when frames are unacked and no
    /// timer is live.
    fn arm_if_idle(&mut self, s: NodeId, r: NodeId) {
        let ss = self.send.get_mut(&(s, r)).expect("arming an unknown link");
        if ss.timer_armed || ss.unacked.is_empty() {
            return;
        }
        ss.timer_armed = true;
        ss.timer_epoch += 1;
        let epoch = ss.timer_epoch;
        let rto = ss.backoff.next();
        self.clock.schedule_in(rto, Event::Rto { from: s, to: r, epoch });
    }

    fn handle_data(&mut self, s: NodeId, r: NodeId, frame: DataFrame) {
        let rs = self.recv.entry((s, r)).or_insert_with(RecvState::new);
        let mut accepted: Vec<DataFrame> = Vec::new();
        if frame.seq >= rs.cum_next + WINDOW as u64 {
            // Sender flow control makes this unreachable; drop defensively
            // (a retransmission will land inside the window).
            debug_assert!(false, "frame beyond the receive window");
        } else if frame.seq < rs.cum_next {
            // Stale duplicate (already accepted): drop, but re-ack — the
            // sender may be retransmitting because our ack was lost.
        } else {
            let slot = (frame.seq % WINDOW as u64) as usize;
            match &rs.ring[slot] {
                Some(buffered) => {
                    // In-window duplicate: the slot can only hold the
                    // same sequence (distinct live sequences map to
                    // distinct slots).
                    debug_assert_eq!(buffered.seq, frame.seq);
                }
                None => {
                    rs.ring[slot] = Some(frame);
                    // Cumulative drain: accept every in-order frame.
                    loop {
                        let head = (rs.cum_next % WINDOW as u64) as usize;
                        match rs.ring[head] {
                            Some(ref f) if f.seq == rs.cum_next => {
                                accepted.push(rs.ring[head].take().expect("checked occupied"));
                                rs.cum_next += 1;
                            }
                            _ => break,
                        }
                    }
                }
            }
        }
        let cum = rs.cum_next;
        self.send_ack(s, r, cum);
        for f in accepted {
            let stats = self.goodput.entry(undirected(s, r)).or_default();
            stats.messages += 1;
            stats.bytes += f.msg.wire_size() as u64;
            self.process(r, Some(s), f.publish, f.path, f.msg);
        }
    }

    /// Cumulative ack for data link `s → r`: everything below `cum` is
    /// acknowledged. Duplicate acks (`cum <= base`) are ignored —
    /// idempotent by construction.
    fn handle_ack(&mut self, s: NodeId, r: NodeId, cum: u64) {
        let Some(ss) = self.send.get_mut(&(s, r)) else { return };
        if cum <= ss.base {
            return;
        }
        ss.base = cum;
        ss.unacked = ss.unacked.split_off(&cum);
        ss.backoff.reset();
        // Lazy-cancel the live timer; progress re-arms from base backoff.
        ss.timer_epoch += 1;
        ss.timer_armed = false;
        let mut refill: Vec<DataFrame> = Vec::new();
        while ss.unacked.len() + refill.len() < WINDOW {
            let Some(f) = ss.pending.pop_front() else { break };
            refill.push(f);
        }
        for f in &refill {
            ss.unacked.insert(f.seq, f.clone());
        }
        for f in refill {
            self.transmit(s, r, f, false);
        }
        self.arm_if_idle(s, r);
    }

    fn handle_rto(&mut self, s: NodeId, r: NodeId, epoch: u64) {
        let Some(ss) = self.send.get_mut(&(s, r)) else { return };
        if !ss.timer_armed || ss.timer_epoch != epoch {
            return; // lazily cancelled
        }
        ss.timer_armed = false;
        let Some(frame) = ss.unacked.values().next().cloned() else { return };
        self.transmit(s, r, frame, true);
        self.arm_if_idle(s, r); // backoff already doubled by `next()`
    }
}

fn undirected(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::subscription::{StreamProjection, SubId, Subscription};
    use cosmos_net::Topology;
    use cosmos_query::Scalar;

    /// Two brokers, source at n0, one all-pass subscriber at n1.
    fn pipe(plan: FaultPlan) -> LossyNetwork {
        let mut topo = Topology::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(1))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        LossyNetwork::new(net, plan)
    }

    fn msg(i: i64) -> Message {
        Message::new("R", i).with("a", Scalar::Int(i))
    }

    #[test]
    fn backoff_doubles_and_caps_and_resets() {
        let mut b = Backoff::new(100);
        let taken: Vec<u64> = (0..12).map(|_| b.next()).collect();
        assert_eq!(&taken[..4], &[100, 200, 400, 800]);
        assert_eq!(*taken.last().unwrap(), 6400, "bounded at base * 64");
        assert!(taken.windows(2).all(|w| w[1] >= w[0]), "monotone until the cap");
        b.reset();
        assert_eq!(b.next(), 100, "ack progress restarts from the base");
        // A degenerate zero base still ticks forward.
        let mut z = Backoff::new(0);
        assert_eq!(z.next(), 1);
    }

    /// A recovery cycle must not leak pre-crash escalation: while the
    /// peer is down every retransmission doubles the timeout toward the
    /// cap, but the first ack after the peer returns resets the link to
    /// a *fresh* schedule — the post-recovery timeout sequence is
    /// indistinguishable from a brand-new link's.
    #[test]
    fn backoff_resets_to_fresh_schedule_after_recovery() {
        let mut b = Backoff::new(250);
        // Peer down: retransmission timer escalates all the way to cap
        // and stays there however long the outage lasts.
        let escalated: Vec<u64> = (0..10).map(|_| b.next()).collect();
        assert_eq!(*escalated.last().unwrap(), 250 * RTO_CAP_FACTOR);
        assert_eq!(b.next(), 250 * RTO_CAP_FACTOR, "cap is sticky while the peer is down");
        // Peer recovered: the first ack-progress reset restarts the
        // schedule from base, exactly matching a fresh link.
        b.reset();
        let mut fresh = Backoff::new(250);
        let after: Vec<u64> = (0..10).map(|_| b.next()).collect();
        let new_link: Vec<u64> = (0..10).map(|_| fresh.next()).collect();
        assert_eq!(after, new_link, "post-recovery schedule must equal a fresh link's");
        assert_eq!(after[0], 250);
    }

    #[test]
    fn clean_link_delivers_in_order_without_retransmission() {
        let mut lossy = pipe(FaultPlan::clean());
        for i in 0..10 {
            assert!(lossy.publish_lossy(msg(i)));
        }
        lossy.run_to_quiescence();
        let log = lossy.converged_log();
        assert_eq!(log.len(), 10);
        assert!(log.iter().enumerate().all(|(i, d)| d.message.timestamp == i as i64));
        assert_eq!(lossy.retransmissions(), 0);
        assert_eq!(lossy.fault_plan().total_injected(), 0);
        // Goodput equals one crossing per message; physical adds the acks.
        let goodput = lossy.goodput_stats();
        assert_eq!(goodput.len(), 1);
        assert_eq!(goodput[0].1.messages, 10);
        assert_eq!(lossy.physical_stats()[0].1.messages, 20);
        assert_eq!(lossy.acks_sent(), 10);
    }

    #[test]
    fn dedup_window_survives_wraparound_under_duplication_and_reorder() {
        // 200 messages through a 32-slot ring: sequence numbers wrap the
        // ring six times while ~a third of transmissions are faulted.
        let cfg = FaultConfig { drop: 0.1, duplicate: 0.15, reorder: 0.1, max_extra_ticks: 1200 };
        let mut lossy = pipe(FaultPlan::new(1234, cfg));
        for i in 0..200 {
            assert!(lossy.publish_lossy(msg(i)));
        }
        lossy.run_to_quiescence();
        let log = lossy.converged_log();
        assert_eq!(log.len(), 200, "exactly once: no loss, no duplicate delivery");
        assert!(log.iter().enumerate().all(|(i, d)| d.message.timestamp == i as i64));
        assert_eq!(lossy.goodput_stats()[0].1.messages, 200, "goodput counts each frame once");
        assert!(lossy.retransmissions() > 0, "drops must have forced retransmissions");
        assert!(lossy.fault_plan().total_injected() > 30);
        let phys = lossy.physical_stats()[0].1.messages;
        assert!(phys > 400, "physical = data + dups + retransmits + acks, got {phys}");
    }

    #[test]
    fn flow_control_queues_past_the_window() {
        // All 200 frames enqueue before the first ack can arrive, so the
        // pending queue must absorb everything beyond WINDOW in flight.
        let mut lossy = pipe(FaultPlan::clean());
        for i in 0..200 {
            lossy.publish_lossy(msg(i));
        }
        let ss = &lossy.send[&(NodeId(0), NodeId(1))];
        assert_eq!(ss.unacked.len(), WINDOW);
        assert_eq!(ss.pending.len(), 200 - WINDOW);
        lossy.run_to_quiescence();
        assert_eq!(lossy.converged_log().len(), 200);
        let ss = &lossy.send[&(NodeId(0), NodeId(1))];
        assert!(ss.unacked.is_empty() && ss.pending.is_empty());
        assert_eq!(ss.base, 200);
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut lossy = pipe(FaultPlan::clean());
        for i in 0..5 {
            lossy.publish_lossy(msg(i));
        }
        lossy.run_to_quiescence();
        let snapshot = |l: &LossyNetwork| {
            let ss = &l.send[&(NodeId(0), NodeId(1))];
            (ss.base, ss.next_seq, ss.unacked.len(), ss.timer_armed)
        };
        let before = snapshot(&lossy);
        assert_eq!(before.0, 5);
        // Replay stale and duplicate cumulative acks straight into the
        // sender: none may move state, rearm timers, or panic.
        for stale in [0, 3, 5, 5] {
            lossy.handle_ack(NodeId(0), NodeId(1), stale);
        }
        assert!(lossy.clock.is_empty(), "no timer rearmed by duplicate acks");
        assert_eq!(snapshot(&lossy), before);
        // The link still works afterwards.
        lossy.publish_lossy(msg(99));
        lossy.run_to_quiescence();
        assert_eq!(lossy.converged_log().len(), 6);
    }

    #[test]
    fn lost_acks_recover_via_reack_of_duplicates() {
        // Heavy ack loss: data mostly gets through, acks often do not;
        // retransmitted frames hit the dedup window and are re-acked.
        let cfg = FaultConfig { drop: 0.3, duplicate: 0.0, reorder: 0.0, max_extra_ticks: 0 };
        let mut lossy = pipe(FaultPlan::new(7, cfg));
        for i in 0..60 {
            lossy.publish_lossy(msg(i));
        }
        lossy.run_to_quiescence();
        assert_eq!(lossy.converged_log().len(), 60);
        assert!(lossy.retransmissions() > 0);
    }

    #[test]
    fn churn_is_rejected_while_traffic_is_in_flight() {
        let mut lossy = pipe(FaultPlan::clean());
        lossy.publish_lossy(msg(0));
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lossy.network_mut();
        }));
        assert!(poisoned.is_err(), "network_mut must insist on quiescence");
        lossy.run_to_quiescence();
        lossy.network_mut().unsubscribe(SubId(1)); // quiescent: fine
    }
}
