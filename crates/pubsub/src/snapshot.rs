//! Immutable routing snapshots: the read side of the broker's
//! read-copy-update split, enabling parallel publish.
//!
//! # Lifecycle
//!
//! [`crate::broker::BrokerNetwork`] owns the *mutable* routing state and
//! remains the single writer: subscribe/unsubscribe/link churn mutate the
//! per-node [`crate::index::RoutingTable`]s exactly as before, bumping a
//! version counter and marking the touched nodes dirty.
//! [`BrokerNetwork::snapshot`](crate::broker::BrokerNetwork::snapshot)
//! then *freezes* the dirty tables into [`FrozenTable`]s — live-only,
//! densely remapped copies of the counting index — and publishes a
//! [`RoutingSnapshot`] through a [`cosmos_util::sync::SnapshotCell`].
//! Clean nodes' frozen tables are reused by `Arc`, so a commit costs
//! O(changed nodes), not O(network).
//!
//! # Read side
//!
//! A [`SnapshotReader`] wraps an `Arc<RoutingSnapshot>` plus *all* the
//! mutable per-message scratch the serial matcher kept inside the table
//! (epoch-versioned counters, candidate buffers, projection-class and
//! hop-union plan caches). The snapshot itself is therefore genuinely
//! `&self`/`Sync`: N readers on N threads match and forward concurrently
//! with **zero** shared mutable state and zero locks on the publish path
//! — each reader owns its snapshot handle outright and can keep
//! publishing while the writer churns and commits new snapshots.
//!
//! Every message a reader publishes observes exactly one snapshot: a
//! reader switches snapshots only between messages
//! ([`SnapshotReader::retarget`]), never mid-forward.
//!
//! # Deterministic merge
//!
//! Deliveries and link traffic accumulate per reader in a
//! [`ReaderOutput`], each delivery tagged with its message's caller-chosen
//! publish order ([`SnapshotReader::publish_at`]). Merging outputs and
//! stable-sorting by that order reproduces the serial `publish` log
//! *bit-identically* — same `Delivery` records in the same order, same
//! per-link counters — which is what the parallel-vs-serial differential
//! suite asserts.

use crate::broker::{Delivery, LinkStats};
use crate::index::MatchOutput;
use crate::subscription::{CachedProjection, Message, StreamProjection, SubId};
use cosmos_net::NodeId;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, ScalarRef};
use cosmos_util::Symbol;
use std::collections::HashMap;
use std::sync::Arc;

/// What a matched frozen member does: local delivery (share its
/// projection class's record) or marking its hop group. Mirror of the
/// routing table's `MemberAction` over live members only.
#[derive(Debug, Clone)]
pub(crate) enum FrozenAction {
    Local { sub: SubId, class: u32 },
    Hop(u32),
}

/// One live `(entry, stream)` member of a frozen partition. Tombstones
/// are dropped at freeze time, so no `dead` flag and no per-member
/// mutable counter — counters live in the reader's [`PartScratch`].
#[derive(Debug, Clone)]
pub(crate) struct FrozenMember {
    pub(crate) seq: u64,
    pub(crate) target: u32,
    pub(crate) residual: Vec<CompiledPredicate>,
    pub(crate) action: FrozenAction,
}

/// Sorted `(threshold, member)` lists per operator class — the frozen,
/// live-only image of the table's `OpLists` (dead references filtered,
/// member slots densely remapped in original order).
#[derive(Debug, Clone, Default)]
pub(crate) struct FrozenLists {
    pub(crate) lt: Vec<(f64, u32)>,
    pub(crate) le: Vec<(f64, u32)>,
    pub(crate) gt: Vec<(f64, u32)>,
    pub(crate) ge: Vec<(f64, u32)>,
    pub(crate) eq: Vec<(f64, u32)>,
}

impl FrozenLists {
    pub(crate) fn is_empty(&self) -> bool {
        self.lt.is_empty()
            && self.le.is_empty()
            && self.gt.is_empty()
            && self.ge.is_empty()
            && self.eq.is_empty()
    }

    /// Bumps the scratch counter of every member whose predicate is
    /// satisfied by value `v` — the same binary-searched ranges as the
    /// mutable index's `OpLists::bump_satisfied`, with the counters in
    /// caller-owned scratch instead of the members.
    fn bump_satisfied(
        &self,
        v: f64,
        count: &mut [u32],
        epoch_of: &mut [u64],
        touched: &mut Vec<u32>,
        epoch: u64,
    ) {
        // `attr > t` holds for thresholds t < v: an ascending prefix.
        let end = self.gt.partition_point(|(t, _)| *t < v);
        bump(&self.gt[..end], count, epoch_of, touched, epoch);
        // `attr >= t` holds for t <= v.
        let end = self.ge.partition_point(|(t, _)| *t <= v);
        bump(&self.ge[..end], count, epoch_of, touched, epoch);
        // `attr < t` holds for t > v: an ascending suffix.
        let start = self.lt.partition_point(|(t, _)| *t <= v);
        bump(&self.lt[start..], count, epoch_of, touched, epoch);
        // `attr <= t` holds for t >= v.
        let start = self.le.partition_point(|(t, _)| *t < v);
        bump(&self.le[start..], count, epoch_of, touched, epoch);
        // `attr = t` holds for the equal range.
        let lo = self.eq.partition_point(|(t, _)| *t < v);
        let hi = self.eq.partition_point(|(t, _)| *t <= v);
        bump(&self.eq[lo..hi], count, epoch_of, touched, epoch);
    }
}

/// Increments the epoch-versioned scratch counters of `satisfied`
/// members. Frozen partitions hold live members only, so no dead check.
fn bump(
    satisfied: &[(f64, u32)],
    count: &mut [u32],
    epoch_of: &mut [u64],
    touched: &mut Vec<u32>,
    epoch: u64,
) {
    for &(_, m) in satisfied {
        let i = m as usize;
        if epoch_of[i] == epoch {
            count[i] += 1;
        } else {
            epoch_of[i] = epoch;
            count[i] = 1;
            touched.push(m);
        }
    }
}

/// A per-hop forwarding group of a frozen partition: the next hop and
/// the install-time union of member needs. The per-reader projection
/// plan cache lives in [`PartScratch`].
#[derive(Debug, Clone)]
pub(crate) struct FrozenHop {
    pub(crate) to: NodeId,
    pub(crate) union: StreamProjection,
}

/// The frozen image of one stream partition: live members, dense
/// threshold lists, hop groups and projection classes — everything
/// immutable; all match scratch is reader-owned.
#[derive(Debug, Clone, Default)]
pub(crate) struct FrozenPartition {
    pub(crate) members: Vec<FrozenMember>,
    pub(crate) attr_lists: HashMap<Symbol, FrozenLists>,
    pub(crate) ts_lists: FrozenLists,
    pub(crate) zero_target: Vec<u32>,
    pub(crate) hops: Vec<FrozenHop>,
    pub(crate) classes: Vec<StreamProjection>,
}

/// The frozen image of one node's routing table
/// ([`crate::index::RoutingTable::freeze`]): stream partitions with all
/// tombstones dropped and member slots densely remapped (in original
/// order, so candidate `(seq, slot)` ordering — and therefore delivery
/// order — is identical to the mutable table's).
#[derive(Debug, Clone, Default)]
pub struct FrozenTable {
    pub(crate) streams: HashMap<Symbol, FrozenPartition>,
}

/// An immutable, `Sync` image of the whole network's dissemination
/// state: per-node frozen tables plus the stream→source map. Published
/// by the broker behind a [`cosmos_util::sync::SnapshotCell`]; any
/// number of [`SnapshotReader`]s match against it concurrently.
#[derive(Debug)]
pub struct RoutingSnapshot {
    /// The broker's routing-state version this snapshot was built from
    /// (`u64::MAX` = the placeholder before the first commit).
    pub(crate) version: u64,
    pub(crate) stream_source: HashMap<Symbol, NodeId>,
    pub(crate) tables: Vec<Arc<FrozenTable>>,
}

impl RoutingSnapshot {
    /// The broker routing-state version this snapshot reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A new reader (fresh scratch, empty output) over this snapshot.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(self))
    }
}

/// Per-`(node, stream)` reader-owned match scratch: everything the
/// mutable `StreamIndex` kept inline (epoch counters, candidate buffers)
/// plus private plan caches for the partition's projection classes and
/// hop unions. Built lazily the first time a reader's forwarding walk
/// touches the partition.
#[derive(Debug)]
struct PartScratch {
    epoch: u64,
    count: Vec<u32>,
    epoch_of: Vec<u64>,
    touched: Vec<u32>,
    candidates: Vec<(u64, u32)>,
    class_epoch: Vec<u64>,
    class_cached: Vec<Option<Message>>,
    class_proj: Vec<CachedProjection>,
    hop_epoch: Vec<u64>,
    hop_proj: Vec<CachedProjection>,
}

impl PartScratch {
    fn for_partition(part: &FrozenPartition) -> Self {
        Self {
            epoch: 0,
            count: vec![0; part.members.len()],
            epoch_of: vec![0; part.members.len()],
            touched: Vec::new(),
            candidates: Vec::new(),
            class_epoch: vec![0; part.classes.len()],
            class_cached: vec![None; part.classes.len()],
            class_proj: part.classes.iter().map(|p| CachedProjection::new(p.clone())).collect(),
            hop_epoch: vec![0; part.hops.len()],
            hop_proj: part.hops.iter().map(|h| CachedProjection::new(h.union.clone())).collect(),
        }
    }
}

/// Matches `msg` against one frozen partition — the exact algorithm of
/// `RoutingTable::match_message_into` with every mutation redirected
/// into `ps`: counting pass over threshold lists, candidates sorted by
/// `(seq, slot)`, residual evaluation, projection-class dedup, hop
/// marks. Output order is bit-identical to the serial matcher's.
fn match_frozen(
    part: &FrozenPartition,
    msg: &Message,
    from: Option<NodeId>,
    ps: &mut PartScratch,
    out: &mut MatchOutput,
) {
    let PartScratch {
        epoch: scratch_epoch,
        count,
        epoch_of,
        touched,
        candidates,
        class_epoch,
        class_cached,
        class_proj,
        hop_epoch,
        hop_proj,
    } = ps;
    *scratch_epoch += 1;
    let epoch = *scratch_epoch;
    touched.clear();
    candidates.clear();

    if !part.attr_lists.is_empty() {
        for (i, &attr) in msg.schema().attrs().iter().enumerate() {
            let Some(lists) = part.attr_lists.get(&attr) else { continue };
            let Some(v) = ScalarRef::from(&msg.values()[i]).as_f64() else {
                continue; // string value: numeric comparisons are false
            };
            if v.is_nan() {
                continue;
            }
            lists.bump_satisfied(v, count, epoch_of, touched, epoch);
        }
    }
    if !part.ts_lists.is_empty() {
        part.ts_lists.bump_satisfied(msg.timestamp as f64, count, epoch_of, touched, epoch);
    }

    candidates.extend(part.zero_target.iter().map(|&m| (part.members[m as usize].seq, m)));
    candidates.extend(touched.iter().filter_map(|&m| {
        let member = &part.members[m as usize];
        (count[m as usize] == member.target).then_some((member.seq, m))
    }));
    candidates.sort_unstable();

    for &(_, m) in candidates.iter() {
        let member = &part.members[m as usize];
        if !eval_compiled(&member.residual, msg) {
            continue;
        }
        match &member.action {
            FrozenAction::Local { sub, class } => {
                let c = *class as usize;
                if class_epoch[c] != epoch {
                    class_epoch[c] = epoch;
                    class_cached[c] = Some(class_proj[c].apply(msg));
                }
                let record = class_cached[c].clone().expect("projected this epoch");
                out.deliveries.push((*sub, record));
            }
            FrozenAction::Hop(g) => hop_epoch[*g as usize] = epoch,
        }
    }
    for (g, hop) in part.hops.iter().enumerate() {
        if hop_epoch[g] != epoch || Some(hop.to) == from {
            continue;
        }
        out.forwards.push((hop.to, hop_proj[g].apply(msg)));
    }
    out.forwards.sort_by_key(|(n, _)| *n);
}

/// Batched twin of [`match_frozen`]: matches a slice of **same-stream**
/// `(order, message)` pairs against one frozen partition through a
/// single walk — one scratch-epoch range for the whole batch, the
/// per-attribute list resolution cached across messages with the same
/// schema — handing each message's results to `sink(order, buf)` in
/// batch order. Per-message output is bit-identical to [`match_frozen`].
fn match_frozen_batch<F>(
    part: &FrozenPartition,
    msgs: &[(u64, Message)],
    from: Option<NodeId>,
    ps: &mut PartScratch,
    buf: &mut MatchOutput,
    mut sink: F,
) where
    F: FnMut(u64, &mut MatchOutput),
{
    let PartScratch {
        epoch: scratch_epoch,
        count,
        epoch_of,
        touched,
        candidates,
        class_epoch,
        class_cached,
        class_proj,
        hop_epoch,
        hop_proj,
    } = ps;
    let base = *scratch_epoch;
    *scratch_epoch += msgs.len() as u64;
    let mut resolved: Vec<(usize, &FrozenLists)> = Vec::new();
    let mut resolved_schema: *const Symbol = std::ptr::null();
    for (j, (order, msg)) in msgs.iter().enumerate() {
        let epoch = base + j as u64 + 1;
        touched.clear();
        candidates.clear();
        if !part.attr_lists.is_empty() {
            let attrs = msg.schema().attrs();
            if attrs.as_ptr() != resolved_schema {
                resolved_schema = attrs.as_ptr();
                resolved.clear();
                resolved.extend(
                    attrs
                        .iter()
                        .enumerate()
                        .filter_map(|(i, attr)| part.attr_lists.get(attr).map(|l| (i, l))),
                );
            }
            for &(i, lists) in &resolved {
                let Some(v) = ScalarRef::from(&msg.values()[i]).as_f64() else {
                    continue; // string value: numeric comparisons are false
                };
                if v.is_nan() {
                    continue;
                }
                lists.bump_satisfied(v, count, epoch_of, touched, epoch);
            }
        }
        if !part.ts_lists.is_empty() {
            part.ts_lists.bump_satisfied(msg.timestamp as f64, count, epoch_of, touched, epoch);
        }
        candidates.extend(part.zero_target.iter().map(|&m| (part.members[m as usize].seq, m)));
        candidates.extend(touched.iter().filter_map(|&m| {
            let member = &part.members[m as usize];
            (count[m as usize] == member.target).then_some((member.seq, m))
        }));
        candidates.sort_unstable();
        buf.clear();
        for &(_, m) in candidates.iter() {
            let member = &part.members[m as usize];
            if !eval_compiled(&member.residual, msg) {
                continue;
            }
            match &member.action {
                FrozenAction::Local { sub, class } => {
                    let c = *class as usize;
                    if class_epoch[c] != epoch {
                        class_epoch[c] = epoch;
                        class_cached[c] = Some(class_proj[c].apply(msg));
                    }
                    let record = class_cached[c].clone().expect("projected this epoch");
                    buf.deliveries.push((*sub, record));
                }
                FrozenAction::Hop(g) => hop_epoch[*g as usize] = epoch,
            }
        }
        for (g, hop) in part.hops.iter().enumerate() {
            if hop_epoch[g] != epoch || Some(hop.to) == from {
                continue;
            }
            buf.forwards.push((hop.to, hop_proj[g].apply(msg)));
        }
        buf.forwards.sort_by_key(|(n, _)| *n);
        sink(*order, buf);
    }
}

/// The deliveries and link traffic one reader (or a merge of readers)
/// accumulated. Deliveries are tagged with their message's publish
/// order; [`ReaderOutput::sort_by_order`] (or
/// [`BrokerNetwork::absorb`](crate::broker::BrokerNetwork::absorb))
/// restores the global serial log order.
#[derive(Debug, Default)]
pub struct ReaderOutput {
    pub(crate) deliveries: Vec<(u64, Delivery)>,
    pub(crate) links: HashMap<(NodeId, NodeId), LinkStats>,
}

impl ReaderOutput {
    /// Total number of deliveries.
    pub fn delivered(&self) -> usize {
        self.deliveries.len()
    }

    /// `true` when nothing was delivered and no link was crossed.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty() && self.links.is_empty()
    }

    /// Deliveries in their current order (call
    /// [`ReaderOutput::sort_by_order`] after merging to restore global
    /// publish order).
    pub fn deliveries(&self) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().map(|(_, d)| d)
    }

    /// Folds another output into this one (concatenates deliveries, sums
    /// link counters).
    pub fn merge(&mut self, other: ReaderOutput) {
        self.deliveries.extend(other.deliveries);
        for (k, s) in other.links {
            let e = self.links.entry(k).or_default();
            e.messages += s.messages;
            e.bytes += s.bytes;
        }
    }

    /// Stable-sorts deliveries by publish order. Within one message the
    /// reader already emitted deliveries in installation-sequence order,
    /// so after this sort the whole vector equals the serial log.
    pub fn sort_by_order(&mut self) {
        self.deliveries.sort_by_key(|(o, _)| *o);
    }

    /// All per-link traffic counters, sorted by link — same shape and
    /// filter as
    /// [`BrokerNetwork::all_link_stats`](crate::broker::BrokerNetwork::all_link_stats),
    /// for direct differential comparison.
    pub fn all_link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        let mut all: Vec<_> = self
            .links
            .iter()
            .filter(|(_, s)| s.messages > 0 || s.bytes > 0)
            .map(|(&k, &s)| (k, s))
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }
}

/// A read handle over one [`RoutingSnapshot`]: owns the snapshot `Arc`,
/// all match scratch, and its own output accumulator — `Send`, fully
/// independent of the broker and of every other reader, so N readers
/// publish concurrently without any synchronization.
#[derive(Debug)]
pub struct SnapshotReader {
    snap: Arc<RoutingSnapshot>,
    scratch: HashMap<(NodeId, Symbol), PartScratch>,
    pool: Vec<MatchOutput>,
    out: ReaderOutput,
    next_order: u64,
}

impl SnapshotReader {
    /// Wraps a snapshot handle.
    pub fn new(snap: Arc<RoutingSnapshot>) -> Self {
        Self {
            snap,
            scratch: HashMap::new(),
            pool: Vec::new(),
            out: ReaderOutput::default(),
            next_order: 0,
        }
    }

    /// The snapshot this reader currently matches against.
    pub fn snapshot(&self) -> &Arc<RoutingSnapshot> {
        &self.snap
    }

    /// Switches to a newer snapshot *between* messages, keeping the
    /// accumulated output (partition scratch is rebuilt lazily — member
    /// slots are snapshot-specific). In-flight messages are unaffected
    /// by construction: a message is matched start-to-finish against the
    /// snapshot its reader held when `publish` began.
    pub fn retarget(&mut self, snap: &Arc<RoutingSnapshot>) {
        if Arc::ptr_eq(&self.snap, snap) {
            return;
        }
        self.snap = Arc::clone(snap);
        self.scratch.clear();
    }

    /// Publishes a message, tagging its deliveries with the next
    /// sequential order. Returns the number of local deliveries.
    pub fn publish(&mut self, msg: Message) -> usize {
        self.publish_at(self.next_order, msg)
    }

    /// Publishes a message under an explicit global order tag — how a
    /// thread pool partitioning one message stream keeps the merged
    /// output equal to the serial log. Returns the delivery count.
    pub fn publish_at(&mut self, order: u64, msg: Message) -> usize {
        self.next_order = order + 1;
        let Some(&src) = self.snap.stream_source.get(&msg.stream) else {
            return 0;
        };
        let before = self.out.deliveries.len();
        self.forward(src, None, msg, order);
        self.out.deliveries.len() - before
    }

    /// Publishes a slice of messages under consecutive order tags
    /// starting at `start_order` — message `k` is tagged exactly as
    /// `publish_at(start_order + k, ...)` would tag it, so a thread pool
    /// handing out disjoint order ranges can mix batched and serial
    /// publishing freely and the merged, order-sorted output stays equal
    /// to the serial log. Maximal same-stream runs share one forwarding
    /// walk (one partition-scratch resolution and one epoch range per
    /// node, per run). Returns the total number of local deliveries.
    pub fn publish_batch_at(&mut self, start_order: u64, msgs: &[Message]) -> usize {
        self.next_order = start_order + msgs.len() as u64;
        let before = self.out.deliveries.len();
        let mut i = 0;
        while i < msgs.len() {
            let stream = msgs[i].stream;
            let mut j = i + 1;
            while j < msgs.len() && msgs[j].stream == stream {
                j += 1;
            }
            if let Some(&src) = self.snap.stream_source.get(&stream) {
                let batch: Vec<(u64, Message)> = msgs[i..j]
                    .iter()
                    .enumerate()
                    .map(|(k, m)| (start_order + (i + k) as u64, m.clone()))
                    .collect();
                self.forward_batch(src, None, batch);
            }
            i = j;
        }
        self.out.deliveries.len() - before
    }

    /// Batched twin of [`SnapshotReader::forward`] — see
    /// `BrokerNetwork::forward_batch` for the ordering argument; the
    /// per-message delivery order here is restored by the order tags
    /// instead of splicing.
    fn forward_batch(&mut self, node: NodeId, from: Option<NodeId>, batch: Vec<(u64, Message)>) {
        let Some((_, first)) = batch.first() else { return };
        let stream = first.stream;
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        let mut next: Vec<(NodeId, Vec<(u64, Message)>)> = Vec::new();
        if let Some(part) = self.snap.tables[node.index()].streams.get(&stream) {
            let ps = self
                .scratch
                .entry((node, stream))
                .or_insert_with(|| PartScratch::for_partition(part));
            let out = &mut self.out;
            match_frozen_batch(part, &batch, from, ps, &mut buf, |order, buf| {
                for (sub, message) in buf.deliveries.drain(..) {
                    out.deliveries.push((order, Delivery { sub, node, message }));
                }
                for (hop, fwd) in buf.forwards.drain(..) {
                    match next.binary_search_by_key(&hop, |(n, _)| *n) {
                        Ok(i) => next[i].1.push((order, fwd)),
                        Err(i) => next.insert(i, (hop, vec![(order, fwd)])),
                    }
                }
            });
        }
        self.pool.push(buf);
        for (hop, sub_batch) in next {
            let key = if node <= hop { (node, hop) } else { (hop, node) };
            let stats = self.out.links.entry(key).or_default();
            stats.messages += sub_batch.len() as u64;
            stats.bytes += sub_batch.iter().map(|(_, m)| m.wire_size() as u64).sum::<u64>();
            self.forward_batch(hop, Some(node), sub_batch);
        }
    }

    fn forward(&mut self, node: NodeId, from: Option<NodeId>, msg: Message, order: u64) {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        if let Some(part) = self.snap.tables[node.index()].streams.get(&msg.stream) {
            let ps = self
                .scratch
                .entry((node, msg.stream))
                .or_insert_with(|| PartScratch::for_partition(part));
            match_frozen(part, &msg, from, ps, &mut buf);
        }
        for (sub, message) in buf.deliveries.drain(..) {
            self.out.deliveries.push((order, Delivery { sub, node, message }));
        }
        for (next, fwd) in buf.forwards.drain(..) {
            let key = if node <= next { (node, next) } else { (next, node) };
            let stats = self.out.links.entry(key).or_default();
            stats.messages += 1;
            stats.bytes += fwd.wire_size() as u64;
            self.forward(next, Some(node), fwd, order);
        }
        self.pool.push(buf);
    }

    /// Takes the accumulated output, leaving the reader empty (scratch
    /// and snapshot handle kept).
    pub fn take_output(&mut self) -> ReaderOutput {
        std::mem::take(&mut self.out)
    }

    /// The output accumulated so far.
    pub fn output(&self) -> &ReaderOutput {
        &self.out
    }
}

/// Merges many reader outputs into one, restoring global publish order.
pub fn merge_outputs(outputs: impl IntoIterator<Item = ReaderOutput>) -> ReaderOutput {
    let mut merged = ReaderOutput::default();
    for out in outputs {
        merged.merge(out);
    }
    merged.sort_by_order();
    merged
}

// Compile-time guarantees the parallel plane rests on: snapshots are
// shareable across threads, readers are movable into worker threads.
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<RoutingSnapshot>();
    assert_send::<SnapshotReader>();
    assert_sync::<crate::broker::BrokerNetwork>();
};

#[cfg(test)]
mod tests {
    use crate::broker::BrokerNetwork;
    use crate::subscription::{Message, StreamProjection, SubId, Subscription};
    use cosmos_net::{NodeId, Topology};
    use cosmos_query::Scalar;
    use std::sync::Arc;

    fn star_net() -> BrokerNetwork {
        // 0 - 1 - 2 and 1 - 3: churn at 3's branch must not re-freeze 2.
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(1), NodeId(3), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net
    }

    fn all_sub(id: u64, at: NodeId) -> Subscription {
        Subscription::builder(at).id(SubId(id)).stream("R", StreamProjection::All, vec![]).build()
    }

    #[test]
    fn incremental_build_reuses_clean_nodes_frozen_tables() {
        let mut net = star_net();
        net.subscribe(all_sub(1, NodeId(2)));
        let s1 = net.snapshot();
        net.subscribe(all_sub(2, NodeId(3)));
        let s2 = net.snapshot();
        // Node 2's table did not change: its frozen image is shared.
        assert!(Arc::ptr_eq(&s1.tables[2], &s2.tables[2]), "clean node must reuse its table");
        // Node 3 gained a local entry: it was re-frozen.
        assert!(!Arc::ptr_eq(&s1.tables[3], &s2.tables[3]), "dirty node must be re-frozen");
    }

    #[test]
    fn frozen_matching_equals_serial_on_fixture() {
        let mut net = star_net();
        net.subscribe(all_sub(1, NodeId(2)));
        net.subscribe(all_sub(2, NodeId(3)));
        let msgs: Vec<Message> =
            (0..5).map(|i| Message::new("R", i).with("a", Scalar::Int(i))).collect();
        for msg in &msgs {
            net.publish(msg.clone());
        }
        let expected = net.log().deliveries().to_vec();
        let expected_links = net.all_link_stats();
        let mut reader = net.reader();
        for msg in &msgs {
            reader.publish(msg.clone());
        }
        let mut out = reader.take_output();
        out.sort_by_order();
        assert_eq!(out.deliveries().cloned().collect::<Vec<_>>(), expected);
        assert_eq!(out.all_link_stats(), expected_links);
    }
}
