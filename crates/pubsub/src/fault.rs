//! Deterministic per-link message-fault injection.
//!
//! Large-scale deployments lose, duplicate, and reorder packets; the
//! reliable-delivery plane ([`crate::reliable`]) must converge to the
//! fault-free delivery log regardless. A [`FaultPlan`] is the adversary:
//! every physical transmission rolls one [`FaultAction`] from a seeded
//! counter-mode `splitmix64` stream mixed with the directed link, so a
//! given `(seed, config)` pair replays the *exact* same fault schedule on
//! every run — chaos tests are reproducible bit-for-bit, and a failing
//! seed is a permanent regression case.

use cosmos_net::NodeId;
use cosmos_util::rng::splitmix64;

/// Per-transmission fault probabilities. Rates are independent slices of
/// one uniform roll, so `drop + duplicate + reorder` must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a transmission is lost.
    pub drop: f64,
    /// Probability a transmission arrives twice (second copy delayed).
    pub duplicate: f64,
    /// Probability a transmission is delayed past later traffic.
    pub reorder: f64,
    /// Maximum extra delay (in simulated ticks) a duplicated or
    /// reordered copy picks up, uniform in `1..=max_extra_ticks`.
    pub max_extra_ticks: u64,
}

impl FaultConfig {
    /// A fault-free link: every roll yields [`FaultAction::Deliver`].
    pub fn clean() -> Self {
        Self { drop: 0.0, duplicate: 0.0, reorder: 0.0, max_extra_ticks: 0 }
    }

    /// A moderately hostile link: 5% drop, 3% duplicate, 5% reorder.
    pub fn lossy() -> Self {
        Self { drop: 0.05, duplicate: 0.03, reorder: 0.05, max_extra_ticks: 400 }
    }
}

/// The fate of one physical transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Arrives once, after the link's nominal delay.
    Deliver,
    /// Never arrives.
    Drop,
    /// Arrives twice: once nominally, once `extra` ticks later.
    Duplicate {
        /// Extra delay of the second copy.
        extra: u64,
    },
    /// Arrives once, `extra` ticks late (later traffic may overtake).
    Delay {
        /// Extra delay past the nominal link delay.
        extra: u64,
    },
}

/// A seeded, deterministic fault schedule over all links.
///
/// # Examples
///
/// ```
/// use cosmos_pubsub::fault::{FaultConfig, FaultPlan};
/// use cosmos_net::NodeId;
///
/// let mut a = FaultPlan::new(7, FaultConfig::lossy());
/// let mut b = FaultPlan::new(7, FaultConfig::lossy());
/// let roll = |p: &mut FaultPlan| (0..100).map(|_| p.roll(NodeId(0), NodeId(1))).collect::<Vec<_>>();
/// assert_eq!(roll(&mut a), roll(&mut b)); // same seed → same schedule
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
    counter: u64,
    drops: u64,
    duplicates: u64,
    delays: u64,
}

impl FaultPlan {
    /// A plan rolling `cfg` faults from `seed`.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        assert!(
            cfg.drop >= 0.0
                && cfg.duplicate >= 0.0
                && cfg.reorder >= 0.0
                && cfg.drop + cfg.duplicate + cfg.reorder <= 1.0,
            "fault rates must be non-negative and sum to at most 1"
        );
        assert!(cfg.drop < 1.0, "a link dropping everything can never converge");
        Self { seed, cfg, counter: 0, drops: 0, duplicates: 0, delays: 0 }
    }

    /// A fault-free plan (every transmission delivers nominally).
    pub fn clean() -> Self {
        Self::new(0, FaultConfig::clean())
    }

    /// The configured rates.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Rolls the fate of one physical transmission crossing the directed
    /// link `from → to`. Deterministic in `(seed, call index, link)`.
    pub fn roll(&mut self, from: NodeId, to: NodeId) -> FaultAction {
        let n = self.counter;
        self.counter += 1;
        // Counter-mode stream: mix the seed, the call index, and the
        // directed link through two splitmix rounds.
        let mixed =
            splitmix64(self.seed ^ splitmix64(n ^ ((from.0 as u64) << 40) ^ ((to.0 as u64) << 20)));
        let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        let extra = || 1 + splitmix64(mixed) % self.cfg.max_extra_ticks.max(1);
        if u < self.cfg.drop {
            self.drops += 1;
            FaultAction::Drop
        } else if u < self.cfg.drop + self.cfg.duplicate {
            self.duplicates += 1;
            FaultAction::Duplicate { extra: extra() }
        } else if u < self.cfg.drop + self.cfg.duplicate + self.cfg.reorder {
            self.delays += 1;
            FaultAction::Delay { extra: extra() }
        } else {
            FaultAction::Deliver
        }
    }

    /// `(drops, duplicates, delays)` injected so far.
    pub fn injected(&self) -> (u64, u64, u64) {
        (self.drops, self.duplicates, self.delays)
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.drops + self.duplicates + self.delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_faults() {
        let mut p = FaultPlan::clean();
        for i in 0..1000u32 {
            assert_eq!(p.roll(NodeId(i % 5), NodeId(i % 7)), FaultAction::Deliver);
        }
        assert_eq!(p.total_injected(), 0);
    }

    #[test]
    fn lossy_plan_hits_every_fault_class() {
        let mut p = FaultPlan::new(42, FaultConfig::lossy());
        for _ in 0..5000 {
            p.roll(NodeId(0), NodeId(1));
        }
        let (drops, dups, delays) = p.injected();
        assert!(drops > 100, "≈5% of 5000 rolls should drop, got {drops}");
        assert!(dups > 50, "≈3% should duplicate, got {dups}");
        assert!(delays > 100, "≈5% should delay, got {delays}");
        assert!(drops + dups + delays < 1500, "faults must stay the minority");
    }

    #[test]
    fn schedule_depends_on_link_and_index() {
        let mut p = FaultPlan::new(9, FaultConfig { drop: 0.5, ..FaultConfig::lossy() });
        let a: Vec<_> = (0..64).map(|_| p.roll(NodeId(0), NodeId(1))).collect();
        let mut q = FaultPlan::new(9, FaultConfig { drop: 0.5, ..FaultConfig::lossy() });
        let b: Vec<_> = (0..64).map(|_| q.roll(NodeId(1), NodeId(0))).collect();
        assert_ne!(a, b, "reverse link must see an independent schedule");
    }

    #[test]
    #[should_panic(expected = "never converge")]
    fn total_loss_is_rejected() {
        FaultPlan::new(
            1,
            FaultConfig { drop: 1.0, duplicate: 0.0, reorder: 0.0, max_extra_ticks: 0 },
        );
    }
}
