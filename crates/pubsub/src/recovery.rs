//! Upstream-backup replay: engine crash recovery over the broker overlay.
//!
//! The paper pushes query operators onto brokers, so
//! [`BrokerNetwork::fail_node`] destroys operator state along with routing
//! state. The routing side heals incrementally (PR 7); this module heals
//! the *operator* side by composing three planes:
//!
//! - **Checkpoints** (`cosmos-engine::checkpoint`): each hosted
//!   [`StreamEngine`] periodically extracts its mutable state against a
//!   monotone input watermark, on a simulated-time schedule paced by the
//!   reliable plane's clock ([`LossyNetwork::now`]).
//! - **Upstream backup**: every record forwarded toward a hosted engine is
//!   retained in a replay log *at its upstream source broker* until the
//!   engine's checkpoint watermark acknowledges it. Acking at watermark
//!   `w` truncates everything below `w`, so retention is bounded by the
//!   checkpoint interval — never by stream length. The bound — retained
//!   records are exactly the unacked suffix `[w, now)` — is asserted
//!   after every truncation.
//! - **Replay**: on [`RecoveryNetwork::restore_host`], the broker rejoins
//!   the overlay ([`BrokerNetwork::restore_node`]), its subscription is
//!   re-installed, a fresh engine restores the last checkpoint, and the
//!   upstreams replay the retained suffix in input order. Replayed inputs
//!   the crash-free run had already consumed regenerate outputs that were
//!   already emitted downstream; those are *verified bit-for-bit* against
//!   the pre-crash output log instead of re-emitted (output-side dedup),
//!   and inputs published while the host was down — which only the replay
//!   log still has — extend the log. The recovered output log therefore
//!   converges bit-for-bit to the run that never crashed, which the
//!   differential suites pin against a crash-free twin engine.
//!
//! Checkpoint timers cancel lazily across a crash, exactly like the
//! reliable plane's retransmission timers: each scheduled firing carries
//! the host's epoch, a crash bumps the epoch, and stale firings no-op.
//!
//! The engine's input sequence is defined as *every record of its input
//! streams in publish order* (the host subscribes all-pass; selection
//! pushdown happens in-engine). Under `debug_assertions` the feed is
//! cross-checked against the reliable plane's exactly-once converged
//! deliveries for the host's subscription, tying replay to the same
//! seq/path-key machinery the chaos suite trusts.

use crate::broker::BrokerNetwork;
use crate::reliable::LossyNetwork;
use crate::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_engine::checkpoint::StreamCheckpoint;
use cosmos_engine::exec::{EngineStats, ResultTuple, StreamEngine};
use cosmos_net::NodeId;
use cosmos_query::{Query, QueryId};
use cosmos_util::EventQueue;
use std::collections::{BTreeMap, VecDeque};

/// Engine-host subscriptions get ids far above any test population.
const RECOVERY_SUB_BASE: u64 = u64::MAX / 2;

/// One broker node hosting a stream engine.
#[derive(Debug)]
struct EngineHost {
    node: NodeId,
    /// The all-pass subscription feeding the engine; re-installed on
    /// restore (`fail_node` tears it down with the broker).
    sub: Subscription,
    /// Query set in registration order; restore rebuilds the compiled
    /// shape from it before applying the checkpoint.
    queries: Vec<(QueryId, Query)>,
    /// `None` while crashed.
    engine: Option<StreamEngine>,
    /// Incident edges saved by `fail_node`, replayed by `restore_node`.
    saved_edges: Vec<(NodeId, f64)>,
    last_checkpoint: Option<StreamCheckpoint>,
    /// Output-log length when `last_checkpoint` was taken: replay
    /// verification starts here.
    outputs_at_checkpoint: usize,
    /// Per upstream source broker: retained `(seq, record)` replay log,
    /// seq-ordered. Truncated at checkpoint ack.
    replay: BTreeMap<NodeId, VecDeque<(u64, Message)>>,
    /// Next input sequence number to assign (counts every matching
    /// publish, delivered or not).
    next_seq: u64,
    /// Inputs consumed by the live engine (== its watermark).
    consumed: u64,
    /// Watermark acknowledged upstream by the last checkpoint.
    acked: u64,
    /// Inputs consumed when the host last crashed: replay below this mark
    /// verifies outputs instead of emitting them.
    consumed_at_crash: u64,
    /// Verification cursor into `output_log` during replay.
    verify_cursor: usize,
    /// Results emitted downstream over the host's lifetime. Survives the
    /// crash — it models output the rest of the system already saw.
    output_log: Vec<ResultTuple>,
    /// Checkpoint-timer epoch; bumped by crash and restore so stale
    /// scheduled firings cancel lazily.
    epoch: u64,
    /// Records published while the host was up, in publish order — the
    /// exactly-once deliveries its subscription must converge to.
    #[cfg(debug_assertions)]
    expected: Vec<Message>,
}

/// A [`LossyNetwork`] hosting checkpointed engines at broker nodes, with
/// upstream-backup replay across [`RecoveryNetwork::crash_host`] /
/// [`RecoveryNetwork::restore_host`] cycles.
///
/// Driving pattern: [`RecoveryNetwork::publish`] batches, then
/// [`RecoveryNetwork::settle`] (drain the message plane, feed engines,
/// fire due checkpoints). Crash and restore settle internally, so hosts
/// only ever fail at quiescence — the same discipline
/// [`LossyNetwork::network_mut`] enforces for routing churn.
#[derive(Debug)]
pub struct RecoveryNetwork {
    lossy: LossyNetwork,
    hosts: BTreeMap<NodeId, EngineHost>,
    /// Simulated-time checkpoint schedule: `(host, epoch)` payloads fire
    /// when the message plane's clock passes their due tick.
    sched: EventQueue<(NodeId, u64)>,
    /// Ticks between checkpoints of one host.
    interval: u64,
}

impl RecoveryNetwork {
    /// Wraps `lossy`, checkpointing every hosted engine each `interval`
    /// simulated ticks.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(lossy: LossyNetwork, interval: u64) -> Self {
        assert!(interval > 0, "a zero checkpoint interval would truncate nothing ever gained");
        Self { lossy, hosts: BTreeMap::new(), sched: EventQueue::new(), interval }
    }

    /// Hosts a [`StreamEngine`] running `queries` at broker `node`: an
    /// all-pass subscription over the queries' input streams feeds it
    /// every record in publish order, and its first checkpoint is
    /// scheduled one interval out.
    ///
    /// # Panics
    ///
    /// Panics if `node` already hosts an engine or `queries` is empty.
    pub fn host_engine(&mut self, node: NodeId, queries: Vec<(QueryId, Query)>) {
        assert!(!self.hosts.contains_key(&node), "node {node} already hosts an engine");
        let mut streams: Vec<String> = queries
            .iter()
            .flat_map(|(_, q)| q.relations.iter().map(|r| r.stream.clone()))
            .collect();
        streams.sort();
        streams.dedup();
        assert!(!streams.is_empty(), "an engine host needs at least one input stream");
        let mut builder = Subscription::builder(node).id(SubId(RECOVERY_SUB_BASE + node.0 as u64));
        for s in &streams {
            builder = builder.stream(s.as_str(), StreamProjection::All, vec![]);
        }
        let sub = builder.build();
        self.lossy.network_mut().subscribe(sub.clone());
        let mut engine = StreamEngine::new();
        for (id, q) in &queries {
            engine.add_query(*id, q.clone());
        }
        self.sched.schedule_at(self.lossy.now() + self.interval, (node, 0));
        self.hosts.insert(
            node,
            EngineHost {
                node,
                sub,
                queries,
                engine: Some(engine),
                saved_edges: Vec::new(),
                last_checkpoint: None,
                outputs_at_checkpoint: 0,
                replay: BTreeMap::new(),
                next_seq: 0,
                consumed: 0,
                acked: 0,
                consumed_at_crash: 0,
                verify_cursor: 0,
                output_log: Vec::new(),
                epoch: 0,
                #[cfg(debug_assertions)]
                expected: Vec::new(),
            },
        );
    }

    /// Publishes one record: retained toward every hosted engine whose
    /// subscription matches (crashed hosts included — records published
    /// during downtime are exactly the ones only the replay log can still
    /// deliver), then injected into the lossy plane. Returns `false` for
    /// an unadvertised stream (nothing retained).
    ///
    /// # Panics
    ///
    /// Panics if a matching host *is* the stream's source broker:
    /// upstream backup requires the upstream to outlive the downstream's
    /// crash.
    pub fn publish(&mut self, msg: Message) -> bool {
        let Some(src) = self.lossy.network().source_of_symbol(msg.stream) else {
            return false;
        };
        for host in self.hosts.values_mut() {
            if !host.sub.matches(&msg) {
                continue;
            }
            assert_ne!(
                src, host.node,
                "upstream backup requires the upstream to outlive the engine host \
                 (stream sourced at the host itself)"
            );
            let seq = host.next_seq;
            host.next_seq += 1;
            host.replay.entry(src).or_default().push_back((seq, msg.clone()));
            #[cfg(debug_assertions)]
            if host.engine.is_some() {
                host.expected.push(msg.clone());
            }
        }
        let injected = self.lossy.publish_lossy(msg);
        assert!(injected, "source resolved, so the publish must inject");
        true
    }

    /// Drains the message plane to quiescence, feeds every live engine
    /// its unconsumed input suffix, and fires due checkpoints from the
    /// simulated-time schedule.
    pub fn settle(&mut self) {
        self.lossy.run_to_quiescence();
        let nodes: Vec<NodeId> = self.hosts.keys().copied().collect();
        for &n in &nodes {
            self.feed_host(n);
        }
        #[cfg(debug_assertions)]
        self.check_feed_matches_deliveries();
        let now = self.lossy.now();
        while let Some((due, (node, epoch))) = self.sched.pop_due(now) {
            let host = self.hosts.get(&node).expect("scheduled host exists");
            if host.epoch != epoch || host.engine.is_none() {
                continue; // lazily cancelled by a crash/restore cycle
            }
            self.take_checkpoint(node);
            self.sched.schedule_at(due + self.interval, (node, epoch));
        }
    }

    /// Checkpoints `node`'s engine immediately (outside the schedule):
    /// extracts state, advances the ack watermark, truncates the
    /// upstream replay logs.
    ///
    /// # Panics
    ///
    /// Panics if `node` hosts no engine or is crashed.
    pub fn checkpoint_now(&mut self, node: NodeId) {
        assert!(self.is_up(node), "cannot checkpoint a crashed host");
        self.take_checkpoint(node);
    }

    /// Crashes the broker at `node`: settles first (failures happen at
    /// quiescence, like all routing churn), then tears the node out of
    /// the overlay and drops its engine. The output log survives — it
    /// models results the rest of the system already consumed.
    ///
    /// # Panics
    ///
    /// Panics if `node` hosts no engine or is already down.
    pub fn crash_host(&mut self, node: NodeId) {
        self.settle();
        let host = self.hosts.get_mut(&node).expect("unknown engine host");
        assert!(host.engine.is_some(), "host {node} is already down");
        host.engine = None;
        host.consumed_at_crash = host.consumed;
        host.epoch += 1; // lazily cancel scheduled checkpoints
        let edges = self.lossy.network_mut().fail_node(node).expect("crashing a live broker node");
        self.hosts.get_mut(&node).expect("host exists").saved_edges = edges;
        debug_assert_eq!(self.lossy.network().check_ledger_consistency(), Ok(()));
    }

    /// Restores the broker at `node`: rejoins the overlay over the saved
    /// edge batch (filtered to surviving endpoints), re-installs the
    /// subscription, restores the last checkpoint into a freshly built
    /// engine, and replays the retained suffix `[watermark, now)` —
    /// verifying pre-crash outputs bit-for-bit, emitting the rest.
    ///
    /// # Panics
    ///
    /// Panics if `node` hosts no engine, is already up, or replay
    /// diverges from the pre-crash output log.
    pub fn restore_host(&mut self, node: NodeId) {
        self.settle();
        let host = self.hosts.get(&node).expect("unknown engine host");
        assert!(host.engine.is_none(), "host {node} is already up");
        // Skip edges whose far endpoint is itself a crashed host — the
        // link returns when the later-crashing side (whose batch recorded
        // it) restores. Topology degree cannot decide this: a leaf
        // stranded behind the crash is also isolated, yet its link must
        // return now. Same semantics as the chaos suite: a link is lost
        // for good only if both endpoints sat crashed at once and the
        // recording side restored first.
        let down: Vec<NodeId> = self
            .hosts
            .values()
            .filter(|h| h.engine.is_none() && h.node != node)
            .map(|h| h.node)
            .collect();
        let edges: Vec<(NodeId, f64)> =
            host.saved_edges.iter().copied().filter(|&(m, _)| !down.contains(&m)).collect();
        assert!(
            self.lossy.network_mut().restore_node(node, &edges),
            "restore_node must accept the filtered edge batch"
        );
        let sub = host.sub.clone();
        self.lossy.network_mut().subscribe(sub);
        let host = self.hosts.get_mut(&node).expect("host exists");
        let mut engine = StreamEngine::new();
        for (id, q) in &host.queries {
            engine.add_query(*id, q.clone());
        }
        match &host.last_checkpoint {
            Some(cp) => {
                engine.restore(cp);
                host.consumed = cp.watermark;
                host.verify_cursor = host.outputs_at_checkpoint;
            }
            None => {
                // Crashed before the first checkpoint: replay everything.
                host.consumed = 0;
                host.verify_cursor = 0;
            }
        }
        host.engine = Some(engine);
        host.epoch += 1;
        let epoch = host.epoch;
        debug_assert_eq!(self.lossy.network().check_ledger_consistency(), Ok(()));
        // Upstreams replay the retained suffix immediately; records
        // published during downtime ride the same path.
        self.feed_host(node);
        self.sched.schedule_at(self.lossy.now() + self.interval, (node, epoch));
    }

    /// Feeds `node`'s engine every retained record it has not consumed,
    /// in input-sequence order. Below the crash mark, outputs verify
    /// against the pre-crash log (output dedup); past it, they emit.
    fn feed_host(&mut self, node: NodeId) {
        let host = self.hosts.get_mut(&node).expect("unknown engine host");
        let Some(engine) = host.engine.as_mut() else { return };
        while host.consumed < host.next_seq {
            let seq = host.consumed;
            let record = host
                .replay
                .values()
                .find_map(|log| {
                    let i = log.partition_point(|(s, _)| *s < seq);
                    log.get(i).filter(|(s, _)| *s == seq).map(|(_, m)| m.clone())
                })
                .expect("every unacked input sequence is retained upstream");
            let outputs = engine.push(record);
            host.consumed += 1;
            if host.consumed <= host.consumed_at_crash {
                for out in outputs {
                    assert!(
                        host.verify_cursor < host.output_log.len(),
                        "replay produced more outputs than the pre-crash run"
                    );
                    assert_eq!(
                        host.output_log[host.verify_cursor], out,
                        "replayed output diverged from the pre-crash log"
                    );
                    host.verify_cursor += 1;
                }
                if host.consumed == host.consumed_at_crash {
                    assert_eq!(
                        host.verify_cursor,
                        host.output_log.len(),
                        "replay must regenerate exactly the pre-crash outputs"
                    );
                }
            } else {
                host.output_log.extend(outputs);
            }
        }
        debug_assert_eq!(engine.watermark(), host.consumed);
    }

    /// Extracts a checkpoint of `node`'s engine and truncates the
    /// upstream replay logs at its watermark, asserting the retention
    /// bound: exactly the unacked suffix survives.
    fn take_checkpoint(&mut self, node: NodeId) {
        let host = self.hosts.get_mut(&node).expect("unknown engine host");
        let engine = host.engine.as_ref().expect("checkpointing a live engine");
        let cp = engine.checkpoint();
        assert_eq!(cp.watermark, host.consumed, "the feed loop keeps these in lockstep");
        host.acked = cp.watermark;
        host.outputs_at_checkpoint = host.output_log.len();
        host.last_checkpoint = Some(cp);
        for log in host.replay.values_mut() {
            while log.front().is_some_and(|&(s, _)| s < host.acked) {
                log.pop_front();
            }
        }
        host.replay.retain(|_, log| !log.is_empty());
        let retained: u64 = host.replay.values().map(|l| l.len() as u64).sum();
        assert_eq!(
            retained,
            host.next_seq - host.acked,
            "replay retention must be exactly the unacked suffix"
        );
        assert!(
            host.replay.values().flatten().all(|&(s, _)| s >= host.acked),
            "no retained record may predate the ack watermark"
        );
    }

    /// Cross-checks the engine feed against the reliable plane: records
    /// published while the host was up must equal, bit-for-bit and in
    /// publish order, the exactly-once converged deliveries of the
    /// host's subscription.
    #[cfg(debug_assertions)]
    fn check_feed_matches_deliveries(&self) {
        let log = self.lossy.converged_log();
        for host in self.hosts.values() {
            let delivered: Vec<&Message> = log
                .iter()
                .filter(|d| d.sub == host.sub.id && d.node == host.node)
                .map(|d| &d.message)
                .collect();
            assert_eq!(
                delivered.len(),
                host.expected.len(),
                "host {} subscription must see each up-time publish exactly once",
                host.node
            );
            for (d, e) in delivered.iter().zip(&host.expected) {
                assert_eq!(*d, e, "delivered record diverged from the published one");
            }
        }
    }

    /// Results emitted by `node`'s engine over its lifetime, in input
    /// order — the artifact the differential suites compare bit-for-bit
    /// against a crash-free twin.
    pub fn output_log(&self, node: NodeId) -> &[ResultTuple] {
        &self.hosts.get(&node).expect("unknown engine host").output_log
    }

    /// Execution counters of `node`'s engine.
    ///
    /// # Panics
    ///
    /// Panics while the host is crashed.
    pub fn engine_stats(&self, node: NodeId) -> EngineStats {
        self.hosts
            .get(&node)
            .and_then(|h| h.engine.as_ref())
            .expect("stats of a live engine")
            .total_stats()
    }

    /// `true` while `node`'s engine is live.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.hosts.get(&node).is_some_and(|h| h.engine.is_some())
    }

    /// The watermark acknowledged upstream by `node`'s last checkpoint.
    pub fn acked_watermark(&self, node: NodeId) -> u64 {
        self.hosts.get(&node).expect("unknown engine host").acked
    }

    /// Total records retained upstream for `node` across all sources.
    pub fn retained(&self, node: NodeId) -> usize {
        self.hosts.get(&node).expect("unknown engine host").replay.values().map(|l| l.len()).sum()
    }

    /// Inputs assigned to `node`'s engine so far (consumed or retained).
    pub fn input_seq(&self, node: NodeId) -> u64 {
        self.hosts.get(&node).expect("unknown engine host").next_seq
    }

    /// Hosted engine nodes, ascending.
    pub fn host_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.hosts.keys().copied()
    }

    /// The wrapped reliable plane, read-only.
    pub fn lossy(&self) -> &LossyNetwork {
        &self.lossy
    }

    /// The wrapped broker network, read-only (ledger checks, logs).
    pub fn network(&self) -> &BrokerNetwork {
        self.lossy.network()
    }

    /// The wrapped broker network for *non-host* churn (subscriber
    /// arrivals/departures, link flaps elsewhere in the overlay). Host
    /// crash/restore must go through [`RecoveryNetwork::crash_host`] /
    /// [`RecoveryNetwork::restore_host`] so replay bookkeeping stays
    /// consistent.
    ///
    /// # Panics
    ///
    /// Panics while traffic is in flight (see
    /// [`LossyNetwork::network_mut`]).
    pub fn network_mut(&mut self) -> &mut BrokerNetwork {
        self.lossy.network_mut()
    }

    /// Clears delivery and traffic accounting on the reliable plane (and
    /// the debug feed cross-check history). Replay logs, checkpoints, and
    /// output logs are recovery state, not accounting — they survive.
    pub fn reset_stats(&mut self) {
        self.lossy.reset_stats();
        #[cfg(debug_assertions)]
        for host in self.hosts.values_mut() {
            host.expected.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};
    use cosmos_net::Topology;
    use cosmos_query::{parse_query, Scalar};

    /// A 4-node line: source 0 — transit 1 — host 2 — subscriber 3.
    /// Streams R and S both source at node 0.
    fn line_net(plan: FaultPlan) -> LossyNetwork {
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(2), NodeId(3), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.advertise("S", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(3))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        LossyNetwork::new(net, plan)
    }

    const JOIN: &str = "SELECT * FROM R [Range 60 Seconds], S [Now] WHERE R.k = S.k";

    fn rec(plan: FaultPlan, interval: u64) -> RecoveryNetwork {
        let mut r = RecoveryNetwork::new(line_net(plan), interval);
        r.host_engine(NodeId(2), vec![(QueryId(1), parse_query(JOIN).unwrap())]);
        r
    }

    fn msg(stream: &str, ts: i64, k: i64) -> Message {
        Message::new(stream, ts).with("k", Scalar::Int(k))
    }

    /// Crash-free twin: the same records through a bare engine.
    fn twin() -> StreamEngine {
        let mut e = StreamEngine::new();
        e.add_query(QueryId(1), parse_query(JOIN).unwrap());
        e
    }

    #[test]
    fn outputs_match_twin_without_crashes() {
        let mut r = rec(FaultPlan::clean(), 1_000);
        let mut t = twin();
        let mut expect = Vec::new();
        for i in 0..30i64 {
            let m = msg(if i % 3 == 2 { "S" } else { "R" }, i * 100, i % 4);
            assert!(r.publish(m.clone()));
            expect.extend(t.push(m));
        }
        r.settle();
        assert_eq!(r.output_log(NodeId(2)), &expect[..]);
        assert_eq!(r.engine_stats(NodeId(2)), t.total_stats());
    }

    #[test]
    fn checkpoint_truncates_replay_logs() {
        let mut r = rec(FaultPlan::clean(), 1_000);
        for i in 0..10i64 {
            r.publish(msg("R", i, 0));
        }
        r.settle();
        assert_eq!(r.retained(NodeId(2)), 10, "nothing acked yet");
        r.checkpoint_now(NodeId(2));
        assert_eq!(r.retained(NodeId(2)), 0, "ack at watermark 10 truncates everything");
        assert_eq!(r.acked_watermark(NodeId(2)), 10);
    }

    #[test]
    fn scheduled_checkpoints_fire_on_simulated_time() {
        // Interval 1: any settled batch advances the clock past the next
        // due tick, so the schedule acks every batch.
        let mut r = rec(FaultPlan::clean(), 1);
        r.publish(msg("R", 0, 0));
        r.settle();
        assert_eq!(r.acked_watermark(NodeId(2)), 1);
        r.publish(msg("R", 1, 0));
        r.publish(msg("R", 2, 1));
        r.settle();
        assert_eq!(r.acked_watermark(NodeId(2)), 3);
        assert_eq!(r.retained(NodeId(2)), 0);
    }

    #[test]
    fn crash_restore_converges_bit_for_bit() {
        // Effectively-infinite interval: only the explicit checkpoint below
        // acks, so the retention bound stays observable across the crash.
        let mut r = rec(FaultPlan::clean(), u64::MAX / 2);
        let mut t = twin();
        let mut expect = Vec::new();
        let feed = |r: &mut RecoveryNetwork, lo: i64, hi: i64| {
            let mut out = Vec::new();
            for i in lo..hi {
                let m = msg(if i % 3 == 2 { "S" } else { "R" }, i * 100, i % 4);
                assert!(r.publish(m.clone()));
                out.push(m);
            }
            out
        };
        for m in feed(&mut r, 0, 20) {
            expect.extend(t.push(m));
        }
        r.settle();
        r.checkpoint_now(NodeId(2));
        // Post-checkpoint traffic sits unacked in the replay logs.
        for m in feed(&mut r, 20, 30) {
            expect.extend(t.push(m));
        }
        r.settle();
        assert_eq!(r.retained(NodeId(2)), 10);
        r.crash_host(NodeId(2));
        assert!(!r.is_up(NodeId(2)));
        // Published while down: only the replay log still has these.
        for m in feed(&mut r, 30, 40) {
            expect.extend(t.push(m));
        }
        r.settle();
        r.restore_host(NodeId(2));
        assert_eq!(r.output_log(NodeId(2)), &expect[..]);
        assert_eq!(r.engine_stats(NodeId(2)), t.total_stats());
        // The plane still runs and stays converged afterwards.
        for m in feed(&mut r, 40, 50) {
            expect.extend(t.push(m));
        }
        r.settle();
        assert_eq!(r.output_log(NodeId(2)), &expect[..]);
        // The unrelated subscriber at node 3 gets exactly-once R
        // deliveries for every publish made while its path existed. The
        // downtime window (node 2 carried its only path, and plain
        // subscribers have no upstream backup) is legitimately lost —
        // only the hosted engine recovers those via replay.
        let n3: usize = r.lossy().converged_log().iter().filter(|d| d.sub == SubId(1)).count();
        let published_r = (0..50).filter(|i| i % 3 != 2 && !(30..40).contains(i)).count();
        assert_eq!(n3, published_r);
    }

    #[test]
    fn crash_before_first_checkpoint_replays_from_zero() {
        let mut r = rec(FaultPlan::clean(), u64::MAX / 2);
        let mut t = twin();
        let mut expect = Vec::new();
        for i in 0..15i64 {
            let m = msg(if i % 2 == 0 { "R" } else { "S" }, i * 100, i % 3);
            r.publish(m.clone());
            expect.extend(t.push(m));
        }
        r.settle();
        r.crash_host(NodeId(2));
        r.restore_host(NodeId(2));
        assert_eq!(r.output_log(NodeId(2)), &expect[..]);
        assert_eq!(r.engine_stats(NodeId(2)), t.total_stats());
    }

    #[test]
    fn lossy_plane_does_not_disturb_recovery() {
        let cfg = FaultConfig { drop: 0.1, duplicate: 0.1, reorder: 0.1, max_extra_ticks: 500 };
        let mut r = rec(FaultPlan::new(77, cfg), 2_000);
        let mut t = twin();
        let mut expect = Vec::new();
        for i in 0..40i64 {
            let m = msg(if i % 3 == 2 { "S" } else { "R" }, i * 100, i % 4);
            r.publish(m.clone());
            expect.extend(t.push(m));
        }
        r.settle();
        r.crash_host(NodeId(2));
        r.restore_host(NodeId(2));
        assert_eq!(r.output_log(NodeId(2)), &expect[..]);
        assert_eq!(r.engine_stats(NodeId(2)), t.total_stats());
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_is_rejected() {
        let mut r = rec(FaultPlan::clean(), 1_000);
        r.crash_host(NodeId(2));
        r.crash_host(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "sourced at the host itself")]
    fn hosting_at_the_source_is_rejected_at_publish() {
        let mut lossy = line_net(FaultPlan::clean());
        lossy.network_mut().advertise("T", NodeId(2));
        let mut r = RecoveryNetwork::new(lossy, 1_000);
        r.host_engine(NodeId(2), vec![(QueryId(1), parse_query("SELECT * FROM T [Now]").unwrap())]);
        r.publish(Message::new("T", 0));
    }
}
