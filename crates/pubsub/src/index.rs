//! Per-node routing index: stream partitioning plus a counting-based
//! predicate index, making broker matching sublinear in table size.
//!
//! # Why
//!
//! The paper's Pub/Sub substrate assumes brokers match each published
//! message against *massive* subscription populations. A flat routing
//! table walks every entry per message and re-evaluates its compiled
//! filters — linear in table size with a large constant. This module
//! replaces the flat table with a [`RoutingTable`] that matches in time
//! proportional to the number of *satisfied predicates* plus the number of
//! unconstrained entries, in the spirit of Siena's counting algorithm.
//!
//! # Structure
//!
//! Three layers, built incrementally as entries are installed:
//!
//! 1. **Stream partition.** Entries are grouped by the stream symbols
//!    their subscriptions request, so a published message only ever sees
//!    the partition for its own stream — entries for other streams cost
//!    nothing.
//! 2. **Counting predicate index.** Within a partition, every compiled
//!    filter that is an indexable constant comparison (`attr op constant`
//!    with a numeric constant and an order/equality operator — see
//!    [`CompiledPredicate::indexable_for`]) contributes its threshold to a
//!    sorted list keyed by `(attribute, operator)`. Matching a message
//!    resolves each message attribute **once**, binary-searches each
//!    relevant list, and walks only the satisfied range, incrementing a
//!    per-entry counter (epoch-versioned, so no per-message reset). An
//!    entry whose counter reaches its indexable-predicate count has its
//!    whole indexable prefix satisfied.
//! 3. **Residual fallback.** Non-indexable predicates (join comparisons,
//!    time deltas, string equality, `!=`, foreign-relation references) are
//!    kept on the entry and evaluated **only** for entries whose indexable
//!    prefix passed; entries with no indexable predicates are tracked in a
//!    small always-candidate list. Entries whose indexable prefix fails
//!    are never touched individually.
//!
//! # Delivery fan-out: projection classes
//!
//! Matching is sublinear, but a high-match-rate message still pays a
//! *linear-in-matches* delivery term. The index bounds its constant with
//! **projection classes**: local-delivery members of a partition are
//! grouped at install time by their exact retained-attribute set
//! ([`ProjClass`]), each distinct projection is computed **once per
//! message**, and every matched member of the class receives the same
//! `Arc`-shared [`Message`] — per delivery, a refcount bump and a log
//! push, no scalar copies. A population of thousands of subscribers
//! usually requests a handful of distinct projections, so the projection
//! work per message is O(classes), not O(matches).
//!
//! # Forwarding projections
//!
//! The flat implementation unioned per-entry "needs" projections into a
//! `HashMap<NodeId, StreamProjection>` per message. The index instead
//! precomputes, per `(next hop, stream)` group, the union of member needs
//! at install time ([`HopGroup`]): per message it only marks matched
//! groups and applies the cached union plan (a [`CachedProjection`], so
//! repeat message shapes copy scalars by precomputed column index). The
//! forwarded attribute set is therefore the union over **all** entries of
//! the group rather than only the matching ones — a superset, so delivery
//! content is unchanged (final projection happens per subscription at the
//! delivery node); only intermediate link bytes can be marginally higher
//! when entries of the same hop match selectively.
//!
//! # Maintenance
//!
//! The table is maintained **incrementally in both directions**:
//!
//! - **Install**: `subscribe`/`add_forwarding_entry` extend every affected
//!   stream partition in place (sorted-insert into threshold lists, hop
//!   groups union-extended, projection classes joined or opened). Each
//!   entry carries the owning subscription's installation sequence number,
//!   so delivery order stays the population's subscribe order no matter
//!   how entries are later removed and re-added.
//! - **Remove**: [`RoutingTable::remove_entry`] is first-class removal by
//!   `(subscription id, direction)` — the primitive the broker's
//!   per-subscription [`crate::broker::BrokerNetwork`] ledger drives on
//!   unsubscribe and link failure/recovery. Removal tombstones the entry:
//!   threshold lists keep stale references that the dead flag neutralizes
//!   during counting, the affected hop group's needs-union is recomputed
//!   from its surviving members **only** (no other group is touched), and
//!   emptied projection classes simply stop being filled. Once tombstones
//!   outnumber live entries the table compacts — threshold lists are
//!   rebuilt dense, dead hop groups and emptied projection classes are
//!   dropped, and surviving entries re-group — preserving each entry's
//!   sequence number so observable order never changes.
//!
//! Wholesale rebuilds still exist, but only as the *differential oracle*:
//! the broker's `*_wholesale` maintenance hooks clear and re-install
//! through this same incremental path, and the churn equivalence suite
//! asserts the incremental ledger ends in an observationally identical
//! state.

use crate::subscription::{CachedProjection, Message, StreamProjection, SubId, Subscription};
use cosmos_net::NodeId;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, IndexOperand};
use cosmos_query::CmpOp;
use cosmos_util::Symbol;
use std::collections::HashMap;

/// One installed routing entry: a subscription plus its forwarding
/// direction (`None` = deliver locally at this node).
#[derive(Debug, Clone)]
struct Entry {
    sub: Subscription,
    to: Option<NodeId>,
    /// The owning subscription's installation sequence number. Local
    /// deliveries are emitted in ascending `seq`, so re-installing an
    /// entry (incremental repair appends it at the end of the partition)
    /// cannot reorder the delivery log relative to a fresh build.
    seq: u64,
    dead: bool,
}

/// A per-`(next hop)` group within one stream partition: the precomputed
/// union of member needs-projections, applied once per message when any
/// member matches.
#[derive(Debug)]
struct HopGroup {
    to: NodeId,
    /// Union of `Subscription::needs` over live members, with a cached
    /// per-input-schema projection plan.
    union: CachedProjection,
    /// Last epoch in which a member of this group matched.
    epoch: u64,
}

/// A projection class: all local-delivery members of one stream partition
/// that request the **same** retained-attribute set (or `All`). The
/// projection is computed once per message per class; every matched member
/// of the class receives the same `Arc`-shared record — the per-match cost
/// drops from clone+project to a refcount bump.
#[derive(Debug)]
struct ProjClass {
    proj: CachedProjection,
    /// Epoch in which `cached` was produced.
    epoch: u64,
    /// The projected record for the current epoch's message.
    cached: Option<Message>,
}

/// What a matched member does: local delivery (share its projection
/// class's record) or marking its hop group.
#[derive(Debug)]
enum MemberAction {
    Local { sub: SubId, class: u32 },
    Hop(u32),
}

/// One `(entry, stream)` pair in a stream partition.
#[derive(Debug)]
struct Member {
    /// Slot of the owning entry in `RoutingTable::entries`.
    entry: u32,
    /// The owning entry's installation sequence number, cached here so
    /// ordering candidates never chases the entry indirection on the
    /// match hot path.
    seq: u64,
    /// Number of indexable predicates that must be satisfied.
    target: u32,
    /// Predicates evaluated only when the indexable prefix passed.
    residual: Vec<CompiledPredicate>,
    /// Satisfied-predicate counter, valid when `epoch` is current.
    count: u32,
    epoch: u64,
    dead: bool,
    action: MemberAction,
}

/// Sorted `(threshold, member)` lists for one attribute, one per operator
/// class. Ascending by threshold; never contains NaN (a NaN threshold is
/// unsatisfiable, so it only counts toward the member's target).
#[derive(Debug, Default)]
struct OpLists {
    lt: Vec<(f64, u32)>,
    le: Vec<(f64, u32)>,
    gt: Vec<(f64, u32)>,
    ge: Vec<(f64, u32)>,
    eq: Vec<(f64, u32)>,
}

impl OpLists {
    fn list_mut(&mut self, op: CmpOp) -> &mut Vec<(f64, u32)> {
        match op {
            CmpOp::Lt => &mut self.lt,
            CmpOp::Le => &mut self.le,
            CmpOp::Gt => &mut self.gt,
            CmpOp::Ge => &mut self.ge,
            CmpOp::Eq => &mut self.eq,
            CmpOp::Ne => unreachable!("Ne is never indexable"),
        }
    }

    fn insert(&mut self, op: CmpOp, threshold: f64, member: u32) {
        let list = self.list_mut(op);
        let at = list.partition_point(|(t, _)| t.total_cmp(&threshold).is_lt());
        list.insert(at, (threshold, member));
    }

    fn is_empty(&self) -> bool {
        self.lt.is_empty()
            && self.le.is_empty()
            && self.gt.is_empty()
            && self.ge.is_empty()
            && self.eq.is_empty()
    }

    /// Bumps the counter of every member whose predicate is satisfied by
    /// attribute value `v` (non-NaN): binary search for the satisfied
    /// range, then walk only that range.
    fn bump_satisfied(&self, v: f64, members: &mut [Member], touched: &mut Vec<u32>, epoch: u64) {
        // `attr > t` holds for thresholds t < v: an ascending prefix.
        let end = self.gt.partition_point(|(t, _)| *t < v);
        bump(&self.gt[..end], members, touched, epoch);
        // `attr >= t` holds for t <= v.
        let end = self.ge.partition_point(|(t, _)| *t <= v);
        bump(&self.ge[..end], members, touched, epoch);
        // `attr < t` holds for t > v: an ascending suffix.
        let start = self.lt.partition_point(|(t, _)| *t <= v);
        bump(&self.lt[start..], members, touched, epoch);
        // `attr <= t` holds for t >= v.
        let start = self.le.partition_point(|(t, _)| *t < v);
        bump(&self.le[start..], members, touched, epoch);
        // `attr = t` holds for the equal range.
        let lo = self.eq.partition_point(|(t, _)| *t < v);
        let hi = self.eq.partition_point(|(t, _)| *t <= v);
        bump(&self.eq[lo..hi], members, touched, epoch);
    }
}

/// Increments the epoch-versioned counters of `satisfied` members.
fn bump(satisfied: &[(f64, u32)], members: &mut [Member], touched: &mut Vec<u32>, epoch: u64) {
    for &(_, m) in satisfied {
        let member = &mut members[m as usize];
        if member.dead {
            continue;
        }
        if member.epoch == epoch {
            member.count += 1;
        } else {
            member.epoch = epoch;
            member.count = 1;
            touched.push(m);
        }
    }
}

/// The index over one stream's entries at one node.
#[derive(Debug, Default)]
struct StreamIndex {
    members: Vec<Member>,
    /// Threshold lists per stored attribute.
    attr_lists: HashMap<Symbol, OpLists>,
    /// Threshold lists over the event-time pseudo-attribute.
    ts_lists: OpLists,
    /// Members with no indexable predicates (always candidates).
    zero_target: Vec<u32>,
    hops: Vec<HopGroup>,
    /// Local-delivery projection classes (deduplicated projections).
    classes: Vec<ProjClass>,
    epoch: u64,
    /// Scratch: members bumped this epoch.
    touched: Vec<u32>,
    /// Scratch: fully-satisfied `(seq, member)` pairs, sorted to
    /// subscribe order — flat keys, so the sort never chases pointers.
    candidates: Vec<(u64, u32)>,
}

/// The outcome of matching one message at one node. Designed for reuse:
/// the broker keeps a small pool of these and passes them back into
/// [`RoutingTable::match_message_into`], so the per-message vectors are
/// allocated once and recycled.
#[derive(Debug, Default)]
pub struct MatchOutput {
    /// Local deliveries: `(subscription, projected message)` in
    /// installation-sequence order.
    pub deliveries: Vec<(SubId, Message)>,
    /// Forwards: `(next hop, projected message)` sorted by node id.
    pub forwards: Vec<(NodeId, Message)>,
}

impl MatchOutput {
    /// Empties both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.forwards.clear();
    }
}

/// A node's routing table: entries partitioned by stream, each partition
/// carrying a counting predicate index (see the module docs).
#[derive(Debug, Default)]
pub struct RoutingTable {
    entries: Vec<Entry>,
    streams: HashMap<Symbol, StreamIndex>,
    dead: usize,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.dead
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live entries in installation order, as `(subscription, next hop)`.
    pub fn entries(&self) -> impl Iterator<Item = (&Subscription, Option<NodeId>)> {
        self.entries.iter().filter(|e| !e.dead).map(|e| (&e.sub, e.to))
    }

    /// Drops all entries and index state.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.streams.clear();
        self.dead = 0;
    }

    /// Installs an entry, extending every affected stream partition
    /// incrementally. `seq` is the owning subscription's installation
    /// sequence number: local deliveries are emitted in ascending `seq`,
    /// keeping delivery order stable across incremental removal and
    /// re-installation.
    pub fn insert(&mut self, sub: Subscription, to: Option<NodeId>, seq: u64) {
        let entry_id = u32::try_from(self.entries.len()).expect("routing table overflow");
        for (&stream, req) in &sub.streams {
            let index = self.streams.entry(stream).or_default();
            let member_id = u32::try_from(index.members.len()).expect("partition overflow");
            let (indexable, residual) = req.split_for_index(stream);
            let target = u32::try_from(indexable.len()).expect("filter count overflow");
            for cmp in &indexable {
                // NaN thresholds are unsatisfiable (every comparison with
                // NaN is false): they count toward `target` but never
                // enter a list, so the member simply can never match.
                if cmp.threshold.is_nan() {
                    continue;
                }
                let lists = match cmp.operand {
                    IndexOperand::Attr(attr) => index.attr_lists.entry(attr).or_default(),
                    IndexOperand::Timestamp => &mut index.ts_lists,
                };
                lists.insert(cmp.op, cmp.threshold, member_id);
            }
            let needs = sub.needs(stream).expect("own stream always has needs");
            let action = match to {
                None => {
                    // Join (or open) the projection class for this exact
                    // retained-attribute set — the class's plan cache and
                    // per-message projected record are shared by every
                    // member requesting the same attributes.
                    let c = match index
                        .classes
                        .iter()
                        .position(|c| c.proj.projection() == &req.projection)
                    {
                        Some(c) => c,
                        None => {
                            index.classes.push(ProjClass {
                                proj: CachedProjection::new(req.projection.clone()),
                                epoch: 0,
                                cached: None,
                            });
                            index.classes.len() - 1
                        }
                    };
                    MemberAction::Local {
                        sub: sub.id,
                        class: u32::try_from(c).expect("projection class overflow"),
                    }
                }
                Some(next) => {
                    let g = match index.hops.iter().position(|h| h.to == next) {
                        Some(g) => {
                            let group = &mut index.hops[g];
                            let union = group.union.projection().union(&needs);
                            if &union != group.union.projection() {
                                group.union = CachedProjection::new(union);
                            }
                            g
                        }
                        None => {
                            index.hops.push(HopGroup {
                                to: next,
                                union: CachedProjection::new(needs.clone()),
                                epoch: 0,
                            });
                            index.hops.len() - 1
                        }
                    };
                    MemberAction::Hop(u32::try_from(g).expect("hop group overflow"))
                }
            };
            if target == 0 {
                index.zero_target.push(member_id);
            }
            index.members.push(Member {
                entry: entry_id,
                seq,
                target,
                residual,
                count: 0,
                epoch: 0,
                dead: false,
                action,
            });
        }
        self.entries.push(Entry { sub, to, seq, dead: false });
    }

    /// First-class incremental removal: tombstones every live entry of
    /// subscription `id` pointing `to` the given direction (all of them —
    /// one subscription can contribute several stream-restricted entries
    /// at a node toward the same hop). Hop-group unions and projection
    /// classes are updated only where the removed entries were members;
    /// the table compacts once tombstones dominate. Returns the number of
    /// entries removed.
    pub fn remove_entry(&mut self, id: SubId, to: Option<NodeId>) -> usize {
        let victims: Vec<u32> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.dead && e.to == to && e.sub.id == id)
            .map(|(i, _)| i as u32)
            .collect();
        let n = victims.len();
        for v in victims {
            self.tombstone(v);
        }
        self.maybe_compact();
        n
    }

    /// Tombstones every live entry toward `downstream` for which `covered`
    /// holds (covering-based merge removal), returning the owning
    /// subscription ids of the dropped entries — the broker records them
    /// as covering dependencies so the victims are re-propagated if the
    /// coverer ever leaves. Hop-group unions are recomputed from the
    /// surviving members; threshold lists keep stale references that the
    /// dead flag neutralizes, and the table compacts once tombstones
    /// outnumber live entries.
    pub fn remove_toward(
        &mut self,
        downstream: NodeId,
        mut covered: impl FnMut(&Subscription) -> bool,
    ) -> Vec<SubId> {
        let victims: Vec<u32> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.dead && e.to == Some(downstream) && covered(&e.sub))
            .map(|(i, _)| i as u32)
            .collect();
        let dropped: Vec<SubId> =
            victims.iter().map(|&v| self.entries[v as usize].sub.id).collect();
        for id in victims {
            self.tombstone(id);
        }
        self.maybe_compact();
        dropped
    }

    fn tombstone(&mut self, entry_id: u32) {
        let entry = &mut self.entries[entry_id as usize];
        entry.dead = true;
        self.dead += 1;
        let streams: Vec<Symbol> = entry.sub.streams.keys().copied().collect();
        for stream in streams {
            let Some(index) = self.streams.get_mut(&stream) else { continue };
            let Some(m) = index.members.iter().position(|m| !m.dead && m.entry == entry_id) else {
                continue;
            };
            index.members[m].dead = true;
            index.zero_target.retain(|&z| z != m as u32);
            if let MemberAction::Hop(g) = index.members[m].action {
                // Recompute the union over surviving members of the group
                // (a union cannot be shrunk incrementally).
                let mut union: Option<StreamProjection> = None;
                for member in &index.members {
                    if member.dead || !matches!(member.action, MemberAction::Hop(h) if h == g) {
                        continue;
                    }
                    let needs = self.entries[member.entry as usize]
                        .sub
                        .needs(stream)
                        .expect("member stream always has needs");
                    union = Some(match union {
                        None => needs,
                        Some(u) => u.union(&needs),
                    });
                }
                // A fully-emptied group keeps an empty union; it can never
                // be marked matched again (no member bumps it), and
                // compaction eventually drops it.
                index.hops[g as usize].union = CachedProjection::new(
                    union.unwrap_or(StreamProjection::Attrs(Default::default())),
                );
            }
        }
    }

    /// Rebuilds the table from its live entries once tombstones dominate,
    /// bounding memory and keeping threshold lists dense: stale threshold
    /// references disappear, dead hop groups and emptied projection
    /// classes are dropped, and survivors re-group. Sequence numbers are
    /// preserved, so observable delivery order is unchanged.
    fn maybe_compact(&mut self) {
        if self.dead <= 16 || self.dead * 2 < self.entries.len() {
            return;
        }
        let live: Vec<(Subscription, Option<NodeId>, u64)> =
            self.entries.drain(..).filter(|e| !e.dead).map(|e| (e.sub, e.to, e.seq)).collect();
        self.clear();
        for (sub, to, seq) in live {
            self.insert(sub, to, seq);
        }
    }

    /// [`RoutingTable::match_message_into`] into a fresh buffer —
    /// convenience for tests and one-shot callers.
    pub fn match_message(&mut self, msg: &Message, from: Option<NodeId>) -> MatchOutput {
        let mut out = MatchOutput::default();
        self.match_message_into(msg, from, &mut out);
        out
    }

    /// Matches `msg` against this table: counting pass over the message's
    /// attributes, residual evaluation for fully-counted candidates, local
    /// projections and per-hop union projections applied from their cached
    /// plans. `from` suppresses the reverse hop. Results are written into
    /// `out` (cleared first); reusing one `MatchOutput` across calls keeps
    /// the broker's forwarding path allocation-free after warm-up.
    pub fn match_message_into(
        &mut self,
        msg: &Message,
        from: Option<NodeId>,
        out: &mut MatchOutput,
    ) {
        out.clear();
        let Some(index) = self.streams.get_mut(&msg.stream) else {
            return;
        };
        index.epoch += 1;
        let epoch = index.epoch;
        let StreamIndex {
            members,
            attr_lists,
            ts_lists,
            zero_target,
            hops,
            classes,
            touched,
            candidates,
            ..
        } = index;
        touched.clear();
        candidates.clear();

        // Counting pass: resolve each message attribute once, walk the
        // satisfied threshold ranges.
        if !attr_lists.is_empty() {
            for (i, &attr) in msg.schema().attrs().iter().enumerate() {
                let Some(lists) = attr_lists.get(&attr) else { continue };
                let Some(v) = cosmos_query::compiled::ScalarRef::from(&msg.values()[i]).as_f64()
                else {
                    continue; // string value: numeric comparisons are false
                };
                if v.is_nan() {
                    continue;
                }
                lists.bump_satisfied(v, members, touched, epoch);
            }
        }
        if !ts_lists.is_empty() {
            ts_lists.bump_satisfied(msg.timestamp as f64, members, touched, epoch);
        }

        // Candidates: fully-counted members plus filter-free members, in
        // installation-sequence order — the population's subscribe order,
        // stable across incremental removal and re-installation (member
        // ids are only partition insertion order, which repair churns).
        // The seq rides along in the scratch pairs, so the sort compares
        // flat keys without chasing member or entry indirections.
        candidates.extend(zero_target.iter().map(|&m| (members[m as usize].seq, m)));
        candidates.extend(touched.iter().filter_map(|&m| {
            let member = &members[m as usize];
            (member.count == member.target).then_some((member.seq, m))
        }));
        candidates.sort_unstable();

        for &(_, m) in candidates.iter() {
            let member = &mut members[m as usize];
            if member.dead || !eval_compiled(&member.residual, msg) {
                continue;
            }
            match &member.action {
                MemberAction::Local { sub, class } => {
                    // Projection-class dedup: the first matched member of a
                    // class computes the projection; the rest of the class
                    // shares the record (a refcount bump per delivery).
                    let class = &mut classes[*class as usize];
                    if class.epoch != epoch {
                        class.epoch = epoch;
                        class.cached = Some(class.proj.apply(msg));
                    }
                    let record = class.cached.clone().expect("projected this epoch");
                    out.deliveries.push((*sub, record));
                }
                MemberAction::Hop(g) => hops[*g as usize].epoch = epoch,
            }
        }
        for group in hops.iter_mut() {
            if group.epoch != epoch || Some(group.to) == from {
                continue;
            }
            out.forwards.push((group.to, group.union.apply(msg)));
        }
        out.forwards.sort_by_key(|(n, _)| *n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrRef, Predicate, Scalar};

    fn cmp(stream: &str, attr: &str, op: CmpOp, v: Scalar) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new(stream, attr), op, value: v }
    }

    /// Test insert: the subscription id doubles as the sequence number,
    /// so delivery order matches insertion order as before.
    trait TestInsert {
        fn ins(&mut self, sub: Subscription, to: Option<NodeId>);
    }

    impl TestInsert for RoutingTable {
        fn ins(&mut self, sub: Subscription, to: Option<NodeId>) {
            let seq = sub.id.0;
            self.insert(sub, to, seq);
        }
    }

    fn sub(id: u64, filters: Vec<Predicate>) -> Subscription {
        Subscription::builder(NodeId(0))
            .id(SubId(id))
            .stream("R", StreamProjection::All, filters)
            .build()
    }

    fn local_matches(table: &mut RoutingTable, msg: &Message) -> Vec<SubId> {
        table.match_message(msg, None).deliveries.into_iter().map(|(s, _)| s).collect()
    }

    /// Pads the partition with entries whose thresholds can never match
    /// the test probes, so assertions run against non-trivial threshold
    /// lists rather than near-empty ones.
    fn pad(table: &mut RoutingTable) {
        for i in 0..25u64 {
            table
                .ins(sub(10_000 + i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(1_000_000))]), None);
        }
    }

    #[test]
    fn counting_matches_all_operator_classes() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Ge, Scalar::Int(15))]), None);
        table.ins(sub(3, vec![cmp("R", "a", CmpOp::Lt, Scalar::Int(15))]), None);
        table.ins(sub(4, vec![cmp("R", "a", CmpOp::Le, Scalar::Int(15))]), None);
        table.ins(sub(5, vec![cmp("R", "a", CmpOp::Eq, Scalar::Int(15))]), None);
        table.ins(sub(6, vec![]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(ids, vec![SubId(1), SubId(2), SubId(4), SubId(5), SubId(6)]);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(3)));
        assert_eq!(ids, vec![SubId(3), SubId(4), SubId(6)]);
    }

    #[test]
    fn conjunction_requires_every_indexed_predicate() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(
            sub(
                1,
                vec![
                    cmp("R", "a", CmpOp::Gt, Scalar::Int(10)),
                    cmp("R", "b", CmpOp::Lt, Scalar::Int(5)),
                ],
            ),
            None,
        );
        let hit = Message::new("R", 0).with("a", Scalar::Int(20)).with("b", Scalar::Int(1));
        let miss = Message::new("R", 0).with("a", Scalar::Int(20)).with("b", Scalar::Int(9));
        let missing = Message::new("R", 0).with("a", Scalar::Int(20));
        assert_eq!(local_matches(&mut table, &hit), vec![SubId(1)]);
        assert!(local_matches(&mut table, &miss).is_empty());
        assert!(local_matches(&mut table, &missing).is_empty(), "missing attr is false");
    }

    #[test]
    fn residual_predicates_gate_indexed_candidates() {
        // String equality is residual; numeric part is indexed.
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(
            sub(
                1,
                vec![
                    cmp("R", "a", CmpOp::Gt, Scalar::Int(10)),
                    cmp("R", "s", CmpOp::Eq, Scalar::Str("x".into())),
                ],
            ),
            None,
        );
        let hit =
            Message::new("R", 0).with("a", Scalar::Int(20)).with("s", Scalar::Str("x".into()));
        let miss =
            Message::new("R", 0).with("a", Scalar::Int(20)).with("s", Scalar::Str("y".into()));
        assert_eq!(local_matches(&mut table, &hit), vec![SubId(1)]);
        assert!(local_matches(&mut table, &miss).is_empty());
    }

    #[test]
    fn ne_and_foreign_relation_fall_back_to_residual() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Ne, Scalar::Int(7))]), None);
        // A filter qualified with a different relation can never hold.
        table.ins(sub(2, vec![cmp("S", "a", CmpOp::Gt, Scalar::Int(0))]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(3)));
        assert_eq!(ids, vec![SubId(1)]);
        assert!(
            local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(7))).is_empty()
        );
    }

    #[test]
    fn timestamp_predicates_are_indexed() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "timestamp", CmpOp::Ge, Scalar::Int(1_000))]), None);
        assert!(local_matches(&mut table, &Message::new("R", 500)).is_empty());
        assert_eq!(local_matches(&mut table, &Message::new("R", 1_000)), vec![SubId(1)]);
    }

    #[test]
    fn float_int_mixing_matches_eval_semantics() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Eq, Scalar::Float(5.0))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(4.5))]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(5)));
        assert_eq!(ids, vec![SubId(1), SubId(2)]);
    }

    #[test]
    fn nan_threshold_never_matches() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(f64::NAN))]), None);
        table.ins(sub(2, vec![]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(999)));
        assert_eq!(ids, vec![SubId(2)]);
    }

    #[test]
    fn tombstoned_entries_stop_matching_and_table_compacts() {
        let mut table = RoutingTable::new();
        for i in 0..40u64 {
            let mut s = sub(i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(i as i64))]);
            s.subscriber = NodeId(9);
            table.ins(s, Some(NodeId(1)));
        }
        assert_eq!(table.len(), 40);
        table.remove_toward(NodeId(1), |s| s.id.0 % 2 == 0);
        assert_eq!(table.len(), 20, "every even entry removed");
        // Compaction triggered (tombstones > live): entries list is dense.
        assert_eq!(table.entries.len(), 20);
        let out = table.match_message(&Message::new("R", 0).with("a", Scalar::Int(100)), None);
        assert_eq!(out.forwards.len(), 1, "one hop group toward node 1");
    }

    #[test]
    fn hop_union_shrinks_after_removal() {
        let mut table = RoutingTable::new();
        let narrow = Subscription::builder(NodeId(5))
            .id(SubId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        let wide = Subscription::builder(NodeId(6))
            .id(SubId(2))
            .stream("R", StreamProjection::attrs(["a", "b"]), vec![])
            .build();
        table.ins(narrow, Some(NodeId(1)));
        table.ins(wide, Some(NodeId(1)));
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 2, "union {{a,b}} before removal");
        table.remove_toward(NodeId(1), |s| s.id == SubId(2));
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 1, "union shrinks to {{a}}");
    }

    #[test]
    fn remove_entry_removes_only_that_subscription() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        let probe = Message::new("R", 0).with("a", Scalar::Int(20));
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(1), SubId(2)]);
        assert_eq!(table.remove_entry(SubId(1), None), 1);
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(2)]);
        // Removing again (or a different direction) is a no-op.
        assert_eq!(table.remove_entry(SubId(1), None), 0);
        assert_eq!(table.remove_entry(SubId(2), Some(NodeId(9))), 0);
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(2)]);
    }

    #[test]
    fn remove_entry_compacts_threshold_lists() {
        let mut table = RoutingTable::new();
        for i in 0..40u64 {
            table.ins(sub(i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(i as i64))]), None);
        }
        let stream: Symbol = "R".into();
        let attr: Symbol = "a".into();
        assert_eq!(table.streams[&stream].attr_lists[&attr].gt.len(), 40);
        // Tombstone one at a time: the dead flags keep the stale threshold
        // references inert, and once tombstones reach half the table (at
        // the 20th removal) compaction rebuilds the lists dense. The last
        // 4 removals sit below the tombstone threshold again.
        for i in 0..24u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.len(), 16);
        assert_eq!(table.entries.len(), 20, "compacted at tombstone majority; 4 tombstones since");
        assert_eq!(
            table.streams[&stream].attr_lists[&attr].gt.len(),
            20,
            "threshold list rebuilt dense at compaction (was 40)"
        );
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(100)));
        assert_eq!(ids, (24..40).map(SubId).collect::<Vec<_>>());
    }

    #[test]
    fn hop_union_shrinks_after_remove_entry() {
        let mut table = RoutingTable::new();
        let narrow = Subscription::builder(NodeId(5))
            .id(SubId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        let wide = Subscription::builder(NodeId(6))
            .id(SubId(2))
            .stream("R", StreamProjection::attrs(["a", "b"]), vec![])
            .build();
        table.ins(narrow, Some(NodeId(1)));
        table.ins(wide, Some(NodeId(1)));
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        assert_eq!(table.match_message(&msg, None).forwards[0].1.len(), 2);
        // First-class removal of the wide member shrinks the union to {a};
        // only this hop group is recomputed.
        assert_eq!(table.remove_entry(SubId(2), Some(NodeId(1))), 1);
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 1, "union shrinks to {{a}}");
        // Removing the last member silences the hop entirely.
        assert_eq!(table.remove_entry(SubId(1), Some(NodeId(1))), 1);
        assert!(table.match_message(&msg, None).forwards.is_empty());
    }

    #[test]
    fn projection_class_regroups_when_a_class_empties() {
        let mut table = RoutingTable::new();
        let local = |id: u64, proj: StreamProjection| {
            Subscription::builder(NodeId(0)).id(SubId(id)).stream("R", proj, vec![]).build()
        };
        // 40 members keep {a}; 18 keep {b}: two projection classes.
        for i in 0..40u64 {
            table.ins(local(i, StreamProjection::attrs(["a"])), None);
        }
        for i in 40..58u64 {
            table.ins(local(i, StreamProjection::attrs(["b"])), None);
        }
        let stream: Symbol = "R".into();
        assert_eq!(table.streams[&stream].classes.len(), 2);
        // Empty the {b} class entirely, then shed enough {a} members that
        // tombstones reach half the table: compaction re-groups and the
        // emptied class is not reopened.
        for i in 40..58u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.streams[&stream].classes.len(), 2, "emptied class lingers as a tombstone");
        for i in 0..11u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.len(), 29);
        assert_eq!(
            table.streams[&stream].classes.len(),
            1,
            "emptied projection class dropped at re-grouping"
        );
        let msg = Message::new("R", 0).with("a", Scalar::Int(7)).with("b", Scalar::Int(8));
        let out = table.match_message(&msg, None);
        assert_eq!(out.deliveries.len(), 29);
        assert!(out.deliveries.iter().all(|(_, m)| m.len() == 1), "survivors still get {{a}}");
        let ids: Vec<SubId> = out.deliveries.iter().map(|(s, _)| *s).collect();
        assert_eq!(ids, (11..40).map(SubId).collect::<Vec<_>>(), "order preserved");
    }

    #[test]
    fn reverse_hop_is_suppressed() {
        let mut table = RoutingTable::new();
        let mut s = sub(1, vec![]);
        s.subscriber = NodeId(9);
        table.ins(s, Some(NodeId(3)));
        let msg = Message::new("R", 0);
        assert_eq!(table.match_message(&msg, None).forwards.len(), 1);
        assert!(table.match_message(&msg, Some(NodeId(3))).forwards.is_empty());
    }
}
