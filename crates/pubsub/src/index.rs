//! Per-node routing index: stream partitioning plus a counting-based
//! predicate index, making broker matching sublinear in table size.
//!
//! # Why
//!
//! The paper's Pub/Sub substrate assumes brokers match each published
//! message against *massive* subscription populations. A flat routing
//! table walks every entry per message and re-evaluates its compiled
//! filters — linear in table size with a large constant. This module
//! replaces the flat table with a [`RoutingTable`] that matches in time
//! proportional to the number of *satisfied predicates* plus the number of
//! unconstrained entries, in the spirit of Siena's counting algorithm.
//!
//! # Structure
//!
//! Three layers, built incrementally as entries are installed:
//!
//! 1. **Stream partition.** Entries are grouped by the stream symbols
//!    their subscriptions request, so a published message only ever sees
//!    the partition for its own stream — entries for other streams cost
//!    nothing.
//! 2. **Counting predicate index.** Within a partition, every compiled
//!    filter that is an indexable constant comparison (`attr op constant`
//!    with a numeric constant and an order/equality operator — see
//!    [`CompiledPredicate::indexable_for`]) contributes its threshold to a
//!    tiered threshold list keyed by `(attribute, operator)`. Matching a
//!    message
//!    resolves each message attribute **once**, binary-searches each
//!    relevant list, and walks only the satisfied range, incrementing a
//!    per-entry counter (epoch-versioned, so no per-message reset). An
//!    entry whose counter reaches its indexable-predicate count has its
//!    whole indexable prefix satisfied.
//! 3. **Residual fallback.** Non-indexable predicates (join comparisons,
//!    time deltas, string equality, `!=`, foreign-relation references) are
//!    kept on the entry and evaluated **only** for entries whose indexable
//!    prefix passed; entries with no indexable predicates are tracked in a
//!    small always-candidate list. Entries whose indexable prefix fails
//!    are never touched individually.
//!
//! # Delivery fan-out: projection classes
//!
//! Matching is sublinear, but a high-match-rate message still pays a
//! *linear-in-matches* delivery term. The index bounds its constant with
//! **projection classes**: local-delivery members of a partition are
//! grouped at install time by their exact retained-attribute set
//! ([`ProjClass`]), each distinct projection is computed **once per
//! message**, and every matched member of the class receives the same
//! `Arc`-shared [`Message`] — per delivery, a refcount bump and a log
//! push, no scalar copies. A population of thousands of subscribers
//! usually requests a handful of distinct projections, so the projection
//! work per message is O(classes), not O(matches).
//!
//! # Forwarding projections
//!
//! The flat implementation unioned per-entry "needs" projections into a
//! `HashMap<NodeId, StreamProjection>` per message. The index instead
//! precomputes, per `(next hop, stream)` group, the union of member needs
//! at install time ([`HopGroup`]): per message it only marks matched
//! groups and applies the cached union plan (a [`CachedProjection`], so
//! repeat message shapes copy scalars by precomputed column index). The
//! forwarded attribute set is therefore the union over **all** entries of
//! the group rather than only the matching ones — a superset, so delivery
//! content is unchanged (final projection happens per subscription at the
//! delivery node); only intermediate link bytes can be marginally higher
//! when entries of the same hop match selectively.
//!
//! # Maintenance
//!
//! The table is maintained **incrementally in both directions**:
//!
//! - **Threshold-list lifecycle**: each `(attribute, operator)` list is a
//!   [`TieredList`] — bounded sorted *runs* (≤ `RUN_MAX` entries) under a
//!   flat *run-min directory*. An insert binary-searches the directory,
//!   then the owning run, and memmoves at most one run; a run that
//!   overflows splits in half (two directory entries replace one). Probes
//!   descend directory-then-run, so a match visits only the runs its
//!   satisfied range touches. Removal never edits runs on the match path:
//!   the member dead flag neutralizes stale references during counting,
//!   and [`TieredList::retain_vals`] sweeps them run-at-a-time when the
//!   table compacts, merging underfull survivors — but never past the
//!   split steady state, so a sweep cannot force the next insert to
//!   immediately re-split. Bulk installs (the broker's batch subscribe
//!   path) build their runs from a single sort
//!   ([`TieredList::from_unsorted`]) instead of N point inserts. The
//!   dense-list semantics are preserved
//!   exactly — same counting results, same candidate order — which the
//!   tiered-vs-dense differential suite pins down.
//! - **Install**: `subscribe`/`add_forwarding_entry` extend every affected
//!   stream partition in place (run-local sorted-insert into threshold
//!   lists, hop groups union-extended, projection classes joined or
//!   opened). Each
//!   entry carries the owning subscription's installation sequence number,
//!   so delivery order stays the population's subscribe order no matter
//!   how entries are later removed and re-added.
//! - **Remove**: [`RoutingTable::remove_entry`] is first-class removal by
//!   `(subscription id, direction)` — the primitive the broker's
//!   per-subscription [`crate::broker::BrokerNetwork`] ledger drives on
//!   unsubscribe and link failure/recovery. Removal tombstones the entry:
//!   threshold lists keep stale references that the dead flag neutralizes
//!   during counting, the affected hop group's needs-union is recomputed
//!   from its surviving members **only** (no other group is touched), and
//!   emptied projection classes simply stop being filled. Once tombstones
//!   dominate ([`tombstones_dominate`]: dead at least matches live, past
//!   a small absolute floor so tiny tables never thrash) the table
//!   compacts — threshold lists are swept run-at-a-time
//!   ([`TieredList::retain_vals`]), dead hop groups and emptied
//!   projection classes are dropped, and surviving entries re-group —
//!   preserving each entry's sequence number so observable order never
//!   changes.
//!
//! - **Covering buckets**: installs themselves are sublinear. Every
//!   forwarding entry joins a per-`(stream, next hop)` [`CoverBucket`]
//!   keyed by the same indexable `(attribute, operator, threshold)`
//!   skeleton the counting index extracts. An entry can only cover a
//!   narrower one when its thresholds are weaker, so both covering
//!   queries an arrival asks — *"does a same-direction entry cover this
//!   subscription?"* ([`RoutingTable::insert_covering`]'s skip check) and
//!   *"which entries does it cover?"* (the merge drop) — binary-search
//!   sorted threshold lists for a small candidate set (bounded by
//!   [`coverer_bounds`]' sound over-approximation) and confirm the
//!   survivors exactly, instead of scanning the table. The buckets share
//!   the entry tombstone/compaction lifecycle: removal leaves stale slot
//!   references that the dead flag neutralizes during candidate
//!   filtering, and compaction rebuilds the buckets dense alongside the
//!   threshold lists. [`ForwardedSet`] applies the same structure to the
//!   broker's forwarded-up prune state, and both keep their reference
//!   linear scans as oracle twins (the broker's `new_linear` mode) —
//!   answers are bit-identical, candidates are merely fewer.
//!
//! Wholesale rebuilds still exist, but only as the *differential oracle*:
//! the broker's `*_wholesale` maintenance hooks clear and re-install
//! through this same incremental path, and the churn equivalence suite
//! asserts the incremental ledger ends in an observationally identical
//! state.
//!
//! - **Crash recovery**: whole-node failure
//!   ([`crate::broker::BrokerNetwork::fail_node`]) is not a new table
//!   primitive — it is the two existing ones driven in bulk. The crashed
//!   broker's own table is dropped with the node; every *surviving* node
//!   sheds, via the same ledgered [`RoutingTable::remove_entry`] calls an
//!   unsubscribe issues, exactly the entries whose reverse paths routed
//!   through the crashed broker, and the repair wave re-installs the
//!   moved subscriptions through the normal install path (sequence
//!   numbers preserved, so delivery order is unchanged). The crashed
//!   broker's local subscriptions are fully unsubscribed from the ledger,
//!   never orphaned. The reliable-delivery plane
//!   ([`crate::reliable`]) sits entirely *below* this table: frames,
//!   acks, and retransmissions are per-link transport concerns the index
//!   never sees — by the time a message is matched here it is already
//!   exactly-once.
//!
//! # Concurrency: the frozen twin
//!
//! This table is the broker's single-writer *churn-path* representation:
//! matching mutates per-member epoch counters and per-class caches, so a
//! `RoutingTable` is inherently `&mut`. The parallel publish plane never
//! shares it. Instead [`RoutingTable::freeze`] produces an immutable
//! [`crate::snapshot::FrozenTable`] — live members only, slots densely
//! remapped in original order so `(seq, slot)` candidate ordering (and
//! therefore delivery order) is preserved bit-for-bit — and *all* match
//! scratch moves into per-reader state
//! ([`crate::snapshot::SnapshotReader`]). Install-time helpers take a
//! precomputed [`SubSkeleton`] (the per-stream indexable/residual split)
//! so one source walk derives each stream's skeleton once instead of
//! re-splitting at every hop for the skip probe, the victim probes and
//! the insert.

use crate::snapshot::{
    FrozenAction, FrozenHop, FrozenLists, FrozenMember, FrozenPartition, FrozenTable,
};
use crate::subscription::{CachedProjection, Message, StreamProjection, SubId, Subscription};
use crate::tiered::{tombstones_dominate, TieredList};
use cosmos_net::NodeId;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, IndexOperand, IndexableCmp};
use cosmos_query::containment::coverer_bounds;
use cosmos_query::CmpOp;
use cosmos_util::Symbol;
use std::collections::HashMap;

/// One installed routing entry: a subscription plus its forwarding
/// direction (`None` = deliver locally at this node).
#[derive(Debug, Clone)]
struct Entry {
    sub: Subscription,
    to: Option<NodeId>,
    /// The owning subscription's installation sequence number. Local
    /// deliveries are emitted in ascending `seq`, so re-installing an
    /// entry (incremental repair appends it at the end of the partition)
    /// cannot reorder the delivery log relative to a fresh build.
    seq: u64,
    dead: bool,
}

/// A per-`(next hop)` group within one stream partition: the precomputed
/// union of member needs-projections, applied once per message when any
/// member matches.
#[derive(Debug)]
struct HopGroup {
    to: NodeId,
    /// Union of `Subscription::needs` over live members, with a cached
    /// per-input-schema projection plan.
    union: CachedProjection,
    /// Last epoch in which a member of this group matched.
    epoch: u64,
}

/// A projection class: all local-delivery members of one stream partition
/// that request the **same** retained-attribute set (or `All`). The
/// projection is computed once per message per class; every matched member
/// of the class receives the same `Arc`-shared record — the per-match cost
/// drops from clone+project to a refcount bump.
#[derive(Debug)]
struct ProjClass {
    proj: CachedProjection,
    /// Epoch in which `cached` was produced.
    epoch: u64,
    /// The projected record for the current epoch's message.
    cached: Option<Message>,
}

/// What a matched member does: local delivery (share its projection
/// class's record) or marking its hop group.
#[derive(Debug)]
enum MemberAction {
    Local { sub: SubId, class: u32 },
    Hop(u32),
}

/// One `(entry, stream)` pair in a stream partition.
#[derive(Debug)]
struct Member {
    /// Slot of the owning entry in `RoutingTable::entries`.
    entry: u32,
    /// The owning entry's installation sequence number, cached here so
    /// ordering candidates never chases the entry indirection on the
    /// match hot path.
    seq: u64,
    /// Number of indexable predicates that must be satisfied.
    target: u32,
    /// Predicates evaluated only when the indexable prefix passed.
    residual: Vec<CompiledPredicate>,
    /// Satisfied-predicate counter, valid when `epoch` is current.
    count: u32,
    epoch: u64,
    dead: bool,
    action: MemberAction,
}

/// Sorted `(threshold, member)` lists for one attribute, one per operator
/// class. Ascending by threshold; never contains NaN (a NaN threshold is
/// unsatisfiable, so it only counts toward the member's target). Each
/// list is a [`TieredList`] — bounded runs under a run-min directory — so
/// an install memmoves at most one run no matter how large the partition
/// grows, while the satisfied-range walks below iterate runs in key
/// order and stay bit-identical to the dense layout they replaced.
#[derive(Debug, Default)]
struct OpLists {
    lt: TieredList,
    le: TieredList,
    gt: TieredList,
    ge: TieredList,
    eq: TieredList,
}

impl OpLists {
    fn list_mut(&mut self, op: CmpOp) -> &mut TieredList {
        match op {
            CmpOp::Lt => &mut self.lt,
            CmpOp::Le => &mut self.le,
            CmpOp::Gt => &mut self.gt,
            CmpOp::Ge => &mut self.ge,
            CmpOp::Eq => &mut self.eq,
            CmpOp::Ne => unreachable!("Ne is never indexable"),
        }
    }

    fn insert(&mut self, op: CmpOp, threshold: f64, member: u32) {
        self.list_mut(op).insert(threshold, member);
    }

    fn is_empty(&self) -> bool {
        self.lt.is_empty()
            && self.le.is_empty()
            && self.gt.is_empty()
            && self.ge.is_empty()
            && self.eq.is_empty()
    }

    /// Per-run tombstone sweep: drops every reference to a dead member
    /// from all five lists (retain-in-place per run, underfull runs
    /// merged), so partitions under heavy churn shed stale references
    /// without waiting for the whole-table rebuild.
    fn sweep_dead(&mut self, members: &[Member]) {
        for list in [&mut self.lt, &mut self.le, &mut self.gt, &mut self.ge, &mut self.eq] {
            list.retain_vals(|m| !members[m as usize].dead);
        }
    }

    /// Bumps the counter of every member whose predicate is satisfied by
    /// attribute value `v` (non-NaN): descend the run directory to the
    /// satisfied range, then walk only that range's runs in key order.
    fn bump_satisfied(&self, v: f64, members: &mut [Member], touched: &mut Vec<u32>, epoch: u64) {
        // `attr > t` holds for thresholds t < v: an ascending prefix.
        self.gt.for_prefix(|t| t < v, |run| bump(run, members, touched, epoch));
        // `attr >= t` holds for t <= v.
        self.ge.for_prefix(|t| t <= v, |run| bump(run, members, touched, epoch));
        // `attr < t` holds for t > v: an ascending suffix.
        self.lt.for_suffix(|t| t > v, |run| bump(run, members, touched, epoch));
        // `attr <= t` holds for t >= v.
        self.le.for_suffix(|t| t >= v, |run| bump(run, members, touched, epoch));
        // `attr = t` holds for the equal range.
        self.eq.for_eq(|t| t < v, |t| t <= v, |run| bump(run, members, touched, epoch));
    }

    /// [`OpLists::bump_satisfied`] with a caller-held cursor over the
    /// equality list's run directory (see [`TieredList::for_eq_hinted`]):
    /// the batched matcher probes messages in value order, so each eq
    /// descent becomes an amortized linear advance. The inequality lists
    /// walk whole satisfied ranges anyway — their boundary descents are
    /// already a negligible share of the visit — so only `eq` is hinted.
    fn bump_satisfied_hinted(
        &self,
        v: f64,
        members: &mut [Member],
        touched: &mut Vec<u32>,
        epoch: u64,
        eq_cursor: &mut usize,
    ) {
        self.gt.for_prefix(|t| t < v, |run| bump(run, members, touched, epoch));
        self.ge.for_prefix(|t| t <= v, |run| bump(run, members, touched, epoch));
        self.lt.for_suffix(|t| t > v, |run| bump(run, members, touched, epoch));
        self.le.for_suffix(|t| t >= v, |run| bump(run, members, touched, epoch));
        self.eq.for_eq_hinted(
            eq_cursor,
            |t| t < v,
            |t| t <= v,
            |run| bump(run, members, touched, epoch),
        );
    }
}

/// Increments the epoch-versioned counters of `satisfied` members.
fn bump(satisfied: &[(f64, u32)], members: &mut [Member], touched: &mut Vec<u32>, epoch: u64) {
    for &(_, m) in satisfied {
        let member = &mut members[m as usize];
        if member.dead {
            continue;
        }
        if member.epoch == epoch {
            member.count += 1;
        } else {
            member.epoch = epoch;
            member.count = 1;
            touched.push(m);
        }
    }
}

/// Below this many members a covering bucket (or forwarded set) is
/// scanned whole instead of range-probed: the skeleton split and bound
/// computation cost more than confirming a handful of candidates, and
/// covering-dense populations — where merges keep every bucket tiny —
/// would otherwise pay that overhead on every install hop. Both paths
/// produce a candidate superset confirmed by the same exact check, so
/// the answer is identical either way.
const COVER_SCAN_SMALL: usize = 32;

/// Normalizes a threshold for `total_cmp`-ordered storage: `-0.0` and
/// `0.0` compare equal numerically but not under `total_cmp`, so both are
/// stored (and probed) as `+0.0`. NaN never enters a covering list.
fn norm(t: f64) -> f64 {
    if t == 0.0 {
        0.0
    } else {
        t
    }
}

/// A subscription's per-stream indexable/residual split, computed once
/// and threaded through an install walk. `insert`, `insert_covering` and
/// the forwarded-set covering queries all consume the same split
/// ([`crate::subscription::StreamRequest::split_for_index`]); without
/// this, a multi-hop installation re-derived it up to three times per
/// hop (skip probe, victim probes, insert).
#[derive(Debug, Clone)]
pub struct SubSkeleton {
    /// `(stream, indexable comparisons, residual predicates)` in the
    /// subscription's stream order.
    streams: Vec<(Symbol, Vec<IndexableCmp>, Vec<CompiledPredicate>)>,
}

impl SubSkeleton {
    /// Splits every stream of `sub` once.
    pub fn of(sub: &Subscription) -> Self {
        Self {
            streams: sub
                .streams
                .iter()
                .map(|(&s, req)| {
                    let (indexable, residual) = req.split_for_index(s);
                    (s, indexable, residual)
                })
                .collect(),
        }
    }

    /// The precomputed split for one stream. Subscriptions request a
    /// handful of streams, so a linear find beats a map here.
    fn get(&self, stream: Symbol) -> Option<(&[IndexableCmp], &[CompiledPredicate])> {
        self.streams
            .iter()
            .find(|(s, _, _)| *s == stream)
            .map(|(_, i, r)| (i.as_slice(), r.as_slice()))
    }
}

/// Covering-candidate index over the subscriptions of one
/// `(stream, direction)` bucket, keyed by the indexable
/// `(attribute, operator, threshold)` skeleton
/// ([`CompiledPredicate::indexable_for`] via
/// [`crate::subscription::StreamRequest::split_for_index`]).
///
/// An entry can only cover a narrower one when its thresholds are weaker,
/// so both covering queries reduce to binary-searched ranges over sorted
/// threshold lists — a *candidate* set that the exact covering check then
/// confirms (the range bounds are [`coverer_bounds`]' sound
/// over-approximation):
///
/// - **"Who covers this subscription?"** — the loose members (no usable
///   comparison: nothing constrains them away) plus, per probe attribute,
///   the prefix of weaker lower bounds, the suffix of weaker upper
///   bounds, and the equal range of matching point constraints.
/// - **"Whom does this subscription cover?"** — anchored on the probe's
///   first comparison: a covered member must carry a comparison on the
///   same attribute at least as strong, so the complementary range of the
///   same lists applies.
///
/// Slots are caller-defined (routing-table entry ids, forwarded-set
/// record indices). The bucket never removes: dead slots are filtered by
/// the caller's liveness check and disappear when the owner compacts —
/// the same tombstone/compaction lifecycle as the counting match index.
#[derive(Debug, Default)]
struct CoverBucket {
    /// Sorted `(threshold, slot)` lists per indexable `(operand, op)`
    /// pair: every usable comparison of every member (NaN thresholds are
    /// unsatisfiable and imply nothing, so they never enter a list).
    /// Tiered like the counting index's lists, so inserting into a huge
    /// bucket memmoves at most one run. Populated only once the bucket
    /// is `built`.
    comps: HashMap<(IndexOperand, CmpOp), TieredList>,
    /// Members with no usable indexable comparison on the bucket's stream
    /// (filter-free or residual-only): always coverer candidates.
    /// Populated only once the bucket is `built`.
    loose: Vec<u32>,
    /// Every member slot, in insertion order — the victim candidate set
    /// when the probing subscription carries no indexable comparison,
    /// and the whole candidate set while the bucket is small.
    members: Vec<u32>,
    /// Whether the threshold lists exist. Small buckets are scanned
    /// whole (see [`COVER_SCAN_SMALL`]), so owners defer building the
    /// lists until the bucket outgrows the threshold — covering-dense
    /// populations, whose merges keep every bucket tiny, then pay no
    /// skeleton upkeep at all.
    built: bool,
}

impl CoverBucket {
    fn insert(&mut self, slot: u32, comps: &[IndexableCmp]) {
        self.members.push(slot);
        let mut usable = false;
        for c in comps {
            if c.threshold.is_nan() {
                continue;
            }
            usable = true;
            self.comps.entry((c.operand, c.op)).or_default().insert(norm(c.threshold), slot);
        }
        if !usable {
            self.loose.push(slot);
        }
    }

    /// Backfills the threshold lists from the staged member set in one
    /// pass (the owner's lazy build at [`COVER_SCAN_SMALL`]): comparisons
    /// are collected per `(operand, op)` key and each list is bulk-loaded
    /// run-at-a-time from a single sort instead of N point inserts.
    /// Candidate queries sort and dedup before confirming, so the
    /// equal-threshold order difference from point inserts is unobservable.
    fn bulk_build(&mut self, staged: Vec<(u32, Vec<IndexableCmp>)>) {
        let mut lists: HashMap<(IndexOperand, CmpOp), Vec<(f64, u32)>> = HashMap::new();
        for (slot, comps) in staged {
            self.members.push(slot);
            let mut usable = false;
            for c in &comps {
                if c.threshold.is_nan() {
                    continue;
                }
                usable = true;
                lists.entry((c.operand, c.op)).or_default().push((norm(c.threshold), slot));
            }
            if !usable {
                self.loose.push(slot);
            }
        }
        for (key, items) in lists {
            self.comps.insert(key, TieredList::from_unsorted(items));
        }
    }

    /// Appends every slot that could cover a subscription whose
    /// comparisons on this stream are `probe` (a superset — callers
    /// confirm candidates with the exact covering check).
    fn coverer_candidates(&self, probe: &[IndexableCmp], out: &mut Vec<u32>) {
        out.extend_from_slice(&self.loose);
        let mut operands: Vec<IndexOperand> = Vec::new();
        for c in probe {
            if !operands.contains(&c.operand) {
                operands.push(c.operand);
            }
        }
        let collect = |run: &[(f64, u32)], out: &mut Vec<u32>| {
            out.extend(run.iter().map(|&(_, s)| s));
        };
        for operand in operands {
            let bounds = coverer_bounds(
                probe.iter().filter(|c| c.operand == operand).map(|c| (c.op, c.threshold)),
            );
            if let Some(u) = bounds.lower_max {
                let u = norm(u);
                for op in [CmpOp::Gt, CmpOp::Ge] {
                    if let Some(list) = self.comps.get(&(operand, op)) {
                        list.for_prefix(|t| t.total_cmp(&u).is_le(), |run| collect(run, out));
                    }
                }
            }
            if let Some(l) = bounds.upper_min {
                let l = norm(l);
                for op in [CmpOp::Lt, CmpOp::Le] {
                    if let Some(list) = self.comps.get(&(operand, op)) {
                        list.for_suffix(|t| t.total_cmp(&l).is_ge(), |run| collect(run, out));
                    }
                }
            }
            if let Some(list) = self.comps.get(&(operand, CmpOp::Eq)) {
                for &v in &bounds.eq_values {
                    let v = norm(v);
                    list.for_eq(
                        |t| t.total_cmp(&v).is_lt(),
                        |t| t.total_cmp(&v).is_le(),
                        |run| collect(run, out),
                    );
                }
            }
        }
    }

    /// Appends every slot the probing subscription could cover, anchored
    /// on the probe's first usable comparison. With no usable comparison
    /// the whole bucket is a candidate — output-sensitive rather than
    /// sublinear, but a filterless coverer drops nearly everything it
    /// touches anyway, leaving the bucket small afterwards.
    fn covered_candidates(&self, probe: &[IndexableCmp], out: &mut Vec<u32>) {
        if probe.iter().any(|c| c.threshold.is_nan()) {
            return; // an unsatisfiable comparison is implied by nothing
        }
        let Some(c0) = probe.first() else {
            out.extend_from_slice(&self.members);
            return;
        };
        let t = norm(c0.threshold);
        let collect = |run: &[(f64, u32)], out: &mut Vec<u32>| {
            out.extend(run.iter().map(|&(_, s)| s));
        };
        match c0.op {
            CmpOp::Gt | CmpOp::Ge => {
                for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
                    if let Some(list) = self.comps.get(&(c0.operand, op)) {
                        list.for_suffix(|x| x.total_cmp(&t).is_ge(), |run| collect(run, out));
                    }
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
                    if let Some(list) = self.comps.get(&(c0.operand, op)) {
                        list.for_prefix(|x| x.total_cmp(&t).is_le(), |run| collect(run, out));
                    }
                }
            }
            CmpOp::Eq => {
                if let Some(list) = self.comps.get(&(c0.operand, CmpOp::Eq)) {
                    list.for_eq(
                        |x| x.total_cmp(&t).is_lt(),
                        |x| x.total_cmp(&t).is_le(),
                        |run| collect(run, out),
                    );
                }
            }
            CmpOp::Ne => unreachable!("Ne is never indexable"),
        }
    }
}

/// The outcome of one covering-merged forwarding-entry insert
/// ([`RoutingTable::insert_covering`]).
#[derive(Debug)]
pub enum ForwardInsert {
    /// Entry installed; these subscriptions' covered same-direction
    /// entries were dropped — one id **per dropped entry** (a multi-stream
    /// victim can lose several entries toward the same hop), in table
    /// order, so the caller can scrub each from the victim's ledger.
    Inserted {
        /// Owning ids of the dropped entries.
        dropped: Vec<SubId>,
    },
    /// An existing covering entry of subscription `by` made the insert
    /// redundant.
    Skipped {
        /// The covering subscription.
        by: SubId,
    },
}

/// The forwarded-up set of one `(node, source)` pair: the subscriptions
/// already propagated toward that source, with per-stream
/// covering buckets so the prune check — "does anything already forwarded
/// cover this subscription?" — binary-searches threshold skeletons
/// instead of scanning the population. Same tombstone/compaction
/// lifecycle as the routing table; the linear scan survives as
/// [`ForwardedSet::find_coverer_linear`], the oracle twin.
#[derive(Debug, Default)]
pub struct ForwardedSet {
    records: Vec<ForwardedRec>,
    buckets: HashMap<Symbol, CoverBucket>,
    /// Record slots per subscription id, ascending — makes removal
    /// independent of population size (no whole-set scan at 100k+).
    slots_of: HashMap<SubId, Vec<u32>>,
    dead: usize,
    /// Whether the covering buckets exist. Small sets are scanned
    /// linearly ([`COVER_SCAN_SMALL`]), so bucket upkeep is deferred
    /// until the set outgrows the threshold — in covering-dense
    /// populations the prune state stays tiny and pays no upkeep at all.
    built: bool,
    /// Scratch buffer of candidate slots, reused across
    /// [`ForwardedSet::find_coverer`] calls.
    scratch: Vec<u32>,
}

#[derive(Debug)]
struct ForwardedRec {
    sub: Subscription,
    dead: bool,
}

impl ForwardedSet {
    fn bucket_insert(buckets: &mut HashMap<Symbol, CoverBucket>, slot: u32, sub: &Subscription) {
        for (&s, req) in &sub.streams {
            let (indexable, _) = req.split_for_index(s);
            let bucket = buckets.entry(s).or_default();
            bucket.built = true;
            bucket.insert(slot, &indexable);
        }
    }

    /// Records a forwarded subscription, extending its streams' buckets
    /// (built lazily, once the set outgrows the whole-scan threshold —
    /// the per-set mirror of `RoutingTable::insert`'s per-bucket policy;
    /// the gate counts raw records, tombstones included, matching the
    /// `find_coverer` shortcut's gate).
    pub fn push(&mut self, sub: Subscription) {
        let skel = SubSkeleton::of(&sub);
        self.push_with(sub, &skel);
    }

    /// [`ForwardedSet::push`] with the caller's precomputed skeleton.
    pub fn push_with(&mut self, sub: Subscription, skel: &SubSkeleton) {
        let slot = u32::try_from(self.records.len()).expect("forwarded set overflow");
        if !self.built && self.records.len() >= COVER_SCAN_SMALL {
            self.built = true;
            for (i, rec) in self.records.iter().enumerate() {
                if !rec.dead {
                    Self::bucket_insert(&mut self.buckets, i as u32, &rec.sub);
                }
            }
        }
        if self.built {
            for &s in sub.streams.keys() {
                let indexable = skel.get(s).map(|(i, _)| i).unwrap_or(&[]);
                let bucket = self.buckets.entry(s).or_default();
                bucket.built = true;
                bucket.insert(slot, indexable);
            }
        }
        self.slots_of.entry(sub.id).or_default().push(slot);
        self.records.push(ForwardedRec { sub, dead: false });
    }

    /// The first live record covering `sub` (insertion order — identical
    /// to the linear twin's answer), via the covering buckets; a coverer
    /// must request every stream of `sub`, so the first stream's bucket
    /// already contains all possible coverers. `covers(general,
    /// specific)` confirms candidates. A record never covers its own id.
    pub fn find_coverer<F>(&mut self, sub: &Subscription, covers: F) -> Option<SubId>
    where
        F: Fn(&Subscription, &Subscription) -> bool,
    {
        let skel = SubSkeleton::of(sub);
        self.find_coverer_with(sub, &skel, covers)
    }

    /// [`ForwardedSet::find_coverer`] with the caller's precomputed
    /// skeleton.
    pub fn find_coverer_with<F>(
        &mut self,
        sub: &Subscription,
        skel: &SubSkeleton,
        covers: F,
    ) -> Option<SubId>
    where
        F: Fn(&Subscription, &Subscription) -> bool,
    {
        if !self.built {
            // Covering pruning keeps most forwarded sets tiny; scanning
            // them beats the skeleton machinery (identical answer).
            return self.find_coverer_linear(sub, covers);
        }
        let Some((&s0, _)) = sub.streams.iter().next() else {
            // A stream-free subscription is vacuously covered by anything
            // live; only the linear scan can answer for it.
            return self.find_coverer_linear(sub, covers);
        };
        let bucket = self.buckets.get(&s0)?;
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        let probe = skel.get(s0).map(|(i, _)| i).unwrap_or(&[]);
        bucket.coverer_candidates(probe, &mut candidates);
        candidates.sort_unstable();
        candidates.dedup();
        let found = candidates.iter().find_map(|&slot| {
            let rec = &self.records[slot as usize];
            (!rec.dead && rec.sub.id != sub.id && covers(&rec.sub, sub)).then_some(rec.sub.id)
        });
        self.scratch = candidates;
        found
    }

    /// The reference linear scan over live records, in insertion order —
    /// the oracle twin of [`ForwardedSet::find_coverer`].
    pub fn find_coverer_linear<F>(&self, sub: &Subscription, covers: F) -> Option<SubId>
    where
        F: Fn(&Subscription, &Subscription) -> bool,
    {
        self.records.iter().find_map(|rec| {
            (!rec.dead && rec.sub.id != sub.id && covers(&rec.sub, sub)).then_some(rec.sub.id)
        })
    }

    /// Tombstones every record of `id`, compacting once tombstones
    /// dominate. Returns how many records were removed.
    pub fn remove(&mut self, id: SubId) -> usize {
        let mut n = 0;
        if let Some(slots) = self.slots_of.remove(&id) {
            for slot in slots {
                let rec = &mut self.records[slot as usize];
                if !rec.dead {
                    rec.dead = true;
                    self.dead += 1;
                    n += 1;
                }
            }
        }
        if tombstones_dominate(self.dead, self.records.len()) {
            let live: Vec<Subscription> =
                self.records.drain(..).filter(|r| !r.dead).map(|r| r.sub).collect();
            self.buckets.clear();
            self.slots_of.clear();
            self.dead = 0;
            self.built = false;
            for sub in live {
                self.push(sub);
            }
        }
        n
    }

    /// Live forwarded subscriptions, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Subscription> {
        self.records.iter().filter(|r| !r.dead).map(|r| &r.sub)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len() - self.dead
    }

    /// `true` when no live records remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The index over one stream's entries at one node.
#[derive(Debug, Default)]
struct StreamIndex {
    members: Vec<Member>,
    /// Member slot per owning entry id (each entry contributes at most
    /// one member per partition) — makes tombstoning independent of
    /// partition size.
    member_of: HashMap<u32, u32>,
    /// Members tombstoned since the last per-run sweep of the threshold
    /// lists; once these dominate the partition the lists are swept
    /// run-by-run without rebuilding the table.
    dead_members: usize,
    /// Threshold lists per stored attribute.
    attr_lists: HashMap<Symbol, OpLists>,
    /// Threshold lists over the event-time pseudo-attribute.
    ts_lists: OpLists,
    /// Members with no indexable predicates (always candidates).
    zero_target: Vec<u32>,
    hops: Vec<HopGroup>,
    /// Local-delivery projection classes (deduplicated projections).
    classes: Vec<ProjClass>,
    epoch: u64,
    /// Scratch: members bumped this epoch.
    touched: Vec<u32>,
    /// Scratch: fully-satisfied `(seq, member)` pairs, sorted to
    /// subscribe order — flat keys, so the sort never chases pointers.
    candidates: Vec<(u64, u32)>,
    /// Scratch: hop groups marked by the current message (batched
    /// matching emits forwards from this list instead of rescanning
    /// every group per message).
    touched_hops: Vec<u32>,
}

/// The outcome of matching one message at one node. Designed for reuse:
/// the broker keeps a small pool of these and passes them back into
/// [`RoutingTable::match_message_into`], so the per-message vectors are
/// allocated once and recycled.
#[derive(Debug, Default)]
pub struct MatchOutput {
    /// Local deliveries: `(subscription, projected message)` in
    /// installation-sequence order.
    pub deliveries: Vec<(SubId, Message)>,
    /// Forwards: `(next hop, projected message)` sorted by node id.
    pub forwards: Vec<(NodeId, Message)>,
}

impl MatchOutput {
    /// Empties both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.forwards.clear();
    }
}

/// The outcome of matching one batched message at one node. Unlike
/// [`MatchOutput`], an identity forward (a hop whose union projection
/// keeps the whole record) carries `None` instead of a clone of the
/// message — the caller shares the original it already holds, so the
/// batched plane never pays a per-hop record clone for pass-through
/// forwarding. Reconstituting `Some(msg.clone())` for every `None` yields
/// exactly [`RoutingTable::match_message_into`]'s output.
#[derive(Debug, Default)]
pub struct BatchMatchOutput {
    /// Local deliveries: `(subscription, projected message)` in
    /// installation-sequence order.
    pub deliveries: Vec<(SubId, Message)>,
    /// Forwards sorted by node id; `None` projects nothing (forward the
    /// matched message itself).
    pub forwards: Vec<(NodeId, Option<Message>)>,
}

impl BatchMatchOutput {
    /// Empties both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.forwards.clear();
    }
}

/// A node's routing table: entries partitioned by stream, each partition
/// carrying a counting predicate index (see the module docs).
#[derive(Debug, Default)]
pub struct RoutingTable {
    entries: Vec<Entry>,
    streams: HashMap<Symbol, StreamIndex>,
    /// Covering buckets per `(stream, next hop)`, over the forwarding
    /// entries only (local-delivery entries never covering-merge): the
    /// sublinear candidate source behind [`RoutingTable::insert_covering`].
    covers: HashMap<(Symbol, NodeId), CoverBucket>,
    /// Stream-free forwarding entries per hop: they belong to no
    /// `(stream, hop)` bucket yet are vacuously covered by *any*
    /// subscription, so the victim query must always consider them.
    streamless: HashMap<NodeId, Vec<u32>>,
    /// Scratch buffer of candidate slots, reused across
    /// [`RoutingTable::insert_covering`] calls.
    cover_scratch: Vec<u32>,
    /// Entry slots per owning subscription id, ascending — removal walks
    /// the owner's own entries instead of scanning the table.
    by_sub: HashMap<SubId, Vec<u32>>,
    dead: usize,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.dead
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live entries in installation order, as `(subscription, next hop)`.
    pub fn entries(&self) -> impl Iterator<Item = (&Subscription, Option<NodeId>)> {
        self.entries.iter().filter(|e| !e.dead).map(|e| (&e.sub, e.to))
    }

    /// Drops all entries and index state.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.streams.clear();
        self.covers.clear();
        self.streamless.clear();
        self.by_sub.clear();
        self.dead = 0;
    }

    /// Installs an entry, extending every affected stream partition
    /// incrementally. `seq` is the owning subscription's installation
    /// sequence number: local deliveries are emitted in ascending `seq`,
    /// keeping delivery order stable across incremental removal and
    /// re-installation.
    pub fn insert(&mut self, sub: Subscription, to: Option<NodeId>, seq: u64) {
        let skel = SubSkeleton::of(&sub);
        self.insert_with(sub, &skel, to, seq);
    }

    /// [`RoutingTable::insert`] with the caller's precomputed skeleton —
    /// the broker's install walk derives each source's skeleton once and
    /// reuses it at every hop.
    pub fn insert_with(
        &mut self,
        sub: Subscription,
        skel: &SubSkeleton,
        to: Option<NodeId>,
        seq: u64,
    ) {
        let entry_id = u32::try_from(self.entries.len()).expect("routing table overflow");
        if let (Some(next), true) = (to, sub.streams.is_empty()) {
            // A stream-free forwarding entry joins no bucket but is
            // vacuously covered by anything: track it per hop so the
            // indexed victim query keeps matching the linear scan.
            self.streamless.entry(next).or_default().push(entry_id);
        }
        for (&stream, req) in &sub.streams {
            let index = self.streams.entry(stream).or_default();
            let member_id = u32::try_from(index.members.len()).expect("partition overflow");
            let (indexable, residual) =
                skel.get(stream).map(|(i, r)| (i, r.to_vec())).unwrap_or_default();
            let target = u32::try_from(indexable.len()).expect("filter count overflow");
            if let Some(next) = to {
                // Forwarding entries join their (stream, hop) covering
                // bucket; local-delivery entries never covering-merge.
                // Threshold lists are built lazily, once the bucket
                // outgrows the whole-scan threshold (ForwardedSet::push
                // mirrors this policy per *set*, gating on raw record
                // count; here the backfill skips tombstoned entries).
                let bucket = self.covers.entry((stream, next)).or_default();
                if bucket.built {
                    bucket.insert(entry_id, indexable);
                } else if bucket.members.len() >= COVER_SCAN_SMALL {
                    bucket.built = true;
                    let staged: Vec<(u32, Vec<IndexableCmp>)> = std::mem::take(&mut bucket.members)
                        .into_iter()
                        .filter_map(|slot| {
                            let e = &self.entries[slot as usize];
                            if e.dead {
                                return None; // tombstones stay out of the lists
                            }
                            let comps = e
                                .sub
                                .streams
                                .get(&stream)
                                .map(|r| r.split_for_index(stream).0)
                                .unwrap_or_default();
                            Some((slot, comps))
                        })
                        .collect();
                    bucket.bulk_build(staged);
                    bucket.insert(entry_id, indexable);
                } else {
                    bucket.members.push(entry_id);
                }
            }
            for cmp in indexable {
                // NaN thresholds are unsatisfiable (every comparison with
                // NaN is false): they count toward `target` but never
                // enter a list, so the member simply can never match.
                if cmp.threshold.is_nan() {
                    continue;
                }
                let lists = match cmp.operand {
                    IndexOperand::Attr(attr) => index.attr_lists.entry(attr).or_default(),
                    IndexOperand::Timestamp => &mut index.ts_lists,
                };
                lists.insert(cmp.op, cmp.threshold, member_id);
            }
            let needs = sub.needs(stream).expect("own stream always has needs");
            let action = match to {
                None => {
                    // Join (or open) the projection class for this exact
                    // retained-attribute set — the class's plan cache and
                    // per-message projected record are shared by every
                    // member requesting the same attributes.
                    let c = match index
                        .classes
                        .iter()
                        .position(|c| c.proj.projection() == &req.projection)
                    {
                        Some(c) => c,
                        None => {
                            index.classes.push(ProjClass {
                                proj: CachedProjection::new(req.projection.clone()),
                                epoch: 0,
                                cached: None,
                            });
                            index.classes.len() - 1
                        }
                    };
                    MemberAction::Local {
                        sub: sub.id,
                        class: u32::try_from(c).expect("projection class overflow"),
                    }
                }
                Some(next) => {
                    let g = match index.hops.iter().position(|h| h.to == next) {
                        Some(g) => {
                            let group = &mut index.hops[g];
                            let union = group.union.projection().union(&needs);
                            if &union != group.union.projection() {
                                group.union = CachedProjection::new(union);
                            }
                            g
                        }
                        None => {
                            index.hops.push(HopGroup {
                                to: next,
                                union: CachedProjection::new(needs.clone()),
                                epoch: 0,
                            });
                            index.hops.len() - 1
                        }
                    };
                    MemberAction::Hop(u32::try_from(g).expect("hop group overflow"))
                }
            };
            if target == 0 {
                index.zero_target.push(member_id);
            }
            index.member_of.insert(entry_id, member_id);
            index.members.push(Member {
                entry: entry_id,
                seq,
                target,
                residual,
                count: 0,
                epoch: 0,
                dead: false,
                action,
            });
        }
        self.by_sub.entry(sub.id).or_default().push(entry_id);
        self.entries.push(Entry { sub, to, seq, dead: false });
    }

    /// First-class incremental removal: tombstones every live entry of
    /// subscription `id` pointing `to` the given direction (all of them —
    /// one subscription can contribute several stream-restricted entries
    /// at a node toward the same hop). Hop-group unions and projection
    /// classes are updated only where the removed entries were members;
    /// the table compacts once tombstones dominate. Returns the number of
    /// entries removed.
    pub fn remove_entry(&mut self, id: SubId, to: Option<NodeId>) -> usize {
        // `by_sub` slots are ascending entry ids, so the victims come out
        // in table order — identical to the old whole-table scan.
        let victims: Vec<u32> = self
            .by_sub
            .get(&id)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&v| {
                let e = &self.entries[v as usize];
                !e.dead && e.to == to
            })
            .collect();
        let n = victims.len();
        for v in victims {
            self.tombstone(v);
        }
        self.maybe_compact();
        n
    }

    /// Tombstones every live entry toward `downstream` for which `covered`
    /// holds (covering-based merge removal), returning the owning
    /// subscription ids of the dropped entries — the broker records them
    /// as covering dependencies so the victims are re-propagated if the
    /// coverer ever leaves. Hop-group unions are recomputed from the
    /// surviving members; threshold lists keep stale references that the
    /// dead flag neutralizes, and the table compacts once tombstones
    /// outnumber live entries.
    pub fn remove_toward(
        &mut self,
        downstream: NodeId,
        mut covered: impl FnMut(&Subscription) -> bool,
    ) -> Vec<SubId> {
        let victims: Vec<u32> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.dead && e.to == Some(downstream) && covered(&e.sub))
            .map(|(i, _)| i as u32)
            .collect();
        let dropped: Vec<SubId> =
            victims.iter().map(|&v| self.entries[v as usize].sub.id).collect();
        for id in victims {
            self.tombstone(id);
        }
        self.maybe_compact();
        dropped
    }

    /// Covering-merged insert of a forwarding entry toward `to` — the
    /// sublinear twin of the broker's linear scan + [`RoutingTable::
    /// remove_toward`] sequence, answering both covering questions from
    /// the `(stream, hop)` buckets instead of walking the table:
    ///
    /// 1. **Skip** when a live same-direction entry covers `sub` (a
    ///    coverer must request every stream of `sub`, so the first
    ///    stream's bucket already contains every possible coverer); the
    ///    reported coverer is the first one in table order — identical to
    ///    the linear scan's answer.
    /// 2. Otherwise **drop** every live entry `sub` covers (a victim's
    ///    streams are a subset of `sub`'s, so the union of `sub`'s
    ///    per-stream buckets holds every possible victim), tombstone
    ///    them, and insert the entry.
    ///
    /// `covers(general, specific)` is the exact confirmation the
    /// candidate ranges are checked against. A subscription never skips
    /// or drops its own id: a multi-stream installation may revisit a hop
    /// once per source, and those sibling entries must coexist.
    pub fn insert_covering<F>(
        &mut self,
        sub: Subscription,
        to: NodeId,
        seq: u64,
        covers: F,
    ) -> ForwardInsert
    where
        F: Fn(&Subscription, &Subscription) -> bool,
    {
        let skel = SubSkeleton::of(&sub);
        self.insert_covering_with(sub, &skel, to, seq, covers)
    }

    /// [`RoutingTable::insert_covering`] with the caller's precomputed
    /// skeleton: the skip probe, the victim probes and the final insert
    /// all reuse the same per-stream split.
    pub fn insert_covering_with<F>(
        &mut self,
        sub: Subscription,
        skel: &SubSkeleton,
        to: NodeId,
        seq: u64,
        covers: F,
    ) -> ForwardInsert
    where
        F: Fn(&Subscription, &Subscription) -> bool,
    {
        if sub.streams.is_empty() {
            // Degenerate stream-free subscription: covering is vacuously
            // true against it and no bucket can index it — resolve by the
            // linear scan so both modes stay bit-identical.
            if let Some(by) = self
                .entries
                .iter()
                .find(|e| !e.dead && e.to == Some(to) && e.sub.id != sub.id && covers(&e.sub, &sub))
                .map(|e| e.sub.id)
            {
                return ForwardInsert::Skipped { by };
            }
            let id = sub.id;
            let dropped = self.remove_toward(to, |e| e.id != id && covers(&sub, e));
            self.insert_with(sub, skel, Some(to), seq);
            return ForwardInsert::Inserted { dropped };
        }
        // Candidate slots per bucket: an unbuilt (small) bucket is taken
        // whole — its member list is already in ascending slot order —
        // while a built bucket is range-probed. Either source yields a
        // superset of the true answers, so the confirmed result is the
        // same; only the candidate count differs. Returns whether the
        // candidates need re-sorting (range probes interleave lists).
        let probe_into = |bucket: &CoverBucket,
                          probe: &[IndexableCmp],
                          covered_query: bool,
                          out: &mut Vec<u32>|
         -> bool {
            if !bucket.built {
                out.extend_from_slice(&bucket.members);
                return false;
            }
            if covered_query {
                bucket.covered_candidates(probe, out);
            } else {
                bucket.coverer_candidates(probe, out);
            }
            true
        };
        let mut candidates = std::mem::take(&mut self.cover_scratch);
        candidates.clear();
        let (&s0, _) = sub.streams.iter().next().expect("non-empty streams");
        if let Some(bucket) = self.covers.get(&(s0, to)) {
            let probe0 = skel.get(s0).map(|(i, _)| i).unwrap_or(&[]);
            if probe_into(bucket, probe0, false, &mut candidates) {
                candidates.sort_unstable();
                candidates.dedup();
            }
            for &slot in &candidates {
                let e = &self.entries[slot as usize];
                if e.dead || e.to != Some(to) || e.sub.id == sub.id {
                    continue;
                }
                if covers(&e.sub, &sub) {
                    let by = e.sub.id;
                    self.cover_scratch = candidates;
                    return ForwardInsert::Skipped { by };
                }
            }
        }
        candidates.clear();
        let mut needs_sort = false;
        let mut buckets_probed = 0u32;
        for &s in sub.streams.keys() {
            if let Some(bucket) = self.covers.get(&(s, to)) {
                let probe = skel.get(s).map(|(i, _)| i).unwrap_or(&[]);
                needs_sort |= probe_into(bucket, probe, true, &mut candidates);
                buckets_probed += 1;
            }
        }
        if let Some(streamless) = self.streamless.get(&to) {
            candidates.extend_from_slice(streamless);
            buckets_probed += 1;
        }
        if needs_sort || buckets_probed > 1 {
            candidates.sort_unstable();
            candidates.dedup();
        }
        candidates.retain(|&slot| {
            let e = &self.entries[slot as usize];
            !e.dead && e.to == Some(to) && e.sub.id != sub.id && covers(&sub, &e.sub)
        });
        let dropped: Vec<SubId> =
            candidates.iter().map(|&v| self.entries[v as usize].sub.id).collect();
        for &v in &candidates {
            self.tombstone(v);
        }
        self.cover_scratch = candidates;
        self.maybe_compact();
        self.insert_with(sub, skel, Some(to), seq);
        ForwardInsert::Inserted { dropped }
    }

    fn tombstone(&mut self, entry_id: u32) {
        let entry = &mut self.entries[entry_id as usize];
        entry.dead = true;
        self.dead += 1;
        let id = entry.sub.id;
        let streams: Vec<Symbol> = entry.sub.streams.keys().copied().collect();
        if let Some(slots) = self.by_sub.get_mut(&id) {
            slots.retain(|&s| s != entry_id);
            if slots.is_empty() {
                self.by_sub.remove(&id);
            }
        }
        for stream in streams {
            let Some(index) = self.streams.get_mut(&stream) else { continue };
            let Some(m) = index.member_of.remove(&entry_id) else { continue };
            let m = m as usize;
            if index.members[m].dead {
                continue;
            }
            index.members[m].dead = true;
            index.dead_members += 1;
            index.zero_target.retain(|&z| z != m as u32);
            if let MemberAction::Hop(g) = index.members[m].action {
                // Recompute the union over surviving members of the group
                // (a union cannot be shrunk incrementally).
                let mut union: Option<StreamProjection> = None;
                for member in &index.members {
                    if member.dead || !matches!(member.action, MemberAction::Hop(h) if h == g) {
                        continue;
                    }
                    let needs = self.entries[member.entry as usize]
                        .sub
                        .needs(stream)
                        .expect("member stream always has needs");
                    union = Some(match union {
                        None => needs,
                        Some(u) => u.union(&needs),
                    });
                    if matches!(union, Some(StreamProjection::All)) {
                        break; // the union can grow no further
                    }
                }
                // A fully-emptied group keeps an empty union; it can never
                // be marked matched again (no member bumps it), and
                // compaction eventually drops it.
                index.hops[g as usize].union = CachedProjection::new(
                    union.unwrap_or(StreamProjection::Attrs(Default::default())),
                );
            }
            // Per-run sweep: once tombstones dominate the partition, drop
            // the dead members' list slots run-by-run — no table rebuild,
            // no cross-run memmove. The member records themselves stay
            // until the whole table compacts.
            if tombstones_dominate(index.dead_members, index.members.len()) {
                index.dead_members = 0;
                let StreamIndex { members, attr_lists, ts_lists, .. } = index;
                for lists in attr_lists.values_mut() {
                    lists.sweep_dead(members);
                }
                ts_lists.sweep_dead(members);
            }
        }
    }

    /// Rebuilds the table from its live entries once tombstones dominate,
    /// bounding memory and keeping threshold lists dense: stale threshold
    /// references disappear, dead hop groups and emptied projection
    /// classes are dropped, and survivors re-group. Sequence numbers are
    /// preserved, so observable delivery order is unchanged.
    fn maybe_compact(&mut self) {
        if !tombstones_dominate(self.dead, self.entries.len()) {
            return;
        }
        let live: Vec<(Subscription, Option<NodeId>, u64)> =
            self.entries.drain(..).filter(|e| !e.dead).map(|e| (e.sub, e.to, e.seq)).collect();
        self.clear();
        for (sub, to, seq) in live {
            self.insert(sub, to, seq);
        }
    }

    /// [`RoutingTable::match_message_into`] into a fresh buffer —
    /// convenience for tests and one-shot callers.
    pub fn match_message(&mut self, msg: &Message, from: Option<NodeId>) -> MatchOutput {
        let mut out = MatchOutput::default();
        self.match_message_into(msg, from, &mut out);
        out
    }

    /// The value-row position of the first schema attribute carrying
    /// threshold lists in `stream`'s partition, if any. The batched
    /// publish plane sorts each batch by this attribute's value so the
    /// eq-list cursor walk ([`TieredList::for_eq_hinted`]) advances
    /// monotonically through the run directory.
    pub fn first_indexed_attr(&self, stream: Symbol, attrs: &[Symbol]) -> Option<usize> {
        let index = self.streams.get(&stream)?;
        attrs.iter().position(|a| index.attr_lists.contains_key(a))
    }

    /// Matches `msg` against this table: counting pass over the message's
    /// attributes, residual evaluation for fully-counted candidates, local
    /// projections and per-hop union projections applied from their cached
    /// plans. `from` suppresses the reverse hop. Results are written into
    /// `out` (cleared first); reusing one `MatchOutput` across calls keeps
    /// the broker's forwarding path allocation-free after warm-up.
    pub fn match_message_into(
        &mut self,
        msg: &Message,
        from: Option<NodeId>,
        out: &mut MatchOutput,
    ) {
        out.clear();
        let Some(index) = self.streams.get_mut(&msg.stream) else {
            return;
        };
        index.epoch += 1;
        let epoch = index.epoch;
        let StreamIndex {
            members,
            attr_lists,
            ts_lists,
            zero_target,
            hops,
            classes,
            touched,
            candidates,
            ..
        } = index;
        touched.clear();
        candidates.clear();

        // Counting pass: resolve each message attribute once, walk the
        // satisfied threshold ranges.
        if !attr_lists.is_empty() {
            for (i, &attr) in msg.schema().attrs().iter().enumerate() {
                let Some(lists) = attr_lists.get(&attr) else { continue };
                let Some(v) = cosmos_query::compiled::ScalarRef::from(&msg.values()[i]).as_f64()
                else {
                    continue; // string value: numeric comparisons are false
                };
                if v.is_nan() {
                    continue;
                }
                lists.bump_satisfied(v, members, touched, epoch);
            }
        }
        if !ts_lists.is_empty() {
            ts_lists.bump_satisfied(msg.timestamp as f64, members, touched, epoch);
        }

        // Candidates: fully-counted members plus filter-free members, in
        // installation-sequence order — the population's subscribe order,
        // stable across incremental removal and re-installation (member
        // ids are only partition insertion order, which repair churns).
        // The seq rides along in the scratch pairs, so the sort compares
        // flat keys without chasing member or entry indirections.
        candidates.extend(zero_target.iter().map(|&m| (members[m as usize].seq, m)));
        candidates.extend(touched.iter().filter_map(|&m| {
            let member = &members[m as usize];
            (member.count == member.target).then_some((member.seq, m))
        }));
        candidates.sort_unstable();

        for &(_, m) in candidates.iter() {
            let member = &mut members[m as usize];
            if member.dead || !eval_compiled(&member.residual, msg) {
                continue;
            }
            match &member.action {
                MemberAction::Local { sub, class } => {
                    // Projection-class dedup: the first matched member of a
                    // class computes the projection; the rest of the class
                    // shares the record (a refcount bump per delivery).
                    let class = &mut classes[*class as usize];
                    if class.epoch != epoch {
                        class.epoch = epoch;
                        class.cached = Some(class.proj.apply(msg));
                    }
                    let record = class.cached.clone().expect("projected this epoch");
                    out.deliveries.push((*sub, record));
                }
                MemberAction::Hop(g) => hops[*g as usize].epoch = epoch,
            }
        }
        for group in hops.iter_mut() {
            if group.epoch != epoch || Some(group.to) == from {
                continue;
            }
            out.forwards.push((group.to, group.union.apply(msg)));
        }
        out.forwards.sort_by_key(|(n, _)| *n);
    }

    /// Matches a batch of **same-stream** messages through one index
    /// walk: the stream partition is resolved once, one counter-epoch
    /// range is allocated for the whole batch, and the per-attribute
    /// threshold lists are re-resolved only when the schema pointer
    /// changes between consecutive messages. Each message's results are
    /// handed to `sink(tag, out)` in batch order, with `out` recycled
    /// between messages — after reconstituting each identity forward
    /// (`None`) as a clone of its message, contents are bit-identical to
    /// a serial [`RoutingTable::match_message_into`] call per message.
    pub fn match_batch_into<M, F>(
        &mut self,
        msgs: &[(u32, M)],
        from: Option<NodeId>,
        out: &mut BatchMatchOutput,
        mut sink: F,
    ) where
        M: std::borrow::Borrow<Message>,
        F: FnMut(u32, &mut BatchMatchOutput),
    {
        let Some((_, first)) = msgs.first() else { return };
        let first = first.borrow();
        debug_assert!(msgs.iter().all(|(_, m)| m.borrow().stream == first.stream));
        let Some(index) = self.streams.get_mut(&first.stream) else {
            for (tag, _) in msgs {
                out.clear();
                sink(*tag, out);
            }
            return;
        };
        let base = index.epoch;
        index.epoch += msgs.len() as u64;
        let StreamIndex {
            members,
            attr_lists,
            ts_lists,
            zero_target,
            hops,
            classes,
            touched,
            candidates,
            touched_hops,
            ..
        } = index;
        let attr_lists: &HashMap<Symbol, OpLists> = attr_lists;
        let any_attr_lists = !attr_lists.is_empty();
        let any_ts_lists = !ts_lists.is_empty();
        // Schema-resolution cache: `(value index, lists)` pairs for the
        // last seen schema, keyed by attribute-slice identity — batches
        // from one source share a schema, so the HashMap probes happen
        // once per batch instead of once per message.
        let mut resolved: Vec<(usize, &OpLists)> = Vec::new();
        let mut resolved_schema: *const Symbol = std::ptr::null();
        // Directory cursor for the first resolved attribute's eq list:
        // callers sort batches by that attribute, so successive probes
        // advance it monotonically (any order stays correct, just
        // without the amortization).
        let mut eq_cursor = 0usize;
        for (j, (tag, msg)) in msgs.iter().enumerate() {
            let msg = msg.borrow();
            let epoch = base + j as u64 + 1;
            touched.clear();
            candidates.clear();
            touched_hops.clear();
            if any_attr_lists {
                let attrs = msg.schema().attrs();
                if attrs.as_ptr() != resolved_schema {
                    resolved_schema = attrs.as_ptr();
                    resolved.clear();
                    resolved.extend(
                        attrs
                            .iter()
                            .enumerate()
                            .filter_map(|(i, attr)| attr_lists.get(attr).map(|l| (i, l))),
                    );
                    eq_cursor = 0;
                }
                for (a, &(i, lists)) in resolved.iter().enumerate() {
                    let Some(v) =
                        cosmos_query::compiled::ScalarRef::from(&msg.values()[i]).as_f64()
                    else {
                        continue; // string value: numeric comparisons are false
                    };
                    if v.is_nan() {
                        continue;
                    }
                    if a == 0 {
                        lists.bump_satisfied_hinted(v, members, touched, epoch, &mut eq_cursor);
                    } else {
                        lists.bump_satisfied(v, members, touched, epoch);
                    }
                }
            }
            if any_ts_lists {
                ts_lists.bump_satisfied(msg.timestamp as f64, members, touched, epoch);
            }
            candidates.extend(zero_target.iter().map(|&m| (members[m as usize].seq, m)));
            candidates.extend(touched.iter().filter_map(|&m| {
                let member = &members[m as usize];
                (member.count == member.target).then_some((member.seq, m))
            }));
            candidates.sort_unstable();
            out.clear();
            for &(_, m) in candidates.iter() {
                let member = &mut members[m as usize];
                if member.dead || !eval_compiled(&member.residual, msg) {
                    continue;
                }
                match &member.action {
                    MemberAction::Local { sub, class } => {
                        let class = &mut classes[*class as usize];
                        if class.epoch != epoch {
                            class.epoch = epoch;
                            class.cached = Some(class.proj.apply(msg));
                        }
                        let record = class.cached.clone().expect("projected this epoch");
                        out.deliveries.push((*sub, record));
                    }
                    MemberAction::Hop(g) => {
                        let group = &mut hops[*g as usize];
                        if group.epoch != epoch {
                            group.epoch = epoch;
                            touched_hops.push(*g);
                        }
                    }
                }
            }
            // Forwards come from the groups this message marked (no
            // per-message rescan of every group); sorting by node id
            // restores the serial emission order.
            for &g in touched_hops.iter() {
                let group = &mut hops[g as usize];
                if Some(group.to) == from {
                    continue;
                }
                let fwd = (!group.union.is_identity()).then(|| group.union.apply(msg));
                out.forwards.push((group.to, fwd));
            }
            out.forwards.sort_by_key(|(n, _)| *n);
            sink(*tag, out);
        }
    }

    /// Freezes this table into its immutable, `Sync` matching twin (see
    /// the module docs' concurrency section and [`crate::snapshot`]).
    ///
    /// Tombstones are dropped and member slots densely remapped **in
    /// original partition order**, so frozen candidate `(seq, slot)`
    /// pairs sort exactly as the live table's — equal-`seq` ties (one
    /// subscription, several entries) break identically and the frozen
    /// matcher's delivery order is bit-for-bit the serial matcher's.
    /// Hop-group and projection-class indices are preserved (both vectors
    /// only shrink at compaction, which rebuilds the table first), so
    /// member actions carry over untranslated.
    pub(crate) fn freeze(&self) -> FrozenTable {
        let mut streams = HashMap::new();
        for (&stream, index) in &self.streams {
            let mut remap: Vec<Option<u32>> = vec![None; index.members.len()];
            let mut members = Vec::new();
            for (i, m) in index.members.iter().enumerate() {
                if m.dead {
                    continue;
                }
                remap[i] = Some(u32::try_from(members.len()).expect("partition overflow"));
                members.push(FrozenMember {
                    seq: m.seq,
                    target: m.target,
                    residual: m.residual.clone(),
                    action: match &m.action {
                        MemberAction::Local { sub, class } => {
                            FrozenAction::Local { sub: *sub, class: *class }
                        }
                        MemberAction::Hop(g) => FrozenAction::Hop(*g),
                    },
                });
            }
            if members.is_empty() {
                continue; // a fully-tombstoned partition matches nothing
            }
            let remap_list = |list: &TieredList| -> Vec<(f64, u32)> {
                list.iter().filter_map(|(t, m)| remap[m as usize].map(|n| (t, n))).collect()
            };
            let freeze_lists = |l: &OpLists| FrozenLists {
                lt: remap_list(&l.lt),
                le: remap_list(&l.le),
                gt: remap_list(&l.gt),
                ge: remap_list(&l.ge),
                eq: remap_list(&l.eq),
            };
            let mut attr_lists = HashMap::new();
            for (&attr, lists) in &index.attr_lists {
                let frozen = freeze_lists(lists);
                if !frozen.is_empty() {
                    attr_lists.insert(attr, frozen);
                }
            }
            streams.insert(
                stream,
                FrozenPartition {
                    members,
                    attr_lists,
                    ts_lists: freeze_lists(&index.ts_lists),
                    zero_target: index
                        .zero_target
                        .iter()
                        .filter_map(|&m| remap[m as usize])
                        .collect(),
                    hops: index
                        .hops
                        .iter()
                        .map(|h| FrozenHop { to: h.to, union: h.union.projection().clone() })
                        .collect(),
                    classes: index.classes.iter().map(|c| c.proj.projection().clone()).collect(),
                },
            );
        }
        FrozenTable { streams }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrRef, Predicate, Scalar};

    fn cmp(stream: &str, attr: &str, op: CmpOp, v: Scalar) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new(stream, attr), op, value: v }
    }

    /// Test insert: the subscription id doubles as the sequence number,
    /// so delivery order matches insertion order as before.
    trait TestInsert {
        fn ins(&mut self, sub: Subscription, to: Option<NodeId>);
    }

    impl TestInsert for RoutingTable {
        fn ins(&mut self, sub: Subscription, to: Option<NodeId>) {
            let seq = sub.id.0;
            self.insert(sub, to, seq);
        }
    }

    fn sub(id: u64, filters: Vec<Predicate>) -> Subscription {
        Subscription::builder(NodeId(0))
            .id(SubId(id))
            .stream("R", StreamProjection::All, filters)
            .build()
    }

    fn local_matches(table: &mut RoutingTable, msg: &Message) -> Vec<SubId> {
        table.match_message(msg, None).deliveries.into_iter().map(|(s, _)| s).collect()
    }

    /// Pads the partition with entries whose thresholds can never match
    /// the test probes, so assertions run against non-trivial threshold
    /// lists rather than near-empty ones.
    fn pad(table: &mut RoutingTable) {
        for i in 0..25u64 {
            table
                .ins(sub(10_000 + i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(1_000_000))]), None);
        }
    }

    #[test]
    fn counting_matches_all_operator_classes() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Ge, Scalar::Int(15))]), None);
        table.ins(sub(3, vec![cmp("R", "a", CmpOp::Lt, Scalar::Int(15))]), None);
        table.ins(sub(4, vec![cmp("R", "a", CmpOp::Le, Scalar::Int(15))]), None);
        table.ins(sub(5, vec![cmp("R", "a", CmpOp::Eq, Scalar::Int(15))]), None);
        table.ins(sub(6, vec![]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(ids, vec![SubId(1), SubId(2), SubId(4), SubId(5), SubId(6)]);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(3)));
        assert_eq!(ids, vec![SubId(3), SubId(4), SubId(6)]);
    }

    #[test]
    fn conjunction_requires_every_indexed_predicate() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(
            sub(
                1,
                vec![
                    cmp("R", "a", CmpOp::Gt, Scalar::Int(10)),
                    cmp("R", "b", CmpOp::Lt, Scalar::Int(5)),
                ],
            ),
            None,
        );
        let hit = Message::new("R", 0).with("a", Scalar::Int(20)).with("b", Scalar::Int(1));
        let miss = Message::new("R", 0).with("a", Scalar::Int(20)).with("b", Scalar::Int(9));
        let missing = Message::new("R", 0).with("a", Scalar::Int(20));
        assert_eq!(local_matches(&mut table, &hit), vec![SubId(1)]);
        assert!(local_matches(&mut table, &miss).is_empty());
        assert!(local_matches(&mut table, &missing).is_empty(), "missing attr is false");
    }

    #[test]
    fn residual_predicates_gate_indexed_candidates() {
        // String equality is residual; numeric part is indexed.
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(
            sub(
                1,
                vec![
                    cmp("R", "a", CmpOp::Gt, Scalar::Int(10)),
                    cmp("R", "s", CmpOp::Eq, Scalar::Str("x".into())),
                ],
            ),
            None,
        );
        let hit =
            Message::new("R", 0).with("a", Scalar::Int(20)).with("s", Scalar::Str("x".into()));
        let miss =
            Message::new("R", 0).with("a", Scalar::Int(20)).with("s", Scalar::Str("y".into()));
        assert_eq!(local_matches(&mut table, &hit), vec![SubId(1)]);
        assert!(local_matches(&mut table, &miss).is_empty());
    }

    #[test]
    fn ne_and_foreign_relation_fall_back_to_residual() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Ne, Scalar::Int(7))]), None);
        // A filter qualified with a different relation can never hold.
        table.ins(sub(2, vec![cmp("S", "a", CmpOp::Gt, Scalar::Int(0))]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(3)));
        assert_eq!(ids, vec![SubId(1)]);
        assert!(
            local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(7))).is_empty()
        );
    }

    #[test]
    fn timestamp_predicates_are_indexed() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "timestamp", CmpOp::Ge, Scalar::Int(1_000))]), None);
        assert!(local_matches(&mut table, &Message::new("R", 500)).is_empty());
        assert_eq!(local_matches(&mut table, &Message::new("R", 1_000)), vec![SubId(1)]);
    }

    #[test]
    fn float_int_mixing_matches_eval_semantics() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Eq, Scalar::Float(5.0))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(4.5))]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(5)));
        assert_eq!(ids, vec![SubId(1), SubId(2)]);
    }

    #[test]
    fn nan_threshold_never_matches() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(f64::NAN))]), None);
        table.ins(sub(2, vec![]), None);
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(999)));
        assert_eq!(ids, vec![SubId(2)]);
    }

    #[test]
    fn tombstoned_entries_stop_matching_and_table_compacts() {
        let mut table = RoutingTable::new();
        for i in 0..40u64 {
            let mut s = sub(i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(i as i64))]);
            s.subscriber = NodeId(9);
            table.ins(s, Some(NodeId(1)));
        }
        assert_eq!(table.len(), 40);
        table.remove_toward(NodeId(1), |s| s.id.0 % 2 == 0);
        assert_eq!(table.len(), 20, "every even entry removed");
        // Compaction triggered (tombstones > live): entries list is dense.
        assert_eq!(table.entries.len(), 20);
        let out = table.match_message(&Message::new("R", 0).with("a", Scalar::Int(100)), None);
        assert_eq!(out.forwards.len(), 1, "one hop group toward node 1");
    }

    #[test]
    fn hop_union_shrinks_after_removal() {
        let mut table = RoutingTable::new();
        let narrow = Subscription::builder(NodeId(5))
            .id(SubId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        let wide = Subscription::builder(NodeId(6))
            .id(SubId(2))
            .stream("R", StreamProjection::attrs(["a", "b"]), vec![])
            .build();
        table.ins(narrow, Some(NodeId(1)));
        table.ins(wide, Some(NodeId(1)));
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 2, "union {{a,b}} before removal");
        table.remove_toward(NodeId(1), |s| s.id == SubId(2));
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 1, "union shrinks to {{a}}");
    }

    #[test]
    fn remove_entry_removes_only_that_subscription() {
        let mut table = RoutingTable::new();
        pad(&mut table);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), None);
        let probe = Message::new("R", 0).with("a", Scalar::Int(20));
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(1), SubId(2)]);
        assert_eq!(table.remove_entry(SubId(1), None), 1);
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(2)]);
        // Removing again (or a different direction) is a no-op.
        assert_eq!(table.remove_entry(SubId(1), None), 0);
        assert_eq!(table.remove_entry(SubId(2), Some(NodeId(9))), 0);
        assert_eq!(local_matches(&mut table, &probe), vec![SubId(2)]);
    }

    #[test]
    fn remove_entry_compacts_threshold_lists() {
        let mut table = RoutingTable::new();
        for i in 0..40u64 {
            table.ins(sub(i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(i as i64))]), None);
        }
        let stream: Symbol = "R".into();
        let attr: Symbol = "a".into();
        assert_eq!(table.streams[&stream].attr_lists[&attr].gt.len(), 40);
        // Tombstone one at a time: the dead flags keep the stale threshold
        // references inert, and once tombstones reach half the table (at
        // the 20th removal) compaction rebuilds the lists dense. The last
        // 4 removals sit below the tombstone threshold again.
        for i in 0..24u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.len(), 16);
        assert_eq!(table.entries.len(), 20, "compacted at tombstone majority; 4 tombstones since");
        assert_eq!(
            table.streams[&stream].attr_lists[&attr].gt.len(),
            20,
            "threshold list rebuilt dense at compaction (was 40)"
        );
        let ids = local_matches(&mut table, &Message::new("R", 0).with("a", Scalar::Int(100)));
        assert_eq!(ids, (24..40).map(SubId).collect::<Vec<_>>());
    }

    #[test]
    fn hop_union_shrinks_after_remove_entry() {
        let mut table = RoutingTable::new();
        let narrow = Subscription::builder(NodeId(5))
            .id(SubId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        let wide = Subscription::builder(NodeId(6))
            .id(SubId(2))
            .stream("R", StreamProjection::attrs(["a", "b"]), vec![])
            .build();
        table.ins(narrow, Some(NodeId(1)));
        table.ins(wide, Some(NodeId(1)));
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        assert_eq!(table.match_message(&msg, None).forwards[0].1.len(), 2);
        // First-class removal of the wide member shrinks the union to {a};
        // only this hop group is recomputed.
        assert_eq!(table.remove_entry(SubId(2), Some(NodeId(1))), 1);
        let out = table.match_message(&msg, None);
        assert_eq!(out.forwards[0].1.len(), 1, "union shrinks to {{a}}");
        // Removing the last member silences the hop entirely.
        assert_eq!(table.remove_entry(SubId(1), Some(NodeId(1))), 1);
        assert!(table.match_message(&msg, None).forwards.is_empty());
    }

    #[test]
    fn projection_class_regroups_when_a_class_empties() {
        let mut table = RoutingTable::new();
        let local = |id: u64, proj: StreamProjection| {
            Subscription::builder(NodeId(0)).id(SubId(id)).stream("R", proj, vec![]).build()
        };
        // 40 members keep {a}; 18 keep {b}: two projection classes.
        for i in 0..40u64 {
            table.ins(local(i, StreamProjection::attrs(["a"])), None);
        }
        for i in 40..58u64 {
            table.ins(local(i, StreamProjection::attrs(["b"])), None);
        }
        let stream: Symbol = "R".into();
        assert_eq!(table.streams[&stream].classes.len(), 2);
        // Empty the {b} class entirely, then shed enough {a} members that
        // tombstones reach half the table: compaction re-groups and the
        // emptied class is not reopened.
        for i in 40..58u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.streams[&stream].classes.len(), 2, "emptied class lingers as a tombstone");
        for i in 0..11u64 {
            assert_eq!(table.remove_entry(SubId(i), None), 1);
        }
        assert_eq!(table.len(), 29);
        assert_eq!(
            table.streams[&stream].classes.len(),
            1,
            "emptied projection class dropped at re-grouping"
        );
        let msg = Message::new("R", 0).with("a", Scalar::Int(7)).with("b", Scalar::Int(8));
        let out = table.match_message(&msg, None);
        assert_eq!(out.deliveries.len(), 29);
        assert!(out.deliveries.iter().all(|(_, m)| m.len() == 1), "survivors still get {{a}}");
        let ids: Vec<SubId> = out.deliveries.iter().map(|(s, _)| *s).collect();
        assert_eq!(ids, (11..40).map(SubId).collect::<Vec<_>>(), "order preserved");
    }

    #[test]
    fn reverse_hop_is_suppressed() {
        let mut table = RoutingTable::new();
        let mut s = sub(1, vec![]);
        s.subscriber = NodeId(9);
        table.ins(s, Some(NodeId(3)));
        let msg = Message::new("R", 0);
        assert_eq!(table.match_message(&msg, None).forwards.len(), 1);
        assert!(table.match_message(&msg, Some(NodeId(3))).forwards.is_empty());
    }

    /// The routing-covering form the broker confirms candidates with
    /// (covering plus needs preservation) — mirrored here so the index
    /// tests exercise `insert_covering` under the real predicate.
    fn rcovers(general: &Subscription, specific: &Subscription) -> bool {
        general.covers(specific)
            && specific.streams.keys().all(|&s| match (general.needs(s), specific.needs(s)) {
                (Some(g), Some(sp)) => g.covers(&sp),
                _ => false,
            })
    }

    /// Fills a bucket toward `hop` past the small-bucket scan threshold
    /// with entries whose `a > 1_000_000` filter never covers (or is
    /// covered by) the probes the tests use, forcing the range-probe
    /// path rather than the whole-bucket scan.
    fn pad_bucket(table: &mut RoutingTable, hop: NodeId, base: u64) {
        for i in 0..40u64 {
            table.ins(
                sub(base + i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(1_000_000))]),
                Some(hop),
            );
        }
    }

    #[test]
    fn insert_covering_skips_under_first_coverer_in_table_order() {
        let mut table = RoutingTable::new();
        let hop = NodeId(1);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(3))]), Some(hop));
        table.ins(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(4))]), Some(hop));
        pad_bucket(&mut table, hop, 10_000);
        // Covered by both real entries: the skip must report the first
        // one in table order, exactly as the linear scan would.
        let narrow = sub(3, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]);
        match table.insert_covering(narrow, hop, 3, rcovers) {
            ForwardInsert::Skipped { by } => assert_eq!(by, SubId(1)),
            other => panic!("expected a covering skip, got {other:?}"),
        }
        assert_eq!(table.len(), 42, "skipped insert leaves the table unchanged");
        // A filter-free (loose) entry covers everything same-direction,
        // and the loose list surfaces it past the range probes.
        let mut table = RoutingTable::new();
        table.ins(sub(7, vec![]), Some(hop));
        pad_bucket(&mut table, hop, 10_000);
        match table.insert_covering(
            sub(8, vec![cmp("R", "a", CmpOp::Eq, Scalar::Int(5))]),
            hop,
            8,
            rcovers,
        ) {
            ForwardInsert::Skipped { by } => assert_eq!(by, SubId(7)),
            other => panic!("expected the loose entry to cover, got {other:?}"),
        }
    }

    #[test]
    fn insert_covering_drops_exactly_the_covered_victims() {
        let mut table = RoutingTable::new();
        let hop = NodeId(1);
        // A covering-sparse point population (large enough to force the
        // range-probe path) plus one out-of-range entry.
        for i in 0..60u64 {
            table.ins(sub(i, vec![cmp("R", "a", CmpOp::Eq, Scalar::Int(i as i64))]), Some(hop));
        }
        table.ins(sub(99, vec![cmp("R", "a", CmpOp::Lt, Scalar::Int(-50))]), Some(hop));
        // `a > 9` covers the point entries 10..60 but not 0..10 and not
        // the `a < -50` entry.
        let broad = sub(500, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(9))]);
        match table.insert_covering(broad, hop, 500, rcovers) {
            ForwardInsert::Inserted { dropped } => {
                assert_eq!(dropped, (10..60).map(SubId).collect::<Vec<_>>(), "table order");
            }
            other => panic!("expected an insert, got {other:?}"),
        }
        assert_eq!(table.len(), 12, "10 points + a<-50 + the new entry survive");
    }

    #[test]
    fn insert_covering_never_drops_or_skips_its_own_id() {
        // The broker installs one restricted entry per advertised source
        // under the same id; when their paths share a hop the sibling
        // entries must coexist even if one would cover the other.
        let mut table = RoutingTable::new();
        let hop = NodeId(1);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(10))]), Some(hop));
        let weaker = sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(0))]);
        match table.insert_covering(weaker, hop, 1, rcovers) {
            ForwardInsert::Inserted { dropped } => assert!(dropped.is_empty()),
            other => panic!("self-covering must not skip: {other:?}"),
        }
        assert_eq!(table.len(), 2, "both same-id entries live");
        // And the stronger sibling arriving second is not skipped either.
        let stronger = sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(20))]);
        match table.insert_covering(stronger, hop, 1, rcovers) {
            ForwardInsert::Inserted { dropped } => assert!(dropped.is_empty()),
            other => panic!("self-covering must not skip: {other:?}"),
        }
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn negative_zero_thresholds_cover_symmetrically() {
        // -0.0 and 0.0 compare equal numerically, so `a > -0.0` and
        // `a > 0.0` cover each other; the buckets normalize both to +0.0
        // so the total_cmp-ordered range probes cannot miss the pair.
        for (first, second) in [(0.0f64, -0.0f64), (-0.0, 0.0)] {
            let mut table = RoutingTable::new();
            let hop = NodeId(1);
            table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(first))]), Some(hop));
            pad_bucket(&mut table, hop, 10_000);
            let twin = sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(second))]);
            match table.insert_covering(twin, hop, 2, rcovers) {
                ForwardInsert::Skipped { by } => assert_eq!(by, SubId(1)),
                other => panic!("signed-zero twin must be covered, got {other:?}"),
            }
        }
    }

    #[test]
    fn nan_threshold_entry_is_covered_by_filterless() {
        // A NaN threshold is unsatisfiable: it implies nothing (so the
        // entry can cover no one) but a filter-free subscription still
        // covers *it* — the member list must surface it as a victim even
        // though no threshold list contains it.
        let mut table = RoutingTable::new();
        let hop = NodeId(1);
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(f64::NAN))]), Some(hop));
        match table.insert_covering(sub(2, vec![]), hop, 2, rcovers) {
            ForwardInsert::Inserted { dropped } => assert_eq!(dropped, vec![SubId(1)]),
            other => panic!("expected the NaN entry dropped, got {other:?}"),
        }
        // And the NaN entry itself never drops or skips anyone.
        let mut table = RoutingTable::new();
        table.ins(sub(3, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(5))]), Some(hop));
        let nan = sub(4, vec![cmp("R", "a", CmpOp::Gt, Scalar::Float(f64::NAN))]);
        match table.insert_covering(nan, hop, 4, rcovers) {
            ForwardInsert::Inserted { dropped } => assert!(dropped.is_empty()),
            other => panic!("a NaN probe covers no one, got {other:?}"),
        }
    }

    #[test]
    fn stream_free_subscription_falls_back_to_the_linear_answer() {
        // A subscription with no streams is vacuously covered by any live
        // entry; no bucket can index it, so both covering paths must
        // agree via the linear fallback.
        let hop = NodeId(1);
        let empty = |id: u64| Subscription::builder(NodeId(0)).id(SubId(id)).build();
        let mut table = RoutingTable::new();
        table.ins(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(5))]), Some(hop));
        match table.insert_covering(empty(9), hop, 9, rcovers) {
            ForwardInsert::Skipped { by } => assert_eq!(by, SubId(1), "first live entry covers"),
            other => panic!("expected the vacuous cover, got {other:?}"),
        }
        let mut set = ForwardedSet::default();
        set.push(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(5))]));
        assert_eq!(set.find_coverer(&empty(9), rcovers), Some(SubId(1)));
        assert_eq!(
            set.find_coverer(&empty(9), rcovers),
            set.find_coverer_linear(&empty(9), rcovers)
        );
    }

    #[test]
    fn stream_free_entry_is_dropped_as_a_victim() {
        // A stream-free forwarding entry joins no bucket, but any
        // subscription vacuously covers it — the indexed victim query
        // must drop it exactly as the linear scan would.
        let hop = NodeId(1);
        let empty = |id: u64| Subscription::builder(NodeId(0)).id(SubId(id)).build();
        let mut table = RoutingTable::new();
        table.ins(empty(1), Some(hop));
        match table.insert_covering(
            sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(5))]),
            hop,
            2,
            rcovers,
        ) {
            ForwardInsert::Inserted { dropped } => assert_eq!(dropped, vec![SubId(1)]),
            other => panic!("expected the stream-free entry dropped, got {other:?}"),
        }
        assert_eq!(table.len(), 1, "only the new entry survives");
    }

    #[test]
    fn forwarded_set_agrees_with_its_linear_twin() {
        let mut set = ForwardedSet::default();
        assert!(set.is_empty());
        set.push(sub(1, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(20))]));
        set.push(sub(2, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(5))]));
        set.push(sub(3, vec![]));
        // Push the set past the small-scan threshold so the probes below
        // exercise the bucket ranges, with records that cover none of
        // them.
        for i in 0..40u64 {
            set.push(sub(10_000 + i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(1_000_000))]));
        }
        for probe in [
            sub(10, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(30))]), // covered by 1, 2, 3
            sub(11, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(7))]),  // covered by 2, 3
            sub(12, vec![cmp("R", "b", CmpOp::Lt, Scalar::Int(0))]),  // covered by 3 only
            sub(13, vec![]),                                          // covered by 3 only
        ] {
            let indexed = set.find_coverer(&probe, rcovers);
            let linear = set.find_coverer_linear(&probe, rcovers);
            assert_eq!(indexed, linear, "divergence on probe {:?}", probe.id);
            assert!(indexed.is_some());
        }
        // A record never covers its own id (re-installation of the same
        // subscription must not be pruned by its stale self): only the
        // loose record 3 covers a `b`-filtered probe, so probing *as*
        // id 3 finds nothing.
        let own = sub(3, vec![cmp("R", "b", CmpOp::Lt, Scalar::Int(0))]);
        assert_eq!(set.find_coverer(&own, rcovers), set.find_coverer_linear(&own, rcovers));
        assert_eq!(set.find_coverer(&own, rcovers), None, "only the same id covers this probe");
    }

    #[test]
    fn forwarded_set_removal_tombstones_and_compacts() {
        let mut set = ForwardedSet::default();
        for i in 0..40u64 {
            set.push(sub(i, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(i as i64))]));
        }
        assert_eq!(set.len(), 40);
        for i in 0..24u64 {
            assert_eq!(set.remove(SubId(i)), 1);
        }
        assert_eq!(set.remove(SubId(5)), 0, "already removed");
        assert_eq!(set.len(), 16);
        assert_eq!(set.records.len(), 20, "compacted at tombstone majority; 4 tombstones since");
        let probe = sub(90, vec![cmp("R", "a", CmpOp::Gt, Scalar::Int(100))]);
        assert_eq!(set.find_coverer(&probe, rcovers), Some(SubId(24)), "first survivor covers");
        assert_eq!(set.find_coverer(&probe, rcovers), set.find_coverer_linear(&probe, rcovers));
        assert_eq!(set.iter().count(), 16);
    }
}
