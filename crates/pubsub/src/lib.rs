//! Content-based Publish/Subscribe substrate (Siena-style) for COSMOS.
//!
//! The paper adopts a distributed Pub/Sub as the communication substrate
//! (§1.2–§1.3): data sources *advertise*, consumers *subscribe* with content
//! constraints, and brokers route messages so that (1) a message crosses
//! each link at most once, (2) messages are filtered and projected as early
//! as possible, and (3) sources and consumers stay loosely coupled.
//!
//! Five layers:
//!
//! - [`subscription`]: subscription content — per-stream projections and
//!   filters exactly as §2.1 describes (`S`, `P`, `F` lists) — plus the
//!   covering relation used to merge subscriptions inside the network.
//! - [`index`]: the per-node routing index — stream partitioning plus a
//!   Siena-style counting predicate index over filter constants — that
//!   makes broker matching sublinear in routing-table size.
//! - [`broker`]: a message-level broker network over a physical topology:
//!   advertisement-guided subscription propagation with covering-based
//!   pruning, indexed routing tables per node, reverse-path message
//!   forwarding with per-link traffic accounting (Figure 2's behaviour,
//!   reproducible in tests).
//! - [`fault`] / [`reliable`]: the fault plane — a seeded, deterministic
//!   per-link fault schedule (drop / duplicate / reorder) countered by
//!   per-link reliable exactly-once delivery (sequence numbers,
//!   ack/retransmit with bounded backoff over simulated time, dedup
//!   windows), converging bit-for-bit to the fault-free delivery log.
//! - [`recovery`]: the crash-recovery plane — engine-hosting brokers
//!   checkpoint their operator state against a monotone input watermark
//!   while every upstream source retains a bounded replay log of the
//!   records it forwarded; on crash + restore the engine reloads its last
//!   checkpoint, upstreams replay the unacked suffix, and the recovered
//!   output log converges bit-for-bit to the crash-free run.
//! - [`snapshot`]: the parallel data plane — immutable
//!   [`RoutingSnapshot`]s frozen from the broker's routing state, matched
//!   lock-free by any number of concurrent [`SnapshotReader`]s while
//!   subscription churn stays single-writer (read-copy-update).
//! - [`traffic`]: the rate-based cost model the large-scale experiments use:
//!   each substream's delivery cost is its rate times the latency-weighted
//!   multicast tree connecting its source to every interested processor,
//!   plus unicast result-stream costs. This is the "weighted communication
//!   cost" metric of §4.
//!
//! # Examples
//!
//! ```
//! use cosmos_pubsub::subscription::{Subscription, StreamProjection};
//! use cosmos_net::NodeId;
//!
//! let broad = Subscription::builder(NodeId(6))
//!     .stream("R", StreamProjection::All, vec![])
//!     .build();
//! let narrow = Subscription::builder(NodeId(7))
//!     .stream("R", StreamProjection::attrs(["a"]), vec![])
//!     .build();
//! assert!(broad.covers(&narrow));
//! assert!(!narrow.covers(&broad));
//! ```

pub mod broker;
pub mod fault;
pub mod index;
pub mod recovery;
pub mod reliable;
pub mod snapshot;
pub mod subscription;
pub mod tiered;
pub mod traffic;

pub use broker::{BrokerNetwork, Delivery, DeliveryLog, LinkStats};
pub use fault::{FaultAction, FaultConfig, FaultPlan};
pub use index::RoutingTable;
pub use recovery::RecoveryNetwork;
pub use reliable::LossyNetwork;
pub use snapshot::{merge_outputs, ReaderOutput, RoutingSnapshot, SnapshotReader};
pub use subscription::{CachedProjection, Message, StreamProjection, SubId, Subscription};
pub use tiered::TieredList;
pub use traffic::{SubstreamTable, TrafficModel};
