//! Subscription content, messages, matching, and covering.
//!
//! A subscription carries exactly the three lists §2.1 gives for `p3₁`:
//!
//! - `S`: the streams requested (here: the keys of the per-stream map),
//! - `P`: the requested attributes, "so the Pub/Sub can perform projection
//!   of the unnecessary attributes as soon as possible",
//! - `F`: filters "used to perform early data filtering in the Pub/Sub".
//!
//! The *covering* relation (`a.covers(b)` ⇔ every message delivered for `b`
//! would also be delivered for `a`, with at least the same attributes) is
//! what lets brokers merge subscriptions: a node only propagates a new
//! subscription upstream if nothing it already forwarded covers it.

use cosmos_net::NodeId;
use cosmos_query::compiled::{eval_compiled, CompiledPredicate, IndexableCmp};
use cosmos_query::predicate::implies;
use cosmos_query::{Predicate, Scalar};
use cosmos_util::intern::{Schema, Symbol};
use cosmos_util::PlanCache;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Unique identifier of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubId(pub u64);

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Which attributes of a stream a subscription requests.
///
/// Attribute names are interned [`Symbol`]s, so broker-side projection
/// (the early-projection fast path) tests set membership on `u32`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamProjection {
    /// All attributes (`S2.*`).
    All,
    /// A specific attribute set.
    Attrs(BTreeSet<Symbol>),
}

impl StreamProjection {
    /// Builds an attribute-set projection from names (interned).
    pub fn attrs<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        StreamProjection::Attrs(names.into_iter().map(Into::into).collect())
    }

    /// Does this projection retain every attribute `other` retains?
    pub fn covers(&self, other: &StreamProjection) -> bool {
        match (self, other) {
            (StreamProjection::All, _) => true,
            (StreamProjection::Attrs(_), StreamProjection::All) => false,
            (StreamProjection::Attrs(a), StreamProjection::Attrs(b)) => b.is_subset(a),
        }
    }

    /// The union of two projections.
    pub fn union(&self, other: &StreamProjection) -> StreamProjection {
        match (self, other) {
            (StreamProjection::All, _) | (_, StreamProjection::All) => StreamProjection::All,
            (StreamProjection::Attrs(a), StreamProjection::Attrs(b)) => {
                StreamProjection::Attrs(a.union(b).cloned().collect())
            }
        }
    }
}

/// Per-stream request: projection plus conjunctive filters.
///
/// Filters are kept in AST form (covering/merging reason about them
/// symbolically) *and* symbol-compiled once at construction, so matching a
/// message never resolves a name. Mutate `filters` only through
/// [`StreamRequest::set_filters`], which recompiles.
#[derive(Debug, Clone)]
pub struct StreamRequest {
    /// Attributes to keep.
    pub projection: StreamProjection,
    /// Conjunctive filters over this stream's attributes. Predicates use
    /// the stream name as the relation qualifier. Private so the compiled
    /// form below can never go stale; read via [`StreamRequest::filters`],
    /// replace via [`StreamRequest::set_filters`].
    filters: Vec<Predicate>,
    /// The same filters, symbol-compiled (kept in sync by constructors).
    compiled: Vec<CompiledPredicate>,
}

impl PartialEq for StreamRequest {
    fn eq(&self, other: &Self) -> bool {
        // `compiled` is derived state.
        self.projection == other.projection && self.filters == other.filters
    }
}

impl StreamRequest {
    /// Builds a request, compiling `filters`.
    pub fn new(projection: StreamProjection, filters: Vec<Predicate>) -> Self {
        let compiled = CompiledPredicate::compile_all(&filters);
        Self { projection, filters, compiled }
    }

    /// The filter conjunction (AST form, for covering/merging logic).
    pub fn filters(&self) -> &[Predicate] {
        &self.filters
    }

    /// Replaces the filter conjunction, recompiling.
    pub fn set_filters(&mut self, filters: Vec<Predicate>) {
        self.compiled = CompiledPredicate::compile_all(&filters);
        self.filters = filters;
    }

    /// The symbol-compiled filters.
    pub fn compiled_filters(&self) -> &[CompiledPredicate] {
        &self.compiled
    }

    /// Does this request's filter set admit every message `other`'s admits?
    /// (i.e. `other`'s conjunction implies this conjunction).
    pub fn filters_cover(&self, other: &StreamRequest) -> bool {
        self.filters
            .iter()
            .all(|f_general| other.filters.iter().any(|f_specific| implies(f_specific, f_general)))
    }

    /// Splits the compiled filter conjunction for a counting index over
    /// `stream`: the indexable constant comparisons (as thresholds) and the
    /// residual predicates that must still be evaluated per message (string
    /// equality, `!=`, join/time-delta forms, foreign relations). A message
    /// satisfies this request iff every indexable comparison *and* every
    /// residual predicate holds.
    pub fn split_for_index(&self, stream: Symbol) -> (Vec<IndexableCmp>, Vec<CompiledPredicate>) {
        let mut indexable = Vec::new();
        let mut residual = Vec::new();
        for p in &self.compiled {
            match p.indexable_for(stream) {
                Some(cmp) => indexable.push(cmp),
                None => residual.push(p.clone()),
            }
        }
        (indexable, residual)
    }
}

/// A subscription: the subscriber's proxy node plus per-stream requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Identifier (assigned by the creator; brokers treat it as opaque).
    pub id: SubId,
    /// The node where results must be delivered.
    pub subscriber: NodeId,
    /// Requested streams (interned) with their projections and filters.
    /// Symbol-keyed so per-message stream lookups compare integers.
    pub streams: BTreeMap<Symbol, StreamRequest>,
}

impl Subscription {
    /// Starts building a subscription for `subscriber`.
    pub fn builder(subscriber: NodeId) -> SubscriptionBuilder {
        SubscriptionBuilder {
            sub: Subscription { id: SubId(0), subscriber, streams: BTreeMap::new() },
        }
    }

    /// Stream names requested, in symbol order.
    pub fn stream_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.streams.keys().map(|s| s.as_str())
    }

    /// Returns `true` when this subscription would deliver (at least) every
    /// message that `other` delivers, with at least the same attributes.
    pub fn covers(&self, other: &Subscription) -> bool {
        other.streams.iter().all(|(name, o_req)| {
            self.streams.get(name).is_some_and(|s_req| {
                s_req.projection.covers(&o_req.projection) && s_req.filters_cover(o_req)
            })
        })
    }

    /// Merges `other` into this subscription: stream set union, projection
    /// union, and per-stream filters weakened to the common consequences
    /// (dropping what cannot be kept). The result covers both inputs.
    pub fn merge(&self, other: &Subscription) -> Subscription {
        let mut streams = self.streams.clone();
        for (name, o_req) in &other.streams {
            match streams.get_mut(name) {
                None => {
                    streams.insert(*name, o_req.clone());
                }
                Some(s_req) => {
                    s_req.projection = s_req.projection.union(&o_req.projection);
                    let mut merged = Vec::new();
                    for fa in &s_req.filters {
                        for fb in &o_req.filters {
                            if let Some(w) = cosmos_query::predicate::weakest_common(fa, fb) {
                                if !merged
                                    .iter()
                                    .any(|e: &Predicate| implies(e, &w) && implies(&w, e))
                                {
                                    merged.push(w);
                                }
                            }
                        }
                    }
                    s_req.set_filters(merged);
                }
            }
        }
        Subscription { id: self.id, subscriber: self.subscriber, streams }
    }

    /// The attributes this subscription *needs* for `stream`: its requested
    /// projection plus any attribute its filters read. Routing-level
    /// covering must preserve needs — early projection upstream of a pruned
    /// propagation could otherwise strip attributes a downstream filter
    /// reads. `None` when the stream is not requested.
    pub fn needs(&self, stream: Symbol) -> Option<StreamProjection> {
        let req = self.streams.get(&stream)?;
        let mut proj = req.projection.clone();
        let mut filter_attrs: BTreeSet<Symbol> = BTreeSet::new();
        for f in req.filters() {
            if let Predicate::Cmp { attr, .. } = f {
                filter_attrs.insert(Symbol::intern(&attr.attr));
            }
        }
        if !filter_attrs.is_empty() {
            proj = proj.union(&StreamProjection::Attrs(filter_attrs));
        }
        Some(proj)
    }

    /// Does `msg` match this subscription (stream requested + all filters
    /// pass)? Filter evaluation is symbol-compiled — no name resolution
    /// per message.
    pub fn matches(&self, msg: &Message) -> bool {
        match self.streams.get(&msg.stream) {
            None => false,
            Some(req) => eval_compiled(&req.compiled, msg),
        }
    }

    /// Projects `msg` down to the attributes this subscription requests.
    ///
    /// Returns `None` if the message does not match.
    pub fn project(&self, msg: &Message) -> Option<Message> {
        let req = self.streams.get(&msg.stream)?;
        if !eval_compiled(&req.compiled, msg) {
            return None;
        }
        Some(self.project_matched(req, msg))
    }

    /// Projects a message already known to match (the broker's local
    /// delivery path checks `matches` during table scanning; this skips
    /// the redundant second filter evaluation).
    pub fn project_unchecked(&self, msg: &Message) -> Option<Message> {
        let req = self.streams.get(&msg.stream)?;
        Some(self.project_matched(req, msg))
    }

    fn project_matched(&self, req: &StreamRequest, msg: &Message) -> Message {
        match &req.projection {
            StreamProjection::All => msg.clone(),
            StreamProjection::Attrs(keep) => msg.retaining(keep),
        }
    }
}

/// Builder for [`Subscription`] (see [`Subscription::builder`]).
#[derive(Debug)]
pub struct SubscriptionBuilder {
    sub: Subscription,
}

impl SubscriptionBuilder {
    /// Sets the subscription id.
    pub fn id(mut self, id: SubId) -> Self {
        self.sub.id = id;
        self
    }

    /// Adds a stream request (name interned and filters symbol-compiled
    /// here, once).
    pub fn stream(
        mut self,
        name: impl Into<Symbol>,
        projection: StreamProjection,
        filters: Vec<Predicate>,
    ) -> Self {
        self.sub.streams.insert(name.into(), StreamRequest::new(projection, filters));
        self
    }

    /// Finishes the subscription.
    pub fn build(self) -> Subscription {
        self.sub
    }
}

/// A published message — the broker-side name of the unified, `Arc`-shared
/// [`cosmos_query::record::Record`]. The engine's `Tuple` is the same
/// type, so a message crossing the broker→engine boundary needs no
/// re-keying (and no copy: it is the same value).
///
/// "Each message is represented as a set of attribute/value pairs" (§1.2);
/// here the *names* of those pairs live once in the interned schema rather
/// than once per message, and the payload is shared — delivering one
/// message to many subscribers bumps reference counts instead of cloning
/// scalars.
pub type Message = cosmos_query::record::Record;

/// A [`StreamProjection`] with its resolved per-input-schema plan cached
/// inline — the "hang the plan off the route entry" optimization. The
/// thread-local cache behind [`Message::retaining`] still allocates a small
/// key `Vec` per call to probe it; a `CachedProjection` lives on the route
/// entry (or hop group) that owns the projection, so applying it to a
/// message of an already-seen shape copies scalars by precomputed column
/// index — no per-message allocation beyond the output payload.
#[derive(Debug, Clone)]
pub struct CachedProjection {
    proj: StreamProjection,
    /// Plans keyed by input schema id. A stream sees a handful of shapes,
    /// so the cache's linear scan beats hashing and hits never allocate.
    plans: PlanCache<u32, RetainPlan>,
}

/// A resolved projection plan for one input schema: the output schema and
/// the kept input column indices, in output order.
#[derive(Debug, Clone)]
struct RetainPlan {
    schema: Arc<Schema>,
    cols: Arc<[u32]>,
}

impl CachedProjection {
    /// Wraps a projection with an empty plan cache.
    pub fn new(proj: StreamProjection) -> Self {
        Self { proj, plans: PlanCache::new() }
    }

    /// The wrapped projection.
    pub fn projection(&self) -> &StreamProjection {
        &self.proj
    }

    /// Whether [`CachedProjection::apply`] forwards records unchanged
    /// (`All`). The batched publish plane shares the input record across
    /// such hops instead of cloning it once per hop.
    pub fn is_identity(&self) -> bool {
        matches!(self.proj, StreamProjection::All)
    }

    /// Applies the projection to `msg`, resolving (and caching) the plan
    /// for `msg`'s schema on first sight. `All` is a refcount bump; an
    /// attribute set copies the kept scalars into one shared payload.
    pub fn apply(&mut self, msg: &Message) -> Message {
        let keep = match &self.proj {
            StreamProjection::All => return msg.clone(),
            StreamProjection::Attrs(keep) => keep,
        };
        let id = msg.schema().id();
        let plan = self.plans.get_or_insert_with(
            |sid| *sid == id,
            || id,
            || {
                let mut attrs = Vec::new();
                let mut cols = Vec::new();
                for (i, &a) in msg.schema().attrs().iter().enumerate() {
                    if keep.contains(&a) {
                        attrs.push(a);
                        cols.push(i as u32);
                    }
                }
                RetainPlan { schema: Schema::intern(&attrs), cols: cols.into() }
            },
        );
        let payload: std::sync::Arc<[Scalar]> =
            plan.cols.iter().map(|&i| msg.values()[i as usize].clone()).collect();
        Message::from_shared(msg.stream, msg.timestamp, Arc::clone(&plan.schema), payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrRef, CmpOp};
    use proptest::prelude::*;

    fn filter(stream: &str, attr: &str, op: CmpOp, v: i64) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new(stream, attr), op, value: Scalar::Int(v) }
    }

    fn sub(node: u32, stream: &str, filters: Vec<Predicate>) -> Subscription {
        Subscription::builder(NodeId(node)).stream(stream, StreamProjection::All, filters).build()
    }

    #[test]
    fn matching_respects_stream_and_filters() {
        let s = sub(1, "R", vec![filter("R", "a", CmpOp::Gt, 10)]);
        let hit = Message::new("R", 0).with("a", Scalar::Int(15));
        let miss_val = Message::new("R", 0).with("a", Scalar::Int(5));
        let miss_stream = Message::new("S", 0).with("a", Scalar::Int(15));
        let miss_attr = Message::new("R", 0).with("b", Scalar::Int(15));
        assert!(s.matches(&hit));
        assert!(!s.matches(&miss_val));
        assert!(!s.matches(&miss_stream));
        assert!(!s.matches(&miss_attr));
    }

    #[test]
    fn projection_trims_attributes() {
        let s = Subscription::builder(NodeId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        let m = Message::new("R", 9).with("a", Scalar::Int(1)).with("b", Scalar::Int(2));
        let p = s.project(&m).unwrap();
        let attrs: Vec<(String, Scalar)> =
            p.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        assert_eq!(attrs, vec![("a".to_string(), Scalar::Int(1))]);
        assert_eq!(p.timestamp, 9);
        assert!(p.wire_size() < m.wire_size());
    }

    #[test]
    fn covering_stream_sets() {
        let both = Subscription::builder(NodeId(1))
            .stream("R", StreamProjection::All, vec![])
            .stream("S", StreamProjection::All, vec![])
            .build();
        let only_r = sub(2, "R", vec![]);
        assert!(both.covers(&only_r));
        assert!(!only_r.covers(&both));
    }

    #[test]
    fn covering_filters_weaker_covers_stronger() {
        let weak = sub(1, "R", vec![filter("R", "a", CmpOp::Gt, 10)]);
        let strong = sub(2, "R", vec![filter("R", "a", CmpOp::Gt, 20)]);
        let none = sub(3, "R", vec![]);
        assert!(weak.covers(&strong));
        assert!(!strong.covers(&weak));
        assert!(none.covers(&weak));
        assert!(!weak.covers(&none));
    }

    #[test]
    fn covering_projection() {
        let all = sub(1, "R", vec![]);
        let some = Subscription::builder(NodeId(2))
            .stream("R", StreamProjection::attrs(["a", "b"]), vec![])
            .build();
        let fewer = Subscription::builder(NodeId(3))
            .stream("R", StreamProjection::attrs(["a"]), vec![])
            .build();
        assert!(all.covers(&some));
        assert!(some.covers(&fewer));
        assert!(!fewer.covers(&some));
        assert!(!some.covers(&all));
    }

    #[test]
    fn merge_covers_both_inputs() {
        let a = sub(1, "R", vec![filter("R", "a", CmpOp::Gt, 10)]);
        let b = Subscription::builder(NodeId(1))
            .stream("R", StreamProjection::attrs(["a"]), vec![filter("R", "a", CmpOp::Gt, 20)])
            .stream("T", StreamProjection::All, vec![])
            .build();
        let m = a.merge(&b);
        assert!(m.covers(&a));
        assert!(m.covers(&b));
        // Filters weakened to a > 10.
        assert_eq!(m.streams[&Symbol::intern("R")].filters().len(), 1);
    }

    #[test]
    fn merge_drops_incomparable_filters() {
        let a = sub(1, "R", vec![filter("R", "a", CmpOp::Gt, 10)]);
        let b = sub(1, "R", vec![filter("R", "a", CmpOp::Lt, 5)]);
        let m = a.merge(&b);
        assert!(m.streams[&Symbol::intern("R")].filters().is_empty());
        assert!(m.covers(&a) && m.covers(&b));
    }

    #[test]
    fn paper_example_p3_subscription() {
        // p3₁: S = {S1, S2}, P = {S2.*}, F = {S1.snowHeight > 10}
        let p31 = Subscription::builder(NodeId(1))
            .stream(
                "S1",
                StreamProjection::attrs(["snowHeight", "timestamp"]),
                vec![filter("S1", "snowHeight", CmpOp::Gt, 10)],
            )
            .stream("S2", StreamProjection::All, vec![])
            .build();
        let tall = Message::new("S1", 0).with("snowHeight", Scalar::Int(30));
        let short = Message::new("S1", 0).with("snowHeight", Scalar::Int(3));
        let s2 = Message::new("S2", 0).with("snowHeight", Scalar::Int(1));
        assert!(p31.matches(&tall));
        assert!(!p31.matches(&short));
        assert!(p31.matches(&s2));
    }

    proptest! {
        /// Covering must be consistent with matching: if `a` covers `b`,
        /// every message matching `b` matches `a`.
        #[test]
        fn prop_covering_sound_for_matching(
            ca in -50i64..50, cb in -50i64..50,
            opa in 0usize..4, opb in 0usize..4,
            x in -60i64..60,
        ) {
            let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            let a = sub(1, "R", vec![filter("R", "v", ops[opa], ca)]);
            let b = sub(2, "R", vec![filter("R", "v", ops[opb], cb)]);
            let msg = Message::new("R", 0).with("v", Scalar::Int(x));
            if a.covers(&b) && b.matches(&msg) {
                prop_assert!(a.matches(&msg));
            }
        }

        /// Merge always covers both inputs.
        #[test]
        fn prop_merge_covers_inputs(
            ca in -50i64..50, cb in -50i64..50,
            opa in 0usize..4, opb in 0usize..4,
        ) {
            let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            let a = sub(1, "R", vec![filter("R", "v", ops[opa], ca)]);
            let b = sub(1, "R", vec![filter("R", "v", ops[opb], cb)]);
            let m = a.merge(&b);
            prop_assert!(m.covers(&a));
            prop_assert!(m.covers(&b));
        }
    }
}
