//! Message-level broker network: advertisement-guided subscription
//! propagation with covering-based pruning, and reverse-path forwarding.
//!
//! This reproduces Figure 2's scenario end to end: sources advertise (2a),
//! receivers multicast subscriptions toward the sources under advertisement
//! guidance, merging along the way (2b), routing tables accumulate at each
//! node (2c), and published messages follow the tables, crossing each link
//! at most once while being filtered and projected as early as possible
//! (2d).
//!
//! Every physical node acts as a broker. Propagation follows the shortest
//! path between subscriber and the advertising source, so the implicit
//! dissemination tree per source is its shortest-path tree — the same tree
//! the rate-based [`crate::traffic::TrafficModel`] charges for, keeping the
//! two cost views consistent.
//!
//! # Incremental routing-state maintenance
//!
//! At massive scale the control plane churns continuously: subscriptions
//! arrive and depart, links fail and recover. The network therefore keeps
//! a per-subscription **installation ledger** ([`InstallRecord`]):
//! every `(node, direction)` entry a subscription contributed, every
//! forwarded-up record backing covering-based pruning, and the covering
//! **dependencies** between subscriptions (who suppressed whose
//! propagation). [`BrokerNetwork::unsubscribe`] tears down exactly the
//! departing subscription's footprint and re-propagates only its
//! transitive covering dependents; [`BrokerNetwork::fail_link`] /
//! [`BrokerNetwork::restore_link`] re-route only the subscriptions whose
//! installed paths traverse the changed link (per-source subtree
//! provenance from [`ShortestPathTree::nodes_via_edge`]). Both are
//! sublinear in population size; the `*_wholesale` twins keep the old
//! rebuild-the-world behaviour as the differential oracle and benchmark
//! baseline.
//!
//! # Crash recovery
//!
//! Whole-broker crashes follow the same ledger discipline. A crash
//! ([`BrokerNetwork::fail_node`]) is a batched link failure plus a local
//! wipe: every incident edge leaves the topology at once, the node's own
//! subscribers are unsubscribed through their ledgers (crashed consumers
//! must re-subscribe after recovery), and the re-route set is the union
//! of per-source moved subtrees — below the tree edge *into* the node
//! for remote sources, below every tree edge *out of* it when the node
//! is itself a source. Recovery ([`BrokerNetwork::restore_node`]) is the
//! inverse: the detached edge batch is validated all-or-nothing,
//! re-attached, and only the subtrees the fresh trees hang below the
//! restored edges re-propagate. Both keep `*_wholesale` twins as
//! differential oracles; `crates/pubsub/tests/chaos.rs` interleaves
//! crashes, link flaps, and lossy-link message faults (see
//! [`crate::reliable`]) against them.
//!
//! # Parallel data plane: snapshots
//!
//! The network is split read-copy-update style. All churn above stays
//! **single-writer** (`&mut self`) and only additionally marks the nodes
//! whose tables it touched in a dirty set. The **read side** is an
//! immutable [`RoutingSnapshot`] built on demand by
//! [`BrokerNetwork::snapshot`]: each dirty node's table is frozen
//! ([`crate::index::RoutingTable::freeze`]), clean nodes reuse the
//! previous snapshot's frozen table by `Arc`, and the result is published
//! through a [`SnapshotCell`]. Any number of [`SnapshotReader`]s
//! (`BrokerNetwork::reader`) then publish concurrently against their
//! snapshot handle with zero locks and zero shared mutable state; their
//! [`ReaderOutput`]s merge deterministically back into the broker's log
//! and link counters ([`BrokerNetwork::absorb`]), bit-identical to serial
//! [`BrokerNetwork::publish`] order. [`BrokerNetwork::publish_shared`] is
//! the convenience `&self` publish for callers that just want one message
//! matched from any thread. Snapshot builds are cheap dirty-marking away
//! from the churn path: subscribe/unsubscribe never freeze anything —
//! only an explicit `snapshot()` (or the first `publish_shared` after
//! churn) pays for the nodes that actually changed.

use crate::index::{
    BatchMatchOutput, ForwardInsert, ForwardedSet, MatchOutput, RoutingTable, SubSkeleton,
};
use crate::snapshot::{FrozenTable, ReaderOutput, RoutingSnapshot, SnapshotReader};
use crate::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_net::{NodeId, ShortestPathTree, Topology};
use cosmos_query::Scalar;
use cosmos_util::{SnapshotCell, Symbol};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Traffic counters for one undirected link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Number of message transmissions over the link.
    pub messages: u64,
    /// Total bytes transmitted.
    pub bytes: u64,
}

/// A delivered message: which subscription, where, and what content.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The matched subscription.
    pub sub: SubId,
    /// The subscriber's node.
    pub node: NodeId,
    /// The (projected) message content.
    pub message: Message,
}

/// Log of local deliveries made by [`BrokerNetwork::publish`].
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    pub(crate) deliveries: Vec<Delivery>,
}

impl DeliveryLog {
    /// All deliveries in publish order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Deliveries for one subscription.
    pub fn for_sub(&self, sub: SubId) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().filter(move |d| d.sub == sub)
    }

    /// Total number of deliveries.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// Returns `true` when nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.deliveries.clear();
    }
}

/// The per-subscription installation ledger: everything one subscription
/// contributed to the network's routing state, plus the covering
/// dependencies that gate incremental teardown (see
/// [`BrokerNetwork::unsubscribe`]).
#[derive(Debug)]
struct InstallRecord {
    /// Installation sequence number (subscribe order). Routing entries
    /// carry it, so delivery order survives removal and re-installation.
    seq: u64,
    /// The subscription itself — the ledger is the population store, so
    /// teardown and wave re-installation never scan a population list.
    sub: Subscription,
    /// Every `(node, direction)` whose routing table holds an entry this
    /// subscription contributed (`None` = the local delivery entry).
    entries: Vec<(NodeId, Option<NodeId>)>,
    /// `(node, source)` pairs whose forwarded-up list records this
    /// subscription (the covering-prune state).
    forwarded: Vec<(NodeId, NodeId)>,
    /// Subscriptions whose presence suppressed part of this installation —
    /// a covering entry made ours redundant, or a covering forward pruned
    /// our upstream propagation. If any of them leaves or re-routes, this
    /// subscription must be re-propagated.
    depends_on: BTreeSet<SubId>,
}

/// Covering as used for *routing-table pruning*: semantic covering plus
/// needs preservation (see [`Subscription::needs`]).
fn routing_covers(general: &Subscription, specific: &Subscription) -> bool {
    if !general.covers(specific) {
        return false;
    }
    specific.streams.keys().all(|&s| match (general.needs(s), specific.needs(s)) {
        (Some(g), Some(sp)) => g.covers(&sp),
        _ => false,
    })
}

/// Distinguishes the broker networks of one process, so thread-local
/// reader pools ([`BrokerNetwork::publish_shared`]) never mix networks.
static NET_IDS: AtomicU64 = AtomicU64::new(0);

/// Nodes whose routing tables changed since the last snapshot build.
/// Churn only marks here (cheap); [`BrokerNetwork::snapshot`] drains it,
/// freezing exactly the marked nodes.
#[derive(Debug, Default)]
struct DirtyNodes {
    nodes: BTreeSet<u32>,
    /// Everything is dirty (initial state, wholesale rebuilds): the next
    /// build freezes every node and ignores `nodes`.
    all: bool,
}

/// Per-batch wire-size memo for link statistics. A hop whose union
/// projection keeps the whole record forwards the message's own value row
/// (`Arc`-shared), so its wire size is the same on every link it crosses;
/// the memo recognizes that case by value-row pointer and charges the
/// bytes from one computation per message instead of one per link.
/// Narrowed projections produce fresh value rows, miss the pointer check,
/// and are measured directly — identical bytes either way.
struct WireSizeCache {
    /// Each tag's original value-row pointer (validity token, never
    /// dereferenced; the publish batch outlives the cache).
    ptrs: Vec<*const Scalar>,
    sizes: Vec<Option<u64>>,
}

impl WireSizeCache {
    fn new(run: &[Message]) -> Self {
        Self {
            ptrs: run.iter().map(|m| m.values().as_ptr()).collect(),
            sizes: vec![None; run.len()],
        }
    }

    fn wire_size(&mut self, tag: u32, m: &Message) -> u64 {
        if m.values().as_ptr() == self.ptrs[tag as usize] {
            *self.sizes[tag as usize].get_or_insert_with(|| m.wire_size() as u64)
        } else {
            m.wire_size() as u64
        }
    }
}

/// Monotone `u64` image of a value under ascending numeric order (sign
/// bit flipped for positives, all bits for negatives — the `total_cmp`
/// bit trick); `None` for values without a numeric interpretation.
fn sort_bits(v: &Scalar) -> Option<u64> {
    let f = cosmos_query::compiled::ScalarRef::from(v).as_f64()?;
    let b = f.to_bits();
    Some(if b >> 63 == 1 { !b } else { b | (1 << 63) })
}

/// Where a hop's forwarded record lives while a batch's sub-batches are
/// regrouped: `Same` borrows the matched message itself (identity union
/// projection), `Proj` indexes the forwarding node's arena of narrowed
/// records.
#[derive(Debug, Clone, Copy)]
enum FwdSlot {
    Same(u32),
    Proj(u32),
}

/// One hop's regrouped sub-batch under construction: `(tag, slot)` pairs
/// in match order.
type HopSlots = Vec<(u32, FwdSlot)>;

/// A content-based broker network over a physical topology.
///
/// # Examples
///
/// ```
/// use cosmos_net::{Topology, NodeId};
/// use cosmos_pubsub::broker::BrokerNetwork;
/// use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
/// use cosmos_query::Scalar;
///
/// let mut topo = Topology::new(3);
/// topo.add_edge(NodeId(0), NodeId(1), 1.0);
/// topo.add_edge(NodeId(1), NodeId(2), 1.0);
/// let mut net = BrokerNetwork::new(topo);
/// net.advertise("R", NodeId(0));
/// net.subscribe(
///     Subscription::builder(NodeId(2)).id(SubId(1)).stream("R", StreamProjection::All, vec![]).build(),
/// );
/// let n = net.publish(Message::new("R", 0).with("a", Scalar::Int(1)));
/// assert_eq!(n, 1);
/// ```
#[derive(Debug)]
pub struct BrokerNetwork {
    topo: Topology,
    /// stream symbol → advertising node.
    stream_source: HashMap<Symbol, NodeId>,
    /// advertising node → its shortest-path (dissemination) tree.
    adv_trees: HashMap<NodeId, ShortestPathTree>,
    /// Per-node routing tables (stream-partitioned counting indexes; see
    /// [`crate::index`]).
    tables: Vec<RoutingTable>,
    /// Per-node, per-source: subscriptions already forwarded toward that
    /// source (for covering-based pruning), with covering buckets so the
    /// prune check is sublinear in the forwarded population.
    forwarded_up: Vec<HashMap<NodeId, ForwardedSet>>,
    /// Per-subscription installation ledgers, keyed by id — the
    /// population store (subscribe order is each record's `seq`).
    records: HashMap<SubId, InstallRecord>,
    /// Live subscription ids per subscriber node: the re-route set of a
    /// link incident is found by walking the moved subtree's nodes, not
    /// the population.
    subs_at: Vec<Vec<SubId>>,
    /// Reverse covering-dependency index: `dependents[y]` = subscriptions
    /// whose installation was suppressed by `y` and must re-propagate
    /// when `y`'s routing state is torn down.
    dependents: HashMap<SubId, BTreeSet<SubId>>,
    /// Next installation sequence number.
    next_seq: u64,
    /// When set, [`BrokerNetwork::install`] resolves covering with the
    /// reference linear scans instead of the covering buckets — the
    /// `*_linear` oracle twin of subscription arrival (see
    /// [`BrokerNetwork::new_linear`]).
    linear_install: bool,
    /// Pool of match-output buffers reused across [`BrokerNetwork::forward`]
    /// recursion depths (steady-state publishing allocates nothing here).
    scratch: Vec<MatchOutput>,
    /// Pool of tagged forward-slot buffers reused across
    /// [`BrokerNetwork::forward_batch`] recursion — one buffer per
    /// (node, hop) edge of a batch's union dissemination tree, recycled
    /// when the hop's sub-batch is materialized.
    batch_pool: Vec<HopSlots>,
    /// Pool of batched match-output buffers (the batched twin of
    /// `scratch`).
    batch_scratch: Vec<BatchMatchOutput>,
    /// Pool of per-node hop-grouping buffers for
    /// [`BrokerNetwork::forward_batch`] (outer vector of the per-hop
    /// slot regrouping).
    next_pool: Vec<Vec<(NodeId, HopSlots)>>,
    link_stats: HashMap<(NodeId, NodeId), LinkStats>,
    log: DeliveryLog,
    /// Routing-state version: bumped by every churn operation. Written
    /// only under `&mut self`, read under `&self` — the staleness probe
    /// for [`BrokerNetwork::snapshot`].
    version: u64,
    /// Process-unique network id (keys per-thread reader pools).
    net_id: u64,
    /// The published snapshot (read-copy-update slot). Lazily rebuilt by
    /// [`BrokerNetwork::snapshot`] when `version` moved past it.
    snap: SnapshotCell<RoutingSnapshot>,
    /// Dirty-node set behind a mutex only because concurrent `&self`
    /// snapshot builders must drain it; churn (`&mut self`) and builds
    /// take it for nanoseconds, never on the publish path.
    dirty: parking_lot::Mutex<DirtyNodes>,
}

impl BrokerNetwork {
    /// Wraps a topology; every node becomes a broker.
    pub fn new(topo: Topology) -> Self {
        let n = topo.node_count();
        Self {
            topo,
            stream_source: HashMap::new(),
            adv_trees: HashMap::new(),
            tables: (0..n).map(|_| RoutingTable::new()).collect(),
            forwarded_up: (0..n).map(|_| HashMap::new()).collect(),
            records: HashMap::new(),
            subs_at: vec![Vec::new(); n],
            dependents: HashMap::new(),
            next_seq: 0,
            linear_install: false,
            scratch: Vec::new(),
            batch_pool: Vec::new(),
            batch_scratch: Vec::new(),
            next_pool: Vec::new(),
            link_stats: HashMap::new(),
            log: DeliveryLog::default(),
            version: 0,
            net_id: NET_IDS.fetch_add(1, Ordering::Relaxed),
            // Placeholder pre-first-build snapshot; `dirty.all` below
            // guarantees the first build replaces it wholesale, and the
            // sentinel version can never equal a real one.
            snap: SnapshotCell::new(Arc::new(RoutingSnapshot {
                version: u64::MAX,
                stream_source: HashMap::new(),
                tables: Vec::new(),
            })),
            dirty: parking_lot::Mutex::new(DirtyNodes { nodes: BTreeSet::new(), all: true }),
        }
    }

    /// A network whose subscription installs resolve covering with the
    /// reference **linear scans** — over the node's table entries and the
    /// forwarded-up population — instead of the covering buckets.
    /// Observationally identical to the indexed path (same entries, same
    /// skips and drops, in the same order); kept as the differential
    /// oracle and the benchmark baseline the sublinear-arrival claim is
    /// measured against, mirroring [`BrokerNetwork::publish_linear`] and
    /// the `*_wholesale` maintenance hooks.
    pub fn new_linear(topo: Topology) -> Self {
        let mut net = Self::new(topo);
        net.linear_install = true;
        net
    }

    /// Switches the covering-resolution mode for all *future* installs
    /// (`true` = reference linear scans). Routing state installed so far
    /// is unaffected — both modes produce identical state, so benchmark
    /// fixtures may build a population indexed and then measure the
    /// linear twin on it.
    pub fn set_linear_install(&mut self, linear: bool) {
        self.linear_install = linear;
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Advertises `stream` as produced by `source`. Re-advertising a stream
    /// moves it (subscriptions installed earlier are not rerouted — callers
    /// advertise before subscribing, as in Siena).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn advertise(&mut self, stream: impl Into<Symbol>, source: NodeId) {
        let stream = stream.into();
        self.adv_trees
            .entry(source)
            .or_insert_with(|| ShortestPathTree::compute(&self.topo, source));
        self.stream_source.insert(stream, source);
        // No table changed, but snapshots embed the stream→source map.
        self.mark_churn(std::iter::empty());
    }

    /// Bumps the routing-state version and marks the touched nodes dirty —
    /// the only thing churn pays toward the snapshot plane (no freezing
    /// here; [`BrokerNetwork::snapshot`] does that on demand).
    fn mark_churn(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.version += 1;
        let mut dirty = self.dirty.lock();
        if !dirty.all {
            dirty.nodes.extend(nodes.into_iter().map(|n| n.index() as u32));
        }
    }

    /// The advertised source of `stream`, if any.
    pub fn source_of(&self, stream: &str) -> Option<NodeId> {
        self.stream_source.get(&Symbol::lookup(stream)?).copied()
    }

    /// Installs a subscription, propagating it toward each advertised source
    /// of its streams with covering-based pruning and table merging (covered
    /// same-direction entries are replaced — the merge at `n1` in Figure 2).
    /// Streams without an advertisement are ignored (nothing can be routed
    /// for them yet). Subscription ids key the installation ledger:
    /// re-subscribing an id that is already live *replaces* the previous
    /// subscription (its installation is torn down first).
    pub fn subscribe(&mut self, sub: Subscription) {
        if self.records.contains_key(&sub.id) {
            self.unsubscribe(sub.id);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.subs_at[sub.subscriber.index()].push(sub.id);
        self.records.insert(
            sub.id,
            InstallRecord {
                seq,
                sub: sub.clone(),
                entries: Vec::new(),
                forwarded: Vec::new(),
                depends_on: BTreeSet::new(),
            },
        );
        self.install(sub);
    }

    /// Installs a batch of subscriptions — identical, entry for entry and
    /// sequence for sequence, to calling [`BrokerNetwork::subscribe`] on
    /// each element in order (covering skips/drops depend on install
    /// order, so the batch never reorders). The amortization is in the
    /// skeleton work: each subscription's indexable/residual split is
    /// derived **once** and reused across every per-source walk (the
    /// serial path re-derives it per advertised source), and the covering
    /// buckets the installs grow bulk-load their threshold runs from a
    /// single sort when they outgrow the scan threshold.
    pub fn subscribe_batch(&mut self, subs: Vec<Subscription>) {
        for sub in subs {
            if self.records.contains_key(&sub.id) {
                self.unsubscribe(sub.id);
            }
            let skel = SubSkeleton::of(&sub);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.subs_at[sub.subscriber.index()].push(sub.id);
            self.records.insert(
                sub.id,
                InstallRecord {
                    seq,
                    sub: sub.clone(),
                    entries: Vec::new(),
                    forwarded: Vec::new(),
                    depends_on: BTreeSet::new(),
                },
            );
            self.install_with(sub, Some(&skel));
        }
    }

    /// Propagates `sub` through the network, recording in its ledger every
    /// entry and forwarded-up record it contributes and every covering
    /// dependency its propagation runs into.
    fn install(&mut self, sub: Subscription) {
        self.install_with(sub, None);
    }

    /// [`BrokerNetwork::install`] with an optionally precomputed skeleton
    /// of the **full** subscription. Each per-source walk restricts the
    /// subscription to that source's streams, but a skeleton lookup is
    /// per-stream and the restricted streams are a subset — so the full
    /// skeleton answers every probe identically and one derivation serves
    /// all walks.
    fn install_with(&mut self, sub: Subscription, shared_skel: Option<&SubSkeleton>) {
        let id = sub.id;
        let seq = self.records[&id].seq;
        let mut rec_entries: Vec<(NodeId, Option<NodeId>)> = Vec::new();
        let mut rec_forwarded: Vec<(NodeId, NodeId)> = Vec::new();
        // Dependency edges discovered during propagation: `(x, y)` = `x`
        // must re-propagate if `y`'s routing state is torn down.
        let mut deps: Vec<(SubId, SubId)> = Vec::new();
        // Local delivery entry at the subscriber.
        self.tables[sub.subscriber.index()].insert(sub.clone(), None, seq);
        rec_entries.push((sub.subscriber, None));
        // Per-stream propagation toward the source.
        let streams: Vec<Symbol> = sub.streams.keys().copied().collect();
        let mut per_source: HashMap<NodeId, Vec<Symbol>> = HashMap::new();
        for s in streams {
            if let Some(&src) = self.stream_source.get(&s) {
                per_source.entry(src).or_default().push(s);
            }
        }
        let mut sources: Vec<(NodeId, Vec<Symbol>)> = per_source.into_iter().collect();
        sources.sort_by_key(|(n, _)| *n);
        for (src, stream_names) in sources {
            // Restrict the subscription to the streams this source serves.
            let mut restricted = Subscription {
                id: sub.id,
                subscriber: sub.subscriber,
                streams: Default::default(),
            };
            for s in &stream_names {
                restricted.streams.insert(*s, sub.streams[s].clone());
            }
            // One indexable/residual split per source walk: every hop's
            // skip probe, victim probes and insert reuse it instead of
            // re-deriving the skeleton (up to three times per hop). A
            // batch install passes the full subscription's skeleton in
            // and skips even that per-source derivation.
            let owned_skel;
            let skel = match shared_skel {
                Some(s) => s,
                None => {
                    owned_skel = SubSkeleton::of(&restricted);
                    &owned_skel
                }
            };
            let Some(path) = self.adv_trees[&src].path_to(sub.subscriber) else {
                continue; // unreachable subscriber
            };
            // Walk from the subscriber toward the source: path is
            // [src, ..., subscriber]; iterate indices len-2 .. 0.
            let mut pruned = false;
            for i in (0..path.len().saturating_sub(1)).rev() {
                let u = path[i];
                let downstream = path[i + 1];
                match self.add_forwarding_entry(u, restricted.clone(), skel, downstream, seq) {
                    ForwardInsert::Inserted { dropped } => {
                        rec_entries.push((u, Some(downstream)));
                        for victim in dropped {
                            // The drop invalidated one of the victim's
                            // ledgered entries: scrub it immediately, so
                            // the ledger only ever records live entries
                            // (a stale pair would let a later uninstall
                            // tear down an entry it no longer owns).
                            self.scrub_ledger_entry(victim, u, downstream);
                            if victim != id {
                                deps.push((victim, id));
                            }
                        }
                    }
                    ForwardInsert::Skipped { by } => {
                        if by != id {
                            deps.push((id, by));
                        }
                    }
                }
                let fwd = self.forwarded_up[u.index()].entry(src).or_default();
                let coverer = if self.linear_install {
                    fwd.find_coverer_linear(&restricted, routing_covers)
                } else {
                    fwd.find_coverer_with(&restricted, skel, routing_covers)
                };
                if let Some(cover_id) = coverer {
                    if cover_id != id {
                        deps.push((id, cover_id));
                    }
                    pruned = true;
                } else {
                    fwd.push_with(restricted.clone(), skel);
                    rec_forwarded.push((u, src));
                }
                if pruned {
                    break;
                }
            }
        }
        // Every table this install touched (inserts, covering drops,
        // compactions) sits at a node in `rec_entries` — mark them once.
        self.mark_churn(rec_entries.iter().map(|&(n, _)| n));
        let rec = self.records.get_mut(&id).expect("installing an unregistered subscription");
        rec.entries.extend(rec_entries);
        rec.forwarded.extend(rec_forwarded);
        for (x, y) in deps {
            self.depend(x, y);
        }
    }

    /// Records the dependency `x` → `y` (both directions of the index).
    fn depend(&mut self, x: SubId, y: SubId) {
        if let Some(rec) = self.records.get_mut(&x) {
            if rec.depends_on.insert(y) {
                self.dependents.entry(y).or_default().insert(x);
            }
        }
    }

    /// Adds a forwarding entry at `node` toward `downstream`, merging with
    /// existing same-direction entries: skipped if an existing entry already
    /// covers it; existing entries it covers are dropped (they are redundant
    /// for forwarding — one transmission per link regardless). The outcome
    /// reports the covering relationships so the caller can ledger them.
    ///
    /// Covering resolves through the table's `(stream, hop)` buckets
    /// ([`RoutingTable::insert_covering`]) — or through the reference
    /// linear scan in a [`BrokerNetwork::new_linear`] oracle network,
    /// which answers identically (same skip, same drops, same order). A
    /// subscription never skips or drops its **own** entries: a
    /// multi-stream installation revisits shared path hops once per
    /// advertised source under the same id, and those sibling entries
    /// must coexist (and stay ledgered) independently.
    fn add_forwarding_entry(
        &mut self,
        node: NodeId,
        sub: Subscription,
        skel: &SubSkeleton,
        downstream: NodeId,
        seq: u64,
    ) -> ForwardInsert {
        let table = &mut self.tables[node.index()];
        if !self.linear_install {
            return table.insert_covering_with(sub, skel, downstream, seq, routing_covers);
        }
        if let Some((e, _)) = table
            .entries()
            .find(|(e, to)| *to == Some(downstream) && e.id != sub.id && routing_covers(e, &sub))
        {
            return ForwardInsert::Skipped { by: e.id };
        }
        let dropped =
            table.remove_toward(downstream, |e| e.id != sub.id && routing_covers(&sub, e));
        table.insert_with(sub, skel, Some(downstream), seq);
        ForwardInsert::Inserted { dropped }
    }

    /// Removes one ledgered `(node, toward downstream)` pair from
    /// `victim`'s installation record — the bookkeeping half of a
    /// covering drop. [`RoutingTable::insert_covering`] reports one
    /// dropped id per tombstoned entry, so exactly one pair is scrubbed
    /// per report and the ledger keeps recording only live entries.
    fn scrub_ledger_entry(&mut self, victim: SubId, node: NodeId, downstream: NodeId) {
        if let Some(rec) = self.records.get_mut(&victim) {
            if let Some(pos) =
                rec.entries.iter().position(|&(n, d)| n == node && d == Some(downstream))
            {
                rec.entries.swap_remove(pos);
            }
        }
    }

    /// Tears down everything `id` installed — its table entries (via the
    /// ledger, not a population scan), its forwarded-up records, and its
    /// outgoing dependency edges. The record itself survives with its
    /// sequence number, so the subscription can be re-installed.
    fn uninstall(&mut self, id: SubId) {
        let Some(rec) = self.records.get_mut(&id) else { return };
        let entries = std::mem::take(&mut rec.entries);
        let forwarded = std::mem::take(&mut rec.forwarded);
        let depends_on = std::mem::take(&mut rec.depends_on);
        self.mark_churn(entries.iter().map(|&(n, _)| n));
        for (node, to) in entries {
            self.tables[node.index()].remove_entry(id, to);
        }
        for (node, src) in forwarded {
            if let Some(fwd) = self.forwarded_up[node.index()].get_mut(&src) {
                fwd.remove(id);
            }
        }
        for y in depends_on {
            if let Some(d) = self.dependents.get_mut(&y) {
                d.remove(&id);
            }
        }
    }

    /// The set of subscriptions that must be re-propagated when every
    /// member of `roots` is torn down: the transitive closure over
    /// recorded covering dependencies.
    fn dependent_closure(&self, roots: impl IntoIterator<Item = SubId>) -> BTreeSet<SubId> {
        let mut wave: BTreeSet<SubId> = roots.into_iter().collect();
        let mut work: Vec<SubId> = wave.iter().copied().collect();
        while let Some(y) = work.pop() {
            if let Some(ds) = self.dependents.get(&y) {
                for &x in ds {
                    if wave.insert(x) {
                        work.push(x);
                    }
                }
            }
        }
        wave
    }

    /// Uninstalls every wave member, then re-installs the survivors in
    /// subscribe (sequence) order, re-deriving their paths under the
    /// current trees and coverage — exactly the state a wholesale rebuild
    /// would leave them in, without touching anyone else. Cost is
    /// O(wave), never O(population): the subscriptions come out of their
    /// own ledger records.
    fn repropagate(&mut self, wave: &BTreeSet<SubId>) {
        for &w in wave {
            self.uninstall(w);
        }
        let mut reinstall: Vec<(u64, Subscription)> = wave
            .iter()
            .filter_map(|w| self.records.get(w).map(|r| (r.seq, r.sub.clone())))
            .collect();
        reinstall.sort_unstable_by_key(|(seq, _)| *seq);
        for (_, sub) in reinstall {
            self.install(sub);
        }
    }

    /// Drops `id` from the ledger and the per-node index (not from the
    /// routing tables — that is [`BrokerNetwork::uninstall`]'s job).
    fn forget(&mut self, id: SubId) {
        if let Some(rec) = self.records.remove(&id) {
            self.subs_at[rec.sub.subscriber.index()].retain(|&s| s != id);
        }
    }

    /// Removes subscription `id` **incrementally**: its ledger names every
    /// entry it installed, so teardown touches only those, and only the
    /// subscriptions whose propagation it had suppressed (covering
    /// dependents, transitively) are re-propagated — their merged-away or
    /// pruned routing state is restored exactly. Cost is proportional to
    /// the departing subscription's footprint plus its dependents', never
    /// to the population size.
    pub fn unsubscribe(&mut self, id: SubId) {
        let mut wave = self.dependent_closure([id]);
        self.uninstall(id);
        wave.remove(&id);
        self.forget(id);
        self.dependents.remove(&id);
        self.repropagate(&wave);
    }

    /// [`BrokerNetwork::unsubscribe`] via the reference wholesale rebuild:
    /// all routing state is discarded and the entire surviving population
    /// re-installed. Kept as the differential-testing oracle and the
    /// churn-benchmark baseline the incremental ledger is measured
    /// against.
    pub fn unsubscribe_wholesale(&mut self, id: SubId) {
        self.forget(id);
        self.rebuild_all();
    }

    /// Discards all routing state and re-installs every live
    /// subscription in subscribe order (sequence numbers preserved, so
    /// observable order is unchanged) — the wholesale maintenance path.
    fn rebuild_all(&mut self) {
        self.version += 1;
        {
            let mut dirty = self.dirty.lock();
            dirty.all = true;
            dirty.nodes.clear();
        }
        for table in &mut self.tables {
            table.clear();
        }
        for fwd in &mut self.forwarded_up {
            fwd.clear();
        }
        self.dependents.clear();
        let mut all: Vec<(u64, Subscription)> = Vec::with_capacity(self.records.len());
        for rec in self.records.values_mut() {
            rec.entries.clear();
            rec.forwarded.clear();
            rec.depends_on.clear();
            all.push((rec.seq, rec.sub.clone()));
        }
        all.sort_unstable_by_key(|(seq, _)| *seq);
        for (_, sub) in all {
            self.install(sub);
        }
    }

    /// Publishes a message from its advertised source, forwarding it along
    /// routing tables. Returns the number of local deliveries.
    ///
    /// Messages for unadvertised streams go nowhere and return 0.
    pub fn publish(&mut self, msg: Message) -> usize {
        let Some(&src) = self.stream_source.get(&msg.stream) else {
            return 0;
        };
        let before = self.log.len();
        self.forward(src, None, msg);
        self.log.len() - before
    }

    /// Publishes a slice of messages with batched index walks, returning
    /// the number of local deliveries. The delivery log and link stats
    /// end up **bit-identical** to publishing each message serially in
    /// slice order: maximal runs of consecutive same-stream messages
    /// share one forwarding walk — one table lookup, one counter-epoch
    /// range and one scratch-buffer cycle per node instead of one per
    /// message — and each message's deliveries, collected per-message
    /// during the shared walk, are spliced into the log in slice order.
    ///
    /// Messages for unadvertised streams go nowhere, exactly as in
    /// [`BrokerNetwork::publish`].
    pub fn publish_batch(&mut self, msgs: &[Message]) -> usize {
        let before = self.log.len();
        let mut i = 0;
        while i < msgs.len() {
            let stream = msgs[i].stream;
            let mut j = i + 1;
            while j < msgs.len() && msgs[j].stream == stream {
                j += 1;
            }
            if let Some(&src) = self.stream_source.get(&stream) {
                let run = &msgs[i..j];
                let mut batch: Vec<(u32, &Message)> =
                    run.iter().enumerate().map(|(k, m)| (k as u32, m)).collect();
                // Process the run in routed-value order: sub-batches
                // inherit it, so every node's eq-directory cursor walk
                // advances monotonically. Tags keep the slice positions,
                // and the log sort below restores slice order, so the
                // published outcome is order-independent.
                let probe =
                    self.tables[src.index()].first_indexed_attr(stream, msgs[i].schema().attrs());
                if let Some(attr) = probe {
                    batch.sort_by_key(|(_, m)| {
                        let same_schema =
                            m.schema().attrs().as_ptr() == msgs[i].schema().attrs().as_ptr();
                        same_schema.then(|| sort_bits(&m.values()[attr])).flatten()
                    });
                }
                let mut sizes = WireSizeCache::new(run);
                let mut logs: Vec<(u32, Delivery)> = Vec::new();
                self.forward_batch(src, None, &batch, &mut logs, &mut sizes);
                // Stable by tag: each tag's pushes happened in its serial
                // forwarding order, so the sorted whole is the serial log.
                logs.sort_by_key(|&(tag, _)| tag);
                self.log.deliveries.extend(logs.into_iter().map(|(_, d)| d));
            }
            i = j;
        }
        self.log.len() - before
    }

    /// Batched twin of [`BrokerNetwork::forward`]: matches the whole
    /// same-stream batch through one [`RoutingTable::match_batch_into`]
    /// walk, tagging each delivery with its message's batch position and
    /// regrouping forwards into per-hop sub-batches. Hops recurse in
    /// ascending node order — the same order serial recursion visits them
    /// — so restricting this union DFS to any single message's subtree
    /// reproduces that message's serial forwarding walk exactly, and each
    /// tag's deliveries land in `logs` in serial order. Link stats are
    /// order-independent sums and accumulate per sub-batch.
    ///
    /// Sub-batches borrow their messages: an identity forward reuses the
    /// incoming batch's reference and a narrowing one points into this
    /// call's `projected` arena (alive until the hop recursions return),
    /// so a record crossing k pass-through hops is cloned zero times
    /// instead of k. Slot buffers cycle through `batch_pool` and match
    /// outputs through `batch_scratch`, so steady-state batched
    /// publishing only allocates the per-node materialization arena.
    fn forward_batch(
        &mut self,
        node: NodeId,
        from: Option<NodeId>,
        batch: &[(u32, &Message)],
        logs: &mut Vec<(u32, Delivery)>,
        sizes: &mut WireSizeCache,
    ) {
        let mut out = self.batch_scratch.pop().unwrap_or_default();
        // Records produced by narrowing union projections; identity
        // forwards never land here.
        let mut projected: Vec<Message> = Vec::new();
        let mut next = self.next_pool.pop().unwrap_or_default();
        // Batch position of the message currently being sunk (sink runs
        // once per batch entry, in order).
        let mut pos: u32 = 0;
        let (tables, pool) = (&mut self.tables, &mut self.batch_pool);
        tables[node.index()].match_batch_into(batch, from, &mut out, |tag, out| {
            for (sub, message) in out.deliveries.drain(..) {
                logs.push((tag, Delivery { sub, node, message }));
            }
            for (hop, fwd) in out.forwards.drain(..) {
                let slot = match fwd {
                    None => FwdSlot::Same(pos),
                    Some(m) => {
                        projected.push(m);
                        FwdSlot::Proj(projected.len() as u32 - 1)
                    }
                };
                match next.binary_search_by_key(&hop, |(n, _)| *n) {
                    Ok(i) => next[i].1.push((tag, slot)),
                    Err(i) => {
                        let mut slots = pool.pop().unwrap_or_default();
                        slots.push((tag, slot));
                        next.insert(i, (hop, slots));
                    }
                }
            }
            pos += 1;
        });
        self.batch_scratch.push(out);
        for (hop, mut slots) in next.drain(..) {
            let sub_batch: Vec<(u32, &Message)> = slots
                .iter()
                .map(|&(tag, ref slot)| match *slot {
                    FwdSlot::Same(b) => (tag, batch[b as usize].1),
                    FwdSlot::Proj(p) => (tag, &projected[p as usize]),
                })
                .collect();
            slots.clear();
            self.batch_pool.push(slots);
            let key = if node <= hop { (node, hop) } else { (hop, node) };
            let stats = self.link_stats.entry(key).or_default();
            stats.messages += sub_batch.len() as u64;
            stats.bytes += sub_batch.iter().map(|&(tag, m)| sizes.wire_size(tag, m)).sum::<u64>();
            self.forward_batch(hop, Some(node), &sub_batch, logs, sizes);
        }
        self.next_pool.push(next);
    }

    fn forward(&mut self, node: NodeId, from: Option<NodeId>, msg: Message) {
        // Indexed matching: counting pass + residuals, with local and
        // per-hop projections applied from their cached plans. The output
        // buffers come from a per-network pool keyed by recursion depth,
        // so steady-state publishing allocates nothing here.
        let mut out = self.scratch.pop().unwrap_or_default();
        self.tables[node.index()].match_message_into(&msg, from, &mut out);
        for (sub, message) in out.deliveries.drain(..) {
            self.log.deliveries.push(Delivery { sub, node, message });
        }
        for (next, fwd) in out.forwards.drain(..) {
            let key = if node <= next { (node, next) } else { (next, node) };
            let stats = self.link_stats.entry(key).or_default();
            stats.messages += 1;
            stats.bytes += fwd.wire_size() as u64;
            self.forward(next, Some(node), fwd);
        }
        self.scratch.push(out);
    }

    /// The routing-state version: bumped by every churn operation
    /// (subscribe, unsubscribe, advertise, link incidents, rebuilds).
    /// A snapshot whose [`RoutingSnapshot::version`] equals this is
    /// current.
    pub fn routing_version(&self) -> u64 {
        self.version
    }

    /// The current routing snapshot, building it first if churn happened
    /// since the last build (read-copy-update commit). Only dirty nodes'
    /// tables are frozen; clean nodes reuse the previous snapshot's
    /// frozen tables by `Arc`. With no churn this is a version check and
    /// an `Arc` clone. Callable from any thread (`&self`).
    pub fn snapshot(&self) -> Arc<RoutingSnapshot> {
        let cur = self.snap.load();
        if cur.version == self.version {
            return cur;
        }
        let mut dirty = self.dirty.lock();
        // Re-check under the lock: a racing builder may have committed.
        let cur = self.snap.load();
        if cur.version == self.version {
            return cur;
        }
        let tables: Vec<Arc<FrozenTable>> = if dirty.all {
            self.tables.iter().map(|t| Arc::new(t.freeze())).collect()
        } else {
            // `cur` was itself a full build (dirty starts `all`), so it
            // has a frozen table for every clean node.
            self.tables
                .iter()
                .enumerate()
                .map(|(n, t)| {
                    if dirty.nodes.contains(&(n as u32)) {
                        Arc::new(t.freeze())
                    } else {
                        Arc::clone(&cur.tables[n])
                    }
                })
                .collect()
        };
        let next = Arc::new(RoutingSnapshot {
            version: self.version,
            stream_source: self.stream_source.clone(),
            tables,
        });
        self.snap.store(Arc::clone(&next));
        dirty.nodes.clear();
        dirty.all = false;
        next
    }

    /// A new [`SnapshotReader`] over the current snapshot — the handle a
    /// publisher thread owns for lock-free parallel publishing. The
    /// reader keeps working (consistently) against its snapshot through
    /// any later churn; hand it a fresh [`BrokerNetwork::snapshot`] via
    /// [`SnapshotReader::retarget`] to observe committed changes.
    pub fn reader(&self) -> SnapshotReader {
        self.snapshot().reader()
    }

    /// Publishes one message through the snapshot plane from a shared
    /// reference — the `&self` twin of [`BrokerNetwork::publish`],
    /// callable concurrently from any number of threads. Reuses a
    /// thread-local reader per network (scratch stays warm), refreshing
    /// it first when churn has committed since the reader's snapshot.
    /// Returns the deliveries and link traffic of exactly this message;
    /// fold them into the broker's own log with
    /// [`BrokerNetwork::absorb`], or inspect them directly.
    pub fn publish_shared(&self, msg: Message) -> ReaderOutput {
        thread_local! {
            static SHARED_READERS: RefCell<Vec<(u64, SnapshotReader)>> =
                const { RefCell::new(Vec::new()) };
        }
        SHARED_READERS.with(|cell| {
            let mut pool = cell.borrow_mut();
            let mut reader = match pool.iter().position(|(id, _)| *id == self.net_id) {
                Some(i) => pool.swap_remove(i).1,
                None => self.reader(),
            };
            if reader.snapshot().version() != self.version {
                reader.retarget(&self.snapshot());
            }
            reader.publish(msg);
            let out = reader.take_output();
            if pool.len() >= 8 {
                pool.remove(0); // cap per-thread pool; drop the oldest
            }
            pool.push((self.net_id, reader));
            out
        })
    }

    /// Folds a merged [`ReaderOutput`] into the broker's delivery log and
    /// link counters, in publish order — after absorbing, the log and
    /// stats are indistinguishable from having published the same
    /// messages serially.
    pub fn absorb(&mut self, mut out: ReaderOutput) {
        out.sort_by_order();
        self.log.deliveries.extend(out.deliveries.into_iter().map(|(_, d)| d));
        for (k, s) in out.links {
            let e = self.link_stats.entry(k).or_default();
            e.messages += s.messages;
            e.bytes += s.bytes;
        }
    }

    /// [`BrokerNetwork::publish`] via a reference linear table scan —
    /// matching evaluates every entry's full compiled filter conjunction
    /// and hop projections are re-unioned per message. Semantically
    /// identical to the indexed path (same deliveries, same link traffic);
    /// kept as the differential-testing oracle and the benchmark baseline
    /// the sublinear claim is measured against.
    pub fn publish_linear(&mut self, msg: Message) -> usize {
        let Some(&src) = self.stream_source.get(&msg.stream) else {
            return 0;
        };
        let before = self.log.len();
        self.forward_linear(src, None, msg);
        self.log.len() - before
    }

    fn forward_linear(&mut self, node: NodeId, from: Option<NodeId>, msg: Message) {
        let mut forwards: Vec<(NodeId, Message)> = Vec::new();
        {
            let table = &self.tables[node.index()];
            // Matched hops keyed by node id (a `BTreeMap` iterates them in
            // sorted order, as the old sorted `Vec` did); the needs unions
            // for every matched hop accumulate in one further pass over the
            // table instead of one full re-scan per hop.
            let mut matched_hops: BTreeMap<NodeId, Option<StreamProjection>> = BTreeMap::new();
            for (sub, to) in table.entries() {
                if !sub.matches(&msg) {
                    continue;
                }
                match to {
                    None => {
                        if let Some(projected) = sub.project_unchecked(&msg) {
                            self.log.deliveries.push(Delivery {
                                sub: sub.id,
                                node,
                                message: projected,
                            });
                        }
                    }
                    Some(next) => {
                        if Some(next) != from {
                            matched_hops.entry(next).or_insert(None);
                        }
                    }
                }
            }
            if !matched_hops.is_empty() {
                // Same union semantics as the index's hop groups: needs of
                // *every* entry toward a matched hop requesting the stream.
                for (sub, to) in table.entries() {
                    let Some(union) = to.and_then(|next| matched_hops.get_mut(&next)) else {
                        continue;
                    };
                    if let Some(needs) = sub.needs(msg.stream) {
                        *union = Some(match union.take() {
                            None => needs,
                            Some(u) => u.union(&needs),
                        });
                    }
                }
            }
            for (next, union) in matched_hops {
                let fwd = match union.expect("matched hop has at least one member") {
                    StreamProjection::All => msg.clone(),
                    StreamProjection::Attrs(keep) => msg.retaining(&keep),
                };
                forwards.push((next, fwd));
            }
        }
        for (next, fwd) in forwards {
            let key = if node <= next { (node, next) } else { (next, node) };
            let stats = self.link_stats.entry(key).or_default();
            stats.messages += 1;
            stats.bytes += fwd.wire_size() as u64;
            self.forward_linear(next, Some(node), fwd);
        }
    }

    /// Traffic counters for the link `{a, b}`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_stats.get(&key).copied().unwrap_or_default()
    }

    /// Total bytes transmitted over all links.
    pub fn total_bytes(&self) -> u64 {
        self.link_stats.values().map(|s| s.bytes).sum()
    }

    /// Total message transmissions over all links (a message crossing three
    /// links counts three times).
    pub fn total_link_messages(&self) -> u64 {
        self.link_stats.values().map(|s| s.messages).sum()
    }

    /// Latency-weighted traffic: `Σ_links bytes(link) × latency(link)` — the
    /// measured analogue of the paper's weighted communication cost.
    pub fn weighted_cost(&self) -> f64 {
        self.link_stats
            .iter()
            .map(|(&(a, b), s)| {
                let lat = self.topo.edge_latency(a, b).unwrap_or(0.0);
                s.bytes as f64 * lat
            })
            .sum()
    }

    /// The delivery log.
    pub fn log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Clears delivery log and link statistics (routing state kept).
    pub fn reset_stats(&mut self) {
        self.log.clear();
        self.link_stats.clear();
    }

    /// Number of routing entries at `node` (diagnostics).
    pub fn table_len(&self, node: NodeId) -> usize {
        self.tables[node.index()].len()
    }

    /// Verifies the ledger↔table consistency invariant — the contract
    /// the incremental control plane maintains after every operation:
    ///
    /// - every ledgered `(node, direction)` pair resolves to a live
    ///   routing-table entry of that subscription, **with multiplicity**
    ///   (a multi-stream subscription may contribute several entries at
    ///   one hop), and every live entry is ledgered by exactly one
    ///   [`InstallRecord`] — its owner's;
    /// - every ledgered forwarded-up pair resolves to a live forwarded
    ///   record and vice versa;
    /// - the per-node subscriber index lists each live subscription
    ///   exactly once, and the covering-dependency edges are symmetric
    ///   between the forward and reverse indexes.
    ///
    /// Returns a description of the first violation. Exposed for the
    /// differential suites, which assert it after every churn operation.
    pub fn check_ledger_consistency(&self) -> Result<(), String> {
        let mut entries: HashMap<(SubId, NodeId, Option<NodeId>), i64> = HashMap::new();
        for (n, table) in self.tables.iter().enumerate() {
            for (sub, to) in table.entries() {
                *entries.entry((sub.id, NodeId(n as u32), to)).or_default() += 1;
            }
        }
        for (&id, rec) in &self.records {
            for &(node, dir) in &rec.entries {
                *entries.entry((id, node, dir)).or_default() -= 1;
            }
        }
        if let Some(((id, node, dir), n)) = entries.iter().find(|(_, &n)| n != 0) {
            return Err(if *n > 0 {
                format!("live entry of {id} at {node:?} toward {dir:?} is not ledgered")
            } else {
                format!("ledgered entry of {id} at {node:?} toward {dir:?} is not live")
            });
        }
        let mut forwarded: HashMap<(SubId, NodeId, NodeId), i64> = HashMap::new();
        for (n, per_src) in self.forwarded_up.iter().enumerate() {
            for (&src, set) in per_src {
                for sub in set.iter() {
                    *forwarded.entry((sub.id, NodeId(n as u32), src)).or_default() += 1;
                }
            }
        }
        for (&id, rec) in &self.records {
            for &(node, src) in &rec.forwarded {
                *forwarded.entry((id, node, src)).or_default() -= 1;
            }
        }
        if let Some(((id, node, src), n)) = forwarded.iter().find(|(_, &n)| n != 0) {
            return Err(if *n > 0 {
                format!("forwarded record of {id} at {node:?} toward {src:?} is not ledgered")
            } else {
                format!("ledgered forward of {id} at {node:?} toward {src:?} is not live")
            });
        }
        for (&id, rec) in &self.records {
            let n = self.subs_at[rec.sub.subscriber.index()].iter().filter(|&&s| s == id).count();
            if n != 1 {
                return Err(format!("subscriber index lists {id} {n} times"));
            }
        }
        let listed: usize = self.subs_at.iter().map(|v| v.len()).sum();
        if listed != self.records.len() {
            return Err(format!(
                "subscriber index holds {listed} ids for {} records",
                self.records.len()
            ));
        }
        for (&x, rec) in &self.records {
            for y in &rec.depends_on {
                if !self.dependents.get(y).is_some_and(|d| d.contains(&x)) {
                    return Err(format!("dependency {x} -> {y} missing from the reverse index"));
                }
            }
        }
        for (&y, deps) in &self.dependents {
            for &x in deps {
                if !self.records.get(&x).is_some_and(|r| r.depends_on.contains(&y)) {
                    return Err(format!("reverse dependency {x} -> {y} has no forward edge"));
                }
            }
        }
        Ok(())
    }

    /// All per-link traffic counters, sorted by link (diagnostics and
    /// differential testing).
    pub fn all_link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        let mut all: Vec<_> = self
            .link_stats
            .iter()
            .filter(|(_, s)| s.messages > 0 || s.bytes > 0)
            .map(|(&k, &s)| (k, s))
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// Handles the failure of link `{a, b}` **incrementally**: the link is
    /// removed from the topology, dissemination trees are recomputed only
    /// for sources whose shortest paths actually traversed it, and only
    /// the subscriptions whose installed paths crossed the link (the
    /// subscribers in the failed edge's subtree, per source — see
    /// [`ShortestPathTree::nodes_via_edge`]) plus their transitive
    /// covering dependents are re-propagated. Every other node's shortest
    /// path is provably unchanged by the removal, so its routing state is
    /// left untouched.
    ///
    /// Returns `false` when the link did not exist. Subscribers that
    /// became unreachable from a source silently stop receiving that
    /// source's messages — exactly the partition semantics a CBN exhibits.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.topo.remove_edge(a, b) {
            return false;
        }
        let wave = self.affected_by_link(a, b, None);
        self.repropagate(&wave);
        true
    }

    /// Restores a previously failed link `{a, b}` with the given latency —
    /// the inverse of [`BrokerNetwork::fail_link`], equally incremental:
    /// trees are recomputed only for sources whose shortest paths adopt
    /// the restored link, and only the subscriptions routed through it
    /// (plus covering dependents) re-propagate. Returns `false` when the
    /// link already exists.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, on a self-loop, or on a
    /// non-positive / non-finite latency. The latency is validated
    /// **before** anything else — in particular before the edge-exists
    /// early return — so a `NaN` or negative latency is always rejected
    /// loudly instead of sometimes reporting a quiet `false`: a bogus
    /// latency that slipped into the topology would silently corrupt
    /// shortest-path tie-breaking for every later incident.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId, latency: f64) -> bool {
        assert!(latency.is_finite() && latency > 0.0, "latency must be positive and finite");
        if self.topo.edge_latency(a, b).is_some() {
            return false;
        }
        self.topo.add_edge(a, b, latency);
        let wave = self.affected_by_link(a, b, Some(latency));
        self.repropagate(&wave);
        true
    }

    /// [`BrokerNetwork::fail_link`] via the reference wholesale rebuild
    /// (every tree recomputed, the whole population re-installed) — the
    /// differential oracle and churn-benchmark baseline.
    pub fn fail_link_wholesale(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.topo.remove_edge(a, b) {
            return false;
        }
        self.recompute_all_trees();
        self.rebuild_all();
        true
    }

    /// [`BrokerNetwork::restore_link`] via the reference wholesale
    /// rebuild.
    ///
    /// # Panics
    ///
    /// Same up-front latency validation as [`BrokerNetwork::restore_link`].
    pub fn restore_link_wholesale(&mut self, a: NodeId, b: NodeId, latency: f64) -> bool {
        assert!(latency.is_finite() && latency > 0.0, "latency must be positive and finite");
        if self.topo.edge_latency(a, b).is_some() {
            return false;
        }
        self.topo.add_edge(a, b, latency);
        self.recompute_all_trees();
        self.rebuild_all();
        true
    }

    /// Handles the **crash of broker `n`** incrementally: all incident
    /// links leave the topology at once (the node slot persists as an
    /// isolated broker, keeping ids dense), `n`'s local subscribers are
    /// unsubscribed from the ledger — a crashed broker's consumers are
    /// gone and must re-subscribe after recovery — and only the
    /// subscriptions whose installed paths were hosted on or routed
    /// through `n`, plus their transitive covering dependents,
    /// re-propagate.
    ///
    /// The re-route set comes from the same per-source subtree provenance
    /// as [`BrokerNetwork::fail_link`]: for a dissemination tree rooted
    /// elsewhere that reaches `n`, exactly the subtree below the tree
    /// edge into `n` moves ([`ShortestPathTree::nodes_via_edge`]); for a
    /// tree rooted *at* `n`, everything below any of `n`'s tree edges —
    /// every reachable subscriber of that source. Trees that never reach
    /// `n` are untouched: none of `n`'s incident edges carries them.
    ///
    /// Returns the detached `(neighbor, latency)` list, sorted by
    /// neighbor, for a later [`BrokerNetwork::restore_node`] — or `None`
    /// when `n` is out of range or already isolated (crashed).
    pub fn fail_node(&mut self, n: NodeId) -> Option<Vec<(NodeId, f64)>> {
        if n.index() >= self.topo.node_count() || self.topo.degree(n) == 0 {
            return None;
        }
        let locals: Vec<SubId> = self.subs_at[n.index()].clone();
        let mut roots: BTreeSet<SubId> = locals.iter().copied().collect();
        let sources: Vec<NodeId> = self.adv_trees.keys().copied().collect();
        // Provenance from the OLD trees, before the topology changes.
        let mut stale: Vec<NodeId> = Vec::new();
        for src in sources {
            let tree = &self.adv_trees[&src];
            let mut moved: Vec<NodeId> = Vec::new();
            if src == n {
                for (v, _) in self.topo.neighbors(n) {
                    if let Some(below) = tree.nodes_via_edge(n, v) {
                        moved.extend(below);
                    }
                }
            } else if tree.distance(n).is_some() {
                let parent = tree.parent(n).expect("reachable non-root has a parent");
                moved = tree.nodes_via_edge(parent, n).expect("edge into a reachable node");
            } else {
                continue;
            }
            stale.push(src);
            for m in &moved {
                for &id in &self.subs_at[m.index()] {
                    let sub = &self.records[&id].sub;
                    if sub.streams.keys().any(|s| self.stream_source.get(s) == Some(&src)) {
                        roots.insert(id);
                    }
                }
            }
        }
        let edges = self.topo.remove_node(n);
        for src in stale {
            self.adv_trees.insert(src, ShortestPathTree::compute(&self.topo, src));
        }
        let mut wave = self.dependent_closure(roots);
        // Locals leave for good, mirroring `unsubscribe`: their footprint
        // is torn down via the ledger, they drop out of the re-propagation
        // wave, and their records are forgotten.
        for id in locals {
            self.uninstall(id);
            wave.remove(&id);
            self.forget(id);
            self.dependents.remove(&id);
        }
        self.repropagate(&wave);
        self.mark_churn([n]);
        Some(edges)
    }

    /// Restores crashed broker `n` with the given incident links — the
    /// inverse of [`BrokerNetwork::fail_node`], equally incremental.
    /// Whether any restored edge can enter a source's canonical tree is
    /// decided from the *old* endpoint distances before paying a
    /// shortest-path recomputation (`n` itself was unreachable while
    /// isolated, so for a remote source an edge is adoptable exactly when
    /// it reconnects a reachable neighbor); only then is a fresh tree
    /// computed, and only the subscriptions in the re-attached subtrees
    /// (plus covering dependents) re-propagate. Local subscribers the
    /// crash removed do **not** come back — crashed consumers must
    /// re-subscribe.
    ///
    /// Returns `false` when `n` is out of range or not currently crashed
    /// (it still has incident links).
    ///
    /// # Panics
    ///
    /// The whole `edges` batch is validated **before** any edge is
    /// applied: panics on an out-of-range or self-loop endpoint or a
    /// non-positive / non-finite latency, leaving the topology untouched.
    /// A half-applied batch would strand the network between two
    /// topologies — state no wholesale rebuild could reproduce.
    pub fn restore_node(&mut self, n: NodeId, edges: &[(NodeId, f64)]) -> bool {
        if n.index() >= self.topo.node_count() || self.topo.degree(n) != 0 {
            return false;
        }
        self.validate_restored_edges(n, edges);
        for &(v, lat) in edges {
            self.topo.add_edge(n, v, lat);
        }
        let sources: Vec<NodeId> = self.adv_trees.keys().copied().collect();
        let mut roots: BTreeSet<SubId> = BTreeSet::new();
        for src in sources {
            let old = &self.adv_trees[&src];
            let adoptable =
                edges.iter().any(|&(v, lat)| match (old.distance(n), old.distance(v)) {
                    (None, None) => false,
                    (Some(_), None) | (None, Some(_)) => true,
                    (Some(da), Some(db)) => da + lat <= db || db + lat <= da,
                });
            if !adoptable {
                continue;
            }
            let fresh = ShortestPathTree::compute(&self.topo, src);
            // The moved set is the union of fresh subtrees below `n`'s
            // restored edges: any changed canonical path must cross one
            // of them. (For a remote source that is just the subtree at
            // `n`; for a source at `n` it is everything reachable.)
            let mut moved: Vec<NodeId> = Vec::new();
            for &(v, _) in edges {
                if let Some(below) = fresh.nodes_via_edge(n, v) {
                    moved.extend(below);
                }
            }
            self.adv_trees.insert(src, fresh);
            for m in &moved {
                for &id in &self.subs_at[m.index()] {
                    let sub = &self.records[&id].sub;
                    if sub.streams.keys().any(|s| self.stream_source.get(s) == Some(&src)) {
                        roots.insert(id);
                    }
                }
            }
        }
        let wave = self.dependent_closure(roots);
        self.repropagate(&wave);
        self.mark_churn([n]);
        true
    }

    /// [`BrokerNetwork::fail_node`] via the reference wholesale rebuild —
    /// the differential oracle and churn-benchmark baseline.
    pub fn fail_node_wholesale(&mut self, n: NodeId) -> Option<Vec<(NodeId, f64)>> {
        if n.index() >= self.topo.node_count() || self.topo.degree(n) == 0 {
            return None;
        }
        for id in self.subs_at[n.index()].clone() {
            self.forget(id);
        }
        let edges = self.topo.remove_node(n);
        self.recompute_all_trees();
        self.rebuild_all();
        Some(edges)
    }

    /// [`BrokerNetwork::restore_node`] via the reference wholesale
    /// rebuild.
    ///
    /// # Panics
    ///
    /// Same all-or-nothing batch validation as
    /// [`BrokerNetwork::restore_node`].
    pub fn restore_node_wholesale(&mut self, n: NodeId, edges: &[(NodeId, f64)]) -> bool {
        if n.index() >= self.topo.node_count() || self.topo.degree(n) != 0 {
            return false;
        }
        self.validate_restored_edges(n, edges);
        for &(v, lat) in edges {
            self.topo.add_edge(n, v, lat);
        }
        self.recompute_all_trees();
        self.rebuild_all();
        true
    }

    /// Validates a [`BrokerNetwork::restore_node`] edge batch up-front
    /// (all-or-nothing): every endpoint in range, no self-loops, every
    /// latency positive and finite.
    fn validate_restored_edges(&self, n: NodeId, edges: &[(NodeId, f64)]) {
        for &(v, lat) in edges {
            assert!(v.index() < self.topo.node_count(), "restored neighbor {v} out of range");
            assert_ne!(v, n, "self-loops are not allowed");
            assert!(lat.is_finite() && lat > 0.0, "latency must be positive and finite");
        }
    }

    /// Matches `msg` at a single broker without forwarding — the one-hop
    /// matching step the reliable-delivery plane ([`crate::reliable`])
    /// drives explicitly, since it owns transport, retransmission, and
    /// link accounting itself.
    pub(crate) fn match_one(
        &mut self,
        node: NodeId,
        from: Option<NodeId>,
        msg: &Message,
        out: &mut MatchOutput,
    ) {
        self.tables[node.index()].match_message_into(msg, from, out);
    }

    /// The advertised source of an interned stream symbol.
    pub(crate) fn source_of_symbol(&self, stream: Symbol) -> Option<NodeId> {
        self.stream_source.get(&stream).copied()
    }

    fn recompute_all_trees(&mut self) {
        let sources: Vec<NodeId> = self.adv_trees.keys().copied().collect();
        for src in sources {
            self.adv_trees.insert(src, ShortestPathTree::compute(&self.topo, src));
        }
    }

    /// Recomputes the dissemination trees affected by a change to link
    /// `{a, b}` (already applied to the topology) and returns the re-route
    /// set: subscriptions whose installed paths are — or become — routed
    /// through the link, closed over covering dependents. `restored` is
    /// `None` for a failure, `Some(latency)` for a restoration.
    ///
    /// A failed link moves exactly the nodes below it in the **old**
    /// tree; a restored link moves exactly the nodes below it in the
    /// **new** one. In both cases every other node's shortest path (and,
    /// with this tree's deterministic tie-breaking, its parent chain) is
    /// unchanged, so a source whose tree never touches the link keeps its
    /// tree, and subscribers outside the moved subtree keep their
    /// installed entries. For a restoration, whether the link can be
    /// adopted at all is decided from the **old** tree's endpoint
    /// distances before paying a shortest-path recomputation: the edge
    /// can enter the canonical tree only by strictly improving one
    /// endpoint, *tying* one endpoint (a tie is adopted when the edge's
    /// relaxation fires first in pop order — the fresh tree decides), or
    /// connecting a previously unreachable one.
    fn affected_by_link(&mut self, a: NodeId, b: NodeId, restored: Option<f64>) -> BTreeSet<SubId> {
        let sources: Vec<NodeId> = self.adv_trees.keys().copied().collect();
        let mut roots: BTreeSet<SubId> = BTreeSet::new();
        for src in sources {
            let moved = if let Some(latency) = restored {
                let old = &self.adv_trees[&src];
                let adoptable = match (old.distance(a), old.distance(b)) {
                    (None, None) => false,
                    (Some(_), None) | (None, Some(_)) => true,
                    (Some(da), Some(db)) => da + latency <= db || db + latency <= da,
                };
                if !adoptable {
                    continue;
                }
                let fresh = ShortestPathTree::compute(&self.topo, src);
                let Some(moved) = fresh.nodes_via_edge(a, b) else { continue };
                self.adv_trees.insert(src, fresh);
                moved
            } else {
                let Some(moved) = self.adv_trees[&src].nodes_via_edge(a, b) else { continue };
                self.adv_trees.insert(src, ShortestPathTree::compute(&self.topo, src));
                moved
            };
            // Walk the moved subtree's nodes, not the population: the
            // per-node index yields exactly the subscribers that re-route.
            for n in &moved {
                for &id in &self.subs_at[n.index()] {
                    let sub = &self.records[&id].sub;
                    if sub.streams.keys().any(|s| self.stream_source.get(s) == Some(&src)) {
                        roots.insert(id);
                    }
                }
            }
        }
        self.dependent_closure(roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrRef, CmpOp, Predicate, Scalar};

    /// The paper's Figure 1/2 topology: n3 (source) - n2 - n1 - {n6, n7},
    /// with n4, n5 hanging off n2 and n1.
    fn paper_topology() -> Topology {
        let mut t = Topology::new(8); // ids 1..=7 used, 0 unused
        let e = |t: &mut Topology, a: u32, b: u32| t.add_edge(NodeId(a), NodeId(b), 1.0);
        e(&mut t, 3, 2);
        e(&mut t, 2, 1);
        e(&mut t, 2, 4);
        e(&mut t, 1, 5);
        e(&mut t, 1, 6);
        e(&mut t, 1, 7);
        t
    }

    fn filter_gt(stream: &str, attr: &str, v: i64) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new(stream, attr), op: CmpOp::Gt, value: Scalar::Int(v) }
    }

    fn sub_r(id: u64, node: u32, threshold: i64) -> Subscription {
        Subscription::builder(NodeId(node))
            .id(SubId(id))
            .stream("R", StreamProjection::All, vec![filter_gt("R", "a", threshold)])
            .build()
    }

    fn figure2_network() -> BrokerNetwork {
        let mut net = BrokerNetwork::new(paper_topology());
        net.advertise("R", NodeId(3));
        net.subscribe(sub_r(6, 6, 20)); // n6: a > 20
        net.subscribe(sub_r(7, 7, 10)); // n7: a > 10
        net
    }

    #[test]
    fn figure2_message_routing() {
        let mut net = figure2_network();
        // m1.a = 15: only n7 (a > 10) receives it.
        let d1 = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(d1, 1);
        assert_eq!(net.log().deliveries()[0].node, NodeId(7));
        // m2.a = 25: both n6 and n7.
        let d2 = net.publish(Message::new("R", 1).with("a", Scalar::Int(25)));
        assert_eq!(d2, 2);
    }

    #[test]
    fn figure2_single_transmission_per_link() {
        let mut net = figure2_network();
        net.publish(Message::new("R", 1).with("a", Scalar::Int(25)));
        // m2 crosses (3,2), (2,1), (1,6), (1,7): one transmission each.
        assert_eq!(net.link_stats(NodeId(3), NodeId(2)).messages, 1);
        assert_eq!(net.link_stats(NodeId(2), NodeId(1)).messages, 1);
        assert_eq!(net.link_stats(NodeId(1), NodeId(6)).messages, 1);
        assert_eq!(net.link_stats(NodeId(1), NodeId(7)).messages, 1);
        // Nothing toward n4 / n5.
        assert_eq!(net.link_stats(NodeId(2), NodeId(4)).messages, 0);
        assert_eq!(net.link_stats(NodeId(1), NodeId(5)).messages, 0);
    }

    #[test]
    fn figure2_early_filtering_at_source() {
        let mut net = figure2_network();
        // a = 5 matches nobody: must not leave n3 at all.
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(5)));
        assert_eq!(d, 0);
        assert_eq!(net.total_link_messages(), 0);
    }

    #[test]
    fn figure2_subscription_merging_prunes_upstream() {
        let net = figure2_network();
        // n7's a>10 was forwarded to n1, n2, n3. n6's a>20 is covered by
        // a>10 at n1, so n2's table holds only one upstream entry for n1's
        // direction... i.e. table at n2 has exactly one entry pointing to n1.
        let n2_entries_to_n1 =
            net.tables[2].entries().filter(|(_, to)| *to == Some(NodeId(1))).count();
        assert_eq!(n2_entries_to_n1, 1, "covered subscription must be pruned at n1");
        // But n1's table holds both (it is the merge point).
        assert_eq!(net.table_len(NodeId(1)), 2);
    }

    #[test]
    fn projection_happens_as_early_as_possible() {
        let mut topo = Topology::new(3);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::attrs(["a"]), vec![])
                .build(),
        );
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        net.publish(msg);
        // Both links must carry the projected (1-attribute) message:
        // 16-byte header + 4-byte symbol + 8-byte int payload.
        let small = 16 + 4 + 8;
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).bytes, small);
        assert_eq!(net.link_stats(NodeId(1), NodeId(2)).bytes, small);
        let d = &net.log().deliveries()[0];
        assert_eq!(d.message.len(), 1);
    }

    #[test]
    fn filter_attrs_survive_projection_despite_pruning() {
        // n2 subscribes proj {a} no filter (covers), n2' subscribes proj {a}
        // with filter on b. Routing-covering must keep b flowing.
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(1), NodeId(3), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::attrs(["a"]), vec![])
                .build(),
        );
        net.subscribe(
            Subscription::builder(NodeId(3))
                .id(SubId(2))
                .stream("R", StreamProjection::attrs(["a"]), vec![filter_gt("R", "b", 5)])
                .build(),
        );
        let n =
            net.publish(Message::new("R", 0).with("a", Scalar::Int(1)).with("b", Scalar::Int(10)));
        assert_eq!(n, 2, "both subscribers must receive the message");
        let miss =
            net.publish(Message::new("R", 1).with("a", Scalar::Int(1)).with("b", Scalar::Int(1)));
        assert_eq!(miss, 1, "only the filterless subscriber receives b=1");
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = figure2_network();
        net.unsubscribe(SubId(7));
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(d, 0);
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(25)));
        assert_eq!(d, 1); // n6 still there
    }

    #[test]
    fn unsubscribe_restores_merged_away_entries() {
        // In figure2, n7's a>10 *replaced* n6's a>20 forwarding entries at
        // n2 and n3 (covering merge). Unsubscribing n7 must restore
        // exactly n6's entries — via the ledgered dependency, not a
        // population rebuild.
        let mut net = figure2_network();
        net.unsubscribe(SubId(7));
        let n2_to_n1: Vec<SubId> = net.tables[2]
            .entries()
            .filter(|(_, to)| *to == Some(NodeId(1)))
            .map(|(s, _)| s.id)
            .collect();
        assert_eq!(n2_to_n1, vec![SubId(6)], "n6's merged-away entry restored at n2");
        net.publish(Message::new("R", 0).with("a", Scalar::Int(25)));
        assert_eq!(net.log().deliveries().len(), 1);
        assert_eq!(net.log().deliveries()[0].node, NodeId(6));
        assert_eq!(net.link_stats(NodeId(3), NodeId(2)).messages, 1, "path to n6 intact");
    }

    #[test]
    fn unsubscribe_repropagates_pruned_subscription() {
        // Reverse install order: n7's broad a>10 goes in first, so n6's
        // a>20 is pruned at n1 (nothing installed at n2/n3 for it). When
        // n7 leaves, n6 must be re-propagated all the way to the source.
        let mut net = BrokerNetwork::new(paper_topology());
        net.advertise("R", NodeId(3));
        net.subscribe(sub_r(7, 7, 10));
        net.subscribe(sub_r(6, 6, 20));
        net.unsubscribe(SubId(7));
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(25)));
        assert_eq!(d, 1, "n6 must receive after its coverer departed");
        assert_eq!(net.link_stats(NodeId(2), NodeId(1)).messages, 1);
    }

    #[test]
    fn restore_link_reroutes_incrementally() {
        // Ring: 0 - 1 - 2 - 3 - 0; source at 0, subscriber at 2.
        let mut topo = Topology::new(4);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId((i + 1) % 4), 1.0);
        }
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert!(net.fail_link(NodeId(0), NodeId(1)));
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(3)).messages, 1, "detour in use");
        // Restoring the link re-routes back through the short side.
        assert!(net.restore_link(NodeId(0), NodeId(1), 1.0));
        assert!(!net.restore_link(NodeId(0), NodeId(1), 1.0), "already present");
        net.reset_stats();
        assert_eq!(net.publish(Message::new("R", 1)), 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 1);
        assert_eq!(net.link_stats(NodeId(1), NodeId(2)).messages, 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(3)).messages, 0, "detour abandoned");
        // Restoring after a partition heals it.
        assert!(net.fail_link(NodeId(0), NodeId(1)));
        assert!(net.fail_link(NodeId(0), NodeId(3)));
        assert_eq!(net.publish(Message::new("R", 2)), 0, "partitioned");
        assert!(net.restore_link(NodeId(0), NodeId(3), 1.0));
        assert_eq!(net.publish(Message::new("R", 3)), 1, "healed via the detour");
    }

    #[test]
    fn restore_link_reclaims_equal_cost_path() {
        // 0-1 (1), 1-2 (1), 0-2 (2): the direct edge *ties* the detour.
        // The canonical tree uses the direct edge (node 0's relaxation of
        // node 2 fires first), so a fail+restore round-trip must return
        // to it even though the restored edge only equals the detour
        // distance — the adoptable check must treat ties as adoptable.
        let mut topo = Topology::new(3);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(0), NodeId(2), 2.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        net.publish(Message::new("R", 0));
        assert_eq!(net.link_stats(NodeId(0), NodeId(2)).messages, 1, "direct edge wins the tie");
        assert!(net.fail_link(NodeId(0), NodeId(2)));
        assert!(net.restore_link(NodeId(0), NodeId(2), 2.0));
        net.reset_stats();
        net.publish(Message::new("R", 1));
        assert_eq!(net.link_stats(NodeId(0), NodeId(2)).messages, 1, "tie reclaimed");
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 0);
        assert_eq!(net.link_stats(NodeId(1), NodeId(2)).messages, 0);
    }

    #[test]
    fn resubscribing_a_live_id_replaces_it() {
        // The ledger is keyed by id: subscribing an id that is already
        // live tears the old installation down first, so no orphaned
        // entries survive and a later unsubscribe removes everything.
        let mut net = figure2_network();
        net.subscribe(sub_r(7, 7, 30)); // replaces n7's a>10 with a>30
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(d, 0, "the old a>10 subscription must be gone");
        let d = net.publish(Message::new("R", 1).with("a", Scalar::Int(35)));
        assert_eq!(d, 2, "replacement and n6 both match");
        net.unsubscribe(SubId(7));
        let d = net.publish(Message::new("R", 2).with("a", Scalar::Int(35)));
        assert_eq!(d, 1, "only n6 remains, nothing orphaned");
        assert_eq!(net.table_len(NodeId(7)), 0);
    }

    #[test]
    fn unadvertised_stream_goes_nowhere() {
        let mut net = figure2_network();
        assert_eq!(net.publish(Message::new("X", 0)), 0);
    }

    #[test]
    fn subscriber_at_source_gets_local_delivery() {
        let mut topo = Topology::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(0))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        assert_eq!(net.total_link_messages(), 0);
    }

    #[test]
    fn weighted_cost_uses_latencies() {
        let mut topo = Topology::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 10.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(1))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        let msg = Message::new("R", 0).with("a", Scalar::Int(1));
        let size = msg.wire_size() as f64;
        net.publish(msg);
        assert!((net.weighted_cost() - size * 10.0).abs() < 1e-9);
    }

    #[test]
    fn link_failure_reroutes_when_alternate_path_exists() {
        // Ring: 0 - 1 - 2 - 3 - 0; source at 0, subscriber at 2.
        let mut topo = Topology::new(4);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId((i + 1) % 4), 1.0);
        }
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        // Kill one side of the ring; the other path still delivers.
        assert!(net.fail_link(NodeId(0), NodeId(1)));
        assert_eq!(net.publish(Message::new("R", 1)), 1);
        // Kill the remaining path: partitioned, no delivery.
        assert!(net.fail_link(NodeId(3), NodeId(0)));
        assert_eq!(net.publish(Message::new("R", 2)), 0);
        // Unknown link: report false.
        assert!(!net.fail_link(NodeId(0), NodeId(2)));
    }

    #[test]
    fn link_failure_keeps_unaffected_subscribers() {
        let mut net = figure2_network();
        // (2,4) failing is irrelevant to n6/n7.
        assert!(net.fail_link(NodeId(2), NodeId(4)));
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 2);
    }

    /// Regression (multi-source self-covering): a two-stream subscription
    /// installs one restricted entry per advertised source under the same
    /// id; where the two paths share a `(node, downstream)` hop the
    /// sibling entries must coexist — the second walk must never
    /// covers-drop (or be skipped by) the first — and the ledger must
    /// record exactly the live entries throughout.
    #[test]
    fn multi_source_shared_suffix_keeps_sibling_entries() {
        // R at 0 and S at 1 both reach the subscriber 4 through the
        // shared suffix 2 → 3 → 4.
        let mut topo = Topology::new(5);
        topo.add_edge(NodeId(0), NodeId(2), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(2), NodeId(3), 1.0);
        topo.add_edge(NodeId(3), NodeId(4), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.advertise("S", NodeId(1));
        net.subscribe(
            Subscription::builder(NodeId(4))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![filter_gt("R", "a", 20)])
                .stream("S", StreamProjection::All, vec![])
                .build(),
        );
        let siblings = |net: &BrokerNetwork, node: u32, down: u32| {
            net.tables[node as usize]
                .entries()
                .filter(|(s, to)| s.id == SubId(1) && *to == Some(NodeId(down)))
                .count()
        };
        assert_eq!(siblings(&net, 3, 4), 2, "one restricted entry per source at the shared hop");
        assert_eq!(siblings(&net, 2, 3), 2);
        net.check_ledger_consistency().expect("both sibling entries ledgered");
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 1);
        assert_eq!(net.publish(Message::new("S", 1)), 1);
        // A broader R-only subscriber downstream covers exactly the R
        // sibling at the shared hops; the S sibling and the ledger must
        // survive the drop.
        net.subscribe(
            Subscription::builder(NodeId(4))
                .id(SubId(2))
                .stream("R", StreamProjection::All, vec![filter_gt("R", "a", 10)])
                .build(),
        );
        assert_eq!(siblings(&net, 3, 4), 1, "R sibling merged away, S sibling intact");
        net.check_ledger_consistency().expect("victim ledger scrubbed at drop time");
        let m = |ts| Message::new("R", ts).with("a", Scalar::Int(25));
        assert_eq!(net.publish(m(2)), 2, "both subscribers via the merged entry");
        assert_eq!(net.publish(Message::new("S", 3)), 1);
        // The coverer departs: the dropped sibling is re-propagated.
        net.unsubscribe(SubId(2));
        assert_eq!(siblings(&net, 3, 4), 2, "dropped sibling restored");
        net.check_ledger_consistency().expect("consistent after re-propagation");
        assert_eq!(net.publish(m(4)), 1, "the surviving subscriber still served");
        // Unsubscribing tears down every sibling entry.
        net.unsubscribe(SubId(1));
        assert_eq!(net.table_len(NodeId(2)), 0);
        assert_eq!(net.table_len(NodeId(3)), 0);
        assert_eq!(net.publish(m(5)), 0);
        net.check_ledger_consistency().expect("consistent after teardown");
    }

    /// Regression (stale victim ledgers): a covering drop must scrub the
    /// victim's ledgered `(node, direction)` pair at drop time — through
    /// the drop → re-propagation → unsubscribe interleaving the ledger
    /// and tables must never disagree, and the final teardown must remove
    /// exactly the re-installed entries.
    #[test]
    fn covering_drop_scrubs_victim_ledger() {
        let mut topo = Topology::new(3);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(sub_r(1, 2, 20)); // victim: a > 20 at node 2
        net.check_ledger_consistency().expect("fresh install consistent");
        // Drop: the broader arrival replaces the victim's forwarding
        // entries at every hop.
        net.subscribe(sub_r(2, 2, 10)); // coverer: a > 10, same path
        let victim_entries = |net: &BrokerNetwork| {
            (0..3u32)
                .map(|n| {
                    net.tables[n as usize]
                        .entries()
                        .filter(|(s, to)| s.id == SubId(1) && to.is_some())
                        .count()
                })
                .sum::<usize>()
        };
        assert_eq!(victim_entries(&net), 0, "victim's forwarding entries merged away");
        net.check_ledger_consistency().expect("victim ledger scrubbed at drop time");
        // Re-propagation: the coverer departs, the victim re-installs.
        net.unsubscribe(SubId(2));
        assert_eq!(victim_entries(&net), 2, "victim re-propagated to the source");
        net.check_ledger_consistency().expect("consistent after re-propagation");
        // Unsubscribe: the re-installed footprint (and nothing else) goes.
        net.unsubscribe(SubId(1));
        assert_eq!(victim_entries(&net), 0);
        assert_eq!(net.table_len(NodeId(0)), 0);
        assert_eq!(net.table_len(NodeId(1)), 0);
        assert_eq!(net.table_len(NodeId(2)), 0);
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 0);
        net.check_ledger_consistency().expect("consistent after final teardown");
    }

    #[test]
    fn two_streams_one_subscription() {
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(2), 1.0); // source R
        topo.add_edge(NodeId(1), NodeId(2), 1.0); // source S
        topo.add_edge(NodeId(2), NodeId(3), 1.0); // subscriber
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.advertise("S", NodeId(1));
        net.subscribe(
            Subscription::builder(NodeId(3))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .stream("S", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        assert_eq!(net.publish(Message::new("S", 0)), 1);
    }

    #[test]
    fn crashed_nodes_local_subscribers_are_unsubscribed_not_orphaned() {
        let mut net = figure2_network();
        // n7 hosts SubId(7); crash n7. Its ledger record, per-node index
        // slot, and every entry along its path (n7, n1, n2, n3) must go.
        let edges = net.fail_node(NodeId(7)).expect("n7 was attached");
        assert_eq!(edges, vec![(NodeId(1), 1.0)]);
        assert!(!net.records.contains_key(&SubId(7)), "crashed local sub forgotten");
        assert!(net.subs_at[7].is_empty(), "per-node index cleared");
        assert!(!net.dependents.contains_key(&SubId(7)));
        net.check_ledger_consistency().expect("consistent after crash");
        // Only n6's subscription remains; a>15 matches n7's old filter but
        // must now deliver nowhere.
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(15))), 0);
        assert_eq!(net.publish(Message::new("R", 1).with("a", Scalar::Int(25))), 1);
        // Recovery brings the broker back but not its consumers: they
        // re-subscribe explicitly.
        assert!(net.restore_node(NodeId(7), &edges));
        assert_eq!(net.publish(Message::new("R", 2).with("a", Scalar::Int(15))), 0);
        net.subscribe(sub_r(7, 7, 10));
        assert_eq!(net.publish(Message::new("R", 3).with("a", Scalar::Int(15))), 1);
        net.check_ledger_consistency().expect("consistent after recovery");
    }

    #[test]
    fn fail_node_reroutes_transit_traffic() {
        // Ring: 0 (source) - 1 - 2 (subscriber) - 3 - 0. Shortest path to
        // the subscriber goes via n1; crashing n1 re-routes via n3.
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(2), NodeId(3), 2.0);
        topo.add_edge(NodeId(3), NodeId(0), 2.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(sub_r(1, 2, 0));
        net.publish(Message::new("R", 0).with("a", Scalar::Int(5)));
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 1);
        let edges = net.fail_node(NodeId(1)).expect("n1 was attached");
        net.check_ledger_consistency().expect("consistent after transit crash");
        // Crashing an already-isolated node reports None.
        assert!(net.fail_node(NodeId(1)).is_none());
        net.reset_stats();
        assert_eq!(net.publish(Message::new("R", 1).with("a", Scalar::Int(5))), 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(3)).messages, 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 0);
        // Recovery adopts the cheap path again.
        assert!(net.restore_node(NodeId(1), &edges));
        assert!(!net.restore_node(NodeId(1), &edges), "already restored");
        net.check_ledger_consistency().expect("consistent after recovery");
        net.reset_stats();
        assert_eq!(net.publish(Message::new("R", 2).with("a", Scalar::Int(5))), 1);
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 1);
    }

    #[test]
    fn fail_node_of_source_silences_its_stream() {
        let mut net = figure2_network();
        let edges = net.fail_node(NodeId(3)).expect("source was attached");
        net.check_ledger_consistency().expect("consistent after source crash");
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 0);
        assert_eq!(net.total_link_messages(), 0, "nothing may leave a crashed source");
        // Wholesale twin agrees bit-for-bit.
        let mut twin = figure2_network();
        assert_eq!(twin.fail_node_wholesale(NodeId(3)), Some(edges.clone()));
        assert_eq!(twin.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 0);
        // Recovery restores delivery to the surviving subscribers.
        assert!(net.restore_node(NodeId(3), &edges));
        assert!(twin.restore_node_wholesale(NodeId(3), &edges));
        assert_eq!(net.publish(Message::new("R", 1).with("a", Scalar::Int(25))), 2);
        assert_eq!(twin.publish(Message::new("R", 1).with("a", Scalar::Int(25))), 2);
        net.check_ledger_consistency().expect("consistent after source recovery");
    }

    #[test]
    fn restore_node_rejects_bad_batches_atomically() {
        let mut net = figure2_network();
        let edges = net.fail_node(NodeId(1)).expect("n1 was attached");
        assert_eq!(edges.len(), 4);
        // A batch with one bad latency must be rejected before ANY edge
        // is applied: the node stays fully crashed.
        let mut bad = edges.clone();
        bad[2].1 = f64::NAN;
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.restore_node(NodeId(1), &bad)
        }));
        assert!(poisoned.is_err(), "NaN latency must panic");
        assert_eq!(net.topology().degree(NodeId(1)), 0, "no edge of the bad batch applied");
        net.check_ledger_consistency().expect("consistent after rejected batch");
        assert!(net.restore_node(NodeId(1), &edges));
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn restore_link_rejects_nonfinite_latency_up_front() {
        let mut net = figure2_network();
        // The edge exists, so the buggy path would quietly return false;
        // the validation must fire first.
        net.restore_link(NodeId(1), NodeId(2), f64::NAN);
    }
}
