//! Message-level broker network: advertisement-guided subscription
//! propagation with covering-based pruning, and reverse-path forwarding.
//!
//! This reproduces Figure 2's scenario end to end: sources advertise (2a),
//! receivers multicast subscriptions toward the sources under advertisement
//! guidance, merging along the way (2b), routing tables accumulate at each
//! node (2c), and published messages follow the tables, crossing each link
//! at most once while being filtered and projected as early as possible
//! (2d).
//!
//! Every physical node acts as a broker. Propagation follows the shortest
//! path between subscriber and the advertising source, so the implicit
//! dissemination tree per source is its shortest-path tree — the same tree
//! the rate-based [`crate::traffic::TrafficModel`] charges for, keeping the
//! two cost views consistent.

use crate::index::RoutingTable;
use crate::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos_net::{NodeId, ShortestPathTree, Topology};
use cosmos_util::Symbol;
use std::collections::{BTreeMap, HashMap};

/// Traffic counters for one undirected link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Number of message transmissions over the link.
    pub messages: u64,
    /// Total bytes transmitted.
    pub bytes: u64,
}

/// A delivered message: which subscription, where, and what content.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The matched subscription.
    pub sub: SubId,
    /// The subscriber's node.
    pub node: NodeId,
    /// The (projected) message content.
    pub message: Message,
}

/// Log of local deliveries made by [`BrokerNetwork::publish`].
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    deliveries: Vec<Delivery>,
}

impl DeliveryLog {
    /// All deliveries in publish order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Deliveries for one subscription.
    pub fn for_sub(&self, sub: SubId) -> impl Iterator<Item = &Delivery> {
        self.deliveries.iter().filter(move |d| d.sub == sub)
    }

    /// Total number of deliveries.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// Returns `true` when nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.deliveries.clear();
    }
}

/// Covering as used for *routing-table pruning*: semantic covering plus
/// needs preservation (see [`Subscription::needs`]).
fn routing_covers(general: &Subscription, specific: &Subscription) -> bool {
    if !general.covers(specific) {
        return false;
    }
    specific.streams.keys().all(|&s| match (general.needs(s), specific.needs(s)) {
        (Some(g), Some(sp)) => g.covers(&sp),
        _ => false,
    })
}

/// A content-based broker network over a physical topology.
///
/// # Examples
///
/// ```
/// use cosmos_net::{Topology, NodeId};
/// use cosmos_pubsub::broker::BrokerNetwork;
/// use cosmos_pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
/// use cosmos_query::Scalar;
///
/// let mut topo = Topology::new(3);
/// topo.add_edge(NodeId(0), NodeId(1), 1.0);
/// topo.add_edge(NodeId(1), NodeId(2), 1.0);
/// let mut net = BrokerNetwork::new(topo);
/// net.advertise("R", NodeId(0));
/// net.subscribe(
///     Subscription::builder(NodeId(2)).id(SubId(1)).stream("R", StreamProjection::All, vec![]).build(),
/// );
/// let n = net.publish(Message::new("R", 0).with("a", Scalar::Int(1)));
/// assert_eq!(n, 1);
/// ```
#[derive(Debug)]
pub struct BrokerNetwork {
    topo: Topology,
    /// stream symbol → advertising node.
    stream_source: HashMap<Symbol, NodeId>,
    /// advertising node → its shortest-path (dissemination) tree.
    adv_trees: HashMap<NodeId, ShortestPathTree>,
    /// Per-node routing tables (stream-partitioned counting indexes; see
    /// [`crate::index`]).
    tables: Vec<RoutingTable>,
    /// Per-node, per-source: subscriptions already forwarded toward that
    /// source (for covering-based pruning).
    forwarded_up: Vec<HashMap<NodeId, Vec<Subscription>>>,
    /// All live subscriptions (used to rebuild tables on unsubscribe).
    active: Vec<Subscription>,
    link_stats: HashMap<(NodeId, NodeId), LinkStats>,
    log: DeliveryLog,
}

impl BrokerNetwork {
    /// Wraps a topology; every node becomes a broker.
    pub fn new(topo: Topology) -> Self {
        let n = topo.node_count();
        Self {
            topo,
            stream_source: HashMap::new(),
            adv_trees: HashMap::new(),
            tables: (0..n).map(|_| RoutingTable::new()).collect(),
            forwarded_up: vec![HashMap::new(); n],
            active: Vec::new(),
            link_stats: HashMap::new(),
            log: DeliveryLog::default(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Advertises `stream` as produced by `source`. Re-advertising a stream
    /// moves it (subscriptions installed earlier are not rerouted — callers
    /// advertise before subscribing, as in Siena).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn advertise(&mut self, stream: impl Into<Symbol>, source: NodeId) {
        let stream = stream.into();
        self.adv_trees
            .entry(source)
            .or_insert_with(|| ShortestPathTree::compute(&self.topo, source));
        self.stream_source.insert(stream, source);
    }

    /// The advertised source of `stream`, if any.
    pub fn source_of(&self, stream: &str) -> Option<NodeId> {
        self.stream_source.get(&Symbol::lookup(stream)?).copied()
    }

    /// Installs a subscription, propagating it toward each advertised source
    /// of its streams with covering-based pruning and table merging (covered
    /// same-direction entries are replaced — the merge at `n1` in Figure 2).
    /// Streams without an advertisement are ignored (nothing can be routed
    /// for them yet).
    pub fn subscribe(&mut self, sub: Subscription) {
        self.active.push(sub.clone());
        self.install(sub);
    }

    fn install(&mut self, sub: Subscription) {
        // Local delivery entry at the subscriber.
        self.tables[sub.subscriber.index()].insert(sub.clone(), None);
        // Per-stream propagation toward the source.
        let streams: Vec<Symbol> = sub.streams.keys().copied().collect();
        let mut per_source: HashMap<NodeId, Vec<Symbol>> = HashMap::new();
        for s in streams {
            if let Some(&src) = self.stream_source.get(&s) {
                per_source.entry(src).or_default().push(s);
            }
        }
        let mut sources: Vec<(NodeId, Vec<Symbol>)> = per_source.into_iter().collect();
        sources.sort_by_key(|(n, _)| *n);
        for (src, stream_names) in sources {
            // Restrict the subscription to the streams this source serves.
            let mut restricted = Subscription {
                id: sub.id,
                subscriber: sub.subscriber,
                streams: Default::default(),
            };
            for s in &stream_names {
                restricted.streams.insert(*s, sub.streams[s].clone());
            }
            let Some(path) = self.adv_trees[&src].path_to(sub.subscriber) else {
                continue; // unreachable subscriber
            };
            // Walk from the subscriber toward the source: path is
            // [src, ..., subscriber]; iterate indices len-2 .. 0.
            let mut pruned = false;
            for i in (0..path.len().saturating_sub(1)).rev() {
                let u = path[i];
                let downstream = path[i + 1];
                self.add_forwarding_entry(u, restricted.clone(), downstream);
                let fwd = self.forwarded_up[u.index()].entry(src).or_default();
                if fwd.iter().any(|f| routing_covers(f, &restricted)) {
                    pruned = true;
                } else {
                    fwd.push(restricted.clone());
                }
                if pruned {
                    break;
                }
            }
        }
    }

    /// Adds a forwarding entry at `node` toward `downstream`, merging with
    /// existing same-direction entries: skipped if an existing entry already
    /// covers it; existing entries it covers are dropped (they are redundant
    /// for forwarding — one transmission per link regardless).
    fn add_forwarding_entry(&mut self, node: NodeId, sub: Subscription, downstream: NodeId) {
        let table = &mut self.tables[node.index()];
        if table.entries().any(|(e, to)| to == Some(downstream) && routing_covers(e, &sub)) {
            return;
        }
        table.remove_toward(downstream, |e| routing_covers(&sub, e));
        table.insert(sub, Some(downstream));
    }

    /// Removes subscription `id` and rebuilds all routing state from the
    /// remaining active subscriptions (covered entries that were merged away
    /// are restored exactly).
    pub fn unsubscribe(&mut self, id: SubId) {
        self.active.retain(|s| s.id != id);
        for table in &mut self.tables {
            table.clear();
        }
        for fwd in &mut self.forwarded_up {
            fwd.clear();
        }
        let active = std::mem::take(&mut self.active);
        for sub in &active {
            self.install(sub.clone());
        }
        self.active = active;
    }

    /// Publishes a message from its advertised source, forwarding it along
    /// routing tables. Returns the number of local deliveries.
    ///
    /// Messages for unadvertised streams go nowhere and return 0.
    pub fn publish(&mut self, msg: Message) -> usize {
        let Some(&src) = self.stream_source.get(&msg.stream) else {
            return 0;
        };
        let before = self.log.len();
        self.forward(src, None, msg);
        self.log.len() - before
    }

    fn forward(&mut self, node: NodeId, from: Option<NodeId>, msg: Message) {
        // Indexed matching: counting pass + residuals, with local and
        // per-hop projections applied from their cached plans.
        let out = self.tables[node.index()].match_message(&msg, from);
        for (sub, message) in out.deliveries {
            self.log.deliveries.push(Delivery { sub, node, message });
        }
        for (next, fwd) in out.forwards {
            let key = if node <= next { (node, next) } else { (next, node) };
            let stats = self.link_stats.entry(key).or_default();
            stats.messages += 1;
            stats.bytes += fwd.wire_size() as u64;
            self.forward(next, Some(node), fwd);
        }
    }

    /// [`BrokerNetwork::publish`] via a reference linear table scan —
    /// matching evaluates every entry's full compiled filter conjunction
    /// and hop projections are re-unioned per message. Semantically
    /// identical to the indexed path (same deliveries, same link traffic);
    /// kept as the differential-testing oracle and the benchmark baseline
    /// the sublinear claim is measured against.
    pub fn publish_linear(&mut self, msg: Message) -> usize {
        let Some(&src) = self.stream_source.get(&msg.stream) else {
            return 0;
        };
        let before = self.log.len();
        self.forward_linear(src, None, msg);
        self.log.len() - before
    }

    fn forward_linear(&mut self, node: NodeId, from: Option<NodeId>, msg: Message) {
        let mut forwards: Vec<(NodeId, Message)> = Vec::new();
        {
            let table = &self.tables[node.index()];
            // Matched hops keyed by node id (a `BTreeMap` iterates them in
            // sorted order, as the old sorted `Vec` did); the needs unions
            // for every matched hop accumulate in one further pass over the
            // table instead of one full re-scan per hop.
            let mut matched_hops: BTreeMap<NodeId, Option<StreamProjection>> = BTreeMap::new();
            for (sub, to) in table.entries() {
                if !sub.matches(&msg) {
                    continue;
                }
                match to {
                    None => {
                        if let Some(projected) = sub.project_unchecked(&msg) {
                            self.log.deliveries.push(Delivery {
                                sub: sub.id,
                                node,
                                message: projected,
                            });
                        }
                    }
                    Some(next) => {
                        if Some(next) != from {
                            matched_hops.entry(next).or_insert(None);
                        }
                    }
                }
            }
            if !matched_hops.is_empty() {
                // Same union semantics as the index's hop groups: needs of
                // *every* entry toward a matched hop requesting the stream.
                for (sub, to) in table.entries() {
                    let Some(union) = to.and_then(|next| matched_hops.get_mut(&next)) else {
                        continue;
                    };
                    if let Some(needs) = sub.needs(msg.stream) {
                        *union = Some(match union.take() {
                            None => needs,
                            Some(u) => u.union(&needs),
                        });
                    }
                }
            }
            for (next, union) in matched_hops {
                let fwd = match union.expect("matched hop has at least one member") {
                    StreamProjection::All => msg.clone(),
                    StreamProjection::Attrs(keep) => msg.retaining(&keep),
                };
                forwards.push((next, fwd));
            }
        }
        for (next, fwd) in forwards {
            let key = if node <= next { (node, next) } else { (next, node) };
            let stats = self.link_stats.entry(key).or_default();
            stats.messages += 1;
            stats.bytes += fwd.wire_size() as u64;
            self.forward_linear(next, Some(node), fwd);
        }
    }

    /// Traffic counters for the link `{a, b}`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_stats.get(&key).copied().unwrap_or_default()
    }

    /// Total bytes transmitted over all links.
    pub fn total_bytes(&self) -> u64 {
        self.link_stats.values().map(|s| s.bytes).sum()
    }

    /// Total message transmissions over all links (a message crossing three
    /// links counts three times).
    pub fn total_link_messages(&self) -> u64 {
        self.link_stats.values().map(|s| s.messages).sum()
    }

    /// Latency-weighted traffic: `Σ_links bytes(link) × latency(link)` — the
    /// measured analogue of the paper's weighted communication cost.
    pub fn weighted_cost(&self) -> f64 {
        self.link_stats
            .iter()
            .map(|(&(a, b), s)| {
                let lat = self.topo.edge_latency(a, b).unwrap_or(0.0);
                s.bytes as f64 * lat
            })
            .sum()
    }

    /// The delivery log.
    pub fn log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Clears delivery log and link statistics (routing state kept).
    pub fn reset_stats(&mut self) {
        self.log.clear();
        self.link_stats.clear();
    }

    /// Number of routing entries at `node` (diagnostics).
    pub fn table_len(&self, node: NodeId) -> usize {
        self.tables[node.index()].len()
    }

    /// All per-link traffic counters, sorted by link (diagnostics and
    /// differential testing).
    pub fn all_link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        let mut all: Vec<_> = self
            .link_stats
            .iter()
            .filter(|(_, s)| s.messages > 0 || s.bytes > 0)
            .map(|(&k, &s)| (k, s))
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// Handles the failure of link `{a, b}`: the link is removed from the
    /// topology, advertisement trees are recomputed over the surviving
    /// links, and every active subscription is re-propagated (the
    /// brokers' recovery protocol, condensed to its observable effect).
    ///
    /// Returns `false` when the link did not exist. Subscribers that
    /// became unreachable from a source silently stop receiving that
    /// source's messages — exactly the partition semantics a CBN exhibits.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = self.remove_edge(a, b);
        if !removed {
            return false;
        }
        // Recompute dissemination trees for every advertising source.
        let sources: Vec<NodeId> = self.adv_trees.keys().copied().collect();
        for src in sources {
            self.adv_trees.insert(src, ShortestPathTree::compute(&self.topo, src));
        }
        // Rebuild all routing state from the active subscriptions.
        for table in &mut self.tables {
            table.clear();
        }
        for fwd in &mut self.forwarded_up {
            fwd.clear();
        }
        let active = std::mem::take(&mut self.active);
        for sub in &active {
            self.install(sub.clone());
        }
        self.active = active;
        true
    }

    /// Removes an undirected edge from the owned topology. `Topology` has
    /// no removal API (experiments never shrink graphs), so the broker
    /// rebuilds its copy without the failed link.
    fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if self.topo.edge_latency(a, b).is_none() {
            return false;
        }
        let mut rebuilt = Topology::new(self.topo.node_count());
        for u in self.topo.nodes() {
            for (v, lat) in self.topo.neighbors(u) {
                if u < v && !(u == a && v == b) && !(u == b && v == a) {
                    rebuilt.add_edge(u, v, lat);
                }
            }
        }
        self.topo = rebuilt;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrRef, CmpOp, Predicate, Scalar};

    /// The paper's Figure 1/2 topology: n3 (source) - n2 - n1 - {n6, n7},
    /// with n4, n5 hanging off n2 and n1.
    fn paper_topology() -> Topology {
        let mut t = Topology::new(8); // ids 1..=7 used, 0 unused
        let e = |t: &mut Topology, a: u32, b: u32| t.add_edge(NodeId(a), NodeId(b), 1.0);
        e(&mut t, 3, 2);
        e(&mut t, 2, 1);
        e(&mut t, 2, 4);
        e(&mut t, 1, 5);
        e(&mut t, 1, 6);
        e(&mut t, 1, 7);
        t
    }

    fn filter_gt(stream: &str, attr: &str, v: i64) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new(stream, attr), op: CmpOp::Gt, value: Scalar::Int(v) }
    }

    fn sub_r(id: u64, node: u32, threshold: i64) -> Subscription {
        Subscription::builder(NodeId(node))
            .id(SubId(id))
            .stream("R", StreamProjection::All, vec![filter_gt("R", "a", threshold)])
            .build()
    }

    fn figure2_network() -> BrokerNetwork {
        let mut net = BrokerNetwork::new(paper_topology());
        net.advertise("R", NodeId(3));
        net.subscribe(sub_r(6, 6, 20)); // n6: a > 20
        net.subscribe(sub_r(7, 7, 10)); // n7: a > 10
        net
    }

    #[test]
    fn figure2_message_routing() {
        let mut net = figure2_network();
        // m1.a = 15: only n7 (a > 10) receives it.
        let d1 = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(d1, 1);
        assert_eq!(net.log().deliveries()[0].node, NodeId(7));
        // m2.a = 25: both n6 and n7.
        let d2 = net.publish(Message::new("R", 1).with("a", Scalar::Int(25)));
        assert_eq!(d2, 2);
    }

    #[test]
    fn figure2_single_transmission_per_link() {
        let mut net = figure2_network();
        net.publish(Message::new("R", 1).with("a", Scalar::Int(25)));
        // m2 crosses (3,2), (2,1), (1,6), (1,7): one transmission each.
        assert_eq!(net.link_stats(NodeId(3), NodeId(2)).messages, 1);
        assert_eq!(net.link_stats(NodeId(2), NodeId(1)).messages, 1);
        assert_eq!(net.link_stats(NodeId(1), NodeId(6)).messages, 1);
        assert_eq!(net.link_stats(NodeId(1), NodeId(7)).messages, 1);
        // Nothing toward n4 / n5.
        assert_eq!(net.link_stats(NodeId(2), NodeId(4)).messages, 0);
        assert_eq!(net.link_stats(NodeId(1), NodeId(5)).messages, 0);
    }

    #[test]
    fn figure2_early_filtering_at_source() {
        let mut net = figure2_network();
        // a = 5 matches nobody: must not leave n3 at all.
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(5)));
        assert_eq!(d, 0);
        assert_eq!(net.total_link_messages(), 0);
    }

    #[test]
    fn figure2_subscription_merging_prunes_upstream() {
        let net = figure2_network();
        // n7's a>10 was forwarded to n1, n2, n3. n6's a>20 is covered by
        // a>10 at n1, so n2's table holds only one upstream entry for n1's
        // direction... i.e. table at n2 has exactly one entry pointing to n1.
        let n2_entries_to_n1 =
            net.tables[2].entries().filter(|(_, to)| *to == Some(NodeId(1))).count();
        assert_eq!(n2_entries_to_n1, 1, "covered subscription must be pruned at n1");
        // But n1's table holds both (it is the merge point).
        assert_eq!(net.table_len(NodeId(1)), 2);
    }

    #[test]
    fn projection_happens_as_early_as_possible() {
        let mut topo = Topology::new(3);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::attrs(["a"]), vec![])
                .build(),
        );
        let msg = Message::new("R", 0)
            .with("a", Scalar::Int(1))
            .with("b", Scalar::Int(2))
            .with("c", Scalar::Int(3));
        net.publish(msg);
        // Both links must carry the projected (1-attribute) message:
        // 16-byte header + 4-byte symbol + 8-byte int payload.
        let small = 16 + 4 + 8;
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).bytes, small);
        assert_eq!(net.link_stats(NodeId(1), NodeId(2)).bytes, small);
        let d = &net.log().deliveries()[0];
        assert_eq!(d.message.len(), 1);
    }

    #[test]
    fn filter_attrs_survive_projection_despite_pruning() {
        // n2 subscribes proj {a} no filter (covers), n2' subscribes proj {a}
        // with filter on b. Routing-covering must keep b flowing.
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(1), NodeId(3), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::attrs(["a"]), vec![])
                .build(),
        );
        net.subscribe(
            Subscription::builder(NodeId(3))
                .id(SubId(2))
                .stream("R", StreamProjection::attrs(["a"]), vec![filter_gt("R", "b", 5)])
                .build(),
        );
        let n =
            net.publish(Message::new("R", 0).with("a", Scalar::Int(1)).with("b", Scalar::Int(10)));
        assert_eq!(n, 2, "both subscribers must receive the message");
        let miss =
            net.publish(Message::new("R", 1).with("a", Scalar::Int(1)).with("b", Scalar::Int(1)));
        assert_eq!(miss, 1, "only the filterless subscriber receives b=1");
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = figure2_network();
        net.unsubscribe(SubId(7));
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
        assert_eq!(d, 0);
        let d = net.publish(Message::new("R", 0).with("a", Scalar::Int(25)));
        assert_eq!(d, 1); // n6 still there
    }

    #[test]
    fn unadvertised_stream_goes_nowhere() {
        let mut net = figure2_network();
        assert_eq!(net.publish(Message::new("X", 0)), 0);
    }

    #[test]
    fn subscriber_at_source_gets_local_delivery() {
        let mut topo = Topology::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(0))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        assert_eq!(net.total_link_messages(), 0);
    }

    #[test]
    fn weighted_cost_uses_latencies() {
        let mut topo = Topology::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 10.0);
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(1))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        let msg = Message::new("R", 0).with("a", Scalar::Int(1));
        let size = msg.wire_size() as f64;
        net.publish(msg);
        assert!((net.weighted_cost() - size * 10.0).abs() < 1e-9);
    }

    #[test]
    fn link_failure_reroutes_when_alternate_path_exists() {
        // Ring: 0 - 1 - 2 - 3 - 0; source at 0, subscriber at 2.
        let mut topo = Topology::new(4);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId((i + 1) % 4), 1.0);
        }
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.subscribe(
            Subscription::builder(NodeId(2))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        // Kill one side of the ring; the other path still delivers.
        assert!(net.fail_link(NodeId(0), NodeId(1)));
        assert_eq!(net.publish(Message::new("R", 1)), 1);
        // Kill the remaining path: partitioned, no delivery.
        assert!(net.fail_link(NodeId(3), NodeId(0)));
        assert_eq!(net.publish(Message::new("R", 2)), 0);
        // Unknown link: report false.
        assert!(!net.fail_link(NodeId(0), NodeId(2)));
    }

    #[test]
    fn link_failure_keeps_unaffected_subscribers() {
        let mut net = figure2_network();
        // (2,4) failing is irrelevant to n6/n7.
        assert!(net.fail_link(NodeId(2), NodeId(4)));
        assert_eq!(net.publish(Message::new("R", 0).with("a", Scalar::Int(25))), 2);
    }

    #[test]
    fn two_streams_one_subscription() {
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(2), 1.0); // source R
        topo.add_edge(NodeId(1), NodeId(2), 1.0); // source S
        topo.add_edge(NodeId(2), NodeId(3), 1.0); // subscriber
        let mut net = BrokerNetwork::new(topo);
        net.advertise("R", NodeId(0));
        net.advertise("S", NodeId(1));
        net.subscribe(
            Subscription::builder(NodeId(3))
                .id(SubId(1))
                .stream("R", StreamProjection::All, vec![])
                .stream("S", StreamProjection::All, vec![])
                .build(),
        );
        assert_eq!(net.publish(Message::new("R", 0)), 1);
        assert_eq!(net.publish(Message::new("S", 0)), 1);
    }
}
