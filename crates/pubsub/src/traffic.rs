//! Rate-based communication-cost model for the large-scale experiments.
//!
//! The simulation study never pushes individual messages: with 20 000
//! substreams and 60 000 queries, the measured quantity is the *weighted
//! unit-time communication cost* `Σ r(ni,nj) · d(ni,nj)` (§3.1.1). This
//! module computes that sum for a given query distribution under Pub/Sub
//! semantics:
//!
//! - **Source-side**: each substream is multicast from its source to every
//!   processor hosting at least one interested query, along the source's
//!   shortest-path tree, each link charged once (the sharing a CBN buys).
//! - **Result-side**: each query's (or merged query group's) result stream
//!   flows from its processor to the subscribing proxies; overlapping
//!   destinations share tree links the same way.
//!
//! The paper subtracts the (distribution-invariant) final hop from proxy to
//! local user; we follow by simply not charging it.

use cosmos_net::routing::MulticastScratch;
use cosmos_net::{Deployment, NodeId};
use cosmos_util::rng::rng_for;
use cosmos_util::InterestSet;
use rand::Rng;

/// Substream metadata: which source originates each substream and at what
/// rate (bytes/second).
///
/// §4.1: "All the streams are partitioned into 20,000 substreams and they
/// are randomly distributed to the sources. The arrival rate of each
/// substream is randomly chosen from 1 to 10 (bytes/seconds)."
#[derive(Debug, Clone)]
pub struct SubstreamTable {
    /// Index into the deployment's source list, per substream.
    source_index: Vec<usize>,
    /// Rate in bytes/second, per substream.
    rates: Vec<f64>,
}

impl SubstreamTable {
    /// Builds the paper's random substream table.
    ///
    /// # Panics
    ///
    /// Panics if `n_sources == 0` or `min_rate > max_rate`.
    pub fn random(
        n_substreams: usize,
        n_sources: usize,
        min_rate: f64,
        max_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(n_sources > 0, "need at least one source");
        assert!(min_rate <= max_rate, "rate range inverted");
        let mut rng = rng_for(seed, "substream-table");
        let source_index = (0..n_substreams).map(|_| rng.gen_range(0..n_sources)).collect();
        let rates = (0..n_substreams).map(|_| rng.gen_range(min_rate..=max_rate)).collect();
        Self { source_index, rates }
    }

    /// Builds a table from explicit assignments.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors' lengths differ.
    pub fn from_parts(source_index: Vec<usize>, rates: Vec<f64>) -> Self {
        assert_eq!(source_index.len(), rates.len(), "length mismatch");
        Self { source_index, rates }
    }

    /// Number of substreams.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Returns `true` when there are no substreams.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The source index of substream `s`.
    pub fn source_index(&self, s: usize) -> usize {
        self.source_index[s]
    }

    /// The rate of substream `s` in bytes/second.
    pub fn rate(&self, s: usize) -> f64 {
        self.rates[s]
    }

    /// All rates, indexed by substream (the table queries weigh interests
    /// against).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Scales the rate of substream `s` by `factor` (used by the
    /// rate-perturbation experiment, Figure 10).
    pub fn scale_rate(&mut self, s: usize, factor: f64) {
        self.rates[s] *= factor;
    }

    /// Overwrites the rate of substream `s`.
    pub fn set_rate(&mut self, s: usize, rate: f64) {
        self.rates[s] = rate;
    }
}

/// Computes weighted communication cost for query distributions.
#[derive(Debug)]
pub struct TrafficModel<'a> {
    dep: &'a Deployment,
    table: &'a SubstreamTable,
}

impl<'a> TrafficModel<'a> {
    /// Couples a deployment with a substream table.
    pub fn new(dep: &'a Deployment, table: &'a SubstreamTable) -> Self {
        Self { dep, table }
    }

    /// Cost of delivering every substream from its source to each processor
    /// that needs it.
    ///
    /// `interests[i]` is the union of the interests of all queries placed on
    /// processor `i` (in deployment processor order) — the merged
    /// subscription that processor inserts into the Pub/Sub.
    ///
    /// # Panics
    ///
    /// Panics if `interests.len()` differs from the processor count.
    pub fn source_delivery_cost(&self, interests: &[InterestSet]) -> f64 {
        let procs = self.dep.processors();
        assert_eq!(interests.len(), procs.len(), "one interest set per processor required");
        let n_sub = self.table.len();
        // Destination lists per substream.
        let mut dests: Vec<Vec<NodeId>> = vec![Vec::new(); n_sub];
        for (i, interest) in interests.iter().enumerate() {
            let node = procs[i];
            for s in interest.iter() {
                dests[s].push(node);
            }
        }
        let mut scratch = MulticastScratch::new(self.dep.topology().node_count());
        let mut total = 0.0;
        for (s, dest) in dests.iter().enumerate() {
            if dest.is_empty() {
                continue;
            }
            let src = self.dep.sources()[self.table.source_index(s)];
            let tree = self.dep.source_tree(src);
            total += self.table.rate(s) * tree.multicast_tree_latency_with(dest, &mut scratch);
        }
        total
    }

    /// Cost of unicasting result streams: one `(processor, proxy, rate)`
    /// flow per query. Local flows (processor == proxy) cost nothing.
    pub fn result_unicast_cost<I>(&self, flows: I) -> f64
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        flows
            .into_iter()
            .map(
                |(from, to, rate)| {
                    if from == to {
                        0.0
                    } else {
                        rate * self.dep.distance(from, to)
                    }
                },
            )
            .sum()
    }

    /// Cost of multicasting one shared result stream from a processor to a
    /// set of proxies (Figure 4(b)'s shared delivery).
    pub fn result_multicast_cost(&self, from: NodeId, proxies: &[NodeId], rate: f64) -> f64 {
        let tree = self.dep.processor_tree(from);
        rate * tree.multicast_tree_latency(proxies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::{Topology, TransitStubConfig};

    fn line_deployment() -> Deployment {
        // 0 (source) - 1 - 2 (proc A) - 3 - 4 (proc B), unit latencies
        let mut t = Topology::new(5);
        for i in 0..4u32 {
            t.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        Deployment::with_roles(t, vec![NodeId(0)], vec![NodeId(2), NodeId(4)])
    }

    #[test]
    fn source_cost_charges_shared_prefix_once() {
        let dep = line_deployment();
        let table = SubstreamTable::from_parts(vec![0], vec![10.0]);
        let model = TrafficModel::new(&dep, &table);
        let both =
            vec![InterestSet::from_indices(1, [0usize]), InterestSet::from_indices(1, [0usize])];
        // Path to proc A: 2 links; to proc B: 4 links; union: 4 links.
        assert_eq!(model.source_delivery_cost(&both), 10.0 * 4.0);
        let only_a = vec![InterestSet::from_indices(1, [0usize]), InterestSet::new(1)];
        assert_eq!(model.source_delivery_cost(&only_a), 10.0 * 2.0);
        let nobody = vec![InterestSet::new(1), InterestSet::new(1)];
        assert_eq!(model.source_delivery_cost(&nobody), 0.0);
    }

    #[test]
    fn result_unicast_costs_distance_times_rate() {
        let dep = line_deployment();
        let table = SubstreamTable::from_parts(vec![0], vec![1.0]);
        let model = TrafficModel::new(&dep, &table);
        let cost = model.result_unicast_cost([
            (NodeId(2), NodeId(4), 3.0), // distance 2
            (NodeId(4), NodeId(4), 7.0), // local: free
        ]);
        assert_eq!(cost, 6.0);
    }

    #[test]
    fn result_multicast_shares_links() {
        // Star: processor 0 center; proxies 2 and 4 behind shared node.
        let mut t = Topology::new(5);
        t.add_edge(NodeId(0), NodeId(1), 5.0);
        t.add_edge(NodeId(1), NodeId(2), 1.0);
        t.add_edge(NodeId(1), NodeId(4), 1.0);
        t.add_edge(NodeId(0), NodeId(3), 1.0);
        let dep = Deployment::with_roles(t, vec![NodeId(3)], vec![NodeId(0), NodeId(2), NodeId(4)]);
        let table = SubstreamTable::from_parts(vec![0], vec![1.0]);
        let model = TrafficModel::new(&dep, &table);
        let shared = model.result_multicast_cost(NodeId(0), &[NodeId(2), NodeId(4)], 2.0);
        // Union tree: 5 + 1 + 1 = 7 latency, times rate 2.
        assert_eq!(shared, 14.0);
        let unshared =
            model.result_unicast_cost([(NodeId(0), NodeId(2), 2.0), (NodeId(0), NodeId(4), 2.0)]);
        assert_eq!(unshared, 24.0);
        assert!(shared < unshared);
    }

    #[test]
    fn random_table_rates_in_range() {
        let t = SubstreamTable::random(1000, 7, 1.0, 10.0, 42);
        assert_eq!(t.len(), 1000);
        for s in 0..t.len() {
            assert!(t.rate(s) >= 1.0 && t.rate(s) <= 10.0);
            assert!(t.source_index(s) < 7);
        }
        // Deterministic.
        let t2 = SubstreamTable::random(1000, 7, 1.0, 10.0, 42);
        assert_eq!(t.rates(), t2.rates());
    }

    #[test]
    fn perturbation_changes_rates() {
        let mut t = SubstreamTable::from_parts(vec![0, 0], vec![2.0, 4.0]);
        t.scale_rate(0, 3.0);
        t.set_rate(1, 1.0);
        assert_eq!(t.rate(0), 6.0);
        assert_eq!(t.rate(1), 1.0);
    }

    #[test]
    fn works_at_paper_scale_topology() {
        // Smoke test with a real transit-stub deployment (small version).
        let topo = TransitStubConfig::small().generate(1);
        let dep = Deployment::assign(topo, 3, 6, 1);
        let table = SubstreamTable::random(100, 3, 1.0, 10.0, 1);
        let model = TrafficModel::new(&dep, &table);
        let interests: Vec<InterestSet> = (0..6)
            .map(|i| InterestSet::from_indices(100, (0..100).filter(|s| s % 6 == i)))
            .collect();
        let cost = model.source_delivery_cost(&interests);
        assert!(cost > 0.0);
        // Concentrating all interest on one processor can't cost more than
        // spreading it (the multicast union only shrinks).
        let mut all = InterestSet::new(100);
        for i in &interests {
            all.union_with(i);
        }
        let mut concentrated = vec![InterestSet::new(100); 6];
        concentrated[0] = all;
        let conc_cost = model.source_delivery_cost(&concentrated);
        assert!(conc_cost > 0.0);
    }

    #[test]
    #[should_panic(expected = "one interest set per processor")]
    fn wrong_interest_count_panics() {
        let dep = line_deployment();
        let table = SubstreamTable::from_parts(vec![0], vec![1.0]);
        let model = TrafficModel::new(&dep, &table);
        let _ = model.source_delivery_cost(&[InterestSet::new(1)]);
    }
}
